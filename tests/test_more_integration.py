"""Further integration coverage: append-mode preservation, large rsh
relays, mixed scheduling, balancer policy limits."""

import pytest

from repro.apps import LoadBalancer, LoadBalancerPolicy
from repro.kernel.constants import O_APPEND
from repro.core.formats import FilesInfo, dump_file_names
from tests.conftest import start_counter


def test_append_flag_survives_migration(site):
    """counter.out is opened O_APPEND; the dumped flags keep the bit
    and restart reopens with it, so post-migration writes append even
    if the offset were wrong."""
    handle = start_counter(site)
    site.dumpproc("brick", handle.pid, uid=100)
    info = FilesInfo.unpack(site.machine("brick").fs.read_file(
        dump_file_names(handle.pid)[1]))
    assert info.entries[3].flags & O_APPEND
    moved = site.restart("schooner", handle.pid, from_host="brick",
                         uid=100)
    entry = moved.proc.user.ofile[3]
    assert entry.flags & O_APPEND


def test_rsh_relays_large_output(site):
    """Multi-kilobyte remote output survives the sentinel scanning."""
    brick = site.machine("brick")
    schooner = site.machine("schooner")
    blob = (b"0123456789abcdef" * 256) + b"\n"  # 4 KiB + newline
    schooner.fs.install_file("/tmp/big", blob)
    status = site.run_command("brick",
                              ["rsh", "schooner", "cat", "/tmp/big"],
                              uid=100, max_steps=5_000_000)
    assert status == 0
    text = site.console("brick")
    assert text.count("0123456789abcdef") >= 250


def test_mixed_native_and_vm_scheduling(site):
    """Native daemons, a VM hog and an interactive VM job coexist."""
    brick = site.machine("brick")
    hog = site.start("brick", "/bin/cpuhog", ["cpuhog", "200000"],
                     uid=100)
    job = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.type_at("brick", "while hogging\n")
    site.run_until(lambda: "r=2 s=2 k=2" in site.console("brick"))
    assert not hog.exited  # the hog kept its share
    site.run_until(lambda: hog.exited, max_steps=30_000_000)
    assert "checksum=" in site.console("brick")


def test_balancer_respects_max_moves(site):
    for __ in range(6):
        site.start("brick", "/bin/cpuhog", ["cpuhog", "4000000"],
                   uid=100)
    site.run(until_us=site.cluster.wall_time_us() + 1_500_000)
    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.1,
                                  imbalance_threshold=2,
                                  max_moves_per_round=2))
    moves = balancer.step()
    assert len(moves) == 2


def test_balancer_threshold_blocks_churn(site):
    h1 = site.start("brick", "/bin/cpuhog", ["cpuhog", "4000000"],
                    uid=100)
    h2 = site.start("schooner", "/bin/cpuhog", ["cpuhog", "4000000"],
                    uid=100)
    site.run(until_us=site.cluster.wall_time_us() + 1_000_000)
    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.1,
                                  imbalance_threshold=2))
    # 1 vs 1 is balanced: nothing moves
    assert balancer.step() == []


def test_migrated_job_counts_in_destination_load(site):
    h = site.start("brick", "/bin/cpuhog", ["cpuhog", "4000000"],
                   uid=100)
    site.run(until_us=site.cluster.wall_time_us() + 1_000_000)
    balancer = LoadBalancer(site, ["brick", "schooner"], uid=100)
    assert balancer.loads() == {"brick": 1, "schooner": 0}
    move = balancer.migrate(h.pid, "brick", "schooner")
    assert move is not None
    assert balancer.loads() == {"brick": 0, "schooner": 1}


def test_dump_while_multiple_jobs_share_a_machine(site):
    """Dumping one job leaves its neighbours untouched."""
    a = start_counter(site)
    b = site.start("brick", "/bin/cpuhog", ["cpuhog", "3000000"],
                   uid=100)
    site.dumpproc("brick", a.pid, uid=100)
    assert a.exited
    assert not b.exited
    moved = site.restart("schooner", a.pid, from_host="brick",
                         uid=100)
    assert moved.proc.is_vm()
    assert not b.exited


def test_two_simultaneous_migrations_opposite_directions(site):
    """brick->schooner and schooner->brick at the same time."""
    a = start_counter(site, host="brick")
    b = site.start("schooner", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("schooner").count("> ") >= 1)
    site.dumpproc("brick", a.pid, uid=100)
    site.dumpproc("schooner", b.pid, uid=100)
    moved_a = site.restart("schooner", a.pid, from_host="brick",
                           uid=100)
    moved_b = site.restart("brick", b.pid, from_host="schooner",
                           uid=100)
    assert moved_a.proc.is_vm() and moved_b.proc.is_vm()
    site.machine("brick").console.clear_output()
    site.machine("schooner").console.clear_output()
    site.type_at("schooner", "sa\n")
    site.type_at("brick", "sb\n")
    site.run_until(lambda: "r=2 s=2 k=2" in site.console("schooner"))
    site.run_until(lambda: "r=2 s=2 k=2" in site.console("brick"))


def test_remigrating_a_migrated_process(site):
    """A process can bounce: brick -> schooner -> brador -> brick."""
    handle = start_counter(site)
    pid, host = handle.pid, "brick"
    for destination in ("schooner", "brador", "brick"):
        site.dumpproc(host, pid, uid=100)
        moved = site.restart(destination, pid, from_host=host,
                             uid=100)
        assert moved.proc.is_vm()
        pid, host = moved.pid, destination
    site.machine("brick").console.clear_output()
    site.type_at("brick", "end\n")
    site.run_until(lambda: "r=2 s=2 k=2" in site.console("brick"))
