"""Differential fuzzing: the trace compiler against the interpreter.

Randomized instruction sequences are encoded straight to machine code
and run twice — once with ``use_predecode=False`` (the reference
interpreter, the executable spec) and once through the trace compiler
— in small odd budget chunks, so quantum boundaries and entry-guard
bails land mid-trace.  After every chunk each architecturally visible
outcome must be identical: registers, flags, pc, memory contents,
dirty pages, executed counts, and the stop itself (type, fault kind,
faulting address).

The generator deliberately includes the awkward cases: invalid and
out-of-range addresses (segv parity), 68020-only opcodes run on a
68010 (ill parity), division by zero (fpe parity), dynamic branch and
call targets, byte operations, and stack traffic.  The one thing it
avoids is *stores that land inside the code window*: self-modifying
code mid-quantum hits the legacy per-run decode-cache staleness that
predates the trace compiler, in both engines.
"""

from hypothesis import given, settings, strategies as st

from repro.vm import isa
from repro.vm.cpu import CPU, QuantumStop
from repro.vm.image import ProcessImage, TEXT_BASE
from repro.vm.isa import Op, Mode, MC68010, MC68020

MEM_SIZE = 64 * 1024
ISIZE = isa.INSTRUCTION_SIZE
#: largest program the generator emits (plus the trap sentinel)
MAX_PROG = 24
#: code window stores must avoid (see module docstring)
CODE_END = TEXT_BASE + ISIZE * (MAX_PROG + 1)
#: start of the store-safe data window
DATA_BASE = CODE_END + 64

REG = st.integers(0, 7)

#: immediates: small arithmetic values, addresses in the data window,
#: clearly-invalid addresses — never inside the code window
IMM = st.one_of(
    st.integers(-64, 64),
    st.integers(DATA_BASE, MEM_SIZE - 4),
    st.sampled_from([-16, 0, MEM_SIZE - 2, MEM_SIZE - 1,
                     MEM_SIZE + 64, 2 ** 20, -(2 ** 20)]),
)

#: absolute operands: same spread (reads from low memory are legal,
#: stores below TEXT_BASE never alias code)
ABS = IMM

#: opcodes, weighted roughly by how interesting their compiled form is
OPS = ([Op.ADD, Op.SUB, Op.MUL, Op.MOVE] * 4
       + [Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.CMP, Op.TST,
          Op.MOVB, Op.LEA, Op.DIV, Op.MOD, Op.NOT, Op.NEG] * 2
       + [Op.PUSH, Op.POP, Op.JSR, Op.RTS, Op.NOP]
       + [Op.MULL, Op.DIVL, Op.BFEXT]
       + [Op.BEQ, Op.BNE, Op.BLT, Op.BLE, Op.BGT, Op.BGE, Op.BRA] * 2)


@st.composite
def _operand(draw, code_pcs):
    mode = draw(st.sampled_from([Mode.IMM, Mode.DREG, Mode.DREG,
                                 Mode.AREG, Mode.ABS, Mode.IND,
                                 Mode.IND_DISP]))
    if mode == Mode.IMM:
        return mode, draw(IMM)
    if mode in (Mode.DREG, Mode.AREG, Mode.IND):
        return mode, draw(REG)
    if mode == Mode.ABS:
        return mode, draw(ABS)
    return mode, isa.pack_ind_disp(draw(st.integers(-16, 16)) * 4,
                                   draw(REG))


@st.composite
def _instruction(draw, code_pcs):
    op = draw(st.sampled_from(OPS))
    if op in isa.ZERO_OPERAND:
        return isa.encode(op)
    if op in isa.BRANCHES or op == Op.JSR:
        # mostly static targets (they compile to links), sometimes a
        # dynamic register target (always a trace exit)
        if draw(st.integers(0, 4)):
            return isa.encode(op, Mode.IMM, draw(st.sampled_from(code_pcs)))
        mode = draw(st.sampled_from([Mode.DREG, Mode.AREG]))
        return isa.encode(op, mode, draw(REG))
    if op in isa.ONE_OPERAND_SRC:  # push
        sm, s = draw(_operand(code_pcs))
        return isa.encode(op, sm, s)
    if op in isa.ONE_OPERAND_DST:  # not/neg/tst/pop
        dm, dv = draw(_operand(code_pcs))
        return isa.encode(op, 0, 0, dm, dv)
    sm, s = draw(_operand(code_pcs))
    dm, dv = draw(_operand(code_pcs))
    return isa.encode(op, sm, s, dm, dv)


@st.composite
def _program(draw):
    n = draw(st.integers(2, MAX_PROG))
    code_pcs = [TEXT_BASE + ISIZE * k for k in range(n + 1)]
    body = [draw(_instruction(code_pcs)) for _ in range(n)]
    body.append(isa.encode(Op.TRAP))  # sentinel: falling off traps
    return b"".join(body)


#: initial register files: arithmetic values for d, data-window
#: addresses for a (so indirect stores start out store-safe)
DREGS = st.lists(st.one_of(st.integers(-100, 100),
                           st.integers(-(2 ** 31), 2 ** 31 - 1)
                           .filter(lambda v: not
                                   TEXT_BASE - 256 <= v <= CODE_END)),
                 min_size=8, max_size=8)
AREGS = st.lists(st.integers(DATA_BASE + 256, MEM_SIZE - 256),
                 min_size=8, max_size=8)


def _fresh_image(text, dregs, aregs):
    image = ProcessImage(mem_size=MEM_SIZE)
    image.text_size = len(text)
    image.write_bytes(TEXT_BASE, text)
    image.data_size = 0
    image.brk = TEXT_BASE + len(text)
    # a recognizable non-zero pattern under the data window so loads
    # see real values and byte ops have something to truncate
    pattern = bytes((i * 37 + 11) & 0xFF for i in range(4096))
    image.write_bytes(DATA_BASE, pattern)
    image.clear_dirty()
    image.regs.pc = TEXT_BASE
    image.regs.sp = image.stack_top - 64
    image.regs.d[:] = dregs
    image.regs.a[:7] = aregs[:7]
    return image


def _visible_state(image, stop):
    return (type(stop).__name__, stop.executed,
            getattr(stop, "kind", None), getattr(stop, "address", None),
            list(image.regs.d), list(image.regs.a),
            image.regs.pc, image.regs.sp, image.regs.zf, image.regs.nf)


def _run_differential(text, dregs, aregs, model, budgets, cap=400):
    ref_cpu = CPU(model)
    ref_cpu.use_predecode = False
    fast_cpu = CPU(model)
    ref = _fresh_image(text, dregs, aregs)
    fast = _fresh_image(text, dregs, aregs)
    total = 0
    chunk = 0
    while total < cap:
        budget = budgets[chunk % len(budgets)]
        ref_stop = ref_cpu.run(ref, budget)
        fast_stop = fast_cpu.run(fast, budget)
        assert _visible_state(ref, ref_stop) == \
            _visible_state(fast, fast_stop), \
            "diverged at chunk %d (budget %d)" % (chunk, budget)
        assert bytes(ref.mem) == bytes(fast.mem), \
            "memory diverged at chunk %d" % chunk
        assert bytes(ref.dirty_pages) == bytes(fast.dirty_pages), \
            "dirty pages diverged at chunk %d" % chunk
        total += ref_stop.executed
        chunk += 1
        if not isinstance(ref_stop, QuantumStop):
            break  # trap/halt/fault: the program is done


@given(text=_program(), dregs=DREGS, aregs=AREGS,
       budgets=st.lists(st.integers(3, 17).map(lambda v: v | 1),
                        min_size=1, max_size=4),
       model=st.sampled_from([MC68010, MC68020]))
@settings(max_examples=120, deadline=None)
def test_compiled_traces_match_interpreter(text, dregs, aregs,
                                           budgets, model):
    _run_differential(text, dregs, aregs, model, budgets)


def test_linked_loop_matches_interpreter_chunked():
    """A deterministic cpuhog-shaped loop: block linking, a memory
    read-modify-write, and a conditional exit, stepped in budgets that
    never divide the loop length."""
    loop = TEXT_BASE
    body = [
        isa.encode(Op.ADD, Mode.IMM, 1, Mode.DREG, 7),
        isa.encode(Op.MOVE, Mode.DREG, 7, Mode.DREG, 5),
        isa.encode(Op.MUL, Mode.IMM, 7, Mode.DREG, 5),
        isa.encode(Op.MOD, Mode.IMM, 123, Mode.DREG, 5),
        isa.encode(Op.ADD, Mode.DREG, 5, Mode.ABS, DATA_BASE),
        isa.encode(Op.CMP, Mode.IMM, 500, Mode.DREG, 7),
        isa.encode(Op.BLT, Mode.IMM, loop),
        isa.encode(Op.TRAP),
    ]
    text = b"".join(body)
    zeros = [0] * 8
    addrs = [DATA_BASE + 1024] * 8
    _run_differential(text, zeros, addrs, MC68010, [7, 13, 11],
                      cap=5000)


def test_division_and_ill_parity_under_traces():
    """fpe (divide by zero through a register) and ill (68020 opcode
    on a 68010) must fault identically through both engines."""
    fpe = b"".join([
        isa.encode(Op.MOVE, Mode.IMM, 0, Mode.DREG, 1),
        isa.encode(Op.DIV, Mode.DREG, 1, Mode.DREG, 0),
        isa.encode(Op.TRAP),
    ])
    zeros = [0] * 8
    addrs = [DATA_BASE + 512] * 8
    _run_differential(fpe, zeros, addrs, MC68010, [5])
    ill = b"".join([
        isa.encode(Op.ADD, Mode.IMM, 3, Mode.DREG, 0),
        isa.encode(Op.MULL, Mode.IMM, 9, Mode.DREG, 0),
        isa.encode(Op.TRAP),
    ])
    _run_differential(ill, zeros, addrs, MC68010, [5])
    _run_differential(ill, zeros, addrs, MC68020, [5])
