"""Tests for path resolution: symlinks, /n mounts, NFS semantics."""

import pytest

from repro.errors import UnixError, ENOENT, ELOOP, ENOTDIR, EACCES
from repro.fs import FileSystem, Namespace


def make_site():
    """Two workstations and a file server, cross-mounted like the paper."""
    brick = FileSystem("brick")
    schooner = FileSystem("schooner")
    brador = FileSystem("brador")  # the file server
    for fs in (brick, schooner, brador):
        fs.makedirs("/usr/tmp")
        fs.makedirs("/etc")
        fs.makedirs("/dev")
    brador.makedirs("/u2/kyrimis")
    brador.install_file("/u2/kyrimis/notes.txt", b"some notes")
    # home directories are symlinks to the file server (paper footnote)
    for fs in (brick, schooner):
        u = fs.makedirs("/u")
        fs.symlink(u, "kyrimis", "/n/brador/u2/kyrimis")
    hosts = {"brick": brick, "schooner": schooner, "brador": brador}

    def namespace(name):
        remote = {h: f for h, f in hosts.items() if h != name}
        return Namespace(hosts[name], remote)

    return hosts, namespace


@pytest.fixture
def site():
    return make_site()


def test_local_resolution(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/usr/tmp")
    assert r.fs is hosts["brick"]
    assert r.inode.is_dir()
    assert r.name == "tmp"


def test_missing_is_enoent(site):
    __, namespace = site
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/no/such/path")
    assert exc.value.errno == ENOENT


def test_remote_resolution_via_n(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/n/brador/u2/kyrimis/notes.txt")
    assert r.fs is hosts["brador"]
    assert bytes(r.inode.data) == b"some notes"


def test_unknown_host_is_enoent(site):
    __, namespace = site
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/n/nosuchhost/etc")
    assert exc.value.errno == ENOENT


def test_symlink_to_remote_followed(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/u/kyrimis/notes.txt")
    assert r.fs is hosts["brador"]


def test_client_side_symlink_resolution(site):
    """A symlink stored on a remote machine resolves in *our* namespace.

    This is the paper's section 4.3 problem: /usr/foo on classic where
    /usr -> /n/brador/usr means the file actually lives on brador.
    """
    hosts, namespace = site
    classic = FileSystem("classic")
    classic.symlink(classic.root, "share", "/n/brador/u2")
    hosts["classic"] = classic

    remote = {h: f for h, f in hosts.items() if h != "brick"}
    ns = Namespace(hosts["brick"], remote)
    # walking through classic's symlink lands on brador, resolved by us
    r = ns.resolve("/n/classic/share/kyrimis/notes.txt")
    assert r.fs is hosts["brador"]


def test_nested_n_is_rejected(site):
    """NFS does not allow /n/a/n/b — /n is client-side only."""
    __, namespace = site
    ns = namespace("schooner")
    with pytest.raises(UnixError) as exc:
        ns.resolve("/n/brick/n/brador/u2")
    assert exc.value.errno == ENOENT


def test_dotdot_climbs_out_of_remote_root(site):
    hosts, namespace = site
    ns = namespace("brick")
    # /n/brador/.. is the virtual /n; /n/brador/../brick is brick's root
    # ... but brick is remote-from-brick? no: /n only lists *other* hosts
    r = ns.resolve("/n/brador/../schooner/usr")
    assert r.fs is hosts["schooner"]


def test_dotdot_at_local_root_stays(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/../../usr")
    assert r.fs is hosts["brick"]
    assert r.name == "usr"


def test_relative_resolution_with_cwd(site):
    hosts, namespace = site
    ns = namespace("brick")
    cwd = ns.resolve("/usr")
    r = ns.resolve("tmp", cwd=(cwd.fs, cwd.inode))
    assert r.inode is hosts["brick"].resolve_local("/usr/tmp")


def test_want_parent_for_missing_file(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/usr/tmp/newfile", want_parent=True)
    assert r.inode is None
    assert r.parent is hosts["brick"].resolve_local("/usr/tmp")
    assert r.name == "newfile"


def test_want_parent_missing_directory_still_fails(site):
    __, namespace = site
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/no/dir/file", want_parent=True)
    assert exc.value.errno == ENOENT


def test_follow_false_returns_the_link(site):
    hosts, namespace = site
    ns = namespace("brick")
    r = ns.resolve("/u/kyrimis", follow=False)
    assert r.inode.is_link()
    assert r.inode.target == "/n/brador/u2/kyrimis"


def test_symlink_loop_is_eloop(site):
    hosts, namespace = site
    fs = hosts["brick"]
    fs.symlink(fs.root, "a", "/b")
    fs.symlink(fs.root, "b", "/a")
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/a")
    assert exc.value.errno == ELOOP


def test_relative_symlink(site):
    hosts, namespace = site
    fs = hosts["brick"]
    d = fs.makedirs("/opt/stuff")
    fs.install_file("/opt/stuff/real.txt", b"x")
    fs.symlink(d, "alias.txt", "real.txt")
    r = namespace("brick").resolve("/opt/stuff/alias.txt")
    assert bytes(r.inode.data) == b"x"


def test_file_in_middle_is_enotdir(site):
    hosts, namespace = site
    hosts["brick"].install_file("/etc/motd", b"hi")
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/etc/motd/deeper")
    assert exc.value.errno == ENOTDIR


def test_create_inside_n_is_refused(site):
    __, namespace = site
    with pytest.raises(UnixError) as exc:
        namespace("brick").resolve("/n/newhost", want_parent=True)
    assert exc.value.errno == EACCES


def test_charge_callback_distinguishes_remote(site):
    hosts, __ = site
    charges = []
    remote = {h: f for h, f in hosts.items() if h != "brick"}
    ns = Namespace(hosts["brick"],
                   remote,
                   charge=lambda op, fs: charges.append((op, fs.hostname)))
    ns.resolve("/n/brador/u2/kyrimis/notes.txt")
    assert ("lookup", "brador") in charges
    assert all(host == "brador" for __, host in charges)


def test_resolve_symlinks_full_expansion(site):
    """The dumpproc algorithm: expand every link, get a clean path."""
    hosts, namespace = site
    ns = namespace("brick")
    assert ns.resolve_symlinks("/u/kyrimis/notes.txt") == \
        "/n/brador/u2/kyrimis/notes.txt"
    # paths without links are untouched
    assert ns.resolve_symlinks("/usr/tmp") == "/usr/tmp"
    # missing trailing components are fine (the file may not exist yet)
    assert ns.resolve_symlinks("/u/kyrimis/newfile") == \
        "/n/brador/u2/kyrimis/newfile"


def test_resolve_root(site):
    hosts, namespace = site
    r = namespace("brick").resolve("/")
    assert r.inode is hosts["brick"].root
