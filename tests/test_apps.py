"""Tests for the section 8 applications."""

import pytest

from repro.apps import (CheckpointManager, HostLoad, LoadBalancer,
                        LoadBalancerPolicy, Move,
                        NightBatchScheduler)
from repro.core.api import MigrationSite
from repro.programs.guest.cpuhog import expected_checksum
from tests.conftest import start_counter


# -- checkpointing ---------------------------------------------------------


def test_checkpoint_and_resume(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    manager = CheckpointManager(site, "brick", uid=100)
    record, resumed = manager.checkpoint(handle.pid)
    assert record.index == 0
    assert resumed.proc.is_vm()
    # the job continues where it was
    site.type_at("brick", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))


def test_checkpoint_archives_dump_and_files(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    manager = CheckpointManager(site, "brick", uid=100)
    record, __ = manager.checkpoint(handle.pid)
    brick = site.machine("brick")
    for path in record.saved_dump_names():
        assert brick.fs.read_file(path)
    # the open output file was snapshotted
    copies = {orig.split("/")[-1]: saved
              for orig, saved in record.file_copies.items()}
    assert "counter.out" in copies
    assert brick.fs.read_file(copies["counter.out"]) == b"one\n"


def test_restore_nth_checkpoint_with_file_rollback(site):
    """Restore an old checkpoint: the data file is rolled back so the
    program sees a consistent world (the paper's whole point)."""
    handle = start_counter(site)
    manager = CheckpointManager(site, "brick", uid=100)

    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    ck0, resumed = manager.checkpoint(handle.pid)

    site.type_at("brick", "two\n")
    site.run_until(lambda: "r=3" in site.console("brick"))
    brick = site.machine("brick")
    assert brick.fs.read_file("/tmp/counter.out") == b"one\ntwo\n"
    # kill the live process (the "crash")
    from repro.kernel.signals import SIGKILL
    brick.kernel.post_signal(resumed.proc, SIGKILL)
    site.run_until(lambda: resumed.exited)

    # restore checkpoint 0: file content rolled back to "one\n"
    revived = manager.restore(0)
    assert revived.proc.is_vm()
    assert brick.fs.read_file("/tmp/counter.out") == b"one\n"
    brick.console.clear_output()
    site.type_at("brick", "again\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))
    assert brick.fs.read_file("/tmp/counter.out") == b"one\nagain\n"


def test_restore_on_another_machine(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    manager = CheckpointManager(site, "brick", uid=100)
    ck, resumed = manager.checkpoint(handle.pid)
    from repro.kernel.signals import SIGKILL
    site.machine("brick").kernel.post_signal(resumed.proc, SIGKILL)
    site.run_until(lambda: resumed.exited)
    revived = manager.restore(ck, host="schooner")
    assert revived.proc.is_vm()
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"))


def test_multiple_checkpoints_accumulate(site):
    handle = start_counter(site)
    manager = CheckpointManager(site, "brick", uid=100)
    pid = handle.pid
    for round_no in range(3):
        site.type_at("brick", "x\n")
        site.run_until(
            lambda: site.console("brick").count("> ") >= round_no + 2)
        record, resumed = manager.checkpoint(pid)
        pid = resumed.pid
    assert [c.index for c in manager.checkpoints] == [0, 1, 2]


# -- load balancing ----------------------------------------------------------------


def hog(site, host, iters, uid=100):
    handle = site.start(host, "/bin/cpuhog",
                        ["cpuhog", str(iters)], uid=uid)
    return handle


def test_balancer_measures_load(site):
    balancer = LoadBalancer(site, ["brick", "schooner"], uid=100)
    assert balancer.loads() == {"brick": 0, "schooner": 0}
    hog(site, "brick", 400_000)
    hog(site, "brick", 400_000)
    assert balancer.load_of("brick") == 2
    assert balancer.load_of("schooner") == 0


def test_balancer_moves_old_enough_jobs(site):
    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.2,
                                  imbalance_threshold=2))
    h1 = hog(site, "brick", 3_000_000)
    h2 = hog(site, "brick", 3_000_000)
    # too young: nothing moves
    assert balancer.step() == []
    # let them accumulate CPU
    site.run(until_us=site.cluster.wall_time_us() + 1_000_000)
    moves = balancer.step()
    assert len(moves) == 1
    assert moves[0].source == "brick"
    assert moves[0].destination == "schooner"
    assert balancer.loads() == {"brick": 1, "schooner": 1}


def test_balancing_preserves_results(site):
    """A migrated hog computes the same checksum it would have."""
    iters = 600_000
    h1 = hog(site, "brick", iters)
    h2 = hog(site, "brick", iters)
    site.run(until_us=site.cluster.wall_time_us() + 1_500_000)
    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.2))
    moves = balancer.step()
    assert moves
    moved = moves[0].new_proc
    site.run_until(lambda: moved.zombie(), max_steps=10_000_000)
    expected = "checksum=%d" % expected_checksum(iters)
    assert expected in site.console("schooner")


def test_balancing_improves_makespan():
    """Two hogs on one machine finish sooner if one is moved —
    the paper's future-work 'systemwide application' measurement."""
    iters = 800_000

    def run_one(balance):
        site = MigrationSite(daemons=False)
        h1 = hog(site, "brick", iters)
        h2 = hog(site, "brick", iters)
        site.run(until_us=500_000)
        if balance:
            balancer = LoadBalancer(
                site, ["brick", "schooner"], uid=100,
                policy=LoadBalancerPolicy(min_cpu_seconds=0.1))
            assert balancer.step()
        site.run_until(lambda: h1.exited and all(
            p.zombie() or not p.is_vm()
            for m in site.cluster.machines.values()
            for p in m.kernel.procs.all_procs()),
            max_steps=30_000_000)
        return site.wall_seconds()

    unbalanced = run_one(False)
    balanced = run_one(True)
    assert balanced < unbalanced * 0.75


# -- policy edge cases (pure, no site) ---------------------------------------


def _view(*entries):
    """Build an insertion-ordered view from (host, runnable, jobs)."""
    return {host: HostLoad(host, runnable, tuple(jobs))
            for host, runnable, jobs in entries}


def test_policy_tie_breaking_prefers_the_first_listed_host():
    """Equally-busy hosts: the one listed first in the view sheds;
    flipping the view order flips the decision — deterministic, no
    RNG, no clock."""
    policy = LoadBalancerPolicy(min_cpu_seconds=0.0)
    brick = ("brick", 3, [(1, 1.0), (2, 2.0), (3, 3.0)])
    schooner = ("schooner", 3, [(4, 1.0)])
    idle = ("brador", 0, [])
    # the busiest candidate (most CPU) of the first-listed host moves
    assert policy.select(_view(brick, schooner, idle)) == \
        [Move(3, "brick", "brador")]
    assert policy.select(_view(schooner, brick, idle)) == \
        [Move(4, "schooner", "brador")]
    # equally-idle destinations tie-break the same way
    two_idle = _view(brick, ("x", 0, []), ("y", 0, []))
    assert policy.select(two_idle) == [Move(3, "brick", "x")]


def test_policy_min_cpu_seconds_boundary():
    """Exactly at the floor is eligible; a hair below is not."""
    policy = LoadBalancerPolicy(min_cpu_seconds=0.5)
    at_floor = _view(("brick", 2, [(1, 0.5), (2, 0.499)]),
                     ("schooner", 0, []))
    assert policy.select(at_floor) == [Move(1, "brick", "schooner")]
    below = _view(("brick", 2, [(1, 0.499), (2, 0.3)]),
                  ("schooner", 0, []))
    assert policy.select(below) == []


def test_policy_zero_threshold_never_churns():
    """imbalance_threshold=0 must not ping-pong jobs between equally
    (or nearly equally) busy hosts: a move still has to strictly
    improve the spread."""
    policy = LoadBalancerPolicy(min_cpu_seconds=0.0,
                                imbalance_threshold=0,
                                max_moves_per_round=8)
    equal = _view(("brick", 2, [(1, 1.0), (2, 1.0)]),
                  ("schooner", 2, [(3, 1.0), (4, 1.0)]))
    assert policy.select(equal) == []
    off_by_one = _view(("brick", 2, [(1, 1.0), (2, 1.0)]),
                       ("schooner", 1, [(3, 1.0)]))
    assert policy.select(off_by_one) == []
    # ...but a real spread still gets balanced
    lopsided = _view(("brick", 2, [(1, 1.0), (2, 1.0)]),
                     ("schooner", 0, []))
    assert policy.select(lopsided) == [Move(1, "brick", "schooner")]


def test_policy_max_moves_per_round_saturation():
    """A big allowance stops at the useful spread; a small one stops
    at the allowance."""
    jobs = [(pid, float(pid)) for pid in range(1, 7)]
    lopsided = _view(("brick", 6, jobs), ("schooner", 0, []))
    greedy = LoadBalancerPolicy(min_cpu_seconds=0.0,
                                max_moves_per_round=10)
    moves = greedy.select(lopsided)
    # 6/0 -> 5/1 -> 4/2 -> 3/3: the fourth move would not improve
    assert len(moves) == 3
    assert [m.pid for m in moves] == [6, 5, 4]  # busiest first
    capped = LoadBalancerPolicy(min_cpu_seconds=0.0,
                                max_moves_per_round=2)
    assert len(capped.select(lopsided)) == 2
    none = LoadBalancerPolicy(min_cpu_seconds=0.0,
                              max_moves_per_round=0)
    assert none.select(lopsided) == []


def test_balancer_zero_threshold_leaves_equal_site_alone(site):
    """Integration flavor of the no-churn rule: a live balanced site
    with threshold 0 produces no moves."""
    start_counter(site, host="brick")
    start_counter(site, host="schooner")
    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.0,
                                  imbalance_threshold=0))
    assert balancer.step() == []
    assert balancer.loads() == {"brick": 1, "schooner": 1}


# -- night batch ------------------------------------------------------------------------


def test_nightfall_spreads_and_daybreak_corrals(site):
    sched = NightBatchScheduler(site, "brador",
                                ["brick", "schooner"], uid=100)
    jobs = [sched.submit("/bin/cpuhog", ["cpuhog", "5000000"])
            for __ in range(4)]
    site.run(until_us=site.cluster.wall_time_us() + 500_000)
    assert sched.placement() == {"brador": 4}

    moved = sched.nightfall()
    assert moved == 4
    assert sched.placement() == {"brick": 2, "schooner": 2}

    site.run(until_us=site.cluster.wall_time_us() + 500_000)
    moved = sched.daybreak()
    assert moved == 4
    assert sched.placement() == {"brador": 4}
    # jobs still alive and computing after two moves each
    assert all(job.moves == 2 for job in sched.jobs)
    assert all(job.alive for job in sched.jobs)


def test_finished_jobs_are_not_moved(site):
    sched = NightBatchScheduler(site, "brador", ["brick"], uid=100)
    job = sched.submit("/bin/cpuhog", ["cpuhog", "1000"])
    site.run_until(lambda: job.proc.zombie())
    assert sched.nightfall() == 0
