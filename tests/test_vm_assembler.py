"""Tests for the assembler and a.out format."""

import pytest

from repro.vm import (assemble, AssemblyError, parse_aout, build_aout,
                      AOUT_MAGIC)
from repro.vm import isa
from repro.vm.isa import Op, Mode
from repro.vm.image import TEXT_BASE
from repro.errors import UnixError, ENOEXEC


def test_empty_source_assembles():
    out = assemble("")
    header, text, data = parse_aout(out.aout)
    assert header.magic == AOUT_MAGIC
    assert text == b""
    assert data == b""
    assert out.entry == TEXT_BASE


def test_simple_move_encoding():
    out = assemble("move #42, d3")
    opcode, src_mode, src, dst_mode, dst = isa.decode(out.text, 0)
    assert opcode == Op.MOVE
    assert src_mode == Mode.IMM and src == 42
    assert dst_mode == Mode.DREG and dst == 3


def test_labels_resolve_to_addresses():
    out = assemble("""
start:  nop
next:   bra start
""")
    assert out.symbols["start"] == TEXT_BASE
    assert out.symbols["next"] == TEXT_BASE + isa.INSTRUCTION_SIZE
    opcode, src_mode, src, _, _ = isa.decode(
        out.text, isa.INSTRUCTION_SIZE)
    assert opcode == Op.BRA
    assert src == TEXT_BASE


def test_data_labels_follow_text():
    out = assemble("""
        move msg, d0
        .data
msg:    .asciz "hi"
""")
    assert out.symbols["msg"] == TEXT_BASE + len(out.text)
    assert out.data == b"hi\x00"


def test_equates_and_expressions():
    out = assemble("""
FOO = 10
BAR = FOO + 5
        move #BAR - 1, d0
""")
    _, _, src, _, _ = isa.decode(out.text, 0)
    assert src == 14


def test_char_literal_immediate():
    out = assemble(r"move #'\n', d0")
    _, _, src, _, _ = isa.decode(out.text, 0)
    assert src == 10


def test_indirect_and_displacement_operands():
    out = assemble("move 8(a2), d1")
    _, src_mode, src, _, _ = isa.decode(out.text, 0)
    assert src_mode == Mode.IND_DISP
    disp, reg = isa.unpack_ind_disp(src)
    assert disp == 8 and reg == 2


def test_sp_is_a7():
    out = assemble("move (sp), d0")
    _, src_mode, src, _, _ = isa.decode(out.text, 0)
    assert src_mode == Mode.IND and src == 7


def test_negative_displacement():
    out = assemble("move -4(sp), d0")
    _, src_mode, src, _, _ = isa.decode(out.text, 0)
    disp, reg = isa.unpack_ind_disp(src)
    assert disp == -4 and reg == 7


def test_word_and_byte_directives():
    out = assemble("""
        .data
vals:   .word 1, 2, 0x10
bs:     .byte 1, 255
""")
    assert out.data[:12] == (b"\x01\x00\x00\x00"
                             b"\x02\x00\x00\x00"
                             b"\x10\x00\x00\x00")
    assert out.data[12:] == b"\x01\xff"


def test_space_and_align():
    out = assemble("""
        .data
a:      .byte 1
        .align 4
b:      .word 2
""")
    assert out.symbols["b"] - out.symbols["a"] == 4


def test_string_escapes():
    out = assemble(r"""
        .data
s:      .asciz "a\tb\n"
""")
    assert out.data == b"a\tb\n\x00"


def test_unknown_instruction_is_error():
    with pytest.raises(AssemblyError):
        assemble("frobnicate d0, d1")


def test_unknown_directive_is_error():
    with pytest.raises(AssemblyError):
        assemble(".bogus 12")


def test_undefined_symbol_is_error():
    with pytest.raises(AssemblyError):
        assemble("move #nosuch, d0")


def test_duplicate_label_is_error():
    with pytest.raises(AssemblyError):
        assemble("x: nop\nx: nop")


def test_wrong_operand_count_is_error():
    with pytest.raises(AssemblyError):
        assemble("move d0")
    with pytest.raises(AssemblyError):
        assemble("rts d0")


def test_68020_instruction_rejected_for_68010():
    with pytest.raises(AssemblyError):
        assemble("mull d0, d1", cpu="mc68010")


def test_68020_instruction_accepted_for_68020():
    out = assemble("mull d0, d1", cpu="mc68020")
    assert out.machine_id == 2
    opcode, _, _, _, _ = isa.decode(out.text, 0)
    assert opcode == Op.MULL


def test_entry_defaults_to_start_label():
    out = assemble("""
        nop
start:  nop
""")
    assert out.entry == TEXT_BASE + isa.INSTRUCTION_SIZE


def test_parse_aout_round_trip():
    blob = build_aout(1, b"T" * 20, b"D" * 8, bss_size=16, entry=0x1000)
    header, text, data = parse_aout(blob)
    assert header.machine_id == 1
    assert text == b"T" * 20
    assert data == b"D" * 8
    assert header.bss_size == 16


def test_parse_aout_bad_magic():
    with pytest.raises(UnixError) as exc:
        parse_aout(b"\x00" * 64)
    assert exc.value.errno == ENOEXEC


def test_parse_aout_truncated():
    blob = build_aout(1, b"T" * 100, b"")
    with pytest.raises(UnixError) as exc:
        parse_aout(blob[:40])
    assert exc.value.errno == ENOEXEC


def test_comment_handling():
    out = assemble("nop ; this is a comment\n; full line comment\n")
    assert len(out.text) == isa.INSTRUCTION_SIZE
