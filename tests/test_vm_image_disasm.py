"""Tests for process images, registers and the disassembler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import assemble, disassemble
from repro.vm import isa
from repro.vm.disasm import disassemble_one
from repro.vm.image import (ProcessImage, Registers,
                            SegmentationFault, to_signed, to_unsigned,
                            TEXT_BASE)


# -- int helpers --------------------------------------------------------------


def test_to_signed():
    assert to_signed(0xFFFFFFFF) == -1
    assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
    assert to_signed(0x80000000) == -(1 << 31)
    assert to_signed(5) == 5


def test_to_unsigned():
    assert to_unsigned(-1) == 0xFFFFFFFF
    assert to_unsigned(1 << 33) == 0


@given(st.integers(-(2 ** 31), 2 ** 31 - 1))
@settings(max_examples=50)
def test_signed_unsigned_roundtrip(value):
    assert to_signed(to_unsigned(value)) == value


# -- registers --------------------------------------------------------------------


def test_register_pack_roundtrip():
    regs = Registers()
    regs.d = [1, -2, 3, -4, 5, -6, 7, -8]
    regs.a = [10, 20, 30, 40, 50, 60, 70, 0x3F000]
    regs.pc = 0x1234
    regs.zf = True
    regs.nf = False
    back = Registers.unpack(regs.pack())
    assert back == regs
    assert back.sp == 0x3F000


def test_register_copy_is_independent():
    regs = Registers()
    regs.d[0] = 9
    copy = regs.copy()
    copy.d[0] = 5
    assert regs.d[0] == 9


def test_set_flags():
    regs = Registers()
    regs.set_flags(0)
    assert regs.zf and not regs.nf
    regs.set_flags(-3)
    assert not regs.zf and regs.nf
    regs.set_flags(7)
    assert not regs.zf and not regs.nf


def test_sr_encoding():
    regs = Registers()
    regs.zf, regs.nf = True, True
    assert regs.sr == 3
    regs.sr = 2
    assert not regs.zf and regs.nf


# -- memory ----------------------------------------------------------------------------


def test_image_bounds_checking():
    image = ProcessImage(mem_size=1024)
    with pytest.raises(SegmentationFault):
        image.read_u8(1024)
    with pytest.raises(SegmentationFault):
        image.write_i32(1022, 5)
    with pytest.raises(SegmentationFault):
        image.read_bytes(-1, 4)


def test_cstring_roundtrip():
    image = ProcessImage(mem_size=4096)
    image.write_cstring(100, "hello")
    assert image.read_cstring(100) == "hello"


def test_unterminated_cstring_faults():
    image = ProcessImage(mem_size=256)
    image.write_bytes(0, b"\x01" * 256)
    with pytest.raises(SegmentationFault):
        image.read_cstring(0)


def test_stack_push_pop():
    image = ProcessImage(mem_size=4096)
    image.regs.sp = image.stack_top
    image.push_i32(-77)
    image.push_i32(88)
    assert image.stack_size == 8
    assert image.pop_i32() == 88
    assert image.pop_i32() == -77


def test_stack_bytes_and_restore():
    image = ProcessImage(mem_size=4096)
    image.regs.sp = image.stack_top
    for value in (1, 2, 3):
        image.push_i32(value)
    saved = image.stack_bytes()
    assert len(saved) == 12
    other = ProcessImage(mem_size=8192)
    other.regs.sp = other.stack_top
    other.restore_stack(saved)
    assert other.regs.sp == other.stack_top - 12
    assert other.pop_i32() == 3


def test_restore_stack_overflow_faults():
    image = ProcessImage(mem_size=4096)
    image.brk = 4000
    with pytest.raises(SegmentationFault):
        image.restore_stack(b"\x00" * 200)


def test_image_copy_is_deep():
    image = ProcessImage(mem_size=1024)
    image.write_u8(500, 7)
    image.regs.d[3] = 11
    clone = image.copy()
    clone.write_u8(500, 9)
    clone.regs.d[3] = 12
    assert image.read_u8(500) == 7
    assert image.regs.d[3] == 11


def test_text_version_bumped_by_text_writes():
    image = ProcessImage(mem_size=64 * 1024)
    image.text_size = 100
    before = image.text_version
    image.write_u8(TEXT_BASE + 10, 1)  # inside text
    assert image.text_version == before + 1
    mid = image.text_version
    image.write_u8(TEXT_BASE + 200, 1)  # past text: data
    assert image.text_version == mid


# -- disassembler -------------------------------------------------------------------------


def test_disassemble_simple_program():
    out = assemble("""
start:  move  #42, d1
        add   d1, d2
        cmp   #0, d2
        beq   start
        trap
""")
    lines = disassemble(out.text, base=TEXT_BASE)
    assert "move #42, d1" in lines[0]
    assert "add d1, d2" in lines[1]
    assert "cmp #0, d2" in lines[2]
    assert "beq 0x1000" in lines[3]
    assert "trap" in lines[4]


def test_disassemble_addressing_modes():
    out = assemble("""
        move  (a3), d0
        move  8(a2), d1
        move  0x2000, d2
        lea   0x3000, a1
        push  d5
        pop   d6
        rts
""")
    lines = disassemble(out.text)
    assert "(a3)" in lines[0]
    assert "8(a2)" in lines[1]
    assert "0x2000" in lines[2]
    assert "lea" in lines[3]
    assert "push d5" in lines[4]
    assert "pop d6" in lines[5]
    assert lines[6].endswith("rts")


def test_disassemble_count_limit():
    out = assemble("nop\nnop\nnop\nnop")
    assert len(disassemble(out.text, count=2)) == 2


def test_round_trip_through_disassembler():
    """Disassembling and reassembling yields identical bytes."""
    source = """
start:  move  #1, d0
loop:   add   #1, d0
        cmp   #100, d0
        blt   loop
        jsr   0x1060
        trap
        nop
        rts
"""
    first = assemble(source)
    relisted = "\n".join(line.split(": ", 1)[1]
                         for line in disassemble(first.text))
    second = assemble(relisted)
    assert first.text == second.text
