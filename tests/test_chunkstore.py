"""Incremental content-addressed dumps and lazy copy-on-reference restart.

Covers the chunk store itself, the chunked dump formats, the
dirty-page baseline reuse that makes re-migrations cheap, the lazy
fault-in path, and the failure modes (corrupt manifest at dump time,
missing chunk at restart).  Every cluster-level scenario runs on both
engines and must produce identical virtual clocks and counters —
incremental mode may never depend on the execution engine.
"""

import random

import pytest

from repro.costmodel import CostModel
from repro.core.api import MigrationSite
from repro.core.formats import (ChunkManifest, StackInfo,
                                pack_chunked_aout, unpack_chunked_aout,
                                stack_is_chunked)
from repro.errors import UnixError
from repro.kernel.cred import Credentials
from repro.kernel.signals import SigState
from repro.machine import Cluster
from repro.programs.exitcodes import EX_RESTPROC
from repro.store import ChunkStore, DIGEST_BYTES, chunk_digest
from repro.vm.aout import AOutHeader, AOUT_FLAG_CHUNKED
from repro.vm.image import (ProcessImage, Registers, SegmentationFault,
                            PAGE_BYTES)

from tests.conftest import start_counter


# -- manifest / format round-trips ------------------------------------------


def _random_manifest(rng, length=None):
    chunk_bytes = rng.choice([1, 7, 64, 1024, 4096])
    if length is None:
        length = rng.choice([0, 1, chunk_bytes - 1 or 1, chunk_bytes,
                             chunk_bytes + 1, 10 * chunk_bytes + 3])
    count = -(-length // chunk_bytes)
    digests = [bytes(rng.randrange(256) for __ in range(DIGEST_BYTES))
               for __ in range(count)]
    return ChunkManifest(chunk_bytes, length, digests)


def test_manifest_roundtrip_property():
    rng = random.Random(1234)
    for __ in range(50):
        manifest = _random_manifest(rng)
        assert ChunkManifest.unpack(manifest.pack()) == manifest
        assert manifest.packed_size() == len(manifest.pack())
        total = sum(manifest.chunk_size(i)
                    for i in range(len(manifest.digests)))
        assert total == manifest.length


def test_chunked_aout_roundtrip():
    rng = random.Random(99)
    for __ in range(20):
        text_man = _random_manifest(rng)
        data_man = _random_manifest(rng)
        header = AOutHeader(1, text_man.length, data_man.length, 0,
                            entry=4096)
        blob = pack_chunked_aout(header, text_man, data_man)
        got_header, got_text, got_data = unpack_chunked_aout(blob)
        assert got_header.flags & AOUT_FLAG_CHUNKED
        assert (got_text, got_data) == (text_man, data_man)
        assert (got_header.text_size, got_header.data_size) == \
            (text_man.length, data_man.length)


def test_chunked_stack_info_roundtrip():
    rng = random.Random(7)
    manifest = _random_manifest(rng, length=3000)
    info = StackInfo(Credentials(100, 100), b"",
                     Registers(), SigState(),
                     stack_manifest=manifest)
    assert info.stack_size == 3000
    blob = info.pack()
    assert stack_is_chunked(blob)
    back = StackInfo.unpack(blob)
    assert back.stack_manifest == manifest
    assert back.stack == b"" and back.stack_size == 3000
    # peek_header serves both layouts identically
    cred, size = StackInfo.peek_header(blob)
    assert (cred.uid, size) == (100, 3000)


def test_manifest_rejects_corruption():
    manifest = _random_manifest(random.Random(3), length=5000)
    blob = manifest.pack()
    with pytest.raises(UnixError):  # bad magic
        ChunkManifest.unpack(b"\xff\xff" + blob[2:])
    with pytest.raises(UnixError):  # count / length mismatch
        doctored = bytearray(blob)
        doctored[10] ^= 0x01  # count field
        ChunkManifest.unpack(bytes(doctored))
    with pytest.raises(UnixError):  # truncated digest list
        ChunkManifest.unpack(blob[:-1])
    with pytest.raises(UnixError):  # zero chunk size
        ChunkManifest(0, 10, [])
    with pytest.raises(UnixError):  # digest width
        ChunkManifest(1024, 10, [b"xx"])
    with pytest.raises(UnixError):  # inline stack AND manifest
        StackInfo(Credentials(1, 1), b"abc", Registers(), SigState(),
                  stack_manifest=manifest)


# -- the store itself -------------------------------------------------------


def test_chunkstore_put_get_dedup_and_remote_fetch():
    cluster = Cluster()
    brick = cluster.add_machine("brick")
    schooner = cluster.add_machine("schooner")
    store = cluster.chunk_store
    blob = bytes(range(200))
    digest = store.digest(brick.kernel, blob)
    assert digest == chunk_digest(blob)

    assert store.put(brick.kernel, digest, blob) is True
    assert store.put(brick.kernel, digest, blob) is False  # dedup
    assert cluster.perf.chunk_dedup_hits == 1
    assert store.holders(digest) == {"brick"}

    # a local get does not cross the network
    assert store.get(brick.kernel, digest) == blob
    assert cluster.perf.chunk_remote_fetches == 0
    # a remote get does, and caches write-behind
    assert store.get(schooner.kernel, digest) == blob
    assert cluster.perf.chunk_remote_fetches == 1
    assert store.holders(digest) == {"brick", "schooner"}
    assert store.get(schooner.kernel, digest) == blob
    assert cluster.perf.chunk_remote_fetches == 1  # now local

    with pytest.raises(UnixError):
        store.get(brick.kernel, b"\x00" * DIGEST_BYTES)  # missing


# -- lazy copy-on-reference at the image level ------------------------------


def test_image_lazy_chunks_fault_in_on_touch():
    image = ProcessImage()
    base = image.data_base
    fetched = []

    def fetch(digest, size):
        fetched.append(digest)
        return digest * (size // len(digest))

    drained = []
    image.add_lazy_chunks(
        [(base, PAGE_BYTES, b"A" * 8), (base + PAGE_BYTES, PAGE_BYTES,
                                        b"B" * 8)],
        fetch=fetch, on_drained=lambda: drained.append(True))
    assert image._lazy is not None and not fetched
    # touching the second page pulls only its chunk
    assert image.read_u8(base + PAGE_BYTES + 5) == ord("B")
    assert fetched == [b"B" * 8] and not drained
    # the first touch of the remaining page drains the image
    assert image.read_u8(base) == ord("A")
    assert image._lazy is None and drained == [True]
    # a lazy fill is not a guest store: pages stay clean
    assert not any(image.dirty_pages)


def test_image_lazy_fetch_failure_is_a_segfault():
    image = ProcessImage()
    base = image.data_base

    def fetch(digest, size):
        raise UnixError(5, "gone")

    image.add_lazy_chunks([(base, 64, b"x" * 8)], fetch=fetch)
    with pytest.raises(SegmentationFault):
        image.read_u8(base)


def test_image_copy_drains_pending_chunks():
    image = ProcessImage()
    base = image.data_base
    image.add_lazy_chunks([(base, 16, b"y" * 8)],
                          fetch=lambda d, n: b"z" * n)
    clone = image.copy()
    assert clone._lazy is None and image._lazy is None
    assert clone.read_bytes(base, 16) == b"z" * 16


# -- cluster scenarios: both engines, identical clocks ----------------------


def _incremental_site(engine, lazy=False, faults=None):
    costs = CostModel().with_overrides(incremental_dumps=True,
                                       lazy_restart=lazy)
    site = MigrationSite(costs, engine=engine, faults=faults)
    site.run_quiet()
    return site


def _bounce(engine, lazy):
    """Migrate brick -> schooner, then straight back, typing at each
    destination so the process keeps its terminal across both hops."""
    site = _incremental_site(engine, lazy=lazy)
    site.cluster.tracer.enable("dump", "restart", "chunk")
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner",
                      typed_on="schooner", uid=100)
    assert mh.exit_status == 0
    moved = site.find_restarted("schooner")
    assert moved is not None and moved.is_vm()
    perf = site.cluster.perf
    first = perf.chunk_bytes_written
    mh2 = site.migrate(moved.pid, "schooner", "brick",
                       typed_on="brick", uid=100)
    assert mh2.exit_status == 0
    assert site.find_restarted("brick") is not None
    second = perf.chunk_bytes_written - first
    # registers, static data and stack all survived two hops
    site.type_at("brick", "one\n")
    site.type_at("brick", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))
    return site, first, second


def _fingerprint(site):
    perf = site.cluster.perf
    return (site.cluster.wall_time_us(), perf.chunk_puts,
            perf.chunk_dedup_hits, perf.chunks_clean_skipped,
            perf.chunk_gets, perf.chunk_remote_fetches,
            perf.chunk_bytes_written, perf.chunk_bytes_fetched,
            perf.lazy_faults)


def test_remigration_dedup_and_engine_identity():
    """An immediate re-migration re-writes (almost) nothing.

    Between the restart and the second dump the counter executes no
    new input, so every page matches the baseline the restart
    installed: the second dump skips all of its chunks and charges
    zero chunk-store bytes — far beyond the >= 5x requirement.  (With
    intervening execution the saving is bounded by how many pages the
    program dirties; the latency benchmark measures that shape on a
    data-heavy image.)
    """
    prints = {}
    for engine in ("fast", "scan"):
        site, first, second = _bounce(engine, lazy=False)
        assert first > 0
        assert second * 5 <= first
        assert site.cluster.perf.chunks_clean_skipped > 0
        prints[engine] = (_fingerprint(site), first, second)
    assert prints["fast"] == prints["scan"]


def test_lazy_restart_faults_in_and_engine_identity():
    prints = {}
    for engine in ("fast", "scan"):
        site, first, second = _bounce(engine, lazy=True)
        perf = site.cluster.perf
        assert perf.lazy_faults > 0
        # the deferred-transfer span closed once the last chunk landed
        spans = [e for e in site.cluster.tracer.events
                 if e["cat"] == "restart" and e["name"] == "fault_in"]
        assert any(e.get("span") == "E" and e.get("ok")
                   for e in spans)
        prints[engine] = _fingerprint(site)
    assert prints["fast"] == prints["scan"]


def test_corrupt_chunk_manifest_fails_dump_and_victim_survives():
    """_verify_dump re-parses what was written: a corrupted chunked
    a.out (its manifests) is caught, the partial dump is removed, and
    the victim keeps running."""
    prints = {}
    for engine in ("fast", "scan"):
        site = _incremental_site(
            engine, faults="dump.write.aout corrupt n=1")
        handle = start_counter(site)
        status = site.dumpproc("brick", handle.pid, check=False)
        assert status != 0
        assert not handle.exited  # the dump failed, the victim lives
        kernel = site.machine("brick").kernel
        for path in ("/usr/tmp/a.out%d" % handle.pid,
                     "/usr/tmp/stack%d" % handle.pid):
            with pytest.raises(UnixError):
                kernel.kread_file(handle.proc, path)
        assert site.cluster.faults.fired
        # the typed line still reaches the living process
        site.type_at("brick", "one\n")
        site.run_until(lambda: "r=2" in site.console("brick"))
        prints[engine] = (site.cluster.wall_time_us(),
                          tuple(map(tuple, site.cluster.faults.fired)))
    assert prints["fast"] == prints["scan"]


def test_missing_chunk_restart_fails_cleanly():
    """A store.get failure at restart exits EX_RESTPROC without a
    half-restored process; once the fault rule is spent, the kept
    dump restarts fine and the store is still consistent."""
    prints = {}
    for engine in ("fast", "scan"):
        site = _incremental_site(
            engine, faults="store.get fail n=1 errno=EIO")
        handle = start_counter(site)
        site.dumpproc("brick", handle.pid)
        rh = site.machine("schooner").spawn(
            "/bin/restart",
            ["restart", "-p", str(handle.pid), "-h", "brick", "-k"],
            uid=100, cwd="/tmp")
        site.run_until(lambda: rh.exited or rh.proc.is_vm())
        assert rh.exited and rh.exit_status == EX_RESTPROC
        assert site.find_restarted("schooner") is None
        rh2 = site.restart("schooner", handle.pid, from_host="brick",
                           uid=100)
        assert rh2.proc.is_vm()
        prints[engine] = (site.cluster.wall_time_us(),
                          tuple(map(tuple, site.cluster.faults.fired)))
    assert prints["fast"] == prints["scan"]


# -- the sysctl0 polling knobs ----------------------------------------------


def test_dump_poll_interval_knob_drives_real_time():
    """dumpproc reads its poll interval from the cost model; a
    shorter sleep shows up directly in migration real time."""
    from repro.bench.figures import _kill_via_dumpproc
    slow_real, __ = _kill_via_dumpproc(poll_sleep=1)
    fast_real, __ = _kill_via_dumpproc(poll_sleep=0.05)
    assert fast_real < slow_real


def test_defaults_keep_chunk_machinery_cold():
    """With the knobs off nothing chunk-related runs at all."""
    site = MigrationSite()
    site.run_quiet()
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner",
                      typed_on="schooner", uid=100)
    assert mh.exit_status == 0
    perf = site.cluster.perf
    assert perf.chunk_puts == perf.chunk_gets == 0
    assert perf.chunk_bytes_written == perf.lazy_faults == 0
    assert len(site.cluster.chunk_store) == 0
