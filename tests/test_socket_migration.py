"""Tests for the section 9 extension: migrating listening sockets."""

import pytest

from repro.costmodel import CostModel
from repro.core.api import MigrationSite
from repro.core.formats import FilesInfo, dump_file_names
from repro.errors import iserr
from repro.programs.guest.portserver import PORT


@pytest.fixture
def sockmig_site():
    site = MigrationSite(
        costs=CostModel(migrate_listening_sockets=True))
    site.run_quiet()
    return site


def _client(host, out, message=b"hello"):
    def client_main(argv, env):
        from repro.programs.base import read_all
        sock = yield ("socket",)
        result = yield ("connect", sock, host, PORT)
        if iserr(result):
            out.append(result)
            return 1
        yield ("write", sock, message)
        reply = yield from read_all(sock)  # server closes when done
        out.append(reply)
        yield ("close", sock)
        return 0
    return client_main


def start_server(site, host="brick"):
    handle = site.start(host, "/bin/portserver", uid=100)
    site.run_until(lambda: "serving" in site.console(host))
    return handle


def ask(site, client_host, server_host, expect_ok=True):
    out = []
    machine = site.machine(client_host)
    machine.install_native_program("sockclient",
                                   _client(server_host, out))
    handle = machine.spawn("/bin/sockclient", uid=100)
    site.run_until(lambda: handle.exited)
    return out[0] if out else None


def test_server_works_before_migration(sockmig_site):
    site = sockmig_site
    start_server(site)
    assert ask(site, "schooner", "brick") == b"srv:hello"


def test_dump_records_bound_port(sockmig_site):
    site = sockmig_site
    server = start_server(site)
    site.dumpproc("brick", server.pid, uid=100)
    info = FilesInfo.unpack(site.machine("brick").fs.read_file(
        dump_file_names(server.pid)[1]))
    bound = [e for e in info.entries if e.is_bound_socket()]
    assert len(bound) == 1
    assert bound[0].port == PORT
    assert bound[0].listening


def test_service_survives_migration(sockmig_site):
    """The headline: the service migrates and keeps serving."""
    site = sockmig_site
    server = start_server(site)
    # serve two requests on brick
    assert ask(site, "schooner", "brick") == b"srv:hello"
    assert ask(site, "brador", "brick") == b"srv:hello"

    site.dumpproc("brick", server.pid, uid=100)
    moved = site.restart("schooner", server.pid, from_host="brick",
                         uid=100)
    assert moved.proc.is_vm()

    # the endpoint now answers on schooner (the accept() the server
    # was blocked in when dumped simply retries on the new socket)
    assert ask(site, "brick", "schooner") == b"srv:hello"
    assert not moved.exited
    # ... and the request counter in the data segment survived: it
    # has served 3 requests total across both machines
    image = moved.proc.image.image
    assert image.read_i32(image.data_base) == 3


def test_old_host_stops_answering(sockmig_site):
    site = sockmig_site
    server = start_server(site)
    site.dumpproc("brick", server.pid, uid=100)
    site.restart("schooner", server.pid, from_host="brick", uid=100)
    result = ask(site, "brador", "brick")
    assert iserr(result)  # connection refused on the old host


def test_stock_kernel_loses_the_socket(site):
    """Without the extension the restarted server dies on /dev/null:
    its accept() returns an error (ENOTSOCK through the null fd)."""
    server = start_server(site)
    site.dumpproc("brick", server.pid, uid=100)
    moved = site.restart("schooner", server.pid, from_host="brick",
                         uid=100)
    site.run_until(lambda: moved.exited)
    assert "socket lost" in site.console("schooner")


def test_port_conflict_degrades_to_null(sockmig_site):
    """If the port is taken on the destination, restart falls back."""
    site = sockmig_site
    server = start_server(site, host="brick")
    # occupy the port on schooner first
    blocker = start_server(site, host="schooner")
    site.dumpproc("brick", server.pid, uid=100)
    moved = site.restart("schooner", server.pid, from_host="brick",
                         uid=100)
    site.run_until(lambda: moved.exited)
    assert "socket lost" in site.console("schooner")
    # the original schooner server is unharmed
    assert ask(site, "brick", "schooner") == b"srv:hello"


def test_connected_sockets_still_degrade(sockmig_site):
    """The extension covers *listening* endpoints only; a connected
    socket still becomes /dev/null (the hard part stays hard)."""
    site = sockmig_site
    handle = site.start("brick", "/bin/sockuser", uid=100)
    site.run_until(lambda: "$ " in site.console("brick"))
    site.dumpproc("brick", handle.pid, uid=100)
    info = FilesInfo.unpack(site.machine("brick").fs.read_file(
        dump_file_names(handle.pid)[1]))
    # unbound socket: recorded as a plain socket, not a bound one
    from repro.core.formats import FD_SOCKET
    kinds = [e.kind for e in info.entries]
    assert FD_SOCKET in kinds
    assert not any(e.is_bound_socket() for e in info.entries)
