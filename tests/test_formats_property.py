"""Property-based round-trip tests for the wire and dump formats.

Seeded ``random`` generation, no extra dependencies: ~500 randomized
FilesInfo/StackInfo/LoadReport/MigRecord/StatReport instances must
survive pack → unpack → pack with byte-identical output, and damaged
blobs (truncations, bad magic, bad entry kinds, bad versions) must
raise :class:`UnixError` cleanly rather than crash with an
IndexError/struct.error — restart and dumpproc parse dump files from
NFS, loadd-recv parses LOADREPORTs and statd-recv STATREPORTs
straight off the network, and the recovery sweep parses ledger
records that a crash may have torn, so all of them must fail
predictably on torn or hostile input.
"""

import random
import struct

import pytest

from repro.errors import UnixError
from repro.kernel.constants import NOFILE
from repro.kernel.cred import Credentials
from repro.kernel.signals import (NSIG, SIG_DFL, SIG_IGN, SIGKILL,
                                  UNCATCHABLE, SigState)
from repro.core.formats import (FdEntry, FilesInfo, StackInfo,
                                FD_FILE, FD_SOCKET, FD_SOCKET_BOUND,
                                FD_UNUSED)
from repro.net.loadd import (LOADREPORT_VERSION, MAX_CANDIDATES,
                             LoadReport)
from repro.net.migledger import (MIGLEDGER_VERSION, PHASE_NAMES,
                                 MigRecord)
from repro.net.statd import (MAX_SAMPLES, MAX_SERIES,
                             STATREPORT_VERSION, StatReport)
from repro.vm.image import Registers

CASES = 100  # per format: 500 round-trips in all


def _random_text(rng, max_len=40):
    alphabet = ("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-")
    return "".join(rng.choice(alphabet)
                   for __ in range(rng.randrange(max_len)))


def _random_files_info(rng):
    entries = []
    for __ in range(NOFILE):
        kind = rng.choice((FD_UNUSED, FD_UNUSED, FD_FILE, FD_FILE,
                           FD_SOCKET, FD_SOCKET_BOUND))
        if kind == FD_FILE:
            entries.append(FdEntry(
                FD_FILE, path="/" + _random_text(rng),
                flags=rng.randrange(0, 1 << 12),
                offset=rng.randrange(0, 1 << 30)))
        elif kind == FD_SOCKET_BOUND:
            entries.append(FdEntry(
                FD_SOCKET_BOUND, port=rng.randrange(1, 1 << 15),
                listening=rng.random() < 0.5))
        else:
            entries.append(FdEntry(kind))
    return FilesInfo(hostname=_random_text(rng, 16),
                     cwd="/" + _random_text(rng),
                     entries=entries,
                     tty_flags=rng.randrange(0, 1 << 16))


def _random_stack_info(rng):
    cred = Credentials(uid=rng.randrange(0, 1 << 15),
                       gid=rng.randrange(0, 1 << 15),
                       euid=rng.randrange(0, 1 << 15),
                       egid=rng.randrange(0, 1 << 15))
    registers = Registers()
    registers.d = [rng.randrange(-(1 << 31), 1 << 31)
                   for __ in range(8)]
    registers.a = [rng.randrange(-(1 << 31), 1 << 31)
                   for __ in range(8)]
    registers.pc = rng.randrange(0, 1 << 31)
    registers.sr = rng.randrange(0, 4)
    sigstate = SigState()
    # a well-formed dump never carries non-default handlers for the
    # uncatchable signals (set_handler forbids them; unpack sanitizes)
    sigstate.handlers = [
        SIG_DFL if sig in UNCATCHABLE else
        rng.choice((SIG_DFL, SIG_IGN, rng.randrange(0, 1 << 16)))
        for sig in range(NSIG)]
    stack = bytes(rng.randrange(256)
                  for __ in range(rng.randrange(0, 2048)))
    return StackInfo(cred=cred, stack=stack, registers=registers,
                     sigstate=sigstate)


def _random_mig_record(rng):
    return MigRecord(source=_random_text(rng, 16),
                     pid=rng.randrange(1, 1 << 15),
                     destination=_random_text(rng, 16),
                     orchestrator=_random_text(rng, 16),
                     phase=rng.choice(sorted(PHASE_NAMES)),
                     epoch=rng.randrange(0, 1 << 16),
                     time_s=rng.randrange(0, 1 << 31))


def _random_load_report(rng):
    count = rng.randrange(0, MAX_CANDIDATES + 1)
    candidates = [(rng.randrange(1, 1 << 15),
                   rng.randrange(0, 1 << 31))
                  for __ in range(count)]
    return LoadReport(host=_random_text(rng, 16),
                      time_s=rng.randrange(0, 1 << 31),
                      runnable=rng.randrange(0, 1 << 16),
                      candidates=candidates)


def _random_stat_report(rng):
    series = []
    for __ in range(rng.randrange(0, MAX_SERIES + 1)):
        samples = tuple(
            (rng.randrange(0, 1 << 32), rng.randrange(0, 1 << 32))
            for __ in range(rng.randrange(0, MAX_SAMPLES + 1)))
        series.append((_random_text(rng, 12),
                       rng.randrange(0, 1 << 32), samples))
    return StatReport(host=_random_text(rng, 16),
                      time_s=rng.randrange(0, 1 << 32),
                      seq=rng.randrange(0, 1 << 16),
                      series=series)


# -- round trips -----------------------------------------------------------


def test_files_info_roundtrip_bytes_identical():
    rng = random.Random(0xF11E5)
    for case in range(CASES):
        info = _random_files_info(rng)
        blob = info.pack()
        back = FilesInfo.unpack(blob)
        assert back.pack() == blob, "case %d not byte-identical" % case
        assert back.hostname == info.hostname
        assert back.cwd == info.cwd
        assert back.tty_flags == info.tty_flags
        assert back.entries == info.entries


def test_stack_info_roundtrip_bytes_identical():
    rng = random.Random(0x57ACC)
    for case in range(CASES):
        info = _random_stack_info(rng)
        blob = info.pack()
        back = StackInfo.unpack(blob)
        assert back.pack() == blob, "case %d not byte-identical" % case
        assert back.cred == info.cred
        assert back.stack == info.stack
        assert back.stack_size == info.stack_size
        assert back.registers.pack() == info.registers.pack()
        assert back.sigstate.handlers == info.sigstate.handlers
        # peek_header agrees with the full parse
        cred, size = StackInfo.peek_header(blob)
        assert cred == info.cred and size == info.stack_size


def test_load_report_roundtrip_bytes_identical():
    rng = random.Random(0x10AD)
    for case in range(CASES):
        report = _random_load_report(rng)
        blob = report.pack()
        back = LoadReport.unpack(blob)
        assert back.pack() == blob, "case %d not byte-identical" % case
        assert back == report
        assert back.host == report.host
        assert back.time_s == report.time_s
        assert back.runnable == report.runnable
        assert back.candidates == report.candidates


def test_stat_report_roundtrip_bytes_identical():
    rng = random.Random(0x57A7)
    for case in range(CASES):
        report = _random_stat_report(rng)
        blob = report.pack()
        back = StatReport.unpack(blob)
        assert back.pack() == blob, "case %d not byte-identical" % case
        assert back == report
        assert back.host == report.host
        assert back.time_s == report.time_s
        assert back.seq == report.seq
        assert back.series == report.series


def test_mig_record_roundtrip_bytes_identical():
    rng = random.Random(0x1ED6E)
    for case in range(CASES):
        record = _random_mig_record(rng)
        blob = record.pack()
        back = MigRecord.unpack(blob)
        assert back.pack() == blob, "case %d not byte-identical" % case
        assert back == record
        assert back.mig_id() == record.mig_id()


# -- damage must fail cleanly -----------------------------------------------


def test_files_info_truncations_raise_cleanly():
    rng = random.Random(0x7A0C)
    blob = _random_files_info(rng).pack()
    cuts = set(range(min(64, len(blob)))) | {
        rng.randrange(len(blob)) for __ in range(64)}
    for cut in sorted(cuts):
        with pytest.raises(UnixError):
            FilesInfo.unpack(blob[:cut])


def test_stack_info_truncations_raise_cleanly():
    rng = random.Random(0x7A0D)
    blob = _random_stack_info(rng).pack()
    cuts = set(range(min(64, len(blob)))) | {
        rng.randrange(len(blob)) for __ in range(64)}
    for cut in sorted(cuts):
        with pytest.raises(UnixError):
            StackInfo.unpack(blob[:cut])
        with pytest.raises(UnixError):
            StackInfo.peek_header(blob[:min(cut, 21)])


def test_bad_magic_raises_cleanly():
    rng = random.Random(0xBAD)
    files_blob = _random_files_info(rng).pack()
    stack_blob = _random_stack_info(rng).pack()
    for mangled in (b"\x00\x00", b"\xff\xff"):
        with pytest.raises(UnixError):
            FilesInfo.unpack(mangled + files_blob[2:])
        with pytest.raises(UnixError):
            StackInfo.unpack(mangled + stack_blob[2:])
        with pytest.raises(UnixError):
            StackInfo.peek_header(mangled + stack_blob[2:])


def test_bad_entry_kind_raises_cleanly():
    blob = FilesInfo(hostname="h", cwd="/").pack()
    # the first entry's kind byte sits right after magic + 2 strings
    kind_at = 2 + (2 + 1) + (2 + 1)
    damaged = blob[:kind_at] + b"\x7f" + blob[kind_at + 1:]
    with pytest.raises(UnixError):
        FilesInfo.unpack(damaged)


def test_load_report_truncations_raise_cleanly():
    rng = random.Random(0x7A0E)
    blob = _random_load_report(rng).pack()
    cuts = set(range(len(blob)))  # reports are small: cut everywhere
    for cut in sorted(cuts):
        with pytest.raises(UnixError):
            LoadReport.unpack(blob[:cut])


def test_load_report_bad_magic_raises_cleanly():
    blob = LoadReport("brick", 10, 2, [(3, 1500)]).pack()
    for mangled in (b"\x00\x00", b"\xff\xff"):
        with pytest.raises(UnixError):
            LoadReport.unpack(mangled + blob[2:])


def test_load_report_unknown_version_raises_cleanly():
    """A future (or corrupted) version byte is rejected up front, so
    a format bump can never be misparsed as today's layout."""
    blob = LoadReport("brick", 10, 2, [(3, 1500)]).pack()
    assert blob[2] == LOADREPORT_VERSION
    for version in (0, LOADREPORT_VERSION + 1, 0xFF):
        doctored = blob[:2] + bytes((version,)) + blob[3:]
        with pytest.raises(UnixError):
            LoadReport.unpack(doctored)


def test_load_report_candidate_overflow_rejected():
    # at construction...
    with pytest.raises(UnixError):
        LoadReport("brick", 10, 2,
                   [(pid, 100)
                    for pid in range(MAX_CANDIDATES + 1)])
    # ...and in a doctored blob claiming more entries than allowed
    report = LoadReport("brick", 10, 2, [(3, 1500)])
    blob = report.pack()
    count_at = 2 + 1 + (2 + len(report.host)) + 4 + 2
    doctored = (blob[:count_at]
                + struct.pack("<H", MAX_CANDIDATES + 1)
                + blob[count_at + 2:])
    with pytest.raises(UnixError):
        LoadReport.unpack(doctored)


def test_stat_report_truncations_raise_cleanly():
    rng = random.Random(0x7A10)
    blob = _random_stat_report(rng).pack()
    cuts = set(range(min(256, len(blob)))) | {
        rng.randrange(len(blob)) for __ in range(128)}
    for cut in sorted(cuts):
        with pytest.raises(UnixError):
            StatReport.unpack(blob[:cut])


def test_stat_report_bad_magic_and_version_raise_cleanly():
    blob = StatReport("brick", 10, 2,
                      [("runq", 3, ((10, 1),))]).pack()
    for mangled in (b"\x00\x00", b"\xff\xff"):
        with pytest.raises(UnixError):
            StatReport.unpack(mangled + blob[2:])
    assert blob[2] == STATREPORT_VERSION
    for version in (0, STATREPORT_VERSION + 1, 0xFF):
        doctored = blob[:2] + bytes((version,)) + blob[3:]
        with pytest.raises(UnixError):
            StatReport.unpack(doctored)


def test_stat_report_overflow_rejected():
    # at construction: too many series, too many samples
    with pytest.raises(UnixError):
        StatReport("brick", 10, 2,
                   [("s%d" % i, 0, ())
                    for i in range(MAX_SERIES + 1)])
    with pytest.raises(UnixError):
        StatReport("brick", 10, 2,
                   [("runq", 0,
                     tuple((t, 0) for t in range(MAX_SAMPLES + 1)))])
    # ...and in doctored blobs claiming more than allowed
    report = StatReport("brick", 10, 2, [("runq", 3, ((10, 1),))])
    blob = report.pack()
    count_at = 2 + 1 + (2 + len(report.host)) + 4 + 2
    doctored = (blob[:count_at] + struct.pack("<H", MAX_SERIES + 1)
                + blob[count_at + 2:])
    with pytest.raises(UnixError):
        StatReport.unpack(doctored)
    len_at = count_at + 2 + (2 + len("runq")) + 4
    doctored = (blob[:len_at] + struct.pack("<H", MAX_SAMPLES + 1)
                + blob[len_at + 2:])
    with pytest.raises(UnixError):
        StatReport.unpack(doctored)


def test_mig_record_truncations_raise_cleanly():
    rng = random.Random(0x7A0F)
    blob = _random_mig_record(rng).pack()
    for cut in range(len(blob)):
        with pytest.raises(UnixError):
            MigRecord.unpack(blob[:cut])


def test_mig_record_bad_magic_and_version_raise_cleanly():
    blob = _random_mig_record(random.Random(0x1ED7)).pack()
    for mangled in (b"\x00\x00", b"\xff\xff"):
        with pytest.raises(UnixError):
            MigRecord.unpack(mangled + blob[2:])
    assert blob[2] == MIGLEDGER_VERSION
    for version in (0, MIGLEDGER_VERSION + 1, 0xFF):
        doctored = blob[:2] + bytes((version,)) + blob[3:]
        with pytest.raises(UnixError):
            MigRecord.unpack(doctored)


def test_mig_record_bad_phase_rejected():
    # at construction...
    with pytest.raises(UnixError):
        MigRecord("brick", 3, "schooner", "tanker", phase=99)
    with pytest.raises(UnixError):
        MigRecord("brick", 3, "schooner", "tanker", epoch=1 << 16)
    # ...and in a doctored blob (the phase byte sits at offset 3)
    blob = MigRecord("brick", 3, "schooner", "tanker").pack()
    doctored = blob[:3] + b"\x63" + blob[4:]
    with pytest.raises(UnixError):
        MigRecord.unpack(doctored)


def test_uncatchable_handlers_sanitized_on_unpack():
    """A doctored dump claiming a SIGKILL handler is defanged."""
    info = _random_stack_info(random.Random(0x51C))
    info.sigstate.handlers[SIGKILL] = 0x1234
    back = StackInfo.unpack(info.pack())
    assert back.sigstate.handlers[SIGKILL] == SIG_DFL


def test_empty_and_garbage_blobs_raise_cleanly():
    for blob in (b"", b"\x01", bytes(range(64))):
        with pytest.raises(UnixError):
            FilesInfo.unpack(blob)
        with pytest.raises(UnixError):
            StackInfo.unpack(blob)
        with pytest.raises(UnixError):
            LoadReport.unpack(blob)
        with pytest.raises(UnixError):
            StatReport.unpack(blob)
