"""The observability layer: tracer, spans, metrics, exporters.

DESIGN.md section 9.  The cross-engine byte-identity of chaos and
recovery traces is asserted where those scenarios already run
(tests/test_faults.py, tests/test_recovery.py); here the layer itself
is exercised: category filtering, the migration-phase timeline, the
metrics registry, the guest-visible surface (``trace_status``,
``migstat``) and the legacy ``Network.trace`` shim.
"""

import json

import pytest

from repro.core.api import MigrationSite
from repro.obs import (CATEGORIES, MetricsRegistry, dump_migration_id,
                       to_chrome, validate_chrome)
from repro.perf.counters import (PerfCounters, COUNTER_DOCS,
                                 METRIC_DOCS)
from tests.conftest import start_counter

PHASES = ["signal", "dump", "rewrite", "transfer", "restart", "ack"]


def _migrated_site(engine="fast", categories=()):
    """A site that has completed one brick->schooner migration."""
    site = MigrationSite(engine=engine)
    if categories is not None:
        site.cluster.tracer.enable(*categories)
    site.run_quiet()
    handle = start_counter(site)
    mig = "brick:%d" % handle.pid
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0
    site.run_quiet()
    return site, mig


# -- the tracer ------------------------------------------------------------


def test_tracing_is_off_by_default_and_records_nothing(site):
    handle = start_counter(site)
    assert site.cluster.tracer.enabled is False
    assert site.cluster.tracer.events == []
    assert handle.pid > 0


def test_category_filtering():
    site = MigrationSite()
    site.cluster.tracer.enable("sched")
    site.run_quiet()
    cats = {e["cat"] for e in site.cluster.tracer.events}
    assert cats == {"sched"}


def test_unknown_category_is_rejected():
    site = MigrationSite()
    with pytest.raises(ValueError, match="nonsense"):
        site.cluster.tracer.enable("sched", "nonsense")


def test_kernel_layers_emit_events():
    site, mig = _migrated_site(categories=())  # () -> all categories
    events = site.cluster.tracer.events
    cats = {e["cat"] for e in events}
    for expected in ("syscall", "signal", "sched", "net.msg",
                     "net.sock", "dump", "restart", "migrate"):
        assert expected in cats, expected
    # SIGDUMP delivery to the victim is on the record
    assert any(e["cat"] == "signal" and e["name"] == "SIGDUMP"
               for e in events)
    # timestamps are virtual microseconds, monotone per host
    by_host = {}
    for e in events:
        assert e["ts"] >= by_host.get(e["host"], 0.0)
        by_host[e["host"]] = e["ts"]


def test_migration_timeline_phases_sum_to_end_to_end():
    site, mig = _migrated_site(
        categories=("dump", "restart", "migrate"))
    timeline = site.cluster.tracer.migration_timeline(mig)
    assert timeline is not None
    assert [p["phase"] for p in timeline["phases"]] == PHASES
    assert all(p["duration_us"] >= 0 for p in timeline["phases"])
    total = sum(p["duration_us"] for p in timeline["phases"])
    assert abs(total - timeline["end_to_end_us"]) < 1e-6


def test_trace_jsonl_byte_identical_across_engines():
    """One migration, every category on: both engines produce the
    same bytes (the scan scheduling order is the fast engine's
    contract, so the global event order must match too)."""
    traces = {}
    for engine in ("scan", "fast"):
        site, __ = _migrated_site(engine=engine, categories=())
        traces[engine] = site.cluster.tracer.to_jsonl()
    assert traces["scan"] == traces["fast"]
    assert traces["fast"]  # non-empty
    for line in traces["fast"].splitlines():
        json.loads(line)  # every line is one JSON event


def test_span_histograms_recorded_even_with_tracing_off():
    site, __ = _migrated_site(categories=None)  # tracing fully off
    assert site.cluster.tracer.events == []
    metrics = site.cluster.perf.metrics
    assert metrics.sample_count("span_us", phase="dump") >= 1
    assert metrics.sample_count("span_us", phase="rest_proc") >= 1
    assert metrics.total("dumps", host="brick") == 1
    assert metrics.total("restarts", host="schooner") == 1
    assert metrics.total("migrations") == 1


def test_chrome_export_validates_and_nests():
    site, mig = _migrated_site(
        categories=("dump", "restart", "migrate"))
    doc = site.cluster.tracer.to_chrome()
    count = validate_chrome(doc)
    assert count > len(site.cluster.tracer.events)  # + metadata rows
    phs = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "b", "e", "i"} <= phs
    spans = [e for e in doc["traceEvents"] if e["ph"] in "be"]
    assert all(e["id"] == mig for e in spans)


def test_validate_chrome_rejects_dangling_spans():
    doc = to_chrome([{"ts": 1.0, "cat": "dump", "name": "dump",
                      "host": "brick", "mig": "brick:3",
                      "span": "B"}])
    with pytest.raises(ValueError, match="unclosed"):
        validate_chrome(doc)


def test_dump_migration_id():
    assert dump_migration_id("/usr/tmp/a.out42", "brick") == "brick:42"
    assert dump_migration_id("/n/brick/usr/tmp/a.out42",
                             "schooner") == "brick:42"
    assert dump_migration_id("/usr/tmp/garbage", "x") == "x:-1"


# -- the guest-visible surface ---------------------------------------------


def test_trace_status_syscall_and_migstat_command(site):
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0
    site.run_quiet()
    assert site.run_command("brick", ["migstat"], uid=100) == 0
    console = site.console("brick")
    assert "HOST" in console and "tracing: off" in console
    # one dump on brick, one restart on schooner, one migration
    lines = [l for l in console.splitlines() if l.startswith("brick")]
    assert lines and lines[-1].split()[1:4] == ["up", "1", "0"]
    lines = [l for l in console.splitlines()
             if l.startswith("schooner")]
    assert lines and lines[-1].split()[1:5] == ["up", "0", "1", "1"]

    site.cluster.tracer.enable("migrate")
    assert site.run_command("schooner", ["migstat"], uid=100) == 0
    assert "tracing: on" in site.console("schooner")


@pytest.mark.parametrize("engine", ["scan", "fast"])
def test_vmcache_pseudo_call_and_footers(engine):
    """migstat and migtop surface the shared code cache's counters;
    after a migration of unchanged text, arrivals are warm (the fast
    engine) or simply zero (the scan engine never compiles)."""
    site, __ = _migrated_site(engine=engine, categories=None)
    assert site.run_command("brick", ["migstat"], uid=100) == 0
    console = site.console("brick")
    line = [l for l in console.splitlines()
            if l.startswith("vm cache:")]
    assert line, console
    perf = site.cluster.perf
    assert ("%d warm arrivals" % perf.shared_cache_hits) in line[0]
    assert ("%d rebuilds" % perf.cache_rebuilds) in line[0]
    if engine == "fast":
        # the guest's text recompiled at most once; the migrated
        # re-arrival found it in the shared cache
        assert perf.shared_cache_hits > 0
    assert site.run_command("schooner", ["migtop"], uid=100) == 0
    top = site.console("schooner")
    assert any(l.startswith("vm cache:") and "arrivals warm" in l
               for l in top.splitlines()), top


# -- the legacy Network.trace shim -----------------------------------------


def test_legacy_network_trace_list_still_works():
    site = MigrationSite()
    legacy = []
    site.cluster.network.trace = legacy  # the pre-Tracer API
    site.cluster.tracer.enable("net.msg", "net.sock")
    site.run_quiet()
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0  # rsh traffic crossed the network
    site.run_quiet()
    assert site.cluster.network.trace is legacy
    msgs = [t for t in legacy if t[0] == "msg"]
    socks = [t for t in legacy if t[0] == "sock"]
    assert msgs and socks
    # the tracer saw the same moments
    events = site.cluster.tracer.events
    assert len([e for e in events if e["cat"] == "net.msg"]) \
        == len(msgs)
    assert len([e for e in events if e["cat"] == "net.sock"]) \
        == len(socks)
    # and the tuples carry the historical shape
    assert all(len(t) == 5 for t in msgs)
    assert all(len(t) == 3 for t in socks)


# -- the metrics registry --------------------------------------------------


def test_metrics_registry_counters_and_labels():
    metrics = MetricsRegistry()
    metrics.inc("dumps", host="brick")
    metrics.inc("dumps", 2, host="schooner")
    metrics.inc("dumps", host="brick")
    assert metrics.total("dumps") == 4
    assert metrics.total("dumps", host="brick") == 2
    assert metrics.total("other") == 0
    snap = metrics.snapshot()
    assert snap["counters"] == {"dumps{host=brick}": 2,
                                "dumps{host=schooner}": 2}


def test_metrics_registry_histograms():
    metrics = MetricsRegistry()
    for value in (0, 1, 3, 1000):
        metrics.observe("span_us", value, phase="dump")
    snap = metrics.snapshot()["histograms"]["span_us{phase=dump}"]
    assert snap["count"] == 4
    assert snap["sum"] == 1004
    assert snap["buckets"] == {"0": 1, "1": 1, "2": 1, "10": 1}
    assert metrics.sample_count("span_us") == 4


def test_metrics_registry_rejects_bools_and_junk():
    metrics = MetricsRegistry()
    with pytest.raises(TypeError):
        metrics.inc("x", True)
    with pytest.raises(TypeError):
        metrics.observe("x", "fast")


# -- PerfCounters hardening + docs contract --------------------------------


def test_perf_note_rejects_bool_attributes_and_bumps():
    perf = PerfCounters()
    perf.note("retries")
    assert perf.retries == 1
    with pytest.raises(TypeError):
        perf.note("retries", True)
    with pytest.raises(TypeError):
        perf.note("retries", "lots")
    # a bool-typed attribute is not a counter, even though
    # isinstance(True, int) holds
    perf.flag = True
    with pytest.raises(ValueError):
        perf.note("flag")
    with pytest.raises(ValueError):
        perf.note("no_such_counter")


def test_snapshot_keeps_flat_keys_and_adds_metrics():
    perf = PerfCounters()
    perf.metrics.inc("dumps", host="brick")
    snap = perf.snapshot(elapsed_s=2.0)
    assert snap["steps"] == 0  # the historical flat keys survive
    assert "burst_histogram" in snap
    assert snap["steps_per_sec"] == 0.0
    assert snap["metrics"]["counters"] == {"dumps{host=brick}": 1}
    json.dumps(snap)  # BENCH_perf.json compatibility


def test_every_flat_counter_is_documented():
    perf = PerfCounters()
    flat = {name for name, value in vars(perf).items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)}
    assert flat == set(COUNTER_DOCS)
    assert METRIC_DOCS  # and the labelled metrics have docs too


def test_all_emission_categories_are_known():
    assert CATEGORIES == {"syscall", "signal", "sched", "net.msg",
                          "net.sock", "fault", "hb", "dump",
                          "restart", "migrate", "recovery", "chunk",
                          "loadd", "statd", "alert"}


def test_chrome_export_emits_metric_counter_events():
    from repro.obs import to_chrome
    events = [{"ts": 5, "cat": "hb", "name": "tick", "host": "brick"}]
    metrics = {"counters": {"dumps{host=brick}": 2, "flag": True},
               "histograms": {}}
    doc = to_chrome(events, metrics)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert [e["name"] for e in counters] == ["dumps{host=brick}"]
    assert counters[0]["args"] == {"value": 2}
    assert counters[0]["ts"] == 5  # stamped at the trace's end
    metas = [e for e in doc["traceEvents"]
             if e["ph"] == "M" and e["pid"] == 0]
    assert metas and metas[0]["args"] == {"name": "cluster"}
    assert validate_chrome(doc) == len(doc["traceEvents"])


def test_validate_chrome_rejects_non_numeric_counters():
    doc = {"traceEvents": [
        {"ph": "C", "pid": 0, "tid": 0, "ts": 1, "name": "x",
         "args": {"value": "not a number"}}]}
    with pytest.raises(ValueError):
        validate_chrome(doc)
    doc = {"traceEvents": [
        {"ph": "C", "pid": 0, "tid": 0, "ts": 1, "name": "x",
         "args": {}}]}
    with pytest.raises(ValueError):
        validate_chrome(doc)


def test_tracer_chrome_export_carries_metric_snapshots():
    site, __ = _migrated_site("fast", ("migrate", "dump",
                                       "restart"))
    doc = site.cluster.tracer.to_chrome()
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert any(e["name"].startswith("dumps") for e in counters)
    assert validate_chrome(doc) == len(doc["traceEvents"])
