"""Tests for the A7 name cache: correctness under mutation."""

import pytest

from repro.costmodel import CostModel
from repro.errors import ENOENT
from repro.kernel.constants import O_CREAT, O_RDONLY, O_WRONLY
from repro.machine import Cluster
from tests.conftest import run_native


@pytest.fixture
def cached_machine():
    cluster = Cluster(CostModel(namei_cache=True))
    machine = cluster.add_machine("brick")
    machine.fs.install_file("/etc/target", b"data", mode=0o644)
    return machine, cluster


def test_repeat_lookups_hit_the_cache(cached_machine):
    machine, cluster = cached_machine

    def prog(argv, env):
        for __ in range(10):
            fd = yield ("open", "/etc/target", O_RDONLY, 0)
            yield ("close", fd)
        return 0

    run_native(machine, prog)
    assert machine.kernel.namei_cache_hits >= 9


def test_cache_makes_lookups_cheaper():
    def workload(argv, env):
        for __ in range(50):
            fd = yield ("open", "/etc/target", O_RDONLY, 0)
            yield ("close", fd)
        return 0

    results = {}
    for enabled in (False, True):
        cluster = Cluster(CostModel(namei_cache=enabled))
        machine = cluster.add_machine("brick")
        machine.fs.install_file("/etc/target", b"x", mode=0o644)
        handle = run_native(machine, workload)
        results[enabled] = handle.proc.stime_us
    assert results[True] < results[False]


def test_unlink_invalidates(cached_machine):
    """A cached name must not outlive the file."""
    machine, cluster = cached_machine
    out = []

    def prog(argv, env):
        fd = yield ("open", "/etc/target", O_RDONLY, 0)  # cache it
        yield ("close", fd)
        yield ("unlink", "/etc/target")
        out.append((yield ("open", "/etc/target", O_RDONLY, 0)))
        return 0

    run_native(machine, prog, uid=0)
    assert out == [-ENOENT]


def test_rename_invalidates(cached_machine):
    machine, cluster = cached_machine
    out = []

    def prog(argv, env):
        fd = yield ("open", "/etc/target", O_RDONLY, 0)
        yield ("close", fd)
        yield ("rename", "/etc/target", "/etc/moved")
        out.append((yield ("open", "/etc/target", O_RDONLY, 0)))
        fd = yield ("open", "/etc/moved", O_RDONLY, 0)
        out.append((yield ("read", fd, 10)))
        return 0

    run_native(machine, prog, uid=0)
    assert out == [-ENOENT, b"data"]


def test_cached_and_uncached_agree():
    """Same program, same effects, with or without the cache."""
    def workload(argv, env):
        fd = yield ("open", "/tmp/new", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"abc")
        yield ("close", fd)
        yield ("chdir", "/tmp")
        fd = yield ("open", "new", O_RDONLY, 0)
        data = yield ("read", fd, 10)
        yield ("close", fd)
        fd = yield ("open", "new", O_RDONLY, 0)  # repeat: cache path
        data2 = yield ("read", fd, 10)
        return 0 if (data, data2) == (b"abc", b"abc") else 1

    for enabled in (False, True):
        cluster = Cluster(CostModel(namei_cache=enabled))
        machine = cluster.add_machine("brick")
        handle = run_native(machine, workload)
        assert handle.exit_status == 0


def test_migration_still_works_with_cache_on():
    from repro.core.api import MigrationSite
    site = MigrationSite(costs=CostModel(namei_cache=True),
                         daemons=False)
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    site.dumpproc("brick", handle.pid, uid=100)
    moved = site.restart("schooner", handle.pid, from_host="brick",
                         uid=100)
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"))
