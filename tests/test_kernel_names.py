"""Tests for the paper's kernel modification: name tracking.

Section 5.1: the user structure's cwd-name field and the file
structure's dynamically-allocated path-name string, maintained by
chdir()/open()/creat()/close().
"""

import pytest

from repro.costmodel import CostModel
from repro.errors import ENAMETOOLONG
from repro.kernel.constants import O_CREAT, O_RDONLY, O_WRONLY, MAXCWD
from repro.machine import Cluster
from tests.conftest import run_native


@pytest.fixture
def tracking(request):
    cluster = Cluster()
    cluster.add_machine("brick")
    return cluster.machine("brick"), cluster


@pytest.fixture
def untracking():
    cluster = Cluster(CostModel(track_names=False))
    cluster.add_machine("brick")
    return cluster.machine("brick"), cluster


def _snapshot(machine, prog, **kw):
    entries = {}

    def wrapper(argv, env):
        status = yield from prog(argv, env)
        # capture kernel structures at the end of the program's life
        proc = machine.kernel.curproc
        entries["cwd_name"] = proc.user.cwd_name
        entries["names"] = [f.name for f in proc.user.ofile
                            if f is not None]
        return status

    handle = run_native(machine, wrapper, **kw)
    return entries, handle


def test_open_records_absolute_name(tracking):
    machine, cluster = tracking

    def prog(argv, env):
        yield ("open", "/tmp/abs_file", O_WRONLY | O_CREAT, 0o644)
        return 0

    entries, __ = _snapshot(machine, prog)
    assert "/tmp/abs_file" in entries["names"]


def test_open_combines_relative_name_with_cwd(tracking):
    machine, cluster = tracking

    def prog(argv, env):
        yield ("chdir", "/usr/tmp")
        yield ("open", "rel_file", O_WRONLY | O_CREAT, 0o644)
        yield ("open", "../tmp/./other", O_WRONLY | O_CREAT, 0o644)
        return 0

    entries, __ = _snapshot(machine, prog)
    assert "/usr/tmp/rel_file" in entries["names"]
    # "." and ".." are resolved lexically when combining
    assert "/usr/tmp/other" in entries["names"]


def test_chdir_maintains_cwd_name(tracking):
    machine, cluster = tracking

    def prog(argv, env):
        yield ("chdir", "/usr")
        yield ("chdir", "tmp")
        yield ("chdir", "..")
        yield ("chdir", ".")
        return 0

    entries, __ = _snapshot(machine, prog)
    assert entries["cwd_name"] == "/usr"


def test_cwd_name_fixed_size_limit(tracking):
    machine, cluster = tracking
    # build a directory tree deeper than MAXCWD characters
    deep = "/" + "/".join(["d%02d" % i for i in range(40)])
    machine.fs.makedirs(deep)
    out = []

    def prog(argv, env):
        out.append((yield ("chdir", deep)))
        return 0

    run_native(machine, prog)
    assert len(deep) >= MAXCWD
    assert out == [-ENAMETOOLONG]


def test_unmodified_kernel_keeps_no_names(untracking):
    machine, cluster = untracking

    def prog(argv, env):
        yield ("chdir", "/usr/tmp")
        yield ("open", "something", O_WRONLY | O_CREAT, 0o644)
        return 0

    entries, __ = _snapshot(machine, prog)
    assert entries["names"] == [None] * len(entries["names"])
    assert entries["cwd_name"] == ""


def test_close_frees_the_name_string(tracking):
    machine, cluster = tracking
    table = machine.kernel.files

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_WRONLY | O_CREAT, 0o644)
        yield ("close", fd)
        return 0

    run_native(machine, prog)
    assert table.name_allocs >= 1
    assert table.name_bytes == 0  # everything released


def test_name_bytes_accounting(tracking):
    """Ablation A3 bookkeeping: live name bytes track open files."""
    machine, cluster = tracking
    table = machine.kernel.files
    holder = {}

    def prog(argv, env):
        yield ("open", "/tmp/abcdef", O_WRONLY | O_CREAT, 0o644)
        holder["bytes"] = table.name_bytes
        return 0

    run_native(machine, prog)
    # "/tmp/abcdef" (11 chars + NUL) plus the stdio entry's name
    assert holder["bytes"] >= len("/tmp/abcdef") + 1


def test_tracking_kernel_is_slower(tracking, untracking):
    """The Figure 1 effect: modified syscalls cost measurably more."""
    results = {}
    for label, (machine, cluster) in (("on", tracking),
                                      ("off", untracking)):
        def prog(argv, env):
            for __ in range(100):
                fd = yield ("open", "/etc/target", O_RDONLY, 0)
                if fd >= 0:
                    yield ("close", fd)
            return 0

        machine.fs.install_file("/etc/target", b"x", mode=0o644)
        handle = run_native(machine, prog)
        results[label] = handle.proc.stime_us
    assert results["on"] > results["off"]
    overhead = results["on"] / results["off"] - 1.0
    # the paper reports ~44%; accept a generous band here (the bench
    # asserts the calibrated value)
    assert 0.10 < overhead < 1.0
