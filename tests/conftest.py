"""Shared fixtures: single machines, clusters, and the full site."""

import pytest

from repro.core.api import MigrationSite
from repro.machine import Cluster
from repro.programs import install_standard_programs


@pytest.fixture
def cluster():
    """A bare two-workstation + file-server cluster, no programs."""
    cluster = Cluster()
    cluster.add_machine("brick")
    cluster.add_machine("schooner")
    cluster.add_machine("brador")
    return cluster


@pytest.fixture
def brick(cluster):
    return cluster.machine("brick")


@pytest.fixture
def site():
    """The full paper testbed with programs and daemons."""
    site = MigrationSite()
    site.run_quiet()
    return site


def run_native(machine, factory, argv=None, uid=0, name="testprog",
               cwd="/tmp"):
    """Install + run a one-off native program; returns (handle, ret).

    The generator's return value is its exit status; output goes to
    the machine console.
    """
    machine.install_native_program(name, factory)
    handle = machine.spawn("/bin/%s" % name, argv or [name], uid=uid,
                           cwd=cwd)
    machine.cluster.run_until(lambda: handle.exited)
    return handle


def start_counter(site, host="brick", uid=100):
    """Start the paper's test program and bring it to its prompt."""
    handle = site.start(host, "/bin/counter", uid=uid)
    site.run_until(lambda: site.console(host).count("> ") >= 1)
    return handle
