"""Tests for process management: fork/exit/wait, signals, identity."""

import pytest

from repro.errors import ECHILD, EPERM, ESRCH, EINVAL
from repro.kernel.signals import (SIGDUMP, SIGKILL, SIGTERM, SIGQUIT,
                                  SIGUSR1, SIGINT)
from repro.programs.guest.libasm import program
from tests.conftest import run_native


def test_guest_fork_parent_and_child(brick, cluster):
    """fork() returns the child pid to the parent and 0 to the child;
    each side runs with its own copy of the registers and memory."""
    src = program("""
start:  move  #SYS_fork, d0
        trap
        tst   d0
        beq   child
        lea   msg_parent, a0
        jsr   puts
        move  #SYS_wait, d0
        move  #0, d1
        trap
        lea   msg_reaped, a0
        jsr   puts
        move  #0, d2
        jsr   exit
child:  lea   msg_child, a0
        jsr   puts
        move  #7, d2
        jsr   exit
""", """
msg_parent: .asciz "parent\\n"
msg_child:  .asciz "child\\n"
msg_reaped: .asciz "reaped\\n"
""")
    brick.install_aout("forker", src.aout)
    handle = brick.spawn("/bin/forker", uid=100)
    cluster.run_until(lambda: handle.exited)
    text = brick.console_text()
    assert "parent" in text
    assert "child" in text
    assert "reaped" in text
    assert handle.exit_status == 0


def test_wait_status_encodes_exit_code(brick, cluster):
    out = []

    def prog(argv, env):
        def child(argv2, env2):
            yield ("getpid",)
            return 5
        # native programs use spawn instead of fork
        pid = yield ("spawn", "/bin/kidprog", ["kidprog"])
        out.append(("spawned", pid))
        result = yield ("wait",)
        out.append(("wait", result))
        return 0

    def kid(argv, env):
        yield ("getpid",)
        return 5

    brick.install_native_program("kidprog", kid)
    run_native(brick, prog)
    waited = dict(out)["wait"]
    assert waited[0] == dict(out)["spawned"]
    assert (waited[1] >> 8) & 0xFF == 5
    assert waited[1] & 0x7F == 0


def test_wait_with_no_children_is_echild(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("wait",)))
        return 0

    run_native(brick, prog)
    assert out == [-ECHILD]


def test_wait_status_encodes_signal(brick, cluster):
    out = []

    def victim(argv, env):
        while True:
            yield ("sleep", 1)

    def prog(argv, env):
        pid = yield ("spawn", "/bin/victim", ["victim"])
        yield ("kill", pid, SIGTERM)
        out.append((yield ("wait",)))
        return 0

    brick.install_native_program("victim", victim)
    run_native(brick, prog)
    assert out[0][1] & 0x7F == SIGTERM


def test_kill_permission_checks(brick, cluster):
    """Only the owner or the superuser may signal a process."""
    out = []

    def victim(argv, env):
        while True:
            yield ("sleep", 5)

    def prog(argv, env):
        out.append((yield ("kill", int(argv[1]), SIGTERM)))
        return 0

    brick.install_native_program("victim", victim)
    victim_handle = brick.spawn("/bin/victim", uid=100)
    brick.install_native_program("killer", prog)
    # wrong user
    h = brick.spawn("/bin/killer", ["killer", str(victim_handle.pid)],
                    uid=200)
    cluster.run_until(lambda: h.exited)
    assert out == [-EPERM]
    assert not victim_handle.exited
    # right user
    out.clear()
    h = brick.spawn("/bin/killer", ["killer", str(victim_handle.pid)],
                    uid=100)
    cluster.run_until(lambda: victim_handle.exited)
    assert out == [0]


def test_kill_missing_process_is_esrch(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("kill", 4242, SIGTERM)))
        return 0

    run_native(brick, prog, uid=0)
    assert out == [-ESRCH]


def test_sigkill_cannot_be_caught(brick, cluster):
    out = []

    def prog(argv, env):
        from repro.kernel.signals import SIG_IGN
        out.append((yield ("sigvec", SIGKILL, SIG_IGN)))
        out.append((yield ("sigvec", SIGDUMP, SIG_IGN)))
        out.append((yield ("sigvec", SIGTERM, SIG_IGN)))
        return 0

    run_native(brick, prog)
    assert out[0] == -EINVAL
    assert out[1] == -EINVAL  # SIGDUMP is uncatchable, like SIGKILL
    assert out[2] == 0


def test_guest_signal_handler_and_sigreturn(brick, cluster):
    """A VM process catches SIGUSR1, runs its handler, resumes."""
    src = program("""
start:  move  #SYS_signal, d0
        move  #SIGUSR1, d1
        move  #handler, d2
        trap
        lea   msg_ready, a0
        jsr   puts
wloop:  move  #SYS_read, d0          ; block: the signal arrives here
        move  #0, d1
        move  #buf, d2
        move  #64, d3
        trap
        move  hits, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        move  #0, d2
        jsr   exit

handler:
        add   #1, hits
        pop   d5                     ; signal number pushed by kernel
        move  #SYS_sigreturn, d0
        trap
        halt
""", """
hits:      .word 0
buf:       .space 64
msg_ready: .asciz "ready\\n"
msg_nl:    .asciz "\\n"
""")
    brick.install_aout("catcher", src.aout)
    handle = brick.spawn("/bin/catcher", uid=100)
    cluster.run_until(lambda: "ready" in brick.console_text())
    brick.kernel.post_signal(handle.proc, SIGUSR1)
    cluster.run(max_steps=50000)
    # the handler ran; the process went back to its read
    assert handle.proc.image.image.read_i32(
        handle.proc.image.image.data_base) == 1
    # typing completes the (restarted) read
    brick.type_at_console("go\n")
    cluster.run_until(lambda: handle.exited)
    assert "1\n" in brick.console_text()


def test_uncaught_sigint_terminates(brick, cluster):
    def prog(argv, env):
        while True:
            yield ("sleep", 5)

    brick.install_native_program("sleeper", prog)
    handle = brick.spawn("/bin/sleeper", uid=100)
    cluster.run(until_us=brick.clock.now_us + 1_000_000)
    brick.kernel.post_signal(handle.proc, SIGINT)
    cluster.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGINT


def test_sigquit_writes_core(brick, cluster):
    """The Figure 2 baseline: SIGQUIT terminates with a core dump."""
    handle = brick.spawn("/bin/true_", uid=100, cwd="/tmp") \
        if False else None
    from repro.programs.guest.counter import counter_aout
    brick.install_aout("counter", counter_aout())
    handle = brick.spawn("/bin/counter", uid=100, cwd="/tmp")
    cluster.run_until(lambda: "> " in brick.console_text())
    brick.kernel.post_signal(handle.proc, SIGQUIT)
    cluster.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGQUIT
    core = brick.fs.read_file("/tmp/core")
    assert len(core) > 1024  # u-area header + data + stack


def test_getpid_getppid_getuid(brick, cluster):
    out = []

    def prog(argv, env):
        out.append(("pid", (yield ("getpid",))))
        out.append(("ppid", (yield ("getppid",))))
        out.append(("uid", (yield ("getuid",))))
        out.append(("euid", (yield ("geteuid",))))
        return 0

    handle = run_native(brick, prog, uid=42)
    data = dict(out)
    assert data["pid"] == handle.pid
    assert data["ppid"] == 0  # spawned from the outside
    assert data["uid"] == 42
    assert data["euid"] == 42


def test_setreuid_rules(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("setreuid", 100, 100)))  # same: fine
        out.append((yield ("setreuid", 0, 0)))  # escalate: EPERM
        return 0

    run_native(brick, prog, uid=100)
    assert out == [0, -EPERM]

    out2 = []

    def root_prog(argv, env):
        out2.append((yield ("setreuid", 100, 100)))  # root may drop
        out2.append((yield ("getuid",)))
        return 0

    run_native(brick, root_prog, uid=0, name="rootprog")
    assert out2 == [0, 100]


def test_sleep_advances_virtual_time(brick, cluster):
    def prog(argv, env):
        yield ("sleep", 3)
        return 0

    t0 = brick.clock.now_us
    run_native(brick, prog)
    assert brick.clock.now_us - t0 >= 3_000_000


def test_exit_closes_files_and_zombies_reaped(brick, cluster):
    def prog(argv, env):
        from repro.kernel.constants import O_CREAT, O_WRONLY
        yield ("open", "/tmp/x", O_WRONLY | O_CREAT, 0o644)
        return 0

    before = brick.kernel.files.live_count()
    handle = run_native(brick, prog)
    # spawned with no parent: reaped automatically
    assert brick.kernel.procs.lookup(handle.pid) is None
    assert brick.kernel.files.live_count() == before


def test_sbrk_grows_guest_heap(brick, cluster):
    src = program("""
start:  move  #SYS_sbrk, d0
        move  #4096, d1
        trap
        move  d0, a0                 ; old break
        movb  #'A', (a0)             ; the new page is writable
        movb  (a0), d2
        jsr   putnum
        move  #0, d2
        jsr   exit
""")
    brick.install_aout("grower", src.aout)
    handle = brick.spawn("/bin/grower", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert str(ord("A")) in brick.console_text()
    assert handle.exit_status == 0


def test_proctab_snapshot(brick, cluster):
    rows = []

    def prog(argv, env):
        rows.extend((yield ("getproctab",)))
        return 0

    handle = run_native(brick, prog, name="snapshot")
    commands = [r["command"] for r in rows]
    assert "snapshot" in commands
    me = [r for r in rows if r["command"] == "snapshot"][0]
    assert me["pid"] == handle.pid
