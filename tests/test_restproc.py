"""Tests for the rest_proc() system call (section 5.2)."""

import pytest

from repro.errors import EACCES, EINVAL, ENOENT, iserr
from repro.kernel.signals import SIGDUMP, SIGUSR1
from repro.core.formats import StackInfo, dump_file_names
from repro.programs.guest.counter import counter_aout
from tests.conftest import run_native


def dump_counter(machine, cluster, lines=1, uid=100):
    """Run counter, feed ``lines`` inputs, SIGDUMP it."""
    machine.install_aout("counter", counter_aout())
    handle = machine.spawn("/bin/counter", uid=uid, cwd="/tmp")
    for i in range(lines):
        cluster.run_until(
            lambda: machine.console_text().count("> ") >= i + 1)
        machine.type_at_console("line%d\n" % i)
    cluster.run_until(
        lambda: machine.console_text().count("> ") >= lines + 1)
    machine.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    return handle


def restart_via_rest_proc(machine, cluster, pid, uid=100,
                          aout=None, stack=None, fix_fds=True):
    """A minimal caller: reopen the output file, then rest_proc."""
    aout_path, __, stack_path = dump_file_names(pid)
    results = {}

    def caller(argv, env):
        from repro.kernel.constants import O_APPEND, O_WRONLY, SEEK_END
        yield ("chdir", "/tmp")
        if fix_fds:
            fd = yield ("open", "/tmp/counter.out",
                        O_WRONLY | O_APPEND, 0)
            results["reopen_fd"] = fd
        results["rest_proc"] = yield ("rest_proc",
                                      aout or aout_path,
                                      stack or stack_path)
        return 1  # only on failure

    machine.install_native_program("caller", caller)
    handle = machine.spawn("/bin/caller", uid=uid, cwd="/tmp")
    cluster.run_until(lambda: handle.exited or handle.proc.is_vm())
    return handle, results


def test_successful_restore_never_returns(brick, cluster):
    dumped = dump_counter(brick, cluster)
    handle, results = restart_via_rest_proc(brick, cluster, dumped.pid)
    assert "rest_proc" not in results  # the generator was overlaid
    assert handle.proc.is_vm()
    assert not handle.exited


def test_restored_counters_continue(brick, cluster):
    dumped = dump_counter(brick, cluster, lines=2)
    handle, __ = restart_via_rest_proc(brick, cluster, dumped.pid)
    brick.console.clear_output()
    brick.type_at_console("more\n")
    cluster.run_until(lambda: "r=" in brick.console_text())
    assert "r=4 s=4 k=4" in brick.console_text()


def test_missing_stack_file(brick, cluster):
    dumped = dump_counter(brick, cluster)
    handle, results = restart_via_rest_proc(
        brick, cluster, dumped.pid, stack="/usr/tmp/stack99999")
    assert results["rest_proc"] == -ENOENT
    assert handle.exited


def test_bad_stack_magic(brick, cluster):
    dumped = dump_counter(brick, cluster)
    stack_path = dump_file_names(dumped.pid)[2]
    blob = brick.fs.read_file(stack_path)
    brick.fs.install_file("/usr/tmp/badstack",
                          b"\xff\xff" + blob[2:], mode=0o600)
    # keep it readable by uid 100
    brick.fs.resolve_local("/usr/tmp/badstack").uid = 100
    handle, results = restart_via_rest_proc(
        brick, cluster, dumped.pid, stack="/usr/tmp/badstack")
    assert results["rest_proc"] == -EINVAL
    assert handle.exited


def test_bad_aout(brick, cluster):
    dumped = dump_counter(brick, cluster)
    brick.fs.install_file("/usr/tmp/garbage", b"not an a.out",
                          mode=0o755)
    from repro.errors import ENOEXEC
    handle, results = restart_via_rest_proc(
        brick, cluster, dumped.pid, aout="/usr/tmp/garbage")
    assert results["rest_proc"] == -ENOEXEC
    assert handle.exited


def test_permission_check_on_stack_file(brick, cluster):
    """Only the owner (or root) can read the 0600 stack file, so only
    they can restart the process."""
    dumped = dump_counter(brick, cluster, uid=100)
    handle, results = restart_via_rest_proc(brick, cluster, dumped.pid,
                                            uid=200)
    assert results["rest_proc"] == -EACCES
    assert handle.exited


def test_superuser_can_restart_anyone(brick, cluster):
    dumped = dump_counter(brick, cluster, uid=100)
    handle, results = restart_via_rest_proc(brick, cluster, dumped.pid,
                                            uid=0)
    assert handle.proc.is_vm()
    # credentials were replaced by the dumped ones
    assert handle.proc.user.cred.uid == 100


def test_credentials_restored_from_stack_file(brick, cluster):
    dumped = dump_counter(brick, cluster, uid=100)
    handle, __ = restart_via_rest_proc(brick, cluster, dumped.pid,
                                       uid=100)
    cred = handle.proc.user.cred
    assert (cred.uid, cred.euid) == (100, 100)


def test_signal_dispositions_restored(brick, cluster):
    """Handler addresses survive because the text segment does."""
    from repro.programs.guest.libasm import program
    src = program("""
start:  move  #SYS_signal, d0
        move  #SIGUSR1, d1
        move  #handler, d2
        trap
wloop:  move  #SYS_read, d0
        move  #0, d1
        move  #buf, d2
        move  #16, d3
        trap
        move  hits, d2
        jsr   putnum
        lea   nl, a0
        jsr   puts
        bra   wloop
handler:
        add   #1, hits
        pop   d5
        move  #SYS_sigreturn, d0
        trap
        halt
""", """
hits: .word 0
buf:  .space 16
nl:   .asciz "\\n"
""")
    brick.install_aout("sigprog", src.aout)
    victim = brick.spawn("/bin/sigprog", uid=100, cwd="/tmp")
    cluster.run(max_steps=5000)
    brick.kernel.post_signal(victim.proc, SIGDUMP)
    cluster.run_until(lambda: victim.exited)

    aout_path, __, stack_path = dump_file_names(victim.pid)

    def caller(argv, env):
        yield ("chdir", "/tmp")
        yield ("rest_proc", aout_path, stack_path)
        return 1

    brick.install_native_program("caller", caller)
    handle = brick.spawn("/bin/caller", uid=100, cwd="/tmp")
    cluster.run_until(lambda: handle.proc.is_vm())
    # deliver SIGUSR1 to the *restored* process: its handler runs
    brick.kernel.post_signal(handle.proc, SIGUSR1)
    cluster.run(max_steps=20000)
    brick.type_at_console("x\n")
    cluster.run_until(lambda: "1" in brick.console_text()[-10:])
    assert handle.proc.user.sig.handlers[SIGUSR1] == \
        src.symbols["handler"]


def test_rest_proc_records_kernel_timing(brick, cluster):
    dumped = dump_counter(brick, cluster)
    before = len(brick.kernel.timings("rest_proc"))
    restart_via_rest_proc(brick, cluster, dumped.pid)
    records = brick.kernel.timings("rest_proc")
    assert len(records) == before + 1
    execs = brick.kernel.timings("execve")
    # rest_proc is slightly costlier than the plain exec it wraps
    assert records[-1]["real_us"] > execs[-1]["real_us"] * 0.5


def test_environment_survives_in_the_stack(brick, cluster):
    """The env block lives in the dumped stack, so it is restored."""
    from repro.programs.guest.libasm import program
    # a program that prints envp[0] on each input line
    src = program("""
start:  move  sp, a3
        move  (a3), d4              ; argc
        add   #2, d4                ; skip argc + argv entries + NULL
        mul   #4, d4
        add   d4, a3                ; a3 = &envp[0]
        move  a3, a4                ; save across the loop
wloop:  move  #SYS_read, d0
        move  #0, d1
        move  #buf, d2
        move  #16, d3
        trap
        tst   d0
        ble   done
        move  (a4), d5
        tst   d5
        beq   done
        move  d5, a0
        jsr   puts
        lea   nl, a0
        jsr   puts
        bra   wloop
done:   move  #0, d2
        jsr   exit
""", """
buf: .space 16
nl:  .asciz "\\n"
""")
    brick.install_aout("envprog", src.aout)
    results = {}

    def launcher(argv, env):
        yield ("execve", "/bin/envprog", ["envprog"],
               ["MARKER=survives"])
        return 1

    brick.install_native_program("launcher", launcher)
    victim = brick.spawn("/bin/launcher", uid=100, cwd="/tmp")
    cluster.run(max_steps=5000)
    brick.type_at_console("a\n")
    cluster.run_until(lambda: "MARKER=survives" in brick.console_text())
    brick.kernel.post_signal(victim.proc, SIGDUMP)
    cluster.run_until(lambda: victim.exited)

    aout_path, __, stack_path = dump_file_names(victim.pid)

    def caller(argv, env):
        yield ("chdir", "/tmp")
        yield ("rest_proc", aout_path, stack_path)
        return 1

    brick.console.clear_output()
    brick.install_native_program("caller", caller)
    handle = brick.spawn("/bin/caller", uid=100, cwd="/tmp")
    cluster.run_until(lambda: handle.proc.is_vm())
    brick.type_at_console("b\n")
    cluster.run_until(lambda: "MARKER=survives" in brick.console_text())
