"""Tests for machines, clocks, events and the cluster driver."""

import pytest

from repro.clock import Clock, Stopwatch, fmt_us
from repro.costmodel import CostModel
from repro.machine import Cluster, SimulationStuck
from tests.conftest import run_native


# -- clocks ----------------------------------------------------------------


def test_clock_advance():
    clock = Clock()
    assert clock.advance(10) == 10
    assert clock.advance(5) == 15
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_clock_advance_to_is_monotone():
    clock = Clock(100)
    clock.advance_to(50)  # no going back
    assert clock.now_us == 100
    clock.advance_to(200)
    assert clock.now_us == 200


def test_stopwatch():
    clock = Clock()
    watch = Stopwatch(clock)
    clock.advance(1234)
    assert watch.elapsed_us == 1234
    watch.stop()
    clock.advance(1)
    assert watch.elapsed_us == 1234


def test_fmt_us():
    assert fmt_us(12) == "12.0 us"
    assert fmt_us(2500) == "2.50 ms"
    assert fmt_us(3_200_000) == "3.200 s"


# -- machine basics -----------------------------------------------------------


def test_standard_fs_layout(brick):
    for path in ("/bin", "/dev", "/etc", "/tmp", "/usr/tmp", "/u"):
        assert brick.fs.resolve_local(path).is_dir()
    assert brick.fs.resolve_local("/dev/null").is_chr()
    assert brick.fs.resolve_local("/dev/tty").is_chr()
    assert brick.fs.resolve_local("/dev/console").is_chr()


def test_add_terminal_creates_device(brick):
    window = brick.add_terminal("ttyp5")
    assert brick.fs.resolve_local("/dev/ttyp5").is_chr()
    # idempotent
    assert brick.add_terminal("ttyp5") is window


def test_install_native_program_creates_binary(brick):
    def prog(argv, env):
        yield ("getpid",)
        return 0

    brick.install_native_program("thing", prog, size=4096)
    inode = brick.fs.resolve_local("/bin/thing")
    assert inode.size == 4096
    assert bytes(inode.data[:15]) == b"#!native thing\n"
    assert inode.mode & 0o111


def test_spawn_handle_reports_exit(brick, cluster):
    def prog(argv, env):
        yield ("getpid",)
        return 42

    handle = run_native(brick, prog)
    assert handle.exited
    assert handle.exit_status == 42
    assert handle.term_signal is None


def test_post_event_ordering(brick):
    fired = []
    brick.post_event(300, lambda: fired.append("c"))
    brick.post_event(100, lambda: fired.append("a"))
    brick.post_event(200, lambda: fired.append("b"))
    brick.clock.advance(250)
    brick._process_due_events()
    assert fired == ["a", "b"]
    brick.clock.advance(100)
    brick._process_due_events()
    assert fired == ["a", "b", "c"]


def test_idle_machine_fast_forwards_to_events(brick, cluster):
    fired = []
    brick.post_event(5_000_000, lambda: fired.append("late"))
    assert brick.has_work()
    cluster.run(max_steps=100)
    assert fired == ["late"]
    assert brick.clock.now_us >= 5_000_000


# -- cluster driver ---------------------------------------------------------------


def test_duplicate_machine_name_rejected():
    cluster = Cluster()
    cluster.add_machine("x")
    with pytest.raises(ValueError):
        cluster.add_machine("x")


def test_laggard_machine_steps_first():
    """The cluster always advances the machine furthest behind."""
    cluster = Cluster()
    a = cluster.add_machine("a")
    b = cluster.add_machine("b")
    order = []
    a.post_event(100, lambda: order.append(("a", a.clock.now_us)))
    b.post_event(50, lambda: order.append(("b", b.clock.now_us)))
    b.post_event(200, lambda: order.append(("b2", b.clock.now_us)))
    cluster.run(max_steps=10)
    assert [name for name, __ in order] == ["b", "a", "b2"]


def test_run_until_raises_when_stuck(cluster):
    with pytest.raises(SimulationStuck):
        cluster.run_until(lambda: False, max_steps=100)


def test_run_until_step_bound(brick, cluster):
    def spinner(argv, env):
        while True:
            yield ("getpid",)

    brick.install_native_program("spinner", spinner)
    brick.spawn("/bin/spinner", uid=100)
    with pytest.raises(SimulationStuck):
        cluster.run_until(lambda: False, max_steps=50)


def test_wall_time_and_sync(cluster):
    a = cluster.machine("brick")
    b = cluster.machine("schooner")
    a.clock.advance(500)
    assert cluster.wall_time_us() == 500
    cluster.sync_clocks()
    assert b.clock.now_us == 500


def test_run_until_us_bound(brick, cluster):
    def sleeper(argv, env):
        while True:
            yield ("sleep", 1)

    brick.install_native_program("sleeper", sleeper)
    brick.spawn("/bin/sleeper", uid=100)
    cluster.run(until_us=3_000_000)
    assert 3_000_000 <= cluster.wall_time_us() < 5_000_000


def test_scheduler_interleaves_two_vm_jobs(brick, cluster):
    """Round-robin: two hogs make progress together, roughly evenly."""
    from repro.programs.guest.cpuhog import cpuhog_aout
    brick.install_aout("cpuhog", cpuhog_aout())
    h1 = brick.spawn("/bin/cpuhog", ["cpuhog", "50000"], uid=100,
                     cwd="/tmp")
    h2 = brick.spawn("/bin/cpuhog", ["cpuhog", "50000"], uid=100,
                     cwd="/tmp")
    cluster.run(until_us=brick.clock.now_us + 500_000)
    assert not h1.exited and not h2.exited
    ratio = (h1.proc.utime_us + 1) / (h2.proc.utime_us + 1)
    assert 0.5 < ratio < 2.0
    cluster.run_until(lambda: h1.exited and h2.exited,
                      max_steps=20_000_000)


def test_cpu_accounting_splits_user_and_system(brick, cluster):
    from repro.programs.guest.cpuhog import cpuhog_aout
    brick.install_aout("cpuhog", cpuhog_aout())
    handle = brick.spawn("/bin/cpuhog", ["cpuhog", "30000"], uid=100,
                         cwd="/tmp")
    cluster.run_until(lambda: handle.exited)
    # a compute loop is overwhelmingly user time
    assert handle.proc.utime_us > 5 * handle.proc.stime_us
    # ~10 instructions per iteration at instruction_us each
    assert handle.proc.utime_us > 30000 * 8 * brick.costs.instruction_us


def test_machine_repr_and_console_helpers(brick):
    assert "brick" in repr(brick)
    brick.type_at_console("abc\n")
    assert "abc" in brick.console_text()
