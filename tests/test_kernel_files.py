"""Tests for file-related system calls, driven by native programs."""

import pytest

from repro.errors import (EACCES, EBADF, EEXIST, EISDIR, ENOENT,
                          ENOTTY, EPERM, ESPIPE, iserr)
from repro.kernel.constants import (O_APPEND, O_CREAT, O_EXCL,
                                    O_RDONLY, O_RDWR, O_TRUNC,
                                    O_WRONLY, SEEK_CUR, SEEK_END,
                                    SEEK_SET)
from tests.conftest import run_native

RESULTS = {}


def collect(key):
    """Store a native program's observations for assertions."""
    RESULTS[key] = []
    return RESULTS[key]


def test_open_write_read_roundtrip(brick, cluster):
    out = collect("rw")

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_WRONLY | O_CREAT, 0o644)
        out.append(("open", fd))
        out.append(("write", (yield ("write", fd, b"hello world"))))
        yield ("close", fd)
        fd = yield ("open", "/tmp/f", O_RDONLY, 0)
        out.append(("read", (yield ("read", fd, 100))))
        yield ("close", fd)
        return 0

    handle = run_native(brick, prog)
    assert handle.exit_status == 0
    assert dict(out)["write"] == 11
    assert dict(out)["read"] == b"hello world"


def test_offsets_and_lseek(brick, cluster):
    out = collect("seek")

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_RDWR | O_CREAT, 0o644)
        yield ("write", fd, b"0123456789")
        out.append((yield ("lseek", fd, 2, SEEK_SET)))
        out.append((yield ("read", fd, 3)))
        out.append((yield ("lseek", fd, 1, SEEK_CUR)))
        out.append((yield ("read", fd, 2)))
        out.append((yield ("lseek", fd, -1, SEEK_END)))
        out.append((yield ("read", fd, 10)))
        out.append((yield ("lseek", fd, -99, SEEK_SET)))
        return 0

    run_native(brick, prog)
    assert out == [2, b"234", 6, b"67", 9, b"9", -22]


def test_append_mode(brick, cluster):
    def prog(argv, env):
        fd = yield ("open", "/tmp/log", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"first")
        yield ("close", fd)
        fd = yield ("open", "/tmp/log", O_WRONLY | O_APPEND, 0)
        yield ("write", fd, b"+more")
        yield ("close", fd)
        return 0

    run_native(brick, prog)
    assert brick.fs.read_file("/tmp/log") == b"first+more"


def test_o_trunc_and_o_excl(brick, cluster):
    out = collect("trunc")

    def prog(argv, env):
        fd = yield ("open", "/tmp/t", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"long content here")
        yield ("close", fd)
        fd = yield ("open", "/tmp/t", O_WRONLY | O_CREAT | O_TRUNC, 0o644)
        yield ("write", fd, b"x")
        yield ("close", fd)
        out.append((yield ("open", "/tmp/t",
                           O_WRONLY | O_CREAT | O_EXCL, 0o644)))
        return 0

    run_native(brick, prog)
    assert brick.fs.read_file("/tmp/t") == b"x"
    assert out[0] == -EEXIST


def test_bad_fd_operations(brick, cluster):
    out = collect("badfd")

    def prog(argv, env):
        out.append((yield ("read", 15, 10)))
        out.append((yield ("write", 15, b"x")))
        out.append((yield ("close", 15)))
        fd = yield ("open", "/tmp/ro", O_WRONLY | O_CREAT, 0o644)
        yield ("close", fd)
        fd = yield ("open", "/tmp/ro", O_RDONLY, 0)
        out.append((yield ("write", fd, b"x")))
        return 0

    run_native(brick, prog)
    assert out == [-EBADF, -EBADF, -EBADF, -EBADF]


def test_open_missing_and_isdir(brick, cluster):
    out = collect("missing")

    def prog(argv, env):
        out.append((yield ("open", "/no/such", O_RDONLY, 0)))
        out.append((yield ("open", "/tmp", O_WRONLY, 0)))
        return 0

    run_native(brick, prog)
    assert out == [-ENOENT, -EISDIR]


def test_permissions_enforced(brick, cluster):
    brick.fs.install_file("/etc/secret", b"root only", mode=0o600)
    out = collect("perm")

    def prog(argv, env):
        out.append((yield ("open", "/etc/secret", O_RDONLY, 0)))
        return 0

    run_native(brick, prog, uid=100)
    assert out == [-EACCES]
    # and the superuser can
    out2 = collect("perm2")

    def prog2(argv, env):
        out2.append((yield ("open", "/etc/secret", O_RDONLY, 0)))
        return 0

    run_native(brick, prog2, uid=0, name="testprog2")
    assert out2[0] >= 0


def test_unlink_mkdir_stat(brick, cluster):
    out = collect("meta")

    def prog(argv, env):
        yield ("mkdir", "/tmp/d", 0o755)
        fd = yield ("open", "/tmp/d/f", O_WRONLY | O_CREAT, 0o600)
        yield ("write", fd, b"xyz")
        yield ("close", fd)
        st = yield ("stat", "/tmp/d/f")
        out.append(("size", st.size))
        out.append(("mode", st.mode))
        out.append(("unlink", (yield ("unlink", "/tmp/d/f"))))
        out.append(("gone", (yield ("stat", "/tmp/d/f"))))
        return 0

    run_native(brick, prog, uid=100)
    data = dict(out)
    assert data["size"] == 3
    assert data["mode"] == 0o600
    assert data["unlink"] == 0
    assert data["gone"] == -ENOENT


def test_symlink_and_readlink(brick, cluster):
    out = collect("lnk")

    def prog(argv, env):
        yield ("symlink", "/tmp/real", "/tmp/alias")
        fd = yield ("open", "/tmp/real", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"via target")
        yield ("close", fd)
        out.append((yield ("readlink", "/tmp/alias")))
        fd = yield ("open", "/tmp/alias", O_RDONLY, 0)
        out.append((yield ("read", fd, 32)))
        lst = yield ("lstat", "/tmp/alias")
        out.append(lst.itype)
        return 0

    run_native(brick, prog, uid=100)
    from repro.fs.inode import IFLNK
    assert out[0] == "/tmp/real"
    assert out[1] == b"via target"
    assert out[2] == IFLNK


def test_dup_shares_offset(brick, cluster):
    out = collect("dup")

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_RDWR | O_CREAT, 0o644)
        yield ("write", fd, b"abcdef")
        fd2 = yield ("dup", fd)
        yield ("lseek", fd, 0, SEEK_SET)
        out.append((yield ("read", fd2, 2)))  # shared offset
        out.append((yield ("read", fd, 2)))
        yield ("close", fd)
        out.append((yield ("read", fd2, 2)))  # still open via fd2
        return 0

    run_native(brick, prog)
    assert out == [b"ab", b"cd", b"ef"]


def test_dup2_replaces(brick, cluster):
    out = collect("dup2")

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_WRONLY | O_CREAT, 0o644)
        result = yield ("dup2", fd, 9)
        out.append(result)
        yield ("write", 9, b"through dup2")
        return 0

    run_native(brick, prog)
    assert out == [9]
    assert brick.fs.read_file("/tmp/f") == b"through dup2"


def test_pipe_roundtrip(brick, cluster):
    out = collect("pipe")

    def prog(argv, env):
        rfd, wfd = yield ("pipe",)
        yield ("write", wfd, b"through the pipe")
        out.append((yield ("read", rfd, 100)))
        yield ("close", wfd)
        out.append((yield ("read", rfd, 100)))  # EOF after writer gone
        return 0

    run_native(brick, prog)
    assert out == [b"through the pipe", b""]


def test_lseek_on_pipe_is_espipe(brick, cluster):
    out = collect("espipe")

    def prog(argv, env):
        rfd, wfd = yield ("pipe",)
        out.append((yield ("lseek", rfd, 0, SEEK_SET)))
        return 0

    run_native(brick, prog)
    assert out == [-ESPIPE]


def test_ioctl_on_file_is_enotty(brick, cluster):
    out = collect("enotty")

    def prog(argv, env):
        fd = yield ("open", "/tmp/f", O_WRONLY | O_CREAT, 0o644)
        from repro.kernel.constants import TIOCGETP
        out.append((yield ("ioctl", fd, TIOCGETP, 0)))
        out.append((yield ("isatty", fd)))
        out.append((yield ("isatty", 0)))
        return 0

    run_native(brick, prog)
    assert out[0] == -ENOTTY
    assert out[1] == 0
    assert out[2] == 1  # console-backed stdio


def test_dev_null_semantics(brick, cluster):
    out = collect("null")

    def prog(argv, env):
        fd = yield ("open", "/dev/null", O_RDWR, 0)
        out.append((yield ("write", fd, b"disappears")))
        out.append((yield ("read", fd, 10)))
        return 0

    run_native(brick, prog)
    assert out == [10, b""]


def test_remote_file_io_via_n(cluster):
    brick = cluster.machine("brick")
    brador = cluster.machine("brador")
    out = collect("nfs")

    def prog(argv, env):
        fd = yield ("open", "/n/brador/tmp/shared",
                    O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"over nfs")
        yield ("close", fd)
        return 0

    run_native(brick, prog)
    assert brador.fs.read_file("/tmp/shared") == b"over nfs"


def test_remote_io_costs_more_than_local(cluster):
    """NFS operations must be visibly slower than local ones."""
    brick = cluster.machine("brick")

    def write_prog(path):
        def prog(argv, env):
            for __ in range(20):
                fd = yield ("open", path, O_WRONLY | O_CREAT, 0o644)
                yield ("write", fd, b"x" * 4096)
                yield ("close", fd)
            return 0
        return prog

    local = run_native(brick, write_prog("/tmp/local"), name="wl")
    remote = run_native(brick, write_prog("/n/brador/tmp/remote"),
                        name="wr")
    assert remote.proc.stime_us > 1.5 * local.proc.stime_us
