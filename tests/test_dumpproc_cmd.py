"""Tests for the dumpproc user command (section 4.4)."""

import pytest

from repro.kernel.constants import DUMPDIR
from repro.core.formats import FilesInfo, dump_file_names, FD_FILE
from tests.conftest import start_counter


def dump_and_read_info(site, handle, host="brick", uid=100):
    status = site.dumpproc(host, handle.pid, uid=uid, check=False)
    machine = site.machine(host)
    info = FilesInfo.unpack(
        machine.fs.read_file(dump_file_names(handle.pid)[1]))
    return status, info


def test_dumpproc_exits_zero_and_rewrites(site):
    handle = start_counter(site)
    status, info = dump_and_read_info(site, handle)
    assert status == 0
    # local paths were prefixed with /n/<machine>
    assert info.cwd == "/n/brick/tmp"
    out_entry = info.entries[3]
    assert out_entry.kind == FD_FILE
    assert out_entry.path == "/n/brick/tmp/counter.out"


def test_terminal_files_become_dev_tty(site):
    handle = start_counter(site)
    __, info = dump_and_read_info(site, handle)
    for fd in (0, 1, 2):
        assert info.entries[fd].path == "/dev/tty"


def test_symlinks_resolved_before_prefixing(site):
    """The section 4.3 scenario: a file opened through /u/<user>
    (a symlink to the file server) must be rewritten to its real
    location, not to /n/brick/u/<user> (which would nest /n)."""
    brador = site.machine("brador")
    brador.fs.install_file("/u2/alonso/input.txt", b"data")
    brador.fs.resolve_local("/u2/alonso/input.txt").uid = 100

    from repro.kernel.constants import O_RDONLY
    holder = {}

    def opener(argv, env):
        holder["fd"] = yield ("open", "/u/alonso/input.txt",
                              O_RDONLY, 0)
        while True:
            yield ("sleep", 30)

    # run a VM program doing the same so it is dumpable: reuse counter
    # but chdir'd through the symlink — instead, directly exercise the
    # rewriting logic by dumping a process whose file table includes
    # the symlinked path.  The counter opens its file relative to the
    # cwd, so start it with cwd under /u/alonso.
    handle = site.start("brick", "/bin/counter", uid=100,
                        cwd="/u/alonso")
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    __, info = dump_and_read_info(site, handle)
    # cwd /u/alonso is a symlink to the server; after resolution it
    # must be the real server path, already NFS-qualified
    assert info.cwd == "/n/brador/u2/alonso"
    assert info.entries[3].path == "/n/brador/u2/alonso/counter.out"


def test_no_nested_n_paths_ever(site):
    """After rewriting, no path may contain /n twice ("NFS does not
    allow this syntax")."""
    handle = site.start("brick", "/bin/counter", uid=100,
                        cwd="/u/kyrimis")
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    __, info = dump_and_read_info(site, handle)
    paths = [info.cwd] + [e.path for e in info.entries if e.is_file()]
    for path in paths:
        assert path.count("/n/") <= 1, path


def test_dumpproc_wrong_owner_fails(site):
    handle = start_counter(site, uid=100)
    status = site.run_command("brick",
                              ["dumpproc", "-p", str(handle.pid)],
                              uid=101)
    assert status == 1
    assert not handle.exited  # the victim survived
    assert "cannot signal" in site.console("brick")


def test_dumpproc_superuser_may_dump(site):
    handle = start_counter(site, uid=100)
    status = site.run_command("brick",
                              ["dumpproc", "-p", str(handle.pid)],
                              uid=0)
    assert status == 0
    assert handle.exited


def test_dumpproc_missing_pid_usage(site):
    assert site.run_command("brick", ["dumpproc"], uid=100) == 1
    assert "usage" in site.console("brick")


def test_dumpproc_nonexistent_pid(site):
    assert site.run_command("brick", ["dumpproc", "-p", "9999"],
                            uid=0) == 1


def test_dumpproc_times_out_on_undumpable_process(site):
    """A native victim terminates without writing dump files;
    dumpproc polls ten times (one second apart) and gives up."""
    brick = site.machine("brick")

    def sleeper(argv, env):
        while True:
            yield ("sleep", 60)

    brick.install_native_program("sleeper", sleeper)
    victim = brick.spawn("/bin/sleeper", uid=100)
    site.run(until_us=brick.clock.now_us + 10_000)
    t0 = brick.clock.now_us
    status = site.run_command("brick",
                              ["dumpproc", "-p", str(victim.pid)],
                              uid=100)
    # EX_TRANSIENT: a caller may retry (the victim could have just
    # been slow to get scheduled)
    assert status == 3
    assert "no dump appeared" in site.console("brick")
    # the ten 1-second sleeps really elapsed
    assert brick.clock.now_us - t0 >= 10_000_000


def test_dumpproc_polling_explains_real_vs_cpu_gap(site):
    """Figure 2's discrepancy: dumpproc sleeps while the victim dumps,
    so its real time far exceeds its CPU time."""
    handle = start_counter(site)
    brick = site.machine("brick")
    t0 = brick.clock.now_us
    dp = brick.spawn("/bin/dumpproc", ["dumpproc", "-p",
                                       str(handle.pid)], uid=100,
                     cwd="/tmp")
    site.run_until(lambda: dp.exited)
    real_us = brick.clock.now_us - t0
    cpu_us = dp.proc.cpu_us()
    assert real_us > 3 * cpu_us
