"""Tests for execve(): loading, arguments, environment, errors."""

import pytest

from repro.errors import EACCES, ENOEXEC, ENOENT
from repro.programs.guest.libasm import program
from tests.conftest import run_native

ARGV_DUMPER = """
start:  move  (sp), d6              ; argc
        move  d6, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        move  #0, d7                ; index
        move  sp, a3
        add   #4, a3                ; &argv[0]
argloop:
        cmp   d6, d7
        bge   envpart
        move  (a3), a0
        jsr   puts
        lea   msg_nl, a0
        jsr   puts
        add   #4, a3
        add   #1, d7
        bra   argloop
envpart:
        add   #4, a3                ; skip argv's NULL
envloop:
        move  (a3), d5
        tst   d5
        beq   alldone
        move  d5, a0
        jsr   puts
        lea   msg_nl, a0
        jsr   puts
        add   #4, a3
        bra   envloop
alldone:
        move  #0, d2
        jsr   exit
"""

ARGV_DATA = """
msg_nl: .asciz "\\n"
"""


def test_argv_and_env_reach_the_stack(brick, cluster):
    src = program(ARGV_DUMPER, ARGV_DATA)
    brick.install_aout("argdump", src.aout)
    out = []

    def launcher(argv, env):
        out.append((yield ("execve", "/bin/argdump",
                           ["argdump", "alpha", "beta"],
                           ["HOME=/u/alonso", "TERM=sun"])))
        return 9  # never reached on success

    brick.install_native_program("launcher", launcher)
    handle = brick.spawn("/bin/launcher", uid=100)
    cluster.run_until(lambda: handle.exited)
    text = brick.console_text()
    assert out == []  # execve never returned
    assert "3\n" in text
    assert "argdump" in text
    assert "alpha" in text and "beta" in text
    assert "HOME=/u/alonso" in text and "TERM=sun" in text
    assert handle.exit_status == 0


def test_exec_missing_file(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("execve", "/bin/nothing", ["nothing"], None)))
        return 0

    run_native(brick, prog)
    assert out == [-ENOENT]


def test_exec_garbage_is_enoexec(brick, cluster):
    brick.fs.install_file("/bin/garbage", b"not an executable at all",
                          mode=0o755)
    out = []

    def prog(argv, env):
        out.append((yield ("execve", "/bin/garbage", ["garbage"], None)))
        return 0

    run_native(brick, prog)
    assert out == [-ENOEXEC]


def test_exec_without_x_bit_is_eacces(brick, cluster):
    from repro.programs.guest.counter import counter_aout
    brick.fs.install_file("/bin/noexec", counter_aout(), mode=0o644)
    out = []

    def prog(argv, env):
        out.append((yield ("execve", "/bin/noexec", ["noexec"], None)))
        return 0

    run_native(brick, prog, uid=100)
    assert out == [-EACCES]


def test_exec_resets_caught_signals(brick, cluster):
    """Caught handlers cannot survive exec (the text is gone)."""
    from repro.kernel.signals import SIGUSR1, SIG_DFL, SIG_IGN
    src = program("""
start:  move  #SYS_signal, d0        ; install a handler...
        move  #SIGUSR1, d1
        move  #start, d2
        trap
        move  #SYS_execve, d0        ; ...then exec ourselves
        move  #self_path, d1
        move  #0, d2
        move  #0, d3
        trap
        halt
""", """
self_path: .asciz "/bin/reexec_target"
""")
    target = program("""
start:  move  #SYS_signal, d0        ; read the disposition back
        move  #SIGUSR1, d1
        move  #0, d2                 ; SIG_DFL (also returns the old)
        trap
        move  d0, d2
        jsr   putnum
        lea   nl, a0
        jsr   puts
        move  #0, d2
        jsr   exit
""", """
nl: .asciz "\\n"
""")
    brick.install_aout("reexec", src.aout)
    brick.install_aout("reexec_target", target.aout)
    handle = brick.spawn("/bin/reexec", uid=100)
    cluster.run_until(lambda: handle.exited)
    # old disposition printed by the target must be SIG_DFL (0)
    assert "0\n" in brick.console_text()


def test_exec_keeps_open_files(brick, cluster):
    """Descriptors survive exec (restart depends on this)."""
    from repro.kernel.constants import O_CREAT, O_WRONLY
    src = program("""
start:  move  #SYS_write, d0        ; fd 3 was opened pre-exec
        move  #3, d1
        move  #msg, d2
        move  #9, d3
        trap
        move  #0, d2
        jsr   exit
""", """
msg: .asciz "via fd 3\\n"
""")
    brick.install_aout("fduser", src.aout)

    def prog(argv, env):
        fd = yield ("open", "/tmp/carried", O_WRONLY | O_CREAT, 0o644)
        assert fd == 3
        yield ("execve", "/bin/fduser", ["fduser"], None)
        return 1

    handle = run_native(brick, prog)
    assert handle.exit_status == 0
    assert brick.fs.read_file("/tmp/carried") == b"via fd 3\n"


def test_native_marker_exec(brick, cluster):
    ran = []

    def inner(argv, env):
        ran.append(list(argv))
        yield ("getpid",)
        return 0

    brick.install_native_program("inner", inner)

    def outer(argv, env):
        yield ("execve", "/bin/inner", ["inner", "x"], None)
        return 1

    handle = run_native(brick, outer)
    assert ran == [["inner", "x"]]
    assert handle.exit_status == 0


def test_unregistered_native_marker_is_enoexec(brick, cluster):
    brick.fs.install_file("/bin/ghost", b"#!native ghost\n", mode=0o755)
    out = []

    def prog(argv, env):
        out.append((yield ("execve", "/bin/ghost", ["ghost"], None)))
        return 0

    run_native(brick, prog)
    assert out == [-ENOEXEC]


def test_exec_records_kernel_timing(brick, cluster):
    """The paper's in-kernel timing code (Figure 3's baseline)."""
    from repro.programs.guest.counter import counter_aout
    brick.install_aout("counter", counter_aout())
    before = len(brick.kernel.timings("execve"))
    handle = brick.spawn("/bin/counter", uid=100, cwd="/tmp")
    cluster.run_until(lambda: "> " in brick.console_text())
    records = brick.kernel.timings("execve")
    assert len(records) == before + 1
    assert records[-1]["real_us"] > 0
    assert records[-1]["cpu_us"] > 0
    assert records[-1]["real_us"] >= records[-1]["cpu_us"]
    # the paper's anchor: exec of the test program < 0.2 s
    assert records[-1]["real_us"] < 200_000
