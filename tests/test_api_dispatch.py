"""Public API surface and syscall-dispatch edge cases."""

import pytest

from repro.errors import EINVAL
from tests.conftest import run_native


def test_top_level_exports():
    import repro
    assert repro.__version__
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    site = repro.MigrationSite(daemons=False)
    assert site.cluster.hosts() == ["brador", "brick", "schooner"]
    assert repro.MigrationManager is repro.MigrationSite


def test_costmodel_flags_reachable_from_site():
    import repro
    costs = repro.CostModel(track_names=False)
    site = repro.MigrationSite(costs=costs, daemons=False)
    assert not site.machine("brick").costs.track_names


def test_vm_bad_syscall_number_sets_einval(brick, cluster):
    from repro.programs.guest.libasm import program
    src = program("""
start:  move  #9999, d0
        trap
        move  d1, d6            ; errno
        move  d0, d7            ; result
        move  #SYS_exit, d0
        move  #0, d1
        trap
""")
    brick.install_aout("badcall", src.aout)
    handle = brick.spawn("/bin/badcall", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert handle.proc.image.image.regs.d[7] == -1
    assert handle.proc.image.image.regs.d[6] == EINVAL


def test_native_unknown_request_is_einval(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("frobnicate", 1, 2)))
        out.append((yield "not-even-a-tuple"))
        return 0

    run_native(brick, prog)
    assert out == [-EINVAL, -EINVAL]


def test_vm_only_syscall_from_native_is_einval(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("sbrk", 4096)))  # VM-only
        return 0

    run_native(brick, prog)
    assert out == [-EINVAL]


def test_native_only_request_from_vm_is_rejected(brick, cluster):
    """spawn/getproctab have no VM trap numbers at all."""
    from repro.kernel.syscalls import NR
    assert "spawn" not in NR
    assert "getproctab" not in NR


def test_efault_on_bad_guest_pointer(brick, cluster):
    from repro.errors import EFAULT
    from repro.programs.guest.libasm import program
    src = program("""
start:  move  #SYS_open, d0
        move  #0x7FFFFFF0, d1   ; far outside the address space
        move  #O_RDONLY, d2
        move  #0, d3
        trap
        move  d1, d6
        move  #SYS_exit, d0
        move  #0, d1
        trap
""")
    brick.install_aout("badptr", src.aout)
    handle = brick.spawn("/bin/badptr", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert handle.proc.image.image.regs.d[6] == EFAULT


def test_run_command_respects_cwd(site):
    status = site.run_command("brick", ["pwd"], uid=100,
                              cwd="/usr/tmp")
    assert status == 0
    assert "/usr/tmp" in site.console("brick")


def test_site_with_custom_workstations():
    from repro.core.api import MigrationSite
    site = MigrationSite(workstations=("alpha", "beta", "gamma"),
                         server="omega", daemons=False)
    assert site.cluster.hosts() == ["alpha", "beta", "gamma", "omega"]
    handle = site.start("alpha", "/bin/counter", uid=100)
    site.run_until(lambda: "> " in site.console("alpha"))
    site.dumpproc("alpha", handle.pid, uid=100)
    moved = site.restart("gamma", handle.pid, from_host="alpha",
                         uid=100)
    assert moved.proc.is_vm()


def test_kernel_log_records_migration_events(site):
    from tests.conftest import start_counter
    handle = start_counter(site)
    site.dumpproc("brick", handle.pid, uid=100)
    assert any("SIGDUMP: pid %d dumped" % handle.pid in line
               for line in site.machine("brick").kernel.messages)
    moved = site.restart("schooner", handle.pid, from_host="brick",
                         uid=100)
    assert any("rest_proc: pid %d resumed" % moved.pid in line
               for line in site.machine("schooner").kernel.messages)
