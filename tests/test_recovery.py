"""End-to-end crash recovery: ckptd + heartbeat detector + recoveryd.

The headline scenario (DESIGN.md section 8): a job checkpointed to
the file server crashes with its host; a recovery daemon on a
surviving workstation notices via the failure detector, claims the
job with an epoch fence, and restarts it from the latest checkpoint —
identically under both cluster engines.
"""

import pytest

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import UnixError
from repro.kernel.signals import SIGKILL
from repro.programs.base import println
from repro.programs.ckmeta import parse_meta
from repro.programs.exitcodes import EX_JOBLOST, EX_TRANSIENT
from tests.conftest import run_native, start_counter

#: knobs shrunk so failure paths stay cheap in virtual time
FAST_KNOBS = dict(migrate_backoff_s=0.5, connect_backoff_s=0.5,
                  net_read_timeout_s=5.0, restart_poll_tries=30,
                  restart_poll_sleep_s=0.5)


def _job_meta(site, job="job1"):
    """The advisory meta for a job, as stored on the file server."""
    try:
        blob = site.machine("brador").fs.read_file(
            "/tmp/ckpt/%s/meta" % job)
        return blob, parse_meta(blob)
    except (UnixError, ValueError):
        return b"", {}


def _run_demo(engine):
    """The scripted demo: checkpoint on brick, crash, recover on
    schooner.  Returns an engine-comparable summary."""
    site = MigrationSite(costs=CostModel(**FAST_KNOBS), engine=engine)
    # low-volume categories only (see tests/test_faults.py); the
    # JSONL render lands in the cross-engine summary below, making
    # this demo the trace-determinism anchor for the recovery path
    site.cluster.tracer.enable("fault", "hb", "dump", "restart",
                               "migrate", "recovery", "net.sock")
    site.run_quiet()
    site.machine("brador").fs.makedirs("/tmp/ckpt", mode=0o777)

    victim = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    site.machine("brick").spawn(
        "/bin/ckptd", ["ckptd", str(victim.pid), "2", "2",
                       "/n/brador/tmp/ckpt/job1"], uid=100, cwd="/tmp")
    # wait for round 0 to be archived AND recorded in meta — only
    # then is there anything for recovery to find
    site.run_until(lambda: _job_meta(site)[1].get("round", -1) >= 0,
                   max_steps=10_000_000)

    site.cluster.crash_host("brick")
    recoveryd = site.machine("schooner").spawn(
        "/bin/recoveryd", ["recoveryd", "-i", "1", "-n", "30",
                           "/n/brador/tmp/ckpt"], uid=100, cwd="/tmp")
    # latency is measured on the survivor's own clock from the moment
    # its recovery daemon starts (the crashed host's frozen clock may
    # be ahead of an idle survivor's, so cluster wall time is useless)
    start_us = site.machine("schooner").clock.now_us
    site.run_until(
        lambda: "recoveryd: recovered" in site.console("schooner"),
        max_steps=20_000_000)
    recovered_us = site.machine("schooner").clock.now_us

    # recovery latency is bounded by the detector: one timeout plus a
    # few heartbeat/scan intervals plus the restage itself
    costs = site.costs
    bound_s = costs.hb_timeout_s + 3 * costs.hb_interval_s + 10.0
    assert costs.hb_timeout_s <= (recovered_us - start_us) / 1e6 \
        <= bound_s

    site.run_until(lambda: recoveryd.exited, max_steps=20_000_000)
    site.run_quiet(max_steps=20_000_000)

    # the recovered job answers with its state intact (same counter
    # arithmetic as test_ckptd: one input + two dump/restart cycles)
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"),
                   max_steps=10_000_000)

    meta_blob, meta = _job_meta(site)
    assert meta["host"] == "schooner"
    assert meta["epoch"] == 1
    assert meta["status"] == "done"
    # the fence claim is on the server
    site.machine("brador").fs.resolve_local("/tmp/ckpt/job1/claim.1")

    perf = site.cluster.perf
    assert perf.recoveries == 1
    assert perf.hb_suspects >= 1
    assert "ckptd: checkpoint 1 taken" in site.console("schooner")
    return {
        "consoles": (site.console("brick"), site.console("schooner")),
        "meta": meta_blob,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in ("brick", "schooner", "brador")),
        "recoveries": perf.recoveries,
        "suspects": perf.hb_suspects,
        "latency_us": recovered_us - start_us,
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


def test_crash_recovery_demo_identical_on_both_engines():
    summaries = {engine: _run_demo(engine)
                 for engine in ("scan", "fast")}
    assert summaries["scan"] == summaries["fast"]


def test_ckptd_reports_job_lost_between_rounds(site):
    """Satellite: a tracked job that dies between rounds gives ckptd a
    distinct exit status naming the last saved round."""
    handle = start_counter(site)
    daemon = site.machine("brick").spawn(
        "/bin/ckptd", ["ckptd", str(handle.pid), "3", "3"],
        uid=100, cwd="/tmp")
    site.run_until(
        lambda: "checkpoint 0 taken" in site.console("brick")
        and site.find_restarted("brick") is not None,
        max_steps=10_000_000)
    job = site.find_restarted("brick")
    site.machine("brick").kernel.post_signal(job, SIGKILL)
    site.run_until(lambda: daemon.exited, max_steps=10_000_000)
    assert daemon.exit_status == EX_JOBLOST
    assert "died, last saved round 0" in site.console("brick")


def _hb_probe_main(argv, env):
    """Query the failure detector twice, 8 virtual seconds apart."""
    yield ("hb_status", argv[1])  # activates the monitor lane
    yield ("sleep", 8)
    status = yield ("hb_status", argv[1])
    yield from println("hb=%d" % status)
    return status


def test_migrationd_run_fails_fast_on_suspected_host(site):
    """Satellite: once the detector declares a host dead, the client
    stops burning its retry budget on it."""
    site.cluster.crash_host("brick")
    probe = run_native(site.machine("schooner"), _hb_probe_main,
                       ["hb-probe", "brick"], name="hb-probe")
    assert probe.exit_status == 1  # suspected after the 8 s wait
    assert "hb=1" in site.console("schooner")

    retries_before = site.cluster.perf.retries
    status = site.run_command("schooner",
                              ["migrationd-run", "brick", "echo", "hi"],
                              uid=100)
    assert status == EX_TRANSIENT
    assert "migrationd-run: brick: host is down" \
        in site.console("schooner")
    # it gave up on the first failed connect: no retry rounds burned
    assert site.cluster.perf.retries == retries_before


def test_detection_latency_is_bounded_by_timeout_plus_interval():
    """The detector suspects a silent host no earlier than the timeout
    and no later than one heartbeat interval past it."""
    for engine in ("scan", "fast"):
        site = MigrationSite(engine=engine)
        site.run_quiet()

        def activate(argv, env):
            yield ("hb_status", "brick")
            return 0

        run_native(site.machine("schooner"), activate, ["hb-on"],
                   name="hb-on")
        t0_us = site.machine("schooner").clock.now_us
        site.cluster.crash_host("brick")
        perf = site.cluster.perf
        site.run_until(lambda: perf.hb_suspects >= 1,
                       max_steps=10_000_000)
        latency_s = (site.machine("schooner").clock.now_us - t0_us) \
            / 1e6
        costs = site.costs
        assert costs.hb_timeout_s - 1.0 <= latency_s \
            <= costs.hb_timeout_s + costs.hb_interval_s, \
            "%s: detection took %.2f s" % (engine, latency_s)
