"""Tests for the restart user command (section 4.4)."""

import pytest

from repro.kernel.constants import (NOFILE, O_CREAT, O_RDONLY, O_WRONLY,
                                    TF_RAW, TTY_DEFAULT_FLAGS)
from repro.core.formats import dump_file_names
from tests.conftest import start_counter


def dump(site, handle, host="brick", uid=100):
    site.dumpproc(host, handle.pid, uid=uid)


def test_restart_on_another_machine(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    dump(site, handle)
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    assert restarted.proc.is_vm()
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"))
    # the output file kept its offset, through NFS
    assert site.machine("brick").fs.read_file("/tmp/counter.out") == \
        b"one\ntwo\n"


def test_restart_on_same_machine(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    dump(site, handle)
    restarted = site.restart("brick", handle.pid, uid=100)
    assert restarted.proc.is_vm()
    site.type_at("brick", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))


def test_restart_gets_a_new_pid(site):
    """Even restarted on the same machine, the process id changes —
    the root of the section 7 getpid() limitation."""
    handle = start_counter(site)
    dump(site, handle)
    restarted = site.restart("brick", handle.pid, uid=100)
    assert restarted.proc.is_vm()
    assert restarted.pid != handle.pid


def test_restart_missing_dump_files(site):
    status_handle = site.restart("schooner", 777, from_host="brick",
                                 uid=100)
    assert status_handle.exited
    # EX_BADDUMP: the dump is missing/corrupt, retrying won't help
    assert status_handle.exit_status == 2
    assert "not a dumped executable" in site.console("schooner")


def test_restart_corrupt_files_file(site):
    handle = start_counter(site)
    dump(site, handle)
    brick = site.machine("brick")
    files_path = dump_file_names(handle.pid)[1]
    blob = brick.fs.read_file(files_path)
    brick.fs.install_file(files_path, b"\x00\x00" + blob[2:])
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    # EX_BADDUMP — and without -k the orphaned dump files are removed
    assert restarted.exited and restarted.exit_status == 2
    assert "bad magic" in site.console("schooner")
    brick_fs = brick.fs
    from repro.errors import UnixError
    for path in dump_file_names(handle.pid):
        with pytest.raises(UnixError):
            brick_fs.resolve_local(path)


def test_restart_wrong_user_denied(site):
    handle = start_counter(site, uid=100)
    dump(site, handle)
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=101)
    assert restarted.exited and restarted.exit_status == 1
    # either the stack read (EACCES) or setreuid (EPERM) stops it
    text = site.console("schooner")
    assert "restart:" in text


def test_restart_as_superuser(site):
    handle = start_counter(site, uid=100)
    dump(site, handle)
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=0)
    assert restarted.proc.is_vm()
    assert restarted.proc.user.cred.uid == 100  # dropped to the owner


def test_missing_file_becomes_dev_null(site):
    """A file that was unlinked after the dump reopens as /dev/null."""
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    dump(site, handle)
    brick = site.machine("brick")
    brick.fs.unlink(brick.fs.resolve_local("/tmp"), "counter.out")
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    assert restarted.proc.is_vm()
    # fd 3 is now the null device
    entry = restarted.proc.user.ofile[3]
    assert entry.inode.is_chr() and entry.inode.device == "null"
    # the program still runs: its appends just vanish
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3" in site.console("schooner"))


def test_socket_becomes_dev_null(site):
    sock_handle = site.start("brick", "/bin/sockuser", uid=100)
    site.run_until(lambda: "$ " in site.console("brick"))
    site.type_at("brick", "poke\n")
    site.run_until(lambda: "w=-1" in site.console("brick"))
    dump(site, sock_handle)
    restarted = site.restart("schooner", sock_handle.pid,
                             from_host="brick", uid=100)
    assert restarted.proc.is_vm()
    site.type_at("schooner", "poke\n")
    # pre-migration the write failed (unconnected socket, w=-1);
    # post-migration the fd is /dev/null and the write "succeeds"
    site.run_until(lambda: "w=1" in site.console("schooner"))


def test_fd_numbers_preserved_with_gaps(site):
    """A dumped fd table with holes is rebuilt slot for slot."""
    from repro.programs.guest.libasm import program
    src = program("""
start:  move  #SYS_open, d0         ; fd 3
        move  #name1, d1
        move  #O_WRONLY + O_CREAT, d2
        move  #420, d3
        trap
        move  #SYS_open, d0         ; fd 4
        move  #name2, d1
        move  #O_WRONLY + O_CREAT, d2
        move  #420, d3
        trap
        move  #SYS_close, d0        ; close fd 3: a hole
        move  #3, d1
        trap
wloop:  move  #SYS_read, d0
        move  #0, d1
        move  #buf, d2
        move  #16, d3
        trap
        tst   d0
        ble   done
        move  #SYS_write, d0        ; write marker through fd 4
        move  #4, d1
        move  #mark, d2
        move  #3, d3
        trap
        bra   wloop
done:   move  #0, d2
        jsr   exit
""", """
name1: .asciz "gap_a"
name2: .asciz "gap_b"
mark:  .asciz "OK!"
buf:   .space 16
""")
    brick = site.machine("brick")
    brick.install_aout("gapper", src.aout)
    handle = site.start("brick", "/bin/gapper", uid=100)
    site.run(until_us=brick.clock.now_us + 1_000_000)
    dump(site, handle)
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    assert restarted.proc.is_vm()
    # slot 3 must be empty again (placeholder closed), slot 4 the file
    assert restarted.proc.user.ofile[3] is None
    assert restarted.proc.user.ofile[4] is not None
    site.type_at("schooner", "go\n")
    site.run_until(
        lambda: b"OK!" in site.machine("brick").fs.read_file(
            "/tmp/gap_b"))


def test_tty_modes_restored(site):
    """A raw-mode editor keeps raw mode across a local restart."""
    handle = site.start("brick", "/bin/editor", uid=100)
    site.run_until(lambda: "=== ed ===" in site.console("brick"))
    brick = site.machine("brick")
    assert brick.console.flags == TF_RAW
    site.type_at("brick", "ab")
    site.run_until(lambda: "[a][b]" in site.console("brick").replace(
        "]\r", "]"))
    dump(site, handle)
    # dumping leaves brick's console raw (the paper's users would
    # reset it); restart on schooner must make *schooner's* console raw
    schooner = site.machine("schooner")
    assert schooner.console.flags == TTY_DEFAULT_FLAGS
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    assert restarted.proc.is_vm()
    assert schooner.console.flags == TF_RAW
    # redraw shows the preserved buffer ("ab"), then keep editing
    site.type_at("schooner", "r")
    site.run_until(lambda: "=== ed ===" in site.console("schooner"))
    site.run_until(lambda: "ab" in site.console("schooner"))


def test_restart_offsets_respected(site):
    handle = start_counter(site)
    for i, line in enumerate(["aa\n", "bb\n", "cc\n"]):
        site.type_at("brick", line)
        site.run_until(
            lambda: site.console("brick").count("> ") >= i + 2)
    dump(site, handle)
    restarted = site.restart("schooner", handle.pid, from_host="brick",
                             uid=100)
    site.type_at("schooner", "dd\n")
    site.run_until(lambda: "r=5" in site.console("schooner"))
    assert site.machine("brick").fs.read_file("/tmp/counter.out") == \
        b"aa\nbb\ncc\ndd\n"
