"""Tests for the CPU interpreter."""

import pytest

from repro.vm import (assemble, CPU, MC68010, MC68020, parse_aout,
                      ProcessImage)
from repro.vm.cpu import TrapStop, FaultStop, QuantumStop, HaltStop
from repro.vm.image import TEXT_BASE


def load(source, cpu="mc68010", mem_size=64 * 1024):
    """Assemble and load a program into a fresh image."""
    out = assemble(source, cpu=cpu)
    header, text, data = parse_aout(out.aout)
    image = ProcessImage(mem_size=mem_size)
    image.text_size = header.text_size
    image.data_size = header.data_size
    image.bss_size = header.bss_size
    image.machine_id = header.machine_id
    image.write_bytes(image.text_base, text)
    image.write_bytes(image.data_base, data)
    image.brk = image.data_base + len(data) + header.bss_size
    image.regs.pc = header.entry
    image.regs.sp = image.stack_top
    return image, out


def run(source, cpu_model=MC68010, max_instructions=10000, **kw):
    image, out = load(source, cpu=cpu_model.name
                      if cpu_model is MC68020 else "mc68010", **kw)
    stop = CPU(cpu_model).run(image, max_instructions)
    return image, stop, out


def test_move_immediate_to_register():
    image, stop, _ = run("move #99, d4\ntrap")
    assert isinstance(stop, TrapStop)
    assert image.regs.d[4] == 99


def test_arithmetic():
    image, stop, _ = run("""
        move #10, d0
        add  #32, d0
        sub  #2, d0
        mul  #3, d0
        div  #4, d0
        mod  #7, d0
        trap
""")
    assert isinstance(stop, TrapStop)
    # ((10+32-2)*3)/4 = 30, 30 % 7 = 2
    assert image.regs.d[0] == 2


def test_signed_division_truncates_toward_zero():
    image, stop, _ = run("""
        move #-7, d0
        div  #2, d0
        move #-7, d1
        mod  #2, d1
        trap
""")
    assert image.regs.d[0] == -3
    assert image.regs.d[1] == -1


def test_divide_by_zero_faults():
    image, stop, _ = run("""
        move #1, d0
        div  #0, d0
""")
    assert isinstance(stop, FaultStop)
    assert stop.kind == "fpe"


def test_logic_and_shifts():
    image, stop, _ = run("""
        move #0xF0, d0
        and  #0x3C, d0
        or   #0x01, d0
        xor  #0xFF, d0
        shl  #4, d1
        move #1, d1
        shl  #4, d1
        shr  #2, d1
        trap
""")
    assert image.regs.d[0] == (((0xF0 & 0x3C) | 1) ^ 0xFF)
    assert image.regs.d[1] == 4


def test_not_and_neg():
    image, stop, _ = run("""
        move #5, d0
        not  d0
        move #5, d1
        neg  d1
        trap
""")
    assert image.regs.d[0] == ~5
    assert image.regs.d[1] == -5


def test_memory_store_and_load():
    image, stop, _ = run("""
        move #1234, counter
        move counter, d2
        trap
        .data
counter: .word 0
""")
    assert image.regs.d[2] == 1234


def test_byte_moves():
    image, stop, _ = run("""
        lea  buf, a0
        movb #'A', (a0)
        movb (a0), d3
        trap
        .data
buf:    .space 4
""")
    assert image.regs.d[3] == ord("A")


def test_loop_with_branch():
    image, stop, _ = run("""
        move #0, d0
loop:   add  #1, d0
        cmp  #10, d0
        blt  loop
        trap
""")
    assert image.regs.d[0] == 10


def test_all_branch_conditions():
    image, stop, _ = run("""
        move #0, d7
        cmp  #5, d3        ; d3=0, so d3-5 < 0
        blt  lt_ok
        bra  fail
lt_ok:  add  #1, d7
        move #9, d3
        cmp  #5, d3        ; 9-5 > 0
        bgt  gt_ok
        bra  fail
gt_ok:  add  #1, d7
        cmp  #9, d3
        beq  eq_ok
        bra  fail
eq_ok:  add  #1, d7
        cmp  #8, d3
        bne  ne_ok
        bra  fail
ne_ok:  add  #1, d7
        cmp  #9, d3
        bge  ge_ok
        bra  fail
ge_ok:  add  #1, d7
        cmp  #9, d3
        ble  le_ok
        bra  fail
le_ok:  add  #1, d7
        trap
fail:   move #-1, d7
        trap
""")
    assert image.regs.d[7] == 6


def test_jsr_rts():
    image, stop, _ = run("""
start:  jsr  sub
        trap
sub:    move #7, d5
        rts
""")
    assert isinstance(stop, TrapStop)
    assert image.regs.d[5] == 7
    assert image.regs.sp == image.stack_top


def test_push_pop():
    image, stop, _ = run("""
        push #11
        push #22
        pop  d0
        pop  d1
        trap
""")
    assert image.regs.d[0] == 22
    assert image.regs.d[1] == 11


def test_lea_and_indirect_walk():
    image, stop, _ = run("""
        lea  arr, a1
        move (a1), d0
        move 4(a1), d1
        move 8(a1), d2
        trap
        .data
arr:    .word 100, 200, 300
""")
    assert (image.regs.d[0], image.regs.d[1], image.regs.d[2]) == \
        (100, 200, 300)


def test_quantum_exhaustion():
    image, stop, _ = run("""
loop:   add #1, d0
        bra loop
""", max_instructions=100)
    assert isinstance(stop, QuantumStop)
    assert stop.executed == 100
    assert image.regs.d[0] == 50  # two instructions per iteration


def test_halt_stops():
    image, stop, _ = run("halt")
    assert isinstance(stop, HaltStop)


def test_segfault_on_bad_address():
    image, stop, _ = run("move 0xFFFFFF, d0")
    assert isinstance(stop, FaultStop)
    assert stop.kind == "segv"


def test_segfault_on_pc_out_of_range():
    # jump below the text base
    image, stop, _ = run("bra 0")
    assert isinstance(stop, FaultStop)
    assert stop.kind == "segv"


def test_68020_binary_faults_on_68010():
    """The paper's heterogeneity limit: Sun-3 code crashes on a Sun-2."""
    source = """
        mull #3, d0
        trap
"""
    image, _ = load(source, cpu="mc68020")
    stop = CPU(MC68010).run(image, 100)
    assert isinstance(stop, FaultStop)
    assert stop.kind == "ill"
    # ... but runs fine on the 68020
    image2, _ = load(source, cpu="mc68020")
    image2.regs.d[0] = 5
    stop2 = CPU(MC68020).run(image2, 100)
    assert isinstance(stop2, TrapStop)
    assert image2.regs.d[0] == 15


def test_68010_binary_runs_on_68020():
    """Upward compatibility: Sun-2 code runs on a Sun-3."""
    image, _ = load("move #1, d0\ntrap")
    stop = CPU(MC68020).run(image, 100)
    assert isinstance(stop, TrapStop)


def test_trap_leaves_pc_after_trap():
    image, stop, out = run("""
        move #5, d0
        trap
        move #6, d0
        trap
""")
    assert isinstance(stop, TrapStop)
    assert image.regs.d[0] == 5
    # resuming continues after the trap
    stop2 = CPU(MC68010).run(image, 100)
    assert isinstance(stop2, TrapStop)
    assert image.regs.d[0] == 6


def test_wraparound_arithmetic():
    image, stop, _ = run("""
        move #0x7FFFFFFF, d0
        add  #1, d0
        trap
""")
    assert image.regs.d[0] == -(1 << 31)


def test_flags_after_cmp():
    image, stop, _ = run("""
        move #3, d0
        cmp  #3, d0
        trap
""")
    assert image.regs.zf
    assert not image.regs.nf
