"""The fast-path engine: horizon batching, decode cache, satellites.

The fast driver and the predecoded-block VM must be *invisible* in
virtual time: every test here pins some part of the contract that the
reference scan engine defines and the fast engine must reproduce.
"""

from repro.core.api import MigrationSite
from repro.machine.cluster import Cluster
from repro.programs.guest.cpuhog import expected_checksum


def _message_scenario(engine):
    """Machine a bursts through dense events; its first event messages
    idle machine b, which replies.  Returns the observed event log."""
    cluster = Cluster(engine=engine)
    a = cluster.add_machine("a")
    b = cluster.add_machine("b")
    net = cluster.network
    log = []

    def on_reply():
        log.append(("a-reply", a.clock.now_us))

    def on_b():
        log.append(("b", b.clock.now_us))
        net.deliver(b, a, 0, on_reply)

    def make(t):
        def fire():
            log.append(("a", a.clock.now_us))
            if t == 0:
                net.deliver(a, b, 0, on_b)
        return fire

    for t in range(0, 10001, 500):
        a.post_event(float(t), make(t))
    cluster.run(max_steps=1000)
    return log, cluster


def test_mid_burst_message_arrives_causally():
    """A cross-machine message posted mid-burst must shrink the event
    horizon: the receiver reacts and its reply interleaves with the
    sender's remaining events exactly as in the reference schedule."""
    scan_log, __ = _message_scenario("scan")
    fast_log, fast_cluster = _message_scenario("fast")
    assert fast_log == scan_log
    # the reply really did land mid-stream, not after a's events
    kinds = [kind for kind, __ in fast_log]
    assert kinds.index("b") < kinds.index("a-reply") < len(kinds) - 1
    assert kinds[-1] == "a"
    # and the horizon machinery was exercised, not bypassed
    assert fast_cluster.perf.horizon_invalidations >= 1
    assert fast_cluster.perf.bursts >= 1


def test_run_until_stops_exactly_like_scan():
    """Bursts must not overshoot a predicate: run_until stops after
    the same number of events on both engines."""
    for engine in ("scan", "fast"):
        cluster = Cluster(engine=engine)
        a = cluster.add_machine("a")
        log = []
        for t in range(10):
            a.post_event(float(t * 100), lambda: log.append(len(log)))
        cluster.run_until(lambda: len(log) >= 3, max_steps=100)
        assert len(log) == 3, engine


def test_run_until_us_bound_matches_scan():
    def drive(engine):
        cluster = Cluster(engine=engine)
        a = cluster.add_machine("a")
        fired = []
        for t in range(10):
            a.post_event(float(t * 1000),
                         lambda: fired.append(a.clock.now_us))
        cluster.run(until_us=4500, max_steps=100)
        return fired, cluster.wall_time_us()

    assert drive("fast") == drive("scan")


def test_perf_counters_populated():
    cluster = Cluster()
    a = cluster.add_machine("a")
    a.post_event(10.0, lambda: None)
    a.post_event(20.0, lambda: None)
    cluster.run(max_steps=100)
    perf = cluster.perf
    assert perf.steps == 2
    assert perf.bursts >= 1
    assert sum(perf.burst_hist.values()) == perf.bursts
    snap = perf.snapshot(elapsed_s=1.0)
    assert snap["steps_per_sec"] == 2.0
    assert "burst_histogram" in snap


def test_decode_cache_invalidated_on_rest_proc_overlay():
    """rest_proc overlays the whole image; the predecoded cache of
    the pre-migration program must not survive into the overlay."""
    site = MigrationSite()
    site.run_quiet()
    handle = site.start("brick", "/bin/cpuhog", ["cpuhog", "60000"],
                        uid=100)
    site.run(until_us=site.cluster.wall_time_us() + 200_000)
    source_image = handle.proc.image.image
    assert source_image._decode_cache is not None  # the hog has run
    site.dumpproc("brick", handle.pid, uid=100)
    restart = site.restart("schooner", handle.pid, from_host="brick",
                           uid=100)
    moved = restart.proc
    assert moved.is_vm()
    overlaid = moved.image.image
    assert overlaid is not source_image
    # invalidated at the overlay, rebuilt only when the CPU next runs
    assert overlaid._decode_cache is None
    site.run_until(lambda: restart.exited)
    assert ("checksum=%d" % expected_checksum(60000)) \
        in site.console("schooner")


def test_exec_invalidates_decode_cache():
    cluster = Cluster()
    machine = cluster.add_machine("a")
    from repro.programs import install_standard_programs
    install_standard_programs(machine)
    handle = machine.spawn("/bin/cpuhog", ["cpuhog", "10"], uid=100,
                           cwd="/tmp")
    # freshly exec'd, never run: the explicit exec hook left it clean
    assert handle.proc.image.image._decode_cache is None
    cluster.run_until(lambda: handle.exited)
    assert handle.exit_status == 0


def test_socket_ids_are_per_network():
    """Regression: socket ids used to come from a class-level iterator
    shared by every cluster in the process, so ids depended on what
    had run before.  Fresh clusters must hand out fresh ids."""
    first = Cluster()
    second = Cluster()
    sock1 = first.network.sock_create(first.add_machine("a"))
    sock2 = second.network.sock_create(second.add_machine("a"))
    assert sock1.id == 1
    assert sock2.id == 1


def test_engines_agree_on_idle_and_stuck():
    import pytest
    from repro.machine.cluster import SimulationStuck
    for engine in ("scan", "fast"):
        cluster = Cluster(engine=engine)
        cluster.add_machine("a")
        assert cluster.run(max_steps=10) is True  # idle is not an error
        with pytest.raises(SimulationStuck):
            cluster.run_until(lambda: False, max_steps=10)


def test_storm_burst_median_exceeds_one():
    """Regression for the 1-step-burst pathology: under the overlap
    window, the benchmark storm's typical burst must be longer than a
    single step (the old horizon rule collapsed every burst to 1, so
    the fast driver paid a full O(M) scan per step)."""
    import os
    import sys
    bench = os.path.join(os.path.dirname(__file__), os.pardir,
                         "benchmarks")
    if bench not in sys.path:
        sys.path.insert(0, bench)
    from bench_perf_scale import run_storm
    __, stats = run_storm("fast", 8, 32, 12000)
    hist = stats["burst_histogram"]
    single = hist.get("0", 0) + hist.get("1", 0)
    multi = sum(count for label, count in hist.items()
                if label not in ("0", "1"))
    assert multi > single, hist  # median burst length > 1
    assert stats["heap_pushes"] > 0
    # every hog runs the same binary: one compile, shared ever after
    assert stats["cache_rebuilds"] == 1
    assert stats["shared_cache_hits"] > 0
    assert stats["traces_linked"] > 0


def test_horizon_memo_absorbs_mid_burst_activity():
    """note_activity mid-burst: a late peer event is absorbed O(1)
    (memo hit), an earlier one lowers the horizon in place, and the
    horizon machine itself moving away forces a recompute."""
    cluster = Cluster(engine="fast")
    a = cluster.add_machine("a")
    b = cluster.add_machine("b")
    c = cluster.add_machine("c")
    b.post_event(50_000.0, lambda: None)

    cluster._bursting = a  # pretend a is mid-burst
    cluster._recompute_horizon()
    assert cluster._horizon_src is b

    c.post_event(90_000.0, lambda: None)  # beyond the horizon
    assert cluster.perf.horizon_memo_hits == 1
    assert cluster._horizon_src is b
    assert not cluster._horizon_stale

    c.post_event(10_000.0, lambda: None)  # below: shrink in place
    assert cluster._horizon_src is c
    assert cluster._horizon[0] == 10_000.0
    assert not cluster._horizon_stale
    assert cluster.perf.horizon_invalidations == 1

    c.crash()  # the horizon machine vanishes: memo can't stand
    assert cluster._horizon_stale
    assert cluster.perf.horizon_invalidations == 2
    cluster._bursting = None
