"""Tests for ckptd, the in-universe checkpoint daemon."""

import pytest

from repro.core.formats import FilesInfo, StackInfo
from repro.kernel.signals import SIGKILL
from tests.conftest import start_counter


def run_ckptd(site, pid, rounds=2, interval=1):
    brick = site.machine("brick")
    daemon = brick.spawn("/bin/ckptd",
                         ["ckptd", str(pid), str(interval),
                          str(rounds)], uid=100, cwd="/tmp")
    return daemon


def test_ckptd_takes_checkpoints_and_job_survives(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    daemon = run_ckptd(site, handle.pid, rounds=2)
    site.run_until(lambda: daemon.exited, max_steps=10_000_000)
    assert daemon.exit_status == 0
    text = site.console("brick")
    assert "checkpoint 0 taken" in text
    assert "checkpoint 1 taken" in text
    # the job is alive (a VM child of ckptd's final restart) and
    # responds with its counters intact
    brick = site.machine("brick")
    site.type_at("brick", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))


def test_ckptd_archives_valid_dumps(site):
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    daemon = run_ckptd(site, handle.pid, rounds=1)
    site.run_until(lambda: daemon.exited, max_steps=10_000_000)
    brick = site.machine("brick")
    # the archive parses with the real format readers
    files_blob = brick.fs.read_file("/tmp/ckpt/ck0.files")
    info = FilesInfo.unpack(files_blob)
    assert info.hostname == "brick"
    stack_blob = brick.fs.read_file("/tmp/ckpt/ck0.stack")
    StackInfo.unpack(stack_blob)
    aout = brick.fs.read_file("/tmp/ckpt/ck0.aout")
    from repro.vm.aout import parse_aout
    parse_aout(aout)
    # the a.out copy kept its exec permission
    assert brick.fs.resolve_local("/tmp/ckpt/ck0.aout").mode & 0o100
    # the open output file was snapshotted (as fd slot 3)
    assert brick.fs.read_file("/tmp/ckpt/ck0.fd3") == b"one\n"


def test_ckptd_archive_restores_after_crash(site):
    """End to end: ckptd snapshots, the job dies, the archive lives."""
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    daemon = run_ckptd(site, handle.pid, rounds=1)
    site.run_until(lambda: daemon.exited, max_steps=10_000_000)
    brick = site.machine("brick")

    # the final restart may still be rebuilding its fd table when the
    # daemon exits; run until the job image is in place, then kill it
    site.run_until(lambda: site.find_restarted("brick") is not None,
                   max_steps=10_000_000)
    job = site.find_restarted("brick")
    assert job is not None
    old_pid = int(site.console("brick").rsplit("-> ", 1)[1].split()[0])
    brick.kernel.post_signal(job, SIGKILL)
    site.run_until(lambda: job.zombie())

    # stage the archive back under /usr/tmp and restart it; the dump
    # was of the ORIGINAL pid (the one ckptd was told to watch)
    from repro.core.formats import dump_file_names
    targets = dump_file_names(handle.pid)
    for kind, target in zip(("aout", "files", "stack"), targets):
        data = brick.fs.read_file("/tmp/ckpt/ck0.%s" % kind)
        inode = brick.fs.install_file(target, data)
        inode.uid = 100
        inode.mode = 0o700 if kind == "aout" else 0o600
    brick.fs.install_file("/tmp/counter.out",
                          brick.fs.read_file("/tmp/ckpt/ck0.fd3"))
    revived = site.restart("brick", handle.pid, uid=100)
    assert revived.proc.is_vm()
    brick.console.clear_output()
    site.type_at("brick", "back\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("brick"))


def test_ckptd_usage_and_bad_pid(site):
    assert site.run_command("brick", ["ckptd"], uid=100) == 1
    assert site.run_command("brick", ["ckptd", "x", "y", "z"],
                            uid=100) == 1
    status = site.run_command("brick",
                              ["ckptd", "4242", "1", "1"], uid=100)
    assert status == 1
    assert "failed" in site.console("brick")
