"""The simulation is deterministic: identical runs, identical clocks.

Reproducible virtual time is what makes the benchmark numbers
meaningful — this guards against accidental nondeterminism (dict
ordering, id()-keyed behavior, hidden randomness).
"""

from repro.core.api import MigrationSite


def _one_full_migration(engine="fast"):
    site = MigrationSite(engine=engine)
    # record every network event (messages with arrival times, socket
    # creations with their ids): runs must agree on the full trace,
    # not just on the end state
    trace = []
    site.cluster.network.trace = trace
    site.run_quiet()
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    migrate = site.migrate(handle.pid, "brick", "schooner",
                           typed_on="schooner", uid=100)
    site.type_at("schooner", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"))
    moved = site.find_restarted("schooner")
    return {
        "wall_us": site.cluster.wall_time_us(),
        "brick_us": site.machine("brick").clock.now_us,
        "schooner_us": site.machine("schooner").clock.now_us,
        "brick_console": site.console("brick"),
        "schooner_console": site.console("schooner"),
        "file": bytes(site.machine("brick").fs.read_file(
            "/tmp/counter.out")),
        "moved_cpu_us": moved.cpu_us(),
        "migrate_status": migrate.exit_status,
        "net_bytes": site.cluster.network.bytes_moved,
        "steps": site.cluster.perf.steps,
        "trace": tuple(trace),
    }


def test_two_identical_runs_agree_exactly():
    first = _one_full_migration()
    second = _one_full_migration()
    assert first == second


def test_fast_and_scan_engines_agree_exactly():
    """The burst driver and the predecoded VM must be invisible in
    virtual time: a full migration gives bit-identical results (event
    trace, socket ids, clocks, consoles, even the step count) on both
    engines."""
    assert _one_full_migration("fast") == _one_full_migration("scan")


def test_figure_drivers_are_deterministic():
    from repro.bench import fig1
    assert fig1() == fig1()
