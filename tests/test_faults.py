"""Chaos suite for the fault-injection layer (DESIGN.md section 7).

Two halves:

* unit tests for the plan grammar and rule semantics — firing is a
  pure function of the plan, never of the clock;
* a scenario matrix driving a full daemon-based migration with one
  fault recipe armed, run under BOTH cluster engines.  Every scenario
  must either *recover* (the migration completes despite the faults)
  or *degrade gracefully* (the pipeline gives up with a non-zero
  status) — and in all cases the invariants hold: no orphaned dump
  files anywhere, no zombie processes, the cluster still schedules
  work, and the two engines observed the *identical* run (same fault
  firings, same statuses, same virtual clocks).
"""

import pytest

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import ENOSPC, EIO, UnixError
from repro.faults import FaultPlan, FaultRule
from repro.faults.injector import _mangle
from tests.conftest import start_counter

#: knobs shrunk so degrade scenarios stay cheap in virtual time
FAST_KNOBS = dict(migrate_backoff_s=0.5, connect_backoff_s=0.5,
                  net_read_timeout_s=5.0, restart_poll_tries=30,
                  restart_poll_sleep_s=0.5)


# -- plan grammar and rule semantics ---------------------------------------


def test_parse_multi_clause_spec():
    plan = FaultPlan.parse("""
        # dump failures
        dump.write.files fail n=1 errno=ENOSPC
        net.read delay n=2 delay=0.8; nfs.read corrupt skip=1
        net.connect fail n=* host=brick
    """, seed=42)
    assert len(plan.rules) == 4
    first = plan.rules[0]
    assert (first.site, first.kind, first.count, first.errno) == \
        ("dump.write.files", "fail", 1, ENOSPC)
    assert plan.rules[1].delay_us == 800_000
    assert plan.rules[2].skip == 1
    last = plan.rules[3]
    assert last.count is None and last.host == "brick"
    # every rule got its own deterministic RNG
    assert all(r.rng is not None for r in plan.rules)


def test_parse_rejects_nonsense():
    with pytest.raises(ValueError):
        FaultPlan.parse("justasite")
    with pytest.raises(ValueError):
        FaultPlan.parse("fs.read explode n=1")
    with pytest.raises(ValueError):
        FaultPlan.parse("fs.read fail frequency=9")
    with pytest.raises(ValueError):
        FaultPlan.parse("fs.read fail errno=EWHATEVER")


def test_rule_counting_n_and_skip():
    rule = FaultRule("fs.read", "fail", count=2, skip=1)
    # hit 0 skipped; hits 1 and 2 fire; hit 3 is past the window
    assert [rule.note_hit() for __ in range(4)] == \
        [False, True, True, False]
    assert rule.fired == 2 and rule.seen == 4


def test_rule_count_star_fires_forever():
    rule = FaultRule("fs.read", "fail", count=None)
    assert all(rule.note_hit() for __ in range(10))


def test_rule_prefix_and_host_matching():
    rule = FaultRule("dump.write.*", "fail", host="brick")
    assert rule.matches("dump.write.aout", "brick")
    assert rule.matches("dump.write.stack", "brick")
    assert not rule.matches("dump.write.aout", "schooner")
    assert not rule.matches("fs.read", "brick")
    exact = FaultRule("net.read", "fail")
    assert exact.matches("net.read", "anyhost")
    assert not exact.matches("net.read.extra", "anyhost")


def test_mangle_kills_magic_and_is_seeded():
    import random
    blob = bytes(range(64))
    out1 = _mangle(blob, random.Random("7/0"))
    out2 = _mangle(blob, random.Random("7/0"))
    assert out1 == out2          # deterministic under the same seed
    assert out1 != blob
    assert out1[0] != blob[0] and out1[1] != blob[1]  # magic dead
    assert _mangle(b"", random.Random(0)) == b""


def test_injected_fault_raises_named_errno():
    from repro.machine import Cluster
    cluster = Cluster()
    brick = cluster.add_machine("brick")
    cluster.inject_faults("fs.kwrite fail n=1 errno=ENOSPC")
    with pytest.raises(UnixError) as err:
        brick.kernel.fault_check("fs.kwrite", "/tmp/x")
    assert err.value.errno == ENOSPC
    # the one-shot rule is spent: the next hit goes through
    brick.kernel.fault_check("fs.kwrite", "/tmp/x")
    assert cluster.perf.faults_injected == 1
    assert cluster.faults.hits["fs.kwrite"] == 2


# -- the chaos matrix -------------------------------------------------------

#: (name, fault spec, expectation).  Sites covered: dump.write.aout,
#: dump.write.files, dump.write.stack, fs.kwrite, nfs.read,
#: net.connect, net.read, net.send, proc.spawn, restproc.overlay
#: (10 sites); kinds covered: fail, delay, corrupt.
SCENARIOS = [
    ("aout-write-fails-once",
     "dump.write.aout fail n=1", "recovers"),
    ("files-write-corrupted-once",
     "dump.write.files corrupt n=1", "recovers"),
    ("stack-write-fails-once",
     "dump.write.stack fail n=1 errno=ENOSPC", "recovers"),
    ("disk-full-once-on-source",
     "fs.kwrite fail n=1 errno=ENOSPC host=brick", "recovers"),
    ("nfs-read-corrupted-once",
     "nfs.read corrupt n=1 host=schooner", "recovers"),
    ("nfs-read-fails-once",
     "nfs.read fail n=1 host=schooner", "recovers"),
    ("connect-refused-once",
     "net.connect fail n=1", "recovers"),
    ("network-reads-delayed",
     "net.read delay n=2 delay=0.8", "recovers"),
    ("network-send-delayed",
     "net.send delay n=1 delay=0.5", "recovers"),
    ("restart-overlay-fails-once",
     "restproc.overlay fail n=1", "recovers"),
    ("three-faults-one-migration",
     "dump.write.files fail n=1; net.connect fail n=1; "
     "restproc.overlay fail n=1", "recovers"),
    ("connect-always-refused",
     "net.connect fail n=*", "degrades"),
    ("command-line-corrupted",
     "net.send corrupt n=1", "degrades"),
    ("helper-spawn-fails",
     "proc.spawn fail n=1 host=brick", "degrades"),
    ("dump-never-writable",
     "dump.write.* fail n=*", "degrades"),
    ("restart-never-lands",
     "restproc.overlay fail n=*", "degrades"),
]


#: the low-volume trace categories enabled during chaos runs, so the
#: cross-engine comparison also covers byte-identical JSONL traces
#: (the high-volume sched/syscall/net.msg firehose is exercised by
#: tests/test_obs.py instead — 16 scenarios x 2 engines of it would
#: dominate the suite's memory for no extra signal)
TRACE_CATEGORIES = ("fault", "hb", "dump", "restart", "migrate",
                    "recovery", "net.sock")


def _run_scenario(engine, spec, seed):
    site = MigrationSite(costs=CostModel(**FAST_KNOBS), engine=engine)
    site.cluster.tracer.enable(*TRACE_CATEGORIES)
    site.run_quiet()
    victim = start_counter(site)
    plan = site.cluster.inject_faults(spec, seed=seed)
    handle = site.migrate(victim.pid, "brick", "schooner",
                          use_daemon=True)
    site.run_quiet()
    return site, victim, plan, handle


def _orphan_dump_files(site):
    found = []
    for name in ("brick", "schooner", "brador"):
        machine = site.machine(name)
        try:
            tmp = machine.fs.resolve_local("/usr/tmp")
        except UnixError:
            continue
        for entry in sorted(machine.fs.entry_names(tmp)):
            if entry.startswith(("a.out", "files", "stack")):
                found.append("%s:%s" % (name, entry))
    return tuple(found)


def _zombies(site):
    found = []
    for name in ("brick", "schooner", "brador"):
        kernel = site.machine(name).kernel
        found.extend("%s:%d" % (name, p.pid)
                     for p in kernel.procs.all_procs() if p.zombie())
    return tuple(found)


def _summarize(site, victim, plan, handle):
    victim_proc = site.machine("brick").kernel.procs.lookup(victim.pid)
    perf = site.cluster.perf
    return {
        "status": handle.exit_status,
        "victim_alive": victim_proc is not None
        and not victim_proc.zombie(),
        "restarted": site.find_restarted("schooner") is not None,
        "orphans": _orphan_dump_files(site),
        "zombies": _zombies(site),
        "fired": plan.fired(),
        "faults_injected": perf.faults_injected,
        "retries": perf.retries,
        "timeouts": perf.timeouts,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in ("brick", "schooner", "brador")),
        # byte-identical across engines (the trace determinism
        # contract: virtual-time stamps, deterministic event order)
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


@pytest.mark.parametrize("name,spec,expectation", SCENARIOS,
                         ids=[s[0] for s in SCENARIOS])
def test_chaos_scenario_on_both_engines(name, spec, expectation):
    summaries = {}
    for engine in ("scan", "fast"):
        site, victim, plan, handle = _run_scenario(engine, spec,
                                                   seed=1234)
        summary = _summarize(site, victim, plan, handle)
        summaries[engine] = summary

        # -- universal invariants ------------------------------------
        assert summary["orphans"] == (), \
            "%s/%s left dump files: %r" % (name, engine,
                                           summary["orphans"])
        assert summary["zombies"] == (), \
            "%s/%s left zombies: %r" % (name, engine,
                                        summary["zombies"])
        assert summary["fired"], \
            "%s/%s: the fault plan never fired" % (name, engine)
        # the cluster still schedules fresh work on both workstations
        for host in ("brick", "schooner"):
            assert site.run_command(host, ["ps"], uid=100) == 0

        # -- per-expectation outcome ---------------------------------
        if expectation == "recovers":
            assert summary["status"] == 0, \
                "%s/%s: migration did not recover" % (name, engine)
            assert summary["restarted"]
            assert not summary["victim_alive"]  # it moved
        else:
            assert summary["status"] != 0, \
                "%s/%s: expected a graceful failure" % (name, engine)
            assert not summary["restarted"]

    # -- the engines saw the identical run ---------------------------
    assert summaries["scan"] == summaries["fast"], \
        "%s: engines disagree" % name


def test_recovery_scenarios_consume_retry_counters():
    """The hardened pipeline reports its extra work on repro.perf."""
    site, victim, plan, handle = _run_scenario(
        "fast", "dump.write.files fail n=1; restproc.overlay fail n=1",
        seed=9)
    assert handle.exit_status == 0
    perf = site.cluster.perf
    assert perf.faults_injected >= 2
    assert perf.retries >= 2           # one dump retry, one restart retry
    snapshot = perf.snapshot()
    for key in ("faults_injected", "fault_delay_us",
                "fault_corruptions", "retries", "timeouts"):
        assert key in snapshot


def test_delay_faults_cost_virtual_time_only():
    """A delay rule slows the migration but cannot break it."""
    plain = _run_scenario("fast", "net.read delay n=0", seed=3)
    slowed = _run_scenario("fast", "net.read delay n=2 delay=2.0",
                           seed=3)
    assert plain[3].exit_status == 0 and slowed[3].exit_status == 0
    fired = sum(f[2] for f in slowed[2].fired())
    assert fired == 2
    assert slowed[0].cluster.perf.fault_delay_us == 2_000_000 * fired
    assert slowed[0].wall_seconds() > plain[0].wall_seconds()


def test_unfaulted_run_identical_to_no_plan():
    """Arming an empty plan must not perturb the simulation at all."""
    bare = _run_scenario("fast", "", seed=0)
    assert bare[3].exit_status == 0
    assert bare[0].cluster.perf.faults_injected == 0


# -- host-level chaos: crashes and partitions -------------------------------
#
# The crash/partition fault kinds (DESIGN.md section 8).  Every
# scenario runs under BOTH engines and the two summaries must match
# exactly — a crashed host is still a deterministic event.


def test_parse_crash_and_partition_kinds():
    plan = FaultPlan.parse("""
        restproc.overlay crash n=1
        net.connect crash n=1 target=brador
        net.connect partition n=1 peer=schooner
    """)
    assert [r.kind for r in plan.rules] == \
        ["crash", "crash", "partition"]
    assert plan.rules[1].target == "brador"
    assert plan.rules[2].peer == "schooner"
    with pytest.raises(ValueError):
        FaultPlan.parse("net.connect partition n=1")  # peer missing


def _summarize_hosts(site, plan, handle):
    """Engine-comparable summary for scenarios where hosts die."""
    perf = site.cluster.perf
    hosts = ("brick", "schooner", "brador")
    return {
        "status": handle.exit_status if handle.exited else None,
        "alive": tuple(n for n in hosts if site.machine(n).running),
        "restarted": site.find_restarted("schooner") is not None,
        "fired": plan.fired(),
        "host_crashes": perf.host_crashes,
        "net_partitions": perf.net_partitions,
        "hb_suspects": perf.hb_suspects,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in hosts),
        "consoles": tuple(site.console(n) for n in hosts),
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


def _host_scenario(engine, spec, typed_on="schooner"):
    site = MigrationSite(costs=CostModel(**FAST_KNOBS), engine=engine)
    site.cluster.tracer.enable(*TRACE_CATEGORIES)
    site.run_quiet()
    victim = start_counter(site)
    plan = site.cluster.inject_faults(spec, seed=77)
    handle = site.migrate(victim.pid, "brick", "schooner",
                          typed_on=typed_on, use_daemon=True,
                          wait_resumed=False)
    site.run_until(lambda: handle.exited, max_steps=20_000_000)
    site.run_quiet(max_steps=20_000_000)
    return site, victim, plan, handle


def _engines_agree(run):
    """Run a host scenario on both engines; return the summaries."""
    summaries = {}
    for engine in ("scan", "fast"):
        site, victim, plan, handle = run(engine)
        summaries[engine] = _summarize_hosts(site, plan, handle)
        summaries[engine]["victim_alive"] = (
            site.machine("brick").running
            and site.machine("brick").kernel.procs.lookup(victim.pid)
            is not None)
        # every surviving workstation still schedules fresh work
        for host in ("brick", "schooner"):
            if site.machine(host).running:
                assert site.run_command(host, ["ps"], uid=100) == 0
    assert summaries["scan"] == summaries["fast"], "engines disagree"
    return summaries["fast"]


def test_crash_mid_dump_kills_the_source_host():
    """The source host dies while the dump files are being written:
    migrate degrades, the survivors keep working."""
    summary = _engines_agree(
        lambda engine: _host_scenario(engine,
                                      "dump.write.files crash n=1"))
    assert summary["alive"] == ("schooner", "brador")
    assert summary["status"] not in (None, 0)
    assert not summary["restarted"]
    assert summary["host_crashes"] == 1
    assert ("dump.write.files", "crash", 1) in summary["fired"]


def test_crash_mid_restart_kills_the_destination_host():
    """The destination dies inside rest_proc; migrate (typed on the
    surviving source) gives up gracefully."""
    summary = _engines_agree(
        lambda engine: _host_scenario(engine,
                                      "restproc.overlay crash n=1",
                                      typed_on="brick"))
    assert summary["alive"] == ("brick", "brador")
    assert summary["status"] not in (None, 0)
    assert not summary["restarted"]
    # the dump consumed the victim and the restart never landed: the
    # process is lost, but the pipeline said so instead of hanging
    assert summary["victim_alive"] is False


def test_crash_of_the_file_server_spares_the_migration():
    """brador (the NFS home-directory server) dies mid-migration; the
    workstation-to-workstation pipeline doesn't touch it and wins."""
    summary = _engines_agree(
        lambda engine: _host_scenario(
            engine, "net.connect crash n=1 target=brador"))
    assert summary["alive"] == ("brick", "schooner")
    assert summary["status"] == 0
    assert summary["restarted"]


def test_partition_during_migrate_then_heal():
    """A partition between the hosts makes connects time out; the
    victim survives in place, and after heal() the same migration
    succeeds."""
    def run(engine):
        site, victim, plan, handle = _host_scenario(
            engine, "net.connect partition n=1 peer=brick")
        assert handle.exit_status != 0
        # the victim never left: the dump request could not even
        # reach the source host
        proc = site.machine("brick").kernel.procs.lookup(victim.pid)
        assert proc is not None and not proc.zombie()
        site.cluster.heal()
        again = site.migrate(victim.pid, "brick", "schooner",
                             use_daemon=True)
        site.run_quiet(max_steps=20_000_000)
        assert again.exit_status == 0
        return site, victim, plan, again

    summary = _engines_agree(run)
    assert summary["alive"] == ("brick", "schooner", "brador")
    assert summary["net_partitions"] == 1
    assert summary["restarted"]


def test_reboot_then_rejoin():
    """A crashed host comes back with a wiped /usr/tmp, re-serves its
    NFS exports, and (daemons restarted) accepts a migration."""
    from repro.programs import start_network_daemons

    def run(engine):
        site = MigrationSite(costs=CostModel(**FAST_KNOBS),
                             engine=engine)
        site.run_quiet()
        brick = site.machine("brick")
        brick.fs.install_file("/usr/tmp/stale", b"leftover")
        site.cluster.crash_host("brick")
        assert not brick.running
        # dead hosts export nothing
        with pytest.raises(UnixError):
            site.cluster.exported_fs("brick")
        site.run_quiet(max_steps=20_000_000)

        site.cluster.reboot_host("brick")
        assert brick.running
        with pytest.raises(UnixError):
            brick.fs.resolve_local("/usr/tmp/stale")  # wiped at boot
        start_network_daemons(brick)
        site.run_quiet()
        victim = start_counter(site, host="schooner")
        plan = site.cluster.inject_faults("")  # no faults: clean rejoin
        handle = site.migrate(victim.pid, "schooner", "brick",
                              typed_on="brick", use_daemon=True)
        site.run_quiet(max_steps=20_000_000)
        assert handle.exit_status == 0
        assert site.find_restarted("brick") is not None
        return site, victim, plan, handle

    summaries = {}
    for engine in ("scan", "fast"):
        site, victim, plan, handle = run(engine)
        perf = site.cluster.perf
        assert perf.host_crashes == 1 and perf.host_reboots == 1
        summaries[engine] = {
            "status": handle.exit_status,
            "clocks_us": tuple(site.machine(n).clock.now_us
                               for n in ("brick", "schooner",
                                         "brador")),
            "consoles": tuple(site.console(n)
                              for n in ("brick", "schooner")),
        }
    assert summaries["scan"] == summaries["fast"]


# -- loadd chaos: the balancing daemon under report loss, delays, -----------
#    crashes and partitions (DESIGN.md section 11).  Every scenario
#    runs under BOTH engines with byte-identical summaries, and the
#    exactly-one-live-copy invariant holds for every job: however the
#    reports are lost or mangled, no job is ever duplicated, and none
#    is lost short of a host crash.


LOADD_CHAOS_KNOBS = dict(loadd_interval_s=1.0, loadd_min_cpu_s=0.1,
                         connect_timeout_s=2.0, **FAST_KNOBS)

#: iterations that keep a cpuhog alive past every scenario cutoff
LOADD_HOG_ITERS = 5_000_000


def _loadd_scenario(engine, spec, rounds=8, heal_after_us=None):
    site = MigrationSite(costs=CostModel(**LOADD_CHAOS_KNOBS),
                         engine=engine)
    site.cluster.tracer.enable(*(TRACE_CATEGORIES + ("loadd",)))
    site.run_quiet()
    jobs = [site.start("brick", "/bin/cpuhog",
                       ["cpuhog", str(LOADD_HOG_ITERS)], uid=100)
            for __ in range(3)]
    plan = site.cluster.inject_faults(spec, seed=4321)
    handles = site.start_loadd(rounds=rounds)
    if heal_after_us is not None:
        site.run(until_us=site.cluster.wall_time_us() + heal_after_us,
                 max_steps=120_000_000)
        site.cluster.heal()
    names = ("brick", "schooner")
    site.run_until(
        lambda: all(h.exited for h, n in zip(handles, names)
                    if site.machine(n).running),
        max_steps=120_000_000)
    # a bounded drain window lets in-flight restarts and relays land;
    # the hogs outlive all of it, so live copies are countable
    site.run(until_us=site.cluster.wall_time_us() + 3_000_000,
             max_steps=120_000_000)
    return site, jobs, plan, handles


def _job_copies(site, jobs):
    """Where each original job is live right now: still a cpuhog
    under its own pid on brick, or a restarted ``a.out<pid>`` on any
    surviving host (loadd and its local-restart fallback both keep
    the original pid in the image name)."""
    copies = {h.pid: [] for h in jobs}
    for name in ("brick", "schooner", "brador"):
        machine = site.machine(name)
        if not machine.running:
            continue
        for proc in machine.kernel.procs.all_procs():
            if not proc.is_vm() or proc.zombie():
                continue
            if (name == "brick" and proc.command == "cpuhog"
                    and proc.pid in copies):
                copies[proc.pid].append(name)
            elif proc.command.startswith("a.out"):
                try:
                    orig = int(proc.command[len("a.out"):])
                except ValueError:
                    continue
                if orig in copies:
                    copies[orig].append(name)
    return {pid: tuple(hosts) for pid, hosts in copies.items()}


def _summarize_loadd(site, jobs, plan, handles):
    perf = site.cluster.perf
    snapshot = perf.snapshot()
    return {
        "statuses": tuple(h.exit_status if h.exited else None
                          for h in handles),
        "copies": _job_copies(site, jobs),
        "alive": tuple(n for n in ("brick", "schooner", "brador")
                       if site.machine(n).running),
        "fired": plan.fired(),
        "ld": {k: v for k, v in snapshot.items()
               if k.startswith("ld_")},
        "host_crashes": perf.host_crashes,
        "net_partitions": perf.net_partitions,
        "fault_delay_us": perf.fault_delay_us,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in ("brick", "schooner", "brador")),
        "consoles": tuple(site.console(n)
                          for n in ("brick", "schooner")),
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


def _loadd_engines_agree(run):
    summaries = {}
    for engine in ("scan", "fast"):
        summaries[engine] = run(engine)
    assert summaries["scan"] == summaries["fast"], "engines disagree"
    return summaries["fast"]


def test_loadd_chaos_report_loss_leaves_jobs_in_place():
    """Every report is lost: each daemon only ever sees itself, so no
    moves happen and every job stays exactly where it was."""
    summary = _loadd_engines_agree(
        lambda engine: _summarize_loadd(*_loadd_scenario(
            engine, "loadd.send fail n=*")))
    assert summary["statuses"] == (0, 0)
    assert all(hosts == ("brick",)
               for hosts in summary["copies"].values())
    assert summary["ld"]["ld_moves"] == 0
    assert summary["ld"]["ld_reports_sent"] == 0
    assert summary["ld"]["ld_reports_dropped"] == 16  # 8 rounds x 2
    assert ("loadd.send", "fail", 16) in summary["fired"]


def test_loadd_chaos_delayed_reports_still_balance():
    """Delivery delays shift the rounds but the view still forms:
    exactly one job moves, none is lost or duplicated."""
    summary = _loadd_engines_agree(
        lambda engine: _summarize_loadd(*_loadd_scenario(
            engine, "loadd.recv delay n=4 delay=0.4")))
    assert summary["statuses"] == (0, 0)
    assert summary["ld"]["ld_moves"] == 1
    assert summary["ld"]["ld_move_failures"] == 0
    assert summary["fault_delay_us"] == 4 * 400_000
    placements = sorted(summary["copies"].values())
    assert placements == [("brick",), ("brick",), ("schooner",)]


def test_loadd_chaos_host_crash_mid_balance():
    """The destination dies at the first report exchange: no report
    ever crosses, so nothing moves toward the corpse; the failure
    detector kicks in and the jobs all survive at home."""
    summary = _loadd_engines_agree(
        lambda engine: _summarize_loadd(*_loadd_scenario(
            engine, "loadd.send crash n=1 target=schooner")))
    assert summary["alive"] == ("brick", "brador")
    assert summary["host_crashes"] == 1
    assert summary["ld"]["ld_moves"] == 0
    assert summary["ld"]["ld_suspect_skips"] >= 1
    assert all(hosts == ("brick",)
               for hosts in summary["copies"].values())
    # brick's daemon finished its rounds despite the dead peer
    assert summary["statuses"][0] == 0


def test_loadd_chaos_partition_then_heal_balances_late():
    """A partition cuts the report flow mid-run; after heal() the
    reports resume and the overdue balance lands — exactly one copy
    of every job throughout."""
    summary = _loadd_engines_agree(
        lambda engine: _summarize_loadd(*_loadd_scenario(
            engine,
            "loadd.send partition n=1 host=brick peer=schooner",
            rounds=12, heal_after_us=6_000_000)))
    assert summary["statuses"] == (0, 0)
    assert summary["alive"] == ("brick", "schooner", "brador")
    assert summary["net_partitions"] == 1
    assert summary["ld"]["ld_moves"] == 1
    placements = sorted(summary["copies"].values())
    assert placements == [("brick",), ("brick",), ("schooner",)]


def test_double_recovery_race_partition_then_heal():
    """The exactly-once guarantee: a partitioned-away recovery daemon
    claims the job with a higher epoch; the home ckptd sees the claim
    (the file server stayed reachable) and kills its copy.  After the
    heal exactly one live copy exists cluster-wide."""
    from repro.programs.exitcodes import EX_FENCED

    def run(engine):
        site = MigrationSite(costs=CostModel(**FAST_KNOBS),
                             engine=engine)
        site.run_quiet()
        site.machine("brador").fs.makedirs("/tmp/ckpt", mode=0o777)
        victim = start_counter(site)
        job_dir = "/n/brador/tmp/ckpt/job1"
        ckptd = site.machine("brick").spawn(
            "/bin/ckptd", ["ckptd", str(victim.pid), "3", "5",
                           job_dir], uid=100, cwd="/tmp")
        recoveryd = site.machine("schooner").spawn(
            "/bin/recoveryd", ["recoveryd", "-i", "1", "-n", "40",
                               "/n/brador/tmp/ckpt"], uid=100,
            cwd="/tmp")
        site.run_until(
            lambda: "checkpoint 0 taken" in site.console("brick"),
            max_steps=20_000_000)
        # cut brick off from schooner only — brador (where the
        # checkpoints and the fence live) stays reachable from both
        site.cluster.partition("brick", "schooner")
        site.run_until(lambda: ckptd.exited and recoveryd.exited,
                       max_steps=40_000_000)
        site.cluster.heal()
        site.run_quiet(max_steps=20_000_000)

        assert ckptd.exit_status == EX_FENCED
        assert "fenced at epoch 0" in site.console("brick")
        assert "recoveryd: recovered" in site.console("schooner")
        # exactly one live copy of the job in the whole cluster
        live = []
        for name in ("brick", "schooner", "brador"):
            kernel = site.machine(name).kernel
            live.extend(
                "%s:%d" % (name, p.pid)
                for p in kernel.procs.all_procs()
                if p.is_vm() and p.command.startswith("a.out")
                and not p.zombie())
        assert len(live) == 1 and live[0].startswith("schooner:")
        return site

    summaries = {}
    for engine in ("scan", "fast"):
        site = run(engine)
        perf = site.cluster.perf
        assert perf.recoveries == 1
        assert perf.hb_suspects >= 1
        summaries[engine] = {
            "clocks_us": tuple(site.machine(n).clock.now_us
                               for n in ("brick", "schooner",
                                         "brador")),
            "consoles": tuple(site.console(n)
                              for n in ("brick", "schooner")),
            "recoveries": perf.recoveries,
            "suspects": perf.hb_suspects,
        }
    assert summaries["scan"] == summaries["fast"]


# -- statd chaos: the telemetry pipeline under report loss, spool ------------
#    delays and host crashes (DESIGN.md section 13).  Telemetry is
#    best-effort by design: every scenario leaves the daemons exiting
#    cleanly and the cluster scheduling work, and both engines
#    observe the identical run.


STATD_CHAOS_KNOBS = dict(stat_interval_s=1.0, stat_rounds=6,
                         stat_stale_s=30.0, **FAST_KNOBS)


def _statd_scenario(engine, spec, rounds=None):
    site = MigrationSite(costs=CostModel(**STATD_CHAOS_KNOBS),
                         engine=engine)
    site.cluster.tracer.enable(*(TRACE_CATEGORIES + ("statd",)))
    site.run_quiet()
    plan = site.cluster.inject_faults(spec, seed=4321)
    handles = site.start_statd(rounds=rounds)
    statds = [h for h in handles if h.proc.command == "statd"]
    names = ("brick", "schooner")
    site.run_until(
        lambda: all(h.exited for h, n in zip(statds, names)
                    if site.machine(n).running),
        max_steps=120_000_000)
    site.run(until_us=site.cluster.wall_time_us() + 3_000_000,
             max_steps=120_000_000)
    return site, plan, statds


def _statd_spool(site):
    """The spooled report bytes per host, from the server's disk."""
    from repro.net.statd import SPOOL_DIR, spool_path
    server = site.machine("brador")
    spool = {}
    for name in ("brick", "schooner"):
        try:
            spool[name] = server.fs.read_file(
                spool_path(SPOOL_DIR, name))
        except UnixError:
            spool[name] = None
    return spool


def _summarize_statd(site, plan, handles):
    perf = site.cluster.perf
    snapshot = perf.snapshot()
    return {
        "statuses": tuple(h.exit_status if h.exited else None
                          for h in handles),
        "alive": tuple(n for n in ("brick", "schooner", "brador")
                       if site.machine(n).running),
        "fired": plan.fired(),
        "spool": _statd_spool(site),
        "st": {k: v for k, v in snapshot.items()
               if k.startswith("st_")},
        "host_crashes": perf.host_crashes,
        "fault_delay_us": perf.fault_delay_us,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in ("brick", "schooner", "brador")),
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


def _statd_engines_agree(run):
    summaries = {}
    for engine in ("scan", "fast"):
        summaries[engine] = run(engine)
    assert summaries["scan"] == summaries["fast"], "engines disagree"
    return summaries["fast"]


def test_statd_chaos_report_loss_leaves_spool_empty():
    """Every report is lost in flight: sampling continues unharmed,
    nothing reaches the spool, every loss is counted."""
    summary = _statd_engines_agree(
        lambda engine: _summarize_statd(*_statd_scenario(
            engine, "statd.send fail n=*")))
    assert summary["statuses"] == (0, 0)
    assert summary["st"]["st_samples"] == 12  # 6 rounds x 2 daemons
    assert summary["st"]["st_reports_sent"] == 0
    assert summary["st"]["st_reports_dropped"] == 12
    assert summary["st"]["st_reports_recv"] == 0
    assert summary["spool"] == {"brick": None, "schooner": None}
    assert ("statd.send", "fail", 12) in summary["fired"]


def test_statd_chaos_spool_delay_still_lands():
    """A slow spool shifts virtual time but loses nothing: every
    report still lands and the delay is pure virtual time."""
    summary = _statd_engines_agree(
        lambda engine: _summarize_statd(*_statd_scenario(
            engine, "statd.spool delay n=2 delay=0.4")))
    assert summary["statuses"] == (0, 0)
    assert summary["st"]["st_reports_sent"] == 12
    assert summary["st"]["st_reports_recv"] == 12
    assert summary["st"]["st_reports_dropped"] == 0
    assert summary["fault_delay_us"] == 2 * 400_000
    assert summary["spool"]["brick"] is not None
    assert summary["spool"]["schooner"] is not None


def test_statd_chaos_server_crash_mid_report():
    """The file server dies on the first report: the spool dies with
    it, the daemons shrug — they skip the suspect spooler, finish
    their rounds and exit cleanly."""
    summary = _statd_engines_agree(
        lambda engine: _summarize_statd(*_statd_scenario(
            engine, "statd.send crash n=1 target=brador",
            rounds=10)))
    assert summary["alive"] == ("brick", "schooner")
    assert summary["host_crashes"] == 1
    assert summary["statuses"] == (0, 0)
    assert summary["st"]["st_reports_recv"] == 0
    assert summary["st"]["st_samples"] == 20
    assert summary["st"]["st_suspect_skips"] >= 1
    assert summary["spool"] == {"brick": None, "schooner": None}
