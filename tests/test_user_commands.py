"""Tests for the auxiliary user commands: ps, kill, rshd details."""

import pytest

from repro.kernel.signals import SIGDUMP, SIGTERM
from tests.conftest import start_counter


def test_ps_lists_own_processes(site):
    handle = start_counter(site, uid=100)
    status = site.run_command("brick", ["ps"], uid=100)
    assert status == 0
    text = site.console("brick")
    assert "PID" in text
    assert "counter" in text


def test_ps_filters_by_user(site):
    start_counter(site, uid=100)
    site.machine("brick").console.clear_output()
    status = site.run_command("brick", ["ps"], uid=101)
    assert status == 0
    assert "counter" not in site.console("brick")


def test_ps_dash_a_shows_everyone(site):
    start_counter(site, uid=100)
    site.machine("brick").console.clear_output()
    status = site.run_command("brick", ["ps", "-a"], uid=101)
    assert status == 0
    assert "counter" in site.console("brick")


def test_ps_shows_cpu_time(site):
    """The load-balancing candidate rule needs believable TIME."""
    brick = site.machine("brick")
    handle = site.start("brick", "/bin/cpuhog",
                        ["cpuhog", "100000"], uid=100)
    site.run(until_us=brick.clock.now_us + 1_000_000)
    brick.console.clear_output()
    site.run_command("brick", ["ps"], uid=100)
    hog_lines = [line for line in site.console("brick").splitlines()
                 if "cpuhog" in line]
    assert hog_lines
    seconds = float(hog_lines[0].split()[2])
    assert seconds > 0.1


def test_kill_default_signal_is_sigterm(site):
    handle = start_counter(site, uid=100)
    status = site.run_command("brick", ["kill", str(handle.pid)],
                              uid=100)
    assert status == 0
    site.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGTERM


def test_kill_dash_32_is_a_manual_sigdump(site):
    """'A new signal, SIGDUMP ... can be sent using the UNIX kill
    system call'."""
    handle = start_counter(site, uid=100)
    status = site.run_command("brick",
                              ["kill", "-%d" % SIGDUMP,
                               str(handle.pid)], uid=100)
    assert status == 0
    site.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGDUMP
    assert handle.proc.dumped


def test_kill_bad_pid_reports(site):
    status = site.run_command("brick", ["kill", "badpid"], uid=100)
    assert status == 1
    assert "bad pid" in site.console("brick")


def test_kill_usage(site):
    assert site.run_command("brick", ["kill"], uid=100) == 1


def test_kill_multiple_pids(site):
    h1 = start_counter(site, uid=100)
    h2 = site.start("brick", "/bin/counter", uid=100)
    site.run(until_us=site.machine("brick").clock.now_us + 500_000)
    status = site.run_command(
        "brick", ["kill", str(h1.pid), str(h2.pid)], uid=100)
    assert status == 0
    site.run_until(lambda: h1.exited and h2.exited)


def test_rshd_serves_consecutive_connections(site):
    """The helper-per-connection design keeps rshd available."""
    for round_no in range(3):
        site.machine("brick").console.clear_output()
        status = site.run_command("brick",
                                  ["rsh", "schooner", "ps", "-a"],
                                  uid=100)
        assert status == 0
        assert "rshd" in site.console("brick")


def test_rsh_usage_errors(site):
    assert site.run_command("brick", ["rsh"], uid=100) == 1
    assert site.run_command("brick", ["rsh", "schooner"], uid=100) == 1


def test_rsh_unknown_remote_command(site):
    status = site.run_command("brick",
                              ["rsh", "schooner", "nosuchcmd"],
                              uid=100)
    assert status == 1


def test_migrationd_run_works_like_rsh(site):
    status = site.run_command("brick",
                              ["migrationd-run", "schooner", "ps",
                               "-a"], uid=100)
    assert status == 0
    assert "migrationd" in site.console("brick")


def test_rsh_is_much_slower_than_daemon(site):
    brick = site.machine("brick")
    t0 = brick.clock.now_us
    site.run_command("brick", ["rsh", "schooner", "ps"], uid=100)
    rsh_time = brick.clock.now_us - t0
    t0 = brick.clock.now_us
    site.run_command("brick", ["migrationd-run", "schooner", "ps"],
                     uid=100)
    daemon_time = brick.clock.now_us - t0
    assert rsh_time > 4 * daemon_time
