"""Tests for the SIGDUMP kernel machinery (section 5.2)."""

import pytest

from repro.kernel.constants import DUMPDIR, NOFILE
from repro.kernel.signals import SIGDUMP, SIGUSR1, SIGTERM, SIG_IGN
from repro.core.formats import (FilesInfo, StackInfo, dump_file_names,
                                FD_FILE, FD_SOCKET, FD_UNUSED)
from repro.programs.guest.counter import counter_aout
from repro.vm.aout import parse_aout
from tests.conftest import run_native


@pytest.fixture
def dumped(brick, cluster):
    """The counter program, fed one line, then SIGDUMPed."""
    brick.install_aout("counter", counter_aout())
    handle = brick.spawn("/bin/counter", uid=100, cwd="/tmp")
    cluster.run_until(lambda: brick.console_text().count("> ") >= 1)
    brick.type_at_console("one\n")
    cluster.run_until(lambda: brick.console_text().count("> ") >= 2)
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    return brick, cluster, handle


def test_three_files_created(dumped):
    brick, cluster, handle = dumped
    for path in dump_file_names(handle.pid):
        inode = brick.fs.resolve_local(path)
        assert inode.is_reg()
        assert inode.size > 0
        assert inode.uid == 100  # owned by the process owner


def test_process_terminated_by_sigdump(dumped):
    brick, cluster, handle = dumped
    assert handle.term_signal == SIGDUMP
    assert handle.proc.dumped


def test_aout_is_valid_executable(dumped):
    brick, cluster, handle = dumped
    blob = brick.fs.read_file(dump_file_names(handle.pid)[0])
    header, text, data = parse_aout(blob)
    assert header.text_size == len(text)
    assert header.data_size == len(data)
    assert header.machine_id == 1  # built on a Sun-2


def test_aout_data_segment_holds_live_values(dumped):
    """The undump property: static variables keep their values."""
    brick, cluster, handle = dumped
    blob = brick.fs.read_file(dump_file_names(handle.pid)[0])
    __, __, data = parse_aout(blob)
    # static_ctr is the first word of the data segment and was
    # incremented twice before the dump
    assert int.from_bytes(data[:4], "little") == 2


def test_undump_for_free(dumped):
    """Executing a.outXXXXX restarts the program from the beginning,
    but with the static counter keeping its dumped value."""
    brick, cluster, handle = dumped
    aout_path = dump_file_names(handle.pid)[0]
    blob = brick.fs.read_file(aout_path)
    brick.install_aout("undumped", blob)
    brick.console.clear_output()
    handle2 = brick.spawn("/bin/undumped", uid=100, cwd="/tmp")
    cluster.run_until(lambda: brick.console_text().count("> ") >= 1)
    # register and stack counters restart at 1; the static counter
    # continues from the dumped value (2), so the first line is:
    assert "r=1 s=3 k=1" in brick.console_text()


def test_files_info_contents(dumped):
    brick, cluster, handle = dumped
    info = FilesInfo.unpack(
        brick.fs.read_file(dump_file_names(handle.pid)[1]))
    assert info.hostname == "brick"
    assert info.cwd == "/tmp"
    assert len(info.entries) == NOFILE
    # stdio on the console device
    for fd in (0, 1, 2):
        assert info.entries[fd].kind == FD_FILE
        assert info.entries[fd].path == "/dev/console"
    out = info.entries[3]
    assert out.kind == FD_FILE
    assert out.path == "/tmp/counter.out"
    assert out.offset == 4  # after "one\n"
    # everything else unused
    assert all(e.kind == FD_UNUSED for e in info.entries[4:])
    # default cooked tty flags
    from repro.kernel.constants import TTY_DEFAULT_FLAGS
    assert info.tty_flags == TTY_DEFAULT_FLAGS


def test_stack_info_contents(dumped):
    brick, cluster, handle = dumped
    info = StackInfo.unpack(
        brick.fs.read_file(dump_file_names(handle.pid)[2]))
    assert info.cred.uid == 100
    assert info.stack_size == len(info.stack)
    assert info.stack_size > 0
    # the register counter d6 was incremented twice
    assert info.registers.d[6] == 2
    # the stack counter is the word at the stack pointer
    assert int.from_bytes(info.stack[:4], "little") == 2
    # the pc points at the read trap (rewound for retry)
    from repro.vm.isa import decode, Op
    image_pc = info.registers.pc
    assert image_pc > 0


def test_signal_dispositions_dumped(brick, cluster):
    """Caught/ignored dispositions travel in the stack file."""
    from repro.programs.guest.libasm import program
    src = program("""
start:  move  #SYS_signal, d0
        move  #SIGUSR1, d1
        move  #handler, d2
        trap
        move  #SYS_signal, d0
        move  #SIGTERM, d1
        move  #1, d2                ; SIG_IGN
        trap
wloop:  move  #SYS_read, d0
        move  #0, d1
        move  #buf, d2
        move  #16, d3
        trap
        bra   wloop
handler:
        move  #SYS_sigreturn, d0
        trap
        halt
""", """
buf: .space 16
""")
    brick.install_aout("sigprog", src.aout)
    handle = brick.spawn("/bin/sigprog", uid=100, cwd="/tmp")
    cluster.run(max_steps=10000)
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    info = StackInfo.unpack(
        brick.fs.read_file(dump_file_names(handle.pid)[2]))
    handler_addr = src.symbols["handler"]
    assert info.sigstate.handlers[SIGUSR1] == handler_addr
    assert info.sigstate.handlers[SIGTERM] == SIG_IGN


def test_sockets_and_pipes_marked(brick, cluster):
    """Socket and pipe fds are recorded as bare socket entries."""
    holder = {}

    def opener(argv, env):
        sock = yield ("socket",)
        rfd, wfd = yield ("pipe",)
        holder["fds"] = (sock, rfd, wfd)
        while True:
            yield ("sleep", 10)

    # a native program is not dumpable, so drive a VM program instead
    from repro.programs.guest.sockuser import sockuser_aout
    brick.install_aout("sockuser", sockuser_aout())
    handle = brick.spawn("/bin/sockuser", uid=100, cwd="/tmp")
    cluster.run_until(lambda: "$ " in brick.console_text())
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    info = FilesInfo.unpack(
        brick.fs.read_file(dump_file_names(handle.pid)[1]))
    assert info.entries[3].kind == FD_SOCKET


def test_native_process_is_not_dumpable(brick, cluster):
    def prog(argv, env):
        while True:
            yield ("sleep", 10)

    brick.install_native_program("undumpable", prog)
    handle = brick.spawn("/bin/undumpable", uid=100)
    cluster.run(until_us=brick.clock.now_us + 100_000)
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGDUMP
    assert not handle.proc.dumped
    # no dump files were produced
    from repro.errors import UnixError
    with pytest.raises(UnixError):
        brick.fs.resolve_local(dump_file_names(handle.pid)[0])


def test_sigdump_while_running_hot_loop(brick, cluster):
    """A compute-bound process can be dumped mid-quantum too."""
    from repro.programs.guest.cpuhog import cpuhog_aout
    brick.install_aout("cpuhog", cpuhog_aout())
    handle = brick.spawn("/bin/cpuhog", ["cpuhog", "100000000"],
                         uid=100, cwd="/tmp")
    cluster.run(until_us=brick.clock.now_us + 500_000)
    assert not handle.exited
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    assert handle.proc.dumped
    info = StackInfo.unpack(
        brick.fs.read_file(dump_file_names(handle.pid)[2]))
    # d7 is the loop counter: it was well into the run
    assert info.registers.d[7] > 0


def test_dump_timing_magnitude(dumped):
    """Anchor: SIGDUMP-killing the test program ~ 0.6 s real time."""
    brick, cluster, handle = dumped
    # time from signal post to zombie is bounded by the dump I/O;
    # measured in the fig2 bench; here just sanity-check the scale
    # via the terminate timestamp recorded in CPU accounting
    assert 0.01 < handle.proc.stime_us / 1e6 < 2.0


# -- the ledgered archive window (DESIGN.md section 12) --------------------


@pytest.fixture
def armed(brick, cluster):
    """The counter at its prompt, with a ledger record dir on disk."""
    brick.install_aout("counter", counter_aout())
    handle = brick.spawn("/bin/counter", uid=100, cwd="/tmp")
    cluster.run_until(lambda: brick.console_text().count("> ") >= 1)
    brick.fs.makedirs("/tmp/migrec", mode=0o777)
    return brick, cluster, handle


def _record_dir_entries(brick):
    return sorted(brick.fs.entry_names(
        brick.fs.resolve_local("/tmp/migrec")))


def test_ledgered_dump_archives_into_its_record_dir(armed):
    brick, cluster, handle = armed
    brick.fs.install_file("/tmp/migrec/rec", b"intent")
    brick.kernel.sys_dump_ledger(handle.proc, handle.pid,
                                 "/tmp/migrec")
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    assert _record_dir_entries(brick) == ["dump.aout", "dump.files",
                                          "dump.ok", "dump.stack",
                                          "rec"]


def test_reaped_record_fails_the_dump_and_disarms_the_ledger(armed):
    """A record directory without ``rec`` means a recovery sweep
    aborted the intent and reaped it: committing an archive there
    would leak files nobody restarts from.  The all-or-nothing dump
    fails instead (the victim survives), the one-shot arming is
    consumed either way, and a later *plain* dump of the surviving
    process must not re-archive into the stale directory."""
    brick, cluster, handle = armed  # note: no "rec" inside
    brick.kernel.sys_dump_ledger(handle.proc, handle.pid,
                                 "/tmp/migrec")
    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: any(
        "dump of pid %d failed" % handle.pid in line
        for line in brick.kernel.messages))
    assert not handle.exited  # all-or-nothing: the victim survives
    assert handle.proc.ledger_dir is None  # the arming was consumed
    assert _record_dir_entries(brick) == []  # no leaked archive

    brick.kernel.post_signal(handle.proc, SIGDUMP)
    cluster.run_until(lambda: handle.exited)
    assert handle.proc.dumped
    assert _record_dir_entries(brick) == []  # still nothing ledgered
    for path in dump_file_names(handle.pid):
        assert brick.fs.resolve_local(path).is_reg()
