"""Regression tests for the hardened ``migrationd-run`` client.

The client must parse the ``\\x00EXIT:<status>\\n`` sentinel even when
the network delivers it in pieces, and it must *fail*, promptly and
with a distinct status, when the server dies before the sentinel —
the original client looped forever on empty reads (a real hang that
``migrate -d`` would inherit).
"""

import pytest

from repro.core.api import MigrationSite
from repro.errors import iserr
from repro.net.migrationd import MIGRATIOND_PORT
from repro.programs.exitcodes import (EX_FAIL, EX_REJECTED,
                                      EX_TRANSIENT)


@pytest.fixture
def quiet_site():
    """The testbed with NO daemons: port 515 is free for fakes."""
    site = MigrationSite(daemons=False)
    site.run_quiet()
    return site


def _serve_one(body):
    """A native server on port 515 that accepts once, reads the CMD
    line, then runs ``body(conn)`` (a generator function)."""
    def server_main(argv, env):
        sock = yield ("socket",)
        result = yield ("bind", sock, MIGRATIOND_PORT)
        if iserr(result):
            return 1
        yield ("listen", sock)
        conn = yield ("accept", sock)
        yield ("read", conn, 1024)  # the "CMD ..." line
        yield from body(conn)
        yield ("close", conn)
        return 0
    return server_main


def _start_fake(site, body, host="schooner"):
    machine = site.machine(host)
    machine.install_native_program("fakeserver", _serve_one(body))
    server = machine.spawn("/bin/fakeserver", uid=0)
    site.run(max_steps=100_000)  # bring it to accept()
    return server


def _run_client(site, host="brick", target="schooner"):
    machine = site.machine(host)
    handle = machine.spawn(
        "/bin/migrationd-run",
        ["migrationd-run", target, "true"], uid=100, cwd="/tmp")
    site.run_until(lambda: handle.exited)
    return handle


def test_sentinel_split_across_two_reads(quiet_site):
    """The sentinel may straddle a packet boundary mid-'EXIT:'."""
    def body(conn):
        yield ("write", conn, b"partial output\n\x00EX")
        yield ("sleep", 1)  # force a second read on the client
        yield ("write", conn, b"IT:7\n")

    _start_fake(quiet_site, body)
    handle = _run_client(quiet_site)
    assert handle.exit_status == 7
    assert "partial output" in quiet_site.console("brick")
    # the sentinel itself never reaches the user's terminal
    assert "EXIT" not in quiet_site.console("brick")


def test_sentinel_split_byte_by_byte(quiet_site):
    def body(conn):
        for byte in b"out\n\x00EXIT:5\n":
            yield ("write", conn, bytes([byte]))
            yield ("sleep", 0.01)

    _start_fake(quiet_site, body)
    handle = _run_client(quiet_site)
    assert handle.exit_status == 5
    assert "out" in quiet_site.console("brick")


def test_server_death_before_sentinel_fails_promptly(quiet_site):
    """EOF before the sentinel: report failure, do not hang."""
    def body(conn):
        yield ("write", conn, b"half an answ")
        # ...and the helper dies: close without any sentinel

    _start_fake(quiet_site, body)
    brick = quiet_site.machine("brick")
    t0 = brick.clock.now_us
    handle = _run_client(quiet_site)
    assert handle.exit_status == EX_FAIL
    # the buffered output was still delivered
    assert "half an answ" in quiet_site.console("brick")
    # prompt: EOF is detected well before the 30 s read timeout
    assert brick.clock.now_us - t0 < 10_000_000


def test_silent_server_times_out_with_transient_status(quiet_site):
    """A server that never replies costs a bounded wait, not a hang."""
    def body(conn):
        while True:
            yield ("sleep", 60)

    _start_fake(quiet_site, body)
    timeouts_before = quiet_site.cluster.perf.timeouts
    handle = _run_client(quiet_site)
    assert handle.exit_status == EX_TRANSIENT
    assert "timed out" in quiet_site.console("brick")
    assert quiet_site.cluster.perf.timeouts == timeouts_before + 1


def test_connection_refused_after_retries(quiet_site):
    """No daemon at all: bounded connect retries, then EX_FAIL."""
    retries_before = quiet_site.cluster.perf.retries
    handle = _run_client(quiet_site)  # nothing listens on 515
    assert handle.exit_status == EX_FAIL
    assert "connection refused" in quiet_site.console("brick")
    # connect_attempts=3 means two retry sleeps were taken
    assert quiet_site.cluster.perf.retries == retries_before + 2


def test_real_daemon_round_trip_still_works(site):
    """End to end against the real daemon (sanity anchor)."""
    status = site.run_command(
        "brick", ["migrationd-run", "schooner", "ps", "-a"], uid=100)
    assert status == 0


def test_daemon_rejects_commands_off_the_allowlist(site):
    """The helper relays migration commands, not a remote shell: any
    command outside the fixed allowlist is refused with a distinct
    status, and nothing is spawned on the server host."""
    status = site.run_command(
        "brick", ["migrationd-run", "schooner", "sh", "-c", "boom"],
        uid=100)
    assert status == EX_REJECTED
    assert "migrationd: sh: not permitted" in site.console("brick")
    # the refused command never ran on the server host
    assert not any(
        proc.command == "sh"
        for proc in site.machine("schooner").kernel.procs.all_procs())
