"""Property-based tests: the CPU against a reference semantics."""

from hypothesis import given, settings, strategies as st

from repro.vm import assemble, CPU, MC68010, MC68020
from repro.vm.image import (ProcessImage, to_signed, to_unsigned,
                            TEXT_BASE)
from repro.vm.cpu import TrapStop

_i32 = st.integers(-(2 ** 31), 2 ** 31 - 1)


def run_snippet(source, cpu=MC68010, mem=64 * 1024, setup=None):
    out = assemble(source, cpu=cpu.name)
    image = ProcessImage(mem_size=mem)
    image.text_size = len(out.text)
    image.write_bytes(TEXT_BASE, out.text)
    image.write_bytes(TEXT_BASE + len(out.text), out.data)
    image.data_size = len(out.data)
    image.brk = TEXT_BASE + len(out.text) + len(out.data)
    image.regs.pc = out.entry
    image.regs.sp = image.stack_top
    if setup:
        setup(image)
    stop = CPU(cpu).run(image, 10_000)
    assert isinstance(stop, TrapStop), stop
    return image


def reference_alu(op, lhs, rhs):
    """Reference semantics: 32-bit wrapped signed arithmetic."""
    if op == "add":
        value = lhs + rhs
    elif op == "sub":
        value = lhs - rhs
    elif op == "mul":
        value = lhs * rhs
    elif op == "and":
        value = to_unsigned(lhs) & to_unsigned(rhs)
    elif op == "or":
        value = to_unsigned(lhs) | to_unsigned(rhs)
    elif op == "xor":
        value = to_unsigned(lhs) ^ to_unsigned(rhs)
    else:
        raise AssertionError(op)
    return to_signed(to_unsigned(value))


@given(op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
       lhs=_i32, rhs=_i32)
@settings(max_examples=120, deadline=None)
def test_alu_matches_reference(op, lhs, rhs):
    def setup(image):
        image.regs.d[0] = lhs
        image.regs.d[1] = rhs

    image = run_snippet("%s d1, d0\ntrap" % op, setup=setup)
    assert image.regs.d[0] == reference_alu(op, lhs, rhs)
    # and flags reflect the result
    assert image.regs.zf == (image.regs.d[0] == 0)
    assert image.regs.nf == (image.regs.d[0] < 0)


@given(lhs=_i32, rhs=_i32.filter(lambda v: v != 0))
@settings(max_examples=100, deadline=None)
def test_division_truncates_toward_zero(lhs, rhs):
    def setup(image):
        image.regs.d[0] = lhs
        image.regs.d[1] = rhs

    image = run_snippet("div d1, d0\ntrap", setup=setup)
    expected = to_signed(to_unsigned(int(lhs / rhs)))
    assert image.regs.d[0] == expected


@given(lhs=_i32, rhs=_i32.filter(lambda v: v != 0))
@settings(max_examples=100, deadline=None)
def test_mod_is_consistent_with_div(lhs, rhs):
    def setup(image):
        image.regs.d[0] = lhs
        image.regs.d[1] = rhs
        image.regs.d[2] = lhs

    image = run_snippet("div d1, d0\nmod d1, d2\ntrap", setup=setup)
    quotient, remainder = image.regs.d[0], image.regs.d[2]
    # lhs == q * rhs + r (mod 2^32), and |r| < |rhs|
    assert to_unsigned(quotient * rhs + remainder) == to_unsigned(lhs)
    assert abs(remainder) < abs(rhs)


@given(value=_i32, shift=st.integers(0, 31))
@settings(max_examples=80, deadline=None)
def test_shifts_match_reference(value, shift):
    def setup(image):
        image.regs.d[0] = value
        image.regs.d[1] = value
        image.regs.d[2] = shift

    image = run_snippet("shl d2, d0\nshr d2, d1\ntrap", setup=setup)
    assert image.regs.d[0] == to_signed(
        (to_unsigned(value) << shift) & 0xFFFFFFFF)
    assert image.regs.d[1] == to_signed(to_unsigned(value) >> shift)


@given(value=_i32)
@settings(max_examples=60, deadline=None)
def test_memory_roundtrip_preserves_value(value):
    def setup(image):
        image.regs.d[0] = value

    image = run_snippet("""
        move d0, slot
        move slot, d3
        trap
        .data
slot:   .word 0
""", setup=setup)
    assert image.regs.d[3] == value


@given(values=st.lists(_i32, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_stack_is_lifo(values):
    pushes = "\n".join("push #%d" % v for v in values)
    pops = "\n".join("pop d%d" % (i % 8)
                     for i in range(len(values)))
    # pop into successive registers; compare the last pop only (d
    # registers wrap) plus stack neutrality
    source = pushes + "\n" + "\n".join(
        "pop d0" for __ in values) + "\ntrap"
    image = run_snippet(source)
    assert image.regs.d[0] == values[0]  # last popped = first pushed
    assert image.regs.sp == image.stack_top


@given(a=_i32, b=_i32)
@settings(max_examples=80, deadline=None)
def test_comparison_branches_agree_with_python(a, b):
    def setup(image):
        image.regs.d[0] = a
        image.regs.d[1] = b

    # d7 collects which branches were taken as a bitmask
    image = run_snippet("""
        move #0, d7
        cmp  d1, d0
        blt  is_lt
        bra  chk_eq
is_lt:  or   #1, d7
chk_eq: cmp  d1, d0
        beq  is_eq
        bra  chk_gt
is_eq:  or   #2, d7
chk_gt: cmp  d1, d0
        bgt  is_gt
        bra  done
is_gt:  or   #4, d7
done:   trap
""", setup=setup)
    # the comparison itself wraps (32-bit subtract), so the reference
    # compares the wrapped difference against zero
    diff = to_signed(to_unsigned(a - b))
    expected = (1 if diff < 0 else 0) | (2 if diff == 0 else 0) \
        | (4 if diff > 0 else 0)
    assert image.regs.d[7] == expected
