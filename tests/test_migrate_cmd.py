"""Tests for the migrate command and its rsh/daemon plumbing."""

import pytest

from repro.errors import ECHILD, EINTR
from repro.programs.exitcodes import EX_FAIL, EX_TRANSIENT
from repro.programs.migrate import _run
from tests.conftest import start_counter


def finish_counter(site, host, expect):
    site.type_at(host, "two\n")
    site.run_until(lambda: expect in site.console(host))


def test_migrate_local_to_local(site):
    """Typed on brick, source brick, destination brick: no rsh."""
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    mh = site.migrate(handle.pid, "brick", "brick", typed_on="brick",
                      uid=100)
    assert mh.exit_status == 0
    restarted = site.find_restarted("brick")
    assert restarted is not None and restarted.is_vm()
    finish_counter(site, "brick", "r=3 s=3 k=3")


def test_migrate_local_dump_remote_restart(site):
    """Typed on brick, destination schooner: rsh runs restart there."""
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner",
                      typed_on="brick", uid=100)
    assert mh.exit_status == 0
    restarted = site.find_restarted("schooner")
    assert restarted is not None and restarted.is_vm()
    # the restarted process has no controlling terminal (rsh): its
    # stdio is the rsh connection, so terminal modes were lost —
    # exactly the paper's caveat about visual programs
    assert restarted.user.tty is None


def test_migrate_remote_dump_local_restart(site):
    """Typed on schooner, source brick: rsh runs dumpproc on brick;
    restart runs locally, so the terminal is preserved."""
    handle = start_counter(site)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    mh = site.migrate(handle.pid, "brick", "schooner",
                      typed_on="schooner", uid=100)
    assert mh.exit_status == 0
    restarted = site.find_restarted("schooner")
    assert restarted is not None
    assert restarted.user.tty is site.machine("schooner").console
    finish_counter(site, "schooner", "r=3 s=3 k=3")


def test_migrate_fully_remote(site):
    """Typed on the file server, both endpoints remote: two rsh uses."""
    handle = start_counter(site)
    t0 = site.wall_seconds()
    mh = site.migrate(handle.pid, "brick", "schooner",
                      typed_on="brador", uid=100)
    elapsed = site.wall_seconds() - t0
    assert mh.exit_status == 0
    assert site.find_restarted("schooner") is not None
    # two rsh connection setups dominate: tens of seconds
    assert elapsed > 15


def test_migrate_is_much_slower_remote_than_local(site):
    """The Figure 4 effect, end to end."""
    h1 = start_counter(site)
    t0 = site.wall_seconds()
    site.migrate(h1.pid, "brick", "brick", typed_on="brick", uid=100)
    local_elapsed = site.wall_seconds() - t0

    h2 = site.start("schooner", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("schooner").count("> ") >= 1)
    t0 = site.wall_seconds()
    site.migrate(h2.pid, "schooner", "brick", typed_on="brador",
                 uid=100)
    remote_elapsed = site.wall_seconds() - t0
    assert remote_elapsed > 4 * local_elapsed


def test_migrate_daemon_beats_rsh(site):
    """Ablation A1: the migrationd path avoids the rsh setup cost."""
    h1 = start_counter(site)
    t0 = site.wall_seconds()
    mh = site.migrate(h1.pid, "brick", "schooner", typed_on="brador",
                      uid=100, use_daemon=True)
    daemon_elapsed = site.wall_seconds() - t0
    assert mh.exit_status == 0
    assert site.find_restarted("schooner") is not None

    h2 = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 2
                   or site.console("brick").count("> ") >= 1)
    t0 = site.wall_seconds()
    mh2 = site.migrate(h2.pid, "brick", "schooner", typed_on="brador",
                       uid=100, use_daemon=False)
    rsh_elapsed = site.wall_seconds() - t0
    assert mh2.exit_status == 0
    assert daemon_elapsed < rsh_elapsed / 3


def test_migrate_nonexistent_process_fails(site):
    mh = site.migrate(9999, "brick", "schooner", typed_on="brick",
                      uid=100, wait_resumed=False)
    site.run_until(lambda: mh.exited)
    assert mh.exit_status == 1
    assert "dump on brick failed" in site.console("brick")


def _drive_run_until_wait(gen):
    """Advance migrate's ``_run`` to its first ("wait",) yield."""
    op = gen.send(None)
    assert op[0] == "spawn"
    op = gen.send(42)  # the spawned child's pid
    assert op == ("wait",)
    return gen


def _finish(gen, reply):
    """Feed ``reply`` to the pending wait; answer writes; return value."""
    try:
        op = gen.send(reply)
        while True:
            assert op[0] == "write"
            op = gen.send(len(op[2]))
    except StopIteration as stop:
        return stop.value


def test_run_wait_echild_is_transient_not_fail():
    """Regression: wait() returning ECHILD means the child vanished
    without us reaping it — the command's outcome is *unknown*, so
    migrate must classify it transient (dumpproc is idempotent and a
    retry is safe), not permanent.  The old code took the generic
    error branch and gave up the whole migration."""
    gen = _drive_run_until_wait(
        _run("brick", "brick", ["dumpproc", "-p", "3"], "rsh", True))
    assert _finish(gen, -ECHILD) == EX_TRANSIENT


def test_run_wait_other_errors_still_permanent():
    """The distinction matters both ways: a non-ECHILD wait error is
    still the permanent failure it always was."""
    gen = _drive_run_until_wait(
        _run("brick", "brick", ["dumpproc", "-p", "3"], "rsh", True))
    assert _finish(gen, -EINTR) == EX_FAIL


def test_run_wait_skips_other_children():
    """A reaped sibling (some earlier retry's corpse) is not the
    answer: _run keeps waiting for *its* child."""
    gen = _drive_run_until_wait(
        _run("brick", "brick", ["dumpproc", "-p", "3"], "rsh", True))
    op = gen.send((41, 0))  # somebody else's child
    assert op == ("wait",)
    assert _finish(gen, (42, 0)) == 0


def test_rsh_runs_simple_command(site):
    """rsh itself: run ps remotely, output relayed to local stdout."""
    status = site.run_command("brick", ["rsh", "schooner", "ps", "-a"],
                              uid=100)
    assert status == 0
    assert "COMMAND" in site.console("brick")


def test_rsh_to_unknown_host_fails(site):
    status = site.run_command("brick", ["rsh", "nowhere", "ps"],
                              uid=100)
    assert status == 1
    assert "connection refused" in site.console("brick")


def test_rsh_propagates_exit_status(site):
    status = site.run_command("brick",
                              ["rsh", "schooner", "kill", "badpid"],
                              uid=100)
    assert status == 1
