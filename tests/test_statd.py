"""Tests for statd, the cluster telemetry subsystem (DESIGN.md
section 13).

Three layers:

* **time-series units** — the power-of-two ring buffers behind the
  spool: capacity enforcement, wrap-around, bucketing, sparklines;
* **daemon tests** — statd end to end on the simulated site: it
  samples kernel gauges and migstat deltas, ships STATREPORTs to the
  spooler on the file server, ages out stale peers, and the whole
  subsystem is doubly opt-in (a site that never starts statd, or
  starts it with ``stat_interval_s`` at its zero default, shows no
  trace of it);
* **the analyzer** — ``critpath`` aggregates recorded migration
  timelines into a per-phase report whose durations telescope exactly
  to the end-to-end latencies, raises SLO alerts, and is surfaced by
  ``migtop`` / ``migstat -s``; everything byte-identical across the
  scan and fast engines.
"""

import json

import pytest

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import UnixError
from repro.net.statd import (SPOOL_DIR, STATD_PORT, StatReport,
                             fresh_reports, spool_path)
from repro.obs.critpath import PHASE_ORDER, percentile
from repro.obs.timeseries import Series, SeriesSet
from tests.conftest import run_native, start_counter

PHASES = ["signal", "dump", "rewrite", "transfer", "restart", "ack"]


# -- time series -------------------------------------------------------------


def test_series_capacity_must_be_a_power_of_two():
    for bad in (0, -4, 3, 6, 100):
        with pytest.raises(ValueError):
            Series("x", bad)
        with pytest.raises(ValueError):
            SeriesSet(bad)
    assert Series("x", 1).capacity == 1


def test_series_ring_wraps_and_keeps_the_newest_samples():
    series = Series("runq", 4)
    for i in range(10):
        series.record(i, i * 2)
    assert series.count == 10
    assert series.samples() == [(6, 12), (7, 14), (8, 16), (9, 18)]
    assert series.values() == [12, 14, 16, 18]
    assert series.last() == 18


def test_series_clamps_values_to_u32():
    series = Series("x", 2)
    series.record(-5, -7)
    series.record(1 << 40, 1 << 40)
    assert series.samples() == [(0, 0),
                                ((1 << 32) - 1, (1 << 32) - 1)]


def test_series_buckets_and_sparkline_are_power_of_two():
    series = Series("x", 8)
    for value in (0, 1, 1, 3, 7, 200):
        series.record(0, value)
    assert series.buckets() == {0: 1, 1: 2, 2: 1, 3: 1, 8: 1}
    spark = series.sparkline()
    assert len(spark) == 6
    assert spark[0] == " " and spark[-1] == "%"


def test_series_snapshot_is_json_ready_and_deterministic():
    series_set = SeriesSet(4)
    series_set.record("b", 1, 2)
    series_set.record("a", 1, 3)
    snap = series_set.snapshot()
    assert [s["name"] for s in snap] == ["b", "a"]  # insertion order
    assert json.dumps(snap) == json.dumps(series_set.snapshot())


# -- the wire format (property damage tests live in
#    tests/test_formats_property.py) ----------------------------------------


def test_statreport_round_trips_through_a_series_set():
    series_set = SeriesSet(4)
    for i in range(9):
        series_set.record("runq", i, i)
    series_set.record("procs", 3, 12)
    report = StatReport.from_series("brick", 9, 4, series_set)
    blob = report.pack()
    again = StatReport.unpack(blob)
    assert again == report and again.pack() == blob
    rebuilt = again.to_series()
    assert rebuilt.get("runq").count == 9   # samples *ever*
    assert rebuilt.get("runq").values() == [5, 6, 7, 8]
    assert rebuilt.get("procs").last() == 12


def test_fresh_reports_drops_old_and_keeps_future_reports():
    reports = {
        "brick": StatReport("brick", 100, 0),
        "schooner": StatReport("schooner", 60, 0),   # 40s old
        "brador": StatReport("brador", 103, 0),      # clock ahead
    }
    fresh = fresh_reports(reports, now_s=100, stale_s=30)
    assert sorted(fresh) == ["brador", "brick"]


def test_percentile_is_nearest_rank():
    assert percentile([], 95) == 0
    assert percentile([7], 50) == 7
    values = list(range(1, 101))
    assert percentile(values, 50) == 50
    assert percentile(values, 95) == 95
    assert percentile([3, 1, 2], 100) == 3


# -- the daemon on the simulated site ----------------------------------------

#: shrunk knobs so daemon runs stay cheap in virtual time
STATD_KNOBS = dict(stat_interval_s=1.0, stat_rounds=4,
                   stat_stale_s=30.0, net_read_timeout_s=5.0)


def _statd_site(engine="fast", **overrides):
    knobs = dict(STATD_KNOBS)
    knobs.update(overrides)
    site = MigrationSite(costs=CostModel(**knobs), engine=engine)
    site.run_quiet()
    return site


def _await_statd(site, handles, drain_us=3_000_000):
    """Run until every statd exited (the spooler blocks in accept
    forever), plus a drain window so in-flight reports land."""
    statds = [h for h in handles if h.proc.command == "statd"]
    site.run_until(lambda: all(h.exited for h in statds),
                   max_steps=80_000_000)
    site.run(until_us=site.cluster.wall_time_us() + drain_us,
             max_steps=80_000_000)
    return statds


def test_statd_samples_and_spools_to_the_server():
    site = _statd_site()
    site.cluster.tracer.enable("statd")
    start_counter(site)
    handles = site.start_statd()
    statds = _await_statd(site, handles)

    assert [h.exit_status for h in statds] == [0, 0]
    perf = site.cluster.perf
    assert perf.st_samples == 8          # 4 rounds x 2 daemons
    assert perf.st_reports_sent == 8
    assert perf.st_reports_recv == 8
    assert perf.st_reports_dropped == 0
    server = site.machine("brador")
    for host in ("brick", "schooner"):
        blob = server.fs.read_file(spool_path(SPOOL_DIR, host))
        report = StatReport.unpack(blob)
        assert report.host == host and report.seq == 3
        names = [name for name, __, __ in report.series]
        for expected in ("runq", "procs", "socks", "hb_suspects",
                         "dumps", "restarts"):
            assert expected in names
        # the counter machinery saw every ring sample
    assert perf.st_series_points == 64   # 8 points x 8 rounds
    marks = [e for e in site.cluster.tracer.events
             if e["cat"] == "statd"]
    assert len(marks) == 8
    assert {e["name"] for e in marks} == {"sample"}


def test_statd_gauges_reflect_kernel_state():
    site = _statd_site()
    start_counter(site)   # one live VM job on brick
    gauges = []

    def prober(argv, env):
        gauges.append((yield ("statgauges",)))
        return 0

    handle = run_native(site.machine("brick"), prober)
    assert handle.exit_status == 0
    g = gauges[0]
    assert g["procs"] >= 3   # counter + daemons + the prober
    assert g["socks"] >= 2   # rshd + migrationd well-known ports
    assert g["hb_suspects"] == 0
    assert set(g) == {"runq", "procs", "socks", "hb_suspects"}


def test_statd_recv_spools_a_wire_report_and_ages_stale_peers():
    site = _statd_site(stat_stale_s=1.0)
    server = site.machine("brador")
    server.spawn("/bin/statd-recv", uid=0, cwd="/tmp")
    site.run(until_us=site.cluster.wall_time_us() + 200_000)
    # a long-quiet peer is already in the spool
    ghost = StatReport("ghost", 0, 0, [("runq", 1, ((0, 1),))])
    server.fs.install_file(spool_path(SPOOL_DIR, "ghost"),
                           ghost.pack())
    # carry virtual time past the staleness horizon (time only moves
    # while something is scheduled)
    def sleeper(argv, env):
        yield ("sleep", 3)
        return 0

    run_native(server, sleeper, name="sleeper")
    report = StatReport("schooner", 1000, 7,
                        [("runq", 3, ((1000, 2),))])
    blob = report.pack()

    def sender(argv, env):
        from repro.programs.base import write_all
        sock = yield ("socket",)
        result = yield ("connect", sock, "brador", STATD_PORT)
        assert result == 0
        yield from write_all(sock, blob)
        yield ("close", sock)
        return 0

    handle = run_native(site.machine("schooner"), sender,
                        name="sendreport")
    assert handle.exit_status == 0
    site.run(until_us=site.cluster.wall_time_us() + 2_000_000)
    assert server.fs.read_file(spool_path(SPOOL_DIR,
                                          "schooner")) == blob
    assert site.cluster.perf.st_reports_recv == 1
    # the ghost's ancient report was aged out by the spooler
    assert site.cluster.perf.st_stale_drops == 1
    with pytest.raises(UnixError):
        server.fs.read_file(spool_path(SPOOL_DIR, "ghost"))


def test_statd_off_leaves_no_trace():
    """Doubly opt-in: even a *spawned* statd exits silently when
    ``stat_interval_s`` sits at its zero default, and a site that
    never starts one shows no spool, no st_* counts, no events."""
    site = MigrationSite()
    site.cluster.tracer.enable()
    site.run_quiet()
    handles = site.start_statd()   # interval knob still 0.0
    site.run_until(lambda: all(h.exited for h in handles
                               if h.proc.command == "statd"))
    assert all(h.exit_status == 0 for h in handles
               if h.proc.command == "statd")
    snapshot = site.cluster.perf.snapshot()
    assert all(v == 0 for k, v in snapshot.items()
               if k.startswith("st_"))
    for name in ("brick", "schooner"):
        with pytest.raises(UnixError):
            site.machine(name).fs.resolve_local(SPOOL_DIR)
    assert not [e for e in site.cluster.tracer.events
                if e.get("cat") in ("statd", "alert")]


def test_statd_fault_namespace_is_allowed(brick):
    results = []

    def prober(argv, env):
        results.append((yield ("fault_point", "statd.send", "peer")))
        results.append((yield ("fault_data", "statd.spool", b"ok",
                               "")))
        return 0

    handle = run_native(brick, prober)
    assert handle.exit_status == 0
    assert results == [0, b"ok"]


# -- engine identity ---------------------------------------------------------


def _telemetry_run(engine):
    """One traced telemetry run: hogs + a migration + statd."""
    site = _statd_site(engine=engine)
    site.cluster.tracer.enable("statd", "alert", "migrate", "dump",
                               "restart")
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0
    statd_handles = site.start_statd()
    _await_statd(site, statd_handles)
    server = site.machine("brador")
    spool = {}
    for host in ("brick", "schooner"):
        try:
            spool[host] = server.fs.read_file(
                spool_path(SPOOL_DIR, host))
        except UnixError:
            spool[host] = None
    snapshot = site.cluster.perf.snapshot()
    counters = {k: v for k, v in snapshot.items()
                if k.startswith("st_")}
    reports = []

    def prober(argv, env):
        reports.append((yield ("critpath",)))
        return 0

    run_native(site.machine("brick"), prober)
    return {
        "spool": spool,
        "counters": counters,
        "clock_us": {name: site.machine(name).clock.now_us
                     for name in ("brick", "schooner", "brador")},
        "trace": site.cluster.tracer.to_jsonl(),
        "critpath": json.dumps(reports[0], sort_keys=True),
    }


def test_telemetry_is_byte_identical_across_engines():
    scan = _telemetry_run("scan")
    fast = _telemetry_run("fast")
    assert scan["spool"] == fast["spool"]
    assert scan["counters"] == fast["counters"]
    assert scan["clock_us"] == fast["clock_us"]
    assert scan["trace"] == fast["trace"]
    assert scan["critpath"] == fast["critpath"]
    assert scan["spool"]["brick"] is not None


# -- the critical-path analyzer ----------------------------------------------


def _migrated_site(engine="fast", categories=("migrate", "dump",
                                              "restart")):
    site = MigrationSite(engine=engine)
    site.cluster.tracer.enable(*categories)
    site.run_quiet()
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0
    site.run_quiet()
    return site, "brick:%d" % handle.pid


def _critpath(site, host="brick"):
    reports = []

    def prober(argv, env):
        reports.append((yield ("critpath",)))
        return 0

    handle = run_native(site.machine(host), prober)
    assert handle.exit_status == 0
    return reports[0]


def test_critpath_phases_telescope_to_end_to_end():
    site, mig = _migrated_site()
    report = _critpath(site)
    assert report["migrations"] == 1
    assert [row["phase"] for row in report["phases"]] == PHASES
    assert list(PHASE_ORDER) == PHASES
    total = sum(row["total_us"] for row in report["phases"])
    assert total == report["end_to_end"]["total_us"]
    timeline = site.cluster.tracer.migration_timeline(mig)
    assert report["end_to_end"]["max_us"] \
        == timeline["end_to_end_us"]
    assert abs(sum(row["share"] for row in report["phases"])
               - 1.0) < 1e-5
    assert report["dominant"] in PHASES
    assert report["hosts"] == {"brick": report["end_to_end"]}
    assert report["pairs"] == {
        "brick->schooner": report["end_to_end"]}
    assert report["alerts"] == []   # default SLOs are generous


def test_critpath_with_no_timelines_is_empty():
    site = MigrationSite()
    site.run_quiet()
    report = _critpath(site)
    assert report["migrations"] == 0
    assert report["phases"] == []
    assert report["dominant"] is None
    assert report["end_to_end"]["count"] == 0


def test_critpath_raises_slo_alerts():
    """With an absurdly tight latency SLO, one migration trips the
    alert: an event in the ``alert`` category plus st_alerts."""
    site, __ = _migrated_site()
    site.cluster.costs.slo_migrate_p95_us = 1.0
    site.cluster.tracer.enable("migrate", "dump", "restart", "alert")
    report = _critpath(site)
    assert [a["name"] for a in report["alerts"]] == ["migrate_p95_us"]
    assert report["alerts"][0]["value"] \
        == report["end_to_end"]["p95_us"]
    assert site.cluster.perf.st_alerts == 1
    alerts = [e for e in site.cluster.tracer.events
              if e["cat"] == "alert"]
    assert len(alerts) == 1 and alerts[0]["name"] == "migrate_p95_us"


# -- the commands ------------------------------------------------------------


def test_migtop_shows_hosts_and_critical_path():
    site = _statd_site()
    site.cluster.tracer.enable("migrate", "dump", "restart", "statd")
    handle = start_counter(site)
    mh = site.migrate(handle.pid, "brick", "schooner", uid=100)
    assert mh.exit_status == 0
    _await_statd(site, site.start_statd())
    status = site.run_command("brick", ["migtop", "-p"], uid=100)
    assert status == 0
    out = site.console("brick")
    assert "HOST" in out and "RUNQ HISTORY" in out
    assert "brick" in out and "schooner" in out
    assert "alerts: none" in out
    assert "critical path (1 migrations):" in out
    for phase in PHASES:
        assert phase in out
    assert "dominant phase:" in out
    assert "brick->schooner" in out


def test_migtop_without_a_spool_says_so():
    site = MigrationSite()
    site.run_quiet()
    status = site.run_command("brick", ["migtop"], uid=100)
    assert status == 0
    assert "no statd spool" in site.console("brick")


def test_migstat_s_lists_the_spool():
    site = _statd_site()
    _await_statd(site, site.start_statd())
    status = site.run_command("brick", ["migstat", "-s"], uid=100)
    assert status == 0
    out = site.console("brick")
    assert "SPOOL" in out and "SERIES" in out
    assert "brick" in out and "schooner" in out


def test_migstat_s_with_empty_spool(site):
    status = site.run_command("brick", ["migstat", "-s"], uid=100)
    assert status == 0
    assert "no statd spool" in site.console("brick")
