"""Tests for the shell and the small userland."""

import pytest

from repro.programs.shell import tokenize, parse_pipeline


# -- parsing --------------------------------------------------------------


def test_tokenize_isolates_metacharacters():
    assert tokenize("cat a|wc>out") == ["cat", "a", "|", "wc", ">",
                                        "out"]
    assert tokenize("echo hi >> log") == ["echo", "hi", ">>", "log"]
    assert tokenize("sleeper &") == ["sleeper", "&"]


def test_parse_simple_command():
    commands = parse_pipeline(["echo", "a", "b"])
    assert len(commands) == 1
    assert commands[0].argv == ["echo", "a", "b"]


def test_parse_pipeline_stages():
    commands = parse_pipeline(tokenize("cat f | wc | wc"))
    assert [c.argv[0] for c in commands] == ["cat", "wc", "wc"]


def test_parse_redirections():
    commands = parse_pipeline(tokenize("wc < in > out"))
    assert commands[0].stdin_path == "in"
    assert commands[0].stdout_path == "out"
    assert not commands[0].stdout_append
    commands = parse_pipeline(tokenize("echo x >> log"))
    assert commands[0].stdout_append


def test_parse_errors():
    assert isinstance(parse_pipeline(tokenize("| wc")), str)
    assert isinstance(parse_pipeline(tokenize("echo >")), str)
    assert isinstance(parse_pipeline(tokenize("cat f |")), str)


# -- execution through the site ------------------------------------------------


def sh(site, line, host="brick", uid=100):
    return site.run_command(host, ["sh", "-c", line], uid=uid)


def test_echo_to_console(site):
    assert sh(site, "echo hello world") == 0
    assert "hello world" in site.console("brick")


def test_redirect_and_cat(site):
    assert sh(site, "echo first > /tmp/log") == 0
    assert sh(site, "echo second >> /tmp/log") == 0
    brick = site.machine("brick")
    assert brick.fs.read_file("/tmp/log") == b"first\nsecond\n"
    brick.console.clear_output()
    assert sh(site, "cat /tmp/log") == 0
    assert "first\nsecond" in site.console("brick")


def test_input_redirection(site):
    brick = site.machine("brick")
    brick.fs.install_file("/tmp/data", b"a b c\nd e\n")
    brick.console.clear_output()
    assert sh(site, "wc < /tmp/data") == 0
    # 2 lines, 5 words, 10 bytes
    assert "2" in site.console("brick")
    assert "5" in site.console("brick")
    assert "10" in site.console("brick")


def test_pipeline(site):
    brick = site.machine("brick")
    brick.fs.install_file("/tmp/data", b"one\ntwo\nthree\n")
    assert sh(site, "cat /tmp/data | wc > /tmp/counted") == 0
    out = brick.fs.read_file("/tmp/counted").decode()
    lines, words, chars = out.split()
    assert (lines, words, chars) == ("3", "3", "14")


def test_three_stage_pipeline(site):
    brick = site.machine("brick")
    brick.fs.install_file("/tmp/data", b"x\n")
    assert sh(site, "cat /tmp/data | cat | cat > /tmp/copied") == 0
    assert brick.fs.read_file("/tmp/copied") == b"x\n"


def test_sequencing_and_exit_status(site):
    assert sh(site, "true ; true") == 0
    assert sh(site, "false") == 1
    assert sh(site, "false ; true") == 0
    assert sh(site, "true ; false") == 1


def test_pipeline_status_is_last_stage(site):
    assert sh(site, "false | true") == 0
    assert sh(site, "true | false") == 1


def test_unknown_command(site):
    assert sh(site, "frobnicate") == 1
    assert "frobnicate" in site.console("brick")


def test_cd_builtin_affects_children(site):
    assert sh(site, "cd /usr/tmp ; pwd > /tmp/where") == 0
    assert site.machine("brick").fs.read_file("/tmp/where") == \
        b"/usr/tmp\n"


def test_cd_to_missing_directory(site):
    assert sh(site, "cd /nope") == 1
    assert "cd: /nope" in site.console("brick")


def test_background_and_wait(site):
    """& returns immediately; wait reaps."""
    brick = site.machine("brick")
    t0 = brick.clock.now_us
    assert sh(site, "cpuhog 30000 & wait") == 0
    # the hog really ran (wait blocked until it finished)
    assert "checksum=" in site.console("brick")


def test_interactive_shell_session(site):
    """Drive an interactive shell through the console."""
    brick = site.machine("brick")
    handle = brick.spawn("/bin/sh", ["sh"], uid=100, cwd="/tmp")
    site.run_until(lambda: site.console("brick").endswith("$ "))
    site.type_at("brick", "echo interactive\n")
    site.run_until(lambda: "interactive" in site.console("brick"))
    site.type_at("brick", "exit\n")
    site.run_until(lambda: handle.exited)
    assert handle.exit_status == 0


def test_rsh_runs_pipelines_remotely(site):
    """rshd hands the command line to sh -c, so pipelines work."""
    brick = site.machine("brick")
    schooner = site.machine("schooner")
    schooner.fs.install_file("/tmp/remote.txt", b"p\nq\n")
    status = site.run_command(
        "brick", ["rsh", "schooner", "cat", "/tmp/remote.txt",
                  "|", "wc"], uid=100)
    assert status == 0
    assert "2" in site.console("brick")
