"""The crash-point sweep for crash-atomic migrations (DESIGN.md §12).

The exactly-once contract: with the ``migration_ledger`` knob on, a
migration either completes (one live copy at the destination — or,
after a sweep restage, on the sweeper's host), rolls back (one live
copy at the source), or aborts before capture (the original keeps
running).  *Never zero live copies of a captured job, never two* — no
matter which host of {source, destination, orchestrator} crashes at
which ledger phase boundary.

The matrix below crashes each role at every boundary — ``ledger.put``
(before the intent record), ``ledger.advance`` at the DUMPED /
RESTARTING / DONE writes, and ``ledger.claim`` (inside the recovery
sweep itself) — heals the cluster, runs ``recoveryd -m`` sweeps, and
asserts:

* exactly the expected live copy (host and kind) — or, for the two
  documented carve-outs, zero: a source that dies *with* the victim
  before capture, and a destination that dies *after* the commit
  (both are plain host crashes outside the migration window);
* the ledger record and every claim/archive file reaped;
* no dump files left anywhere;
* the identical run under BOTH cluster engines (consoles, clocks,
  counters and trace byte-for-byte).
"""

import pytest

from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import UnixError
from repro.programs import start_network_daemons

#: the ledger on, detection/staleness shrunk so sweeps run promptly,
#: retry/poll knobs shrunk exactly as in the chaos tests
KNOBS = dict(migration_ledger=True, ledger_stale_s=3.0,
             hb_interval_s=1.0, hb_timeout_s=3.0,
             migrate_backoff_s=0.5, connect_backoff_s=0.5,
             net_read_timeout_s=5.0, restart_poll_tries=20,
             restart_poll_sleep_s=0.5, dump_poll_tries=10,
             dump_poll_sleep_s=0.5)

LEDGER_DIR = "/n/brador/usr/spool/migledger"
#: the same directory as the file server's local fs sees it
LEDGER_LOCAL = "/usr/spool/migledger"

WORKSTATIONS = ("brick", "schooner", "tanker")
ALL_HOSTS = WORKSTATIONS + ("brador",)

#: low-volume categories only (the same set as the chaos matrix): the
#: JSONL render lands in the cross-engine summary
TRACE_CATEGORIES = ("fault", "hb", "dump", "restart", "migrate",
                    "recovery", "net.sock")

#: iterations that keep the victim cpuhog alive past the longest
#: cell.  The victim must be a job that survives a *relayed* restart:
#: migrationd's helper runs restart detached with the socket for
#: stdio, so a restored process that reads the terminal (the counter)
#: sees EOF from /dev/null and exits — a cpuhog never touches stdin.
VICTIM_ITERS = 50_000_000

#: The crash matrix.  Each cell: (fault rules, expected live copy).
#: migrate runs on tanker (the orchestrator), moving a cpuhog from
#: brick (source) to schooner (destination).  A rule without target=
#: crashes the host that hits the site — tanker for put/advance
#: (migrate) and the sweeper's host for claim; target= crashes a
#: bystander while the protected write goes through.  skip= selects
#: the advance boundary: 0 = DUMPED, 1 = RESTARTING, 2 = DONE.
#: Expected copies: ("<host>", "aout") — the migrated image runs
#: there; ("brick", "orig") — the intent aborted pre-capture and the
#: original job never stopped; None — a documented carve-out.
CELLS = [
    # -- ledger.put: before the intent record exists -------------------
    ("put-orchestrator-dies", "ledger.put crash n=1",
     ("brick", "orig")),
    ("put-source-dies", "ledger.put crash n=1 target=brick",
     None),  # carve-out: the victim died with its host, pre-capture
    ("put-destination-dies", "ledger.put crash n=1 target=schooner",
     ("brick", "aout")),  # ledgered rollback to the source
    # -- ledger.advance to DUMPED --------------------------------------
    ("dumped-orchestrator-dies", "ledger.advance crash n=1",
     ("tanker", "aout")),  # sweep restages from the archive
    ("dumped-source-dies", "ledger.advance crash n=1 target=brick",
     ("tanker", "aout")),  # source reboot wipes /usr/tmp; archive wins
    ("dumped-destination-dies",
     "ledger.advance crash n=1 target=schooner",
     ("brick", "aout")),
    # -- ledger.advance to RESTARTING ----------------------------------
    ("restarting-orchestrator-dies", "ledger.advance crash n=1 skip=1",
     ("tanker", "aout")),
    ("restarting-source-dies",
     "ledger.advance crash n=1 skip=1 target=brick",
     ("tanker", "aout")),
    ("restarting-destination-dies",
     "ledger.advance crash n=1 skip=1 target=schooner",
     ("brick", "aout")),
    # -- ledger.advance to DONE (the restart already landed) -----------
    ("done-orchestrator-dies", "ledger.advance crash n=1 skip=2",
     ("schooner", "aout")),  # sweep's probe finds the copy live
    ("done-source-dies", "ledger.advance crash n=1 skip=2 target=brick",
     ("schooner", "aout")),
    ("done-destination-dies",
     "ledger.advance crash n=1 skip=2 target=schooner",
     None),  # carve-out: committed, then the destination host crashed
    # -- ledger.claim: the recovery sweep itself crashes ---------------
    #    (the first rule kills the orchestrator at the DUMPED advance
    #    so that a sweep becomes necessary at all)
    ("claim-sweeper-dies",
     "ledger.advance crash n=1; ledger.claim crash n=1",
     ("tanker", "aout")),
    ("claim-source-dies",
     "ledger.advance crash n=1; ledger.claim crash n=1 target=brick",
     ("tanker", "aout")),
    ("claim-destination-dies",
     "ledger.advance crash n=1; ledger.claim crash n=1 target=schooner",
     ("tanker", "aout")),
]


def _site(engine, **overrides):
    knobs = dict(KNOBS, **overrides)
    site = MigrationSite(costs=CostModel(**knobs),
                         workstations=WORKSTATIONS, engine=engine)
    site.cluster.tracer.enable(*TRACE_CATEGORIES)
    site.run_quiet()
    # the ledger spool is operator-provisioned, like a real /usr/spool
    # subdirectory (see docs/man/migledger.5.md): world-writable so an
    # unprivileged migrate can create its record directory inside
    site.machine("brador").fs.makedirs(LEDGER_LOCAL, mode=0o777)
    return site


def _start_victim(site):
    """The migration victim: a cpu-bound job on the source host."""
    return site.start("brick", "/bin/cpuhog",
                      ["cpuhog", str(VICTIM_ITERS)], uid=100)


def _drain(site, seconds=3.0):
    """A bounded drain window: in-flight relays and restarts land.

    ``run_quiet`` would raise with a live cpuhog (the cluster never
    goes idle), so every settling pause is a fixed slice of virtual
    time — identical under both engines.
    """
    site.run(until_us=site.cluster.wall_time_us()
             + int(seconds * 1_000_000),
             max_steps=120_000_000)


def _copies(site, victim_pid):
    """Every live copy of the victim, as (host, kind) tuples."""
    token = "a.out%d" % victim_pid
    found = []
    for name in WORKSTATIONS:
        machine = site.machine(name)
        if not machine.running:
            continue
        for proc in machine.kernel.procs.all_procs():
            if proc.zombie() or not proc.is_vm():
                continue
            if proc.command == token:
                found.append((name, "aout"))
            elif name == "brick" and proc.pid == victim_pid \
                    and proc.command == "cpuhog":
                found.append((name, "orig"))
    return tuple(sorted(found))


def _ledger_leftovers(site):
    """Every file still inside the ledger on the server's own disk."""
    fs = site.machine("brador").fs
    try:
        root = fs.resolve_local(LEDGER_LOCAL)
    except UnixError:
        return ()
    found = []
    for sub in sorted(fs.entry_names(root)):
        try:
            subdir = fs.resolve_local("%s/%s" % (LEDGER_LOCAL, sub))
        except UnixError:
            continue
        found.extend("%s/%s" % (sub, entry)
                     for entry in sorted(fs.entry_names(subdir)))
    return tuple(found)


def _orphan_dump_files(site):
    found = []
    for name in ALL_HOSTS:
        machine = site.machine(name)
        try:
            tmp = machine.fs.resolve_local("/usr/tmp")
        except UnixError:
            continue
        for entry in sorted(machine.fs.entry_names(tmp)):
            if entry.startswith(("a.out", "files", "stack")):
                found.append("%s:%s" % (name, entry))
    return tuple(found)


def _heal_and_sweep(site, rounds=8, attempts=3):
    """Reboot whatever died, sweep the ledger, repeat until settled.

    One sweeper at a time (each bounded to ``rounds`` scan rounds), so
    claim-epoch growth stays deterministic; a sweeper that crashes
    with its host is replaced on the next attempt.
    """
    for __ in range(attempts):
        for name in WORKSTATIONS:
            machine = site.machine(name)
            if not machine.running:
                site.cluster.reboot_host(name)
                start_network_daemons(machine)
        _drain(site, 2.0)
        sweeper = site.machine("tanker").spawn(
            "/bin/recoveryd", ["recoveryd", "-m", LEDGER_DIR,
                               "-i", "1", "-n", str(rounds)],
            uid=0, cwd="/tmp")
        site.run_until(
            lambda: sweeper.exited
            or not site.machine("tanker").running,
            max_steps=120_000_000)
        if sweeper.exited and not any(
                name.endswith("/rec")
                for name in _ledger_leftovers(site)):
            break
    # bring any bystander that died during the final sweep back too:
    # the exactly-once count below is over a fully healed cluster
    for name in WORKSTATIONS:
        machine = site.machine(name)
        if not machine.running:
            site.cluster.reboot_host(name)
            start_network_daemons(machine)
    _drain(site, 3.0)


def _run_cell(engine, spec):
    site = _site(engine)
    victim = _start_victim(site)
    plan = site.cluster.inject_faults(spec, seed=77)
    handle = site.migrate(victim.pid, "brick", "schooner",
                          typed_on="tanker", use_daemon=True,
                          wait_resumed=False)
    site.run_until(
        lambda: handle.exited or not site.machine("tanker").running,
        max_steps=120_000_000)
    _drain(site, 3.0)
    _heal_and_sweep(site)

    perf = site.cluster.perf
    snapshot = perf.snapshot()
    return {
        "copies": _copies(site, victim.pid),
        "leftovers": _ledger_leftovers(site),
        "orphans": _orphan_dump_files(site),
        "fired": plan.fired(),
        "ml": {key: value for key, value in snapshot.items()
               if key.startswith("ml_")},
        "host_crashes": perf.host_crashes,
        "host_reboots": perf.host_reboots,
        "clocks_us": tuple(site.machine(n).clock.now_us
                           for n in ALL_HOSTS),
        "consoles": tuple(site.console(n) for n in ALL_HOSTS),
        "trace_jsonl": site.cluster.tracer.to_jsonl(),
    }


@pytest.mark.parametrize("name,spec,expected", CELLS,
                         ids=[c[0] for c in CELLS])
def test_crash_point_cell_on_both_engines(name, spec, expected):
    summaries = {}
    for engine in ("scan", "fast"):
        summary = _run_cell(engine, spec)
        summaries[engine] = summary

        want = () if expected is None else (expected,)
        assert summary["copies"] == want, \
            "%s/%s: live copies %r, want %r" \
            % (name, engine, summary["copies"], want)
        assert summary["leftovers"] == (), \
            "%s/%s: unreaped ledger files %r" \
            % (name, engine, summary["leftovers"])
        assert summary["orphans"] == (), \
            "%s/%s: leftover dump files %r" \
            % (name, engine, summary["orphans"])
        assert summary["fired"], \
            "%s/%s: the fault plan never fired" % (name, engine)

    assert summaries["scan"] == summaries["fast"], \
        "%s: engines disagree" % name


# -- the no-ledger baseline (the documented lost-job window) ---------------
#
# With the ledger off, an orchestrator-host crash between the dump and
# the restart loses the job outright: the victim is dead, its dump
# files are orphaned on the source, and no daemon is responsible for
# them.  The test pair pins that baseline AND the ledger's win on the
# byte-for-byte identical crash.


def _orchestrator_death_mid_pipeline(engine, ledger_on):
    site = _site(engine, migration_ledger=ledger_on)
    victim = _start_victim(site)
    handle = site.migrate(victim.pid, "brick", "schooner",
                          typed_on="tanker", use_daemon=True,
                          wait_resumed=False)

    def dump_landed():
        try:
            site.machine("brick").fs.resolve_local(
                "/usr/tmp/a.out%d" % victim.pid)
            return True
        except UnixError:
            return False

    site.run_until(dump_landed, max_steps=120_000_000)
    site.cluster.crash_host("tanker")
    _heal_and_sweep(site)
    return site, victim


@pytest.mark.parametrize("engine", ("scan", "fast"))
def test_orchestrator_death_loses_the_job_without_the_ledger(engine):
    site, victim = _orchestrator_death_mid_pipeline(engine,
                                                    ledger_on=False)
    # the documented loss: nobody runs the job anywhere...
    assert _copies(site, victim.pid) == ()
    # ...and its dump files rot on the source with no owner
    orphans = _orphan_dump_files(site)
    assert orphans == ("brick:a.out%d" % victim.pid,
                       "brick:files%d" % victim.pid,
                       "brick:stack%d" % victim.pid)
    assert site.cluster.perf.ml_sweeps == 0


@pytest.mark.parametrize("engine", ("scan", "fast"))
def test_orchestrator_death_recovers_the_job_with_the_ledger(engine):
    site, victim = _orchestrator_death_mid_pipeline(engine,
                                                    ledger_on=True)
    # the same crash, ledgered: the sweep restages the archived dump
    # on the surviving sweeper host — exactly one live copy, no debris
    assert _copies(site, victim.pid) == (("tanker", "aout"),)
    assert _orphan_dump_files(site) == ()
    assert _ledger_leftovers(site) == ()
    assert site.cluster.perf.ml_sweeps == 1
    assert "recoveryd: recovered brick:%d" % victim.pid \
        in site.console("tanker")


# -- unit drives: fence atomicity and the fenced-restage discipline --------
#
# These run the ledger coroutines against a scripted kernel, pinning
# windows the integration matrix cannot schedule deterministically: a
# claim landing *inside* an advance's check-then-rename pair, and a
# sweeper fenced between its restage and its DONE advance.

from repro.core.formats import (ChunkManifest, FilesInfo,  # noqa: E402
                                dump_file_names)
from repro.kernel.constants import O_RDONLY  # noqa: E402
from repro.kernel.signals import SIGKILL  # noqa: E402
from repro.net.migledger import (LEDGER_FENCED, MigRecord,  # noqa: E402
                                 PH_DONE, PH_DUMPED, PH_RESTARTING,
                                 ledger_advance)
from repro.programs.recoveryd import _sweep_one  # noqa: E402
from repro.store import DIGEST_BYTES  # noqa: E402


def _drive(gen, handler):
    """Run a syscall coroutine against ``handler``; (value, calls)."""
    calls = []
    try:
        request = next(gen)
        while True:
            calls.append(request)
            request = gen.send(handler(request))
    except StopIteration as done:
        return done.value, calls


def test_advance_tags_scratch_file_with_the_fence_epoch():
    """Concurrent writers must not share one scratch name: each
    advance stages through rec.<fence>.tmp, unique among live
    writers (rec.tmp would let a loser's rename ship the winner's
    bytes)."""
    record = MigRecord("brick", 7, "schooner", "tanker",
                       phase=PH_DUMPED)

    def handler(request):
        if request[0] == "readdir":
            return ("rec",)
        if request[0] == "time":
            return 42
        if request[0] == "open":
            return 3
        if request[0] == "write":
            return len(request[2])
        return 0

    result, calls = _drive(
        ledger_advance("L", record, PH_RESTARTING, fence_epoch=5),
        handler)
    assert result == 0
    opens = [c for c in calls if c[0] == "open"]
    assert opens[0][1] == "L/rec.5.tmp"
    assert ("rename", "L/rec.5.tmp", "L/rec") in calls


def test_advance_stands_down_when_claimed_mid_write():
    """A claim created between the advance's pre-check readdir and
    its rename is invisible to the first check; the post-write
    re-check must turn it into a stand-down instead of letting a
    fenced writer keep driving the pipeline."""
    record = MigRecord("brick", 7, "schooner", "tanker",
                       phase=PH_DUMPED)
    readdirs = [("rec",), ("rec", "claim.1")]

    def handler(request):
        if request[0] == "readdir":
            return readdirs.pop(0)
        if request[0] == "time":
            return 42
        if request[0] == "open":
            return 3
        if request[0] == "write":
            return len(request[2])
        return 0

    result, calls = _drive(ledger_advance("L", record, PH_DONE),
                           handler)
    assert result == LEDGER_FENCED
    assert not readdirs, "the post-write fence re-check never ran"
    # the (unavoidable) write happened but was never advertised
    assert not any(c[0] == "perf_note" for c in calls)


class _SweepScript:
    """A scripted kernel for one ``_sweep_one`` run.

    The record (brick:7 -> schooner, orchestrator dead) is at DUMPED
    with its archive committed; every probe comes back clear, the
    restage succeeds, and then the DONE advance finds ``claim.2`` —
    a peer superseded this sweeper mid-restage.  ``final_record`` is
    what the fenced sweeper re-reads.
    """

    DIRECTORY = "%s/brick:7" % LEDGER_DIR

    def __init__(self, final_record):
        base = MigRecord("brick", 7, "schooner", "gone",
                         phase=PH_DUMPED, epoch=0, time_s=0)
        self.rec_blobs = [base.pack(), base.pack(),
                          final_record.pack()]
        digests = [bytes([i]) * DIGEST_BYTES for i in (1, 2, 3)]
        files_blob = FilesInfo(hostname="brick", cwd="/tmp").pack()
        self.store = {digests[0]: b"AOUT",
                      digests[1]: files_blob,
                      digests[2]: b"STK!"}
        self.manifests = {
            "%s/dump.aout" % self.DIRECTORY:
                ChunkManifest(4096, 4, digests[:1]).pack(),
            "%s/dump.files" % self.DIRECTORY:
                ChunkManifest(4096, len(files_blob),
                              digests[1:2]).pack(),
            "%s/dump.stack" % self.DIRECTORY:
                ChunkManifest(4096, 4, digests[2:]).pack(),
        }
        names = ("rec", "dump.aout", "dump.files", "dump.stack",
                 "dump.ok")
        self.readdirs = [names,                           # claim
                         names + ("claim.1",),            # RESTARTING pre
                         names + ("claim.1",),            # RESTARTING post
                         names + ("claim.1", "claim.2")]  # DONE: fenced
        self.fds = {}
        self.next_fd = 3

    def __call__(self, request):
        name = request[0]
        if name == "readdir":
            return self.readdirs.pop(0)
        if name == "hb_status":
            return 1  # orchestrator and destination both suspected
        if name == "stat":
            return 0  # dump.ok present (never used as an object)
        if name == "time":
            return 100
        if name == "sysctl":
            return {"restart_poll_tries": 1,
                    "restart_poll_sleep_s": 0}[request[1]]
        if name == "open":
            path, flags = request[1], request[2]
            if path == dump_file_names(7)[0] and flags == O_RDONLY:
                return -2  # -ENOENT: the restart consumed the dump
            if path.endswith("/rec"):
                blob = self.rec_blobs.pop(0)
            else:
                blob = self.manifests.get(path, b"")
            fd, self.next_fd = self.next_fd, self.next_fd + 1
            self.fds[fd] = blob
            return fd
        if name == "read":
            data, self.fds[request[1]] = self.fds[request[1]], b""
            return data
        if name == "write":
            return len(request[2])
        if name == "store_get":
            return self.store[request[1]]
        if name == "spawn":
            return 99  # the restart child's pid
        return 0


def test_sweeper_fenced_after_restage_kills_its_copy():
    """The exactly-once discipline when a peer claims mid-restage:
    unless the new owner's record shows it committed to this very
    copy, the superseded sweeper must kill the copy it just made —
    the peer probed 'clear' before the copy appeared and is restaging
    its own."""
    claimant = MigRecord("brick", 7, "brick", "brick",
                         phase=PH_RESTARTING, epoch=2, time_s=101)
    script = _SweepScript(claimant)
    result, calls = _drive(_sweep_one(script.DIRECTORY, "tanker"),
                           script)
    assert ("kill", 99, SIGKILL) in calls
    # fenced: neither counted as a sweep nor reaped (not ours to reap)
    assert ("perf_note", "ml_sweeps") not in calls
    assert not any(c[0] == "unlink" and c[1].endswith("/rec")
                   for c in calls)


def test_sweeper_fenced_after_commit_to_its_copy_keeps_it():
    """The flip side: the later claimant probed the copy live and
    committed DONE to it — killing it then would leave zero live
    copies, so the superseded sweeper keeps it."""
    committed = MigRecord("brick", 7, "tanker", "brick",
                          phase=PH_DONE, epoch=2, time_s=101)
    script = _SweepScript(committed)
    result, calls = _drive(_sweep_one(script.DIRECTORY, "tanker"),
                           script)
    assert not any(c[0] == "kill" for c in calls)
