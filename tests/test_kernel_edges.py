"""Edge cases and the newer metadata syscalls."""

import pytest

from repro.errors import (EACCES, EEXIST, EISDIR, EMFILE, ENOENT,
                          EPERM, EXDEV)
from repro.kernel.constants import NOFILE, O_CREAT, O_RDONLY, O_WRONLY
from repro.kernel.signals import (SIGCONT, SIGSTOP, SIGPIPE, SIGUSR1,
                                  SIGSEGV)
from tests.conftest import run_native


# -- chmod / chown / access / link / rename -----------------------------------


def test_chmod_by_owner(brick, cluster):
    brick.fs.install_file("/tmp/mine", b"x", mode=0o644, uid=100)
    out = []

    def prog(argv, env):
        out.append((yield ("chmod", "/tmp/mine", 0o600)))
        st = yield ("stat", "/tmp/mine")
        out.append(st.mode)
        return 0

    run_native(brick, prog, uid=100)
    assert out == [0, 0o600]


def test_chmod_by_stranger_is_eperm(brick, cluster):
    brick.fs.install_file("/tmp/mine", b"x", mode=0o644, uid=100)
    out = []

    def prog(argv, env):
        out.append((yield ("chmod", "/tmp/mine", 0o777)))
        return 0

    run_native(brick, prog, uid=200)
    assert out == [-EPERM]


def test_chown_root_only(brick, cluster):
    brick.fs.install_file("/tmp/f", b"x", uid=100)
    out = []

    def prog(argv, env):
        out.append((yield ("chown", "/tmp/f", 200, -1)))
        return 0

    run_native(brick, prog, uid=100)
    assert out == [-EPERM]
    out.clear()
    run_native(brick, prog, uid=0, name="rootchown")
    assert out == [0]
    assert brick.fs.resolve_local("/tmp/f").uid == 200


def test_access_uses_real_uid(brick, cluster):
    brick.fs.install_file("/etc/rootfile", b"x", mode=0o600, uid=0)
    out = []

    def prog(argv, env):
        # euid is root after setreuid, but the real uid is still 100
        yield ("setreuid", -1, 100)
        out.append((yield ("access", "/etc/rootfile", 4)))
        return 0

    run_native(brick, prog, uid=100)
    assert out == [-EACCES]


def test_link_shares_the_inode(brick, cluster):
    out = []

    def prog(argv, env):
        fd = yield ("open", "/tmp/orig", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"shared")
        yield ("close", fd)
        out.append((yield ("link", "/tmp/orig", "/tmp/alias")))
        yield ("unlink", "/tmp/orig")
        fd = yield ("open", "/tmp/alias", O_RDONLY, 0)
        out.append((yield ("read", fd, 100)))
        return 0

    run_native(brick, prog, uid=100)
    assert out == [0, b"shared"]


def test_link_across_machines_is_exdev(cluster):
    brick = cluster.machine("brick")
    brick.fs.install_file("/tmp/here", b"x")
    out = []

    def prog(argv, env):
        out.append((yield ("link", "/tmp/here",
                           "/n/brador/tmp/there")))
        return 0

    run_native(brick, prog, uid=0)
    assert out == [-EXDEV]


def test_rename_moves_and_replaces(brick, cluster):
    out = []

    def prog(argv, env):
        fd = yield ("open", "/tmp/a", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"content a")
        yield ("close", fd)
        fd = yield ("open", "/tmp/b", O_WRONLY | O_CREAT, 0o644)
        yield ("write", fd, b"old b")
        yield ("close", fd)
        out.append((yield ("rename", "/tmp/a", "/tmp/b")))
        out.append((yield ("stat", "/tmp/a")))
        fd = yield ("open", "/tmp/b", O_RDONLY, 0)
        out.append((yield ("read", fd, 100)))
        return 0

    run_native(brick, prog, uid=100)
    assert out[0] == 0
    assert out[1] == -ENOENT
    assert out[2] == b"content a"


# -- resource limits -----------------------------------------------------------------


def test_emfile_at_nofile_descriptors(brick, cluster):
    out = []

    def prog(argv, env):
        fds = []
        while True:
            fd = yield ("open", "/tmp/many", O_WRONLY | O_CREAT,
                        0o644)
            if fd < 0:
                out.append((len(fds), fd))
                return 0
            fds.append(fd)

    run_native(brick, prog, uid=100)
    count, err = out[0]
    assert err == -EMFILE
    assert count == NOFILE - 3  # three slots hold stdio


def test_deep_recursion_crashes_with_a_core(brick, cluster):
    """Unbounded jsr recursion smashes down through memory.  The
    stack eventually overwrites the program's own text (SIGILL when
    the clobbered jsr is refetched) or runs off the bottom of the
    address space (SIGSEGV) — either way a fatal, core-dumping fault,
    never a simulator crash."""
    from repro.kernel.signals import SIGILL
    from repro.programs.guest.libasm import program
    src = program("""
start:  jsr  start
        trap
""")
    brick.install_aout("recurse", src.aout)
    handle = brick.spawn("/bin/recurse", uid=100, cwd="/tmp")
    cluster.run_until(lambda: handle.exited, max_steps=50_000_000)
    assert handle.term_signal in (SIGSEGV, SIGILL)
    # ... and the default action wrote a core file
    assert brick.fs.read_file("/tmp/core")


# -- signal corner cases -----------------------------------------------------------------


def test_sigstop_and_sigcont(brick, cluster):
    from repro.programs.guest.cpuhog import cpuhog_aout
    brick.install_aout("cpuhog", cpuhog_aout())
    handle = brick.spawn("/bin/cpuhog", ["cpuhog", "50000000"],
                         uid=100, cwd="/tmp")
    cluster.run(until_us=brick.clock.now_us + 100_000)
    brick.kernel.post_signal(handle.proc, SIGSTOP)
    cluster.run(until_us=brick.clock.now_us + 100_000)
    from repro.kernel.constants import SSTOP
    assert handle.proc.state == SSTOP
    frozen_cpu = handle.proc.cpu_us()
    cluster.run(until_us=brick.clock.now_us + 300_000)
    assert handle.proc.cpu_us() == frozen_cpu  # really stopped
    brick.kernel.post_signal(handle.proc, SIGCONT)
    cluster.run(until_us=brick.clock.now_us + 200_000)
    assert handle.proc.cpu_us() > frozen_cpu  # running again


def test_sigpipe_kills_writer(brick, cluster):
    def prog(argv, env):
        rfd, wfd = yield ("pipe",)
        yield ("close", rfd)
        yield ("write", wfd, b"nobody is listening")
        return 0

    brick.install_native_program("piper", prog)
    handle = brick.spawn("/bin/piper", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert handle.term_signal == SIGPIPE


def test_pipe_blocks_when_full_until_reader_drains(brick, cluster):
    from repro.kernel.filetable import PIPE_CAPACITY
    progress = []

    def writer_reader(argv, env):
        rfd, wfd = yield ("pipe",)
        wrote = yield ("write", wfd, b"x" * PIPE_CAPACITY)
        progress.append(("fill", wrote))
        # pipe is full: spawn a drainer that reads from it
        # (single native proc cannot block on itself, so check the
        # short-write/deadlock protection instead)
        wrote2 = yield ("write", wfd, b"y" * 10)
        progress.append(("extra", wrote2))
        return 0

    brick.install_native_program("pipefill", writer_reader)
    handle = brick.spawn("/bin/pipefill", uid=100)
    cluster.run(until_us=brick.clock.now_us + 2_000_000)
    # the second write blocks forever (no reader): classic deadlock
    assert progress == [("fill", PIPE_CAPACITY)]
    assert not handle.exited


def test_nested_signal_handlers(brick, cluster):
    """A handler interrupted by another catchable signal nests."""
    from repro.programs.guest.libasm import program
    from repro.kernel.signals import SIGUSR2
    src = program("""
start:  move  #SYS_signal, d0
        move  #SIGUSR1, d1
        move  #h1, d2
        trap
        move  #SYS_signal, d0
        move  #SIGUSR2, d1
        move  #h2, d2
        trap
wloop:  move  #SYS_read, d0
        move  #0, d1
        move  #buf, d2
        move  #8, d3
        trap
        move  total, d2
        jsr   putnum
        move  #0, d2
        jsr   exit
h1:     add   #1, total
        pop   d5
        move  #SYS_sigreturn, d0
        trap
        halt
h2:     add   #10, total
        pop   d5
        move  #SYS_sigreturn, d0
        trap
        halt
""", """
total: .word 0
buf:   .space 8
""")
    brick.install_aout("nester", src.aout)
    handle = brick.spawn("/bin/nester", uid=100, cwd="/tmp")
    cluster.run(max_steps=10_000)
    brick.kernel.post_signal(handle.proc, SIGUSR1)
    brick.kernel.post_signal(handle.proc, SIGUSR2)
    cluster.run(max_steps=50_000)
    brick.type_at_console("go\n")
    cluster.run_until(lambda: handle.exited)
    assert "11" in brick.console_text()
