"""Tests for the network substrate: sockets, timing, rsh plumbing."""

import pytest

from repro.errors import (EADDRINUSE, ECONNREFUSED, ENOTCONN, EPIPE,
                          iserr)
from tests.conftest import run_native


def _server(port, reply=b"pong"):
    def server_main(argv, env):
        sock = yield ("socket",)
        result = yield ("bind", sock, port)
        if iserr(result):
            return 1
        yield ("listen", sock)
        conn = yield ("accept", sock)
        data = yield ("read", conn, 100)
        yield ("write", conn, reply + b":" + data)
        yield ("close", conn)
        return 0
    return server_main


def _client(host, port, message=b"ping", out=None):
    def client_main(argv, env):
        sock = yield ("socket",)
        result = yield ("connect", sock, host, port)
        if iserr(result):
            if out is not None:
                out.append(result)
            return 1
        yield ("write", sock, message)
        data = yield ("read", sock, 100)
        if out is not None:
            out.append(data)
        yield ("close", sock)
        return 0
    return client_main


def test_cross_machine_echo(cluster):
    brick = cluster.machine("brick")
    schooner = cluster.machine("schooner")
    out = []
    schooner.install_native_program("server", _server(4000))
    brick.install_native_program("client",
                                 _client("schooner", 4000, out=out))
    server = schooner.spawn("/bin/server", uid=0)
    cluster.run(max_steps=10_000)
    client = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: client.exited and server.exited)
    assert out == [b"pong:ping"]
    assert client.exit_status == 0


def test_connect_to_missing_host_refused(cluster):
    brick = cluster.machine("brick")
    out = []
    brick.install_native_program("client",
                                 _client("ghost", 4000, out=out))
    handle = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert out == [-ECONNREFUSED]


def test_connect_to_closed_port_refused(cluster):
    brick = cluster.machine("brick")
    out = []
    brick.install_native_program("client",
                                 _client("schooner", 9999, out=out))
    handle = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: handle.exited)
    assert out == [-ECONNREFUSED]


def test_double_bind_is_eaddrinuse(cluster):
    brick = cluster.machine("brick")
    out = []

    def prog(argv, env):
        s1 = yield ("socket",)
        out.append((yield ("bind", s1, 5000)))
        s2 = yield ("socket",)
        out.append((yield ("bind", s2, 5000)))
        return 0

    run_native(brick, prog)
    assert out == [0, -EADDRINUSE]


def test_send_unconnected_is_enotconn(cluster):
    brick = cluster.machine("brick")
    out = []

    def prog(argv, env):
        sock = yield ("socket",)
        out.append((yield ("write", sock, b"x")))
        out.append((yield ("read", sock, 10)))
        return 0

    run_native(brick, prog)
    assert out == [-ENOTCONN, -ENOTCONN]


def test_eof_after_peer_close(cluster):
    brick = cluster.machine("brick")
    schooner = cluster.machine("schooner")
    out = []

    def server_main(argv, env):
        sock = yield ("socket",)
        yield ("bind", sock, 4001)
        yield ("listen", sock)
        conn = yield ("accept", sock)
        yield ("write", conn, b"bye")
        yield ("close", conn)
        return 0

    def client_main(argv, env):
        sock = yield ("socket",)
        yield ("connect", sock, "schooner", 4001)
        out.append((yield ("read", sock, 10)))
        out.append((yield ("read", sock, 10)))  # EOF now
        return 0

    schooner.install_native_program("server", server_main)
    brick.install_native_program("client", client_main)
    server = schooner.spawn("/bin/server", uid=0)
    cluster.run(max_steps=10_000)
    client = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: client.exited)
    assert out == [b"bye", b""]


def test_network_transfer_takes_time(cluster):
    """Moving bytes across the Ethernet advances virtual time."""
    brick = cluster.machine("brick")
    schooner = cluster.machine("schooner")
    payload = b"z" * 50_000

    def server_main(argv, env):
        sock = yield ("socket",)
        yield ("bind", sock, 4002)
        yield ("listen", sock)
        conn = yield ("accept", sock)
        total = 0
        while total < len(payload):
            data = yield ("read", conn, 65536)
            if not isinstance(data, bytes) or data == b"":
                break
            total += len(data)
        return 0

    def client_main(argv, env):
        sock = yield ("socket",)
        yield ("connect", sock, "schooner", 4002)
        yield ("write", sock, payload)
        yield ("close", sock)
        return 0

    schooner.install_native_program("server", server_main)
    brick.install_native_program("client", client_main)
    server = schooner.spawn("/bin/server", uid=0)
    cluster.run(max_steps=10_000)
    t0 = schooner.clock.now_us
    client = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: server.exited)
    elapsed = schooner.clock.now_us - t0
    # 50 KB at ~0.9 us/byte is at least 45 ms of wire time
    assert elapsed >= len(payload) * cluster.costs.net_byte_us
    assert cluster.network.bytes_moved >= len(payload)


def test_closing_socket_fd_releases_port(cluster):
    brick = cluster.machine("brick")
    out = []

    def prog(argv, env):
        sock = yield ("socket",)
        yield ("bind", sock, 5001)
        yield ("close", sock)
        sock2 = yield ("socket",)
        out.append((yield ("bind", sock2, 5001)))
        return 0

    run_native(brick, prog)
    assert out == [0]


def test_write_after_peer_closed_is_epipe(cluster):
    brick = cluster.machine("brick")
    schooner = cluster.machine("schooner")
    out = []

    def server_main(argv, env):
        sock = yield ("socket",)
        yield ("bind", sock, 4003)
        yield ("listen", sock)
        conn = yield ("accept", sock)
        yield ("close", conn)
        yield ("sleep", 10)
        return 0

    def client_main(argv, env):
        sock = yield ("socket",)
        yield ("connect", sock, "schooner", 4003)
        # wait for the close to arrive
        data = yield ("read", sock, 10)
        out.append(data)
        out.append((yield ("write", sock, b"x")))
        return 0

    schooner.install_native_program("server", server_main)
    brick.install_native_program("client", client_main)
    schooner.spawn("/bin/server", uid=0)
    cluster.run(max_steps=10_000)
    client = brick.spawn("/bin/client", uid=100)
    cluster.run_until(lambda: client.exited)
    assert out[0] == b""  # EOF
    assert out[1] == -EPIPE
