"""Tests for the inode filesystem."""

import pytest

from repro.errors import (UnixError, ENOENT, EEXIST, ENOTDIR, EISDIR,
                          ENOTEMPTY)
from repro.fs import FileSystem, IFREG, IFDIR, IFLNK, IFCHR


@pytest.fixture
def fs():
    return FileSystem("brick")


def test_root_is_its_own_parent(fs):
    assert fs.root.parent is fs.root
    assert fs.lookup(fs.root, "..") is fs.root


def test_create_and_lookup(fs):
    inode = fs.create(fs.root, "hello", mode=0o600, uid=5)
    assert fs.lookup(fs.root, "hello") is inode
    assert inode.itype == IFREG
    assert inode.uid == 5


def test_create_duplicate_is_eexist(fs):
    fs.create(fs.root, "x")
    with pytest.raises(UnixError) as exc:
        fs.create(fs.root, "x")
    assert exc.value.errno == EEXIST


def test_lookup_missing_is_enoent(fs):
    with pytest.raises(UnixError) as exc:
        fs.lookup(fs.root, "nope")
    assert exc.value.errno == ENOENT


def test_lookup_in_file_is_enotdir(fs):
    f = fs.create(fs.root, "f")
    with pytest.raises(UnixError) as exc:
        fs.lookup(f, "x")
    assert exc.value.errno == ENOTDIR


def test_mkdir_and_dotdot(fs):
    d = fs.mkdir(fs.root, "dir")
    sub = fs.mkdir(d, "sub")
    assert fs.lookup(sub, "..") is d
    assert fs.lookup(d, "..") is fs.root
    assert fs.lookup(d, ".") is d


def test_symlink(fs):
    link = fs.symlink(fs.root, "lnk", "/usr/tmp")
    assert link.itype == IFLNK
    assert link.target == "/usr/tmp"


def test_char_device(fs):
    dev = fs.mkchar(fs.root, "null", "null")
    assert dev.itype == IFCHR
    assert dev.device == "null"


def test_read_write(fs):
    f = fs.create(fs.root, "data")
    assert fs.write(f, 0, b"hello") == 5
    assert fs.read(f, 0, 100) == b"hello"
    assert fs.read(f, 2, 2) == b"ll"
    assert fs.read(f, 99, 10) == b""


def test_write_past_end_zero_fills(fs):
    f = fs.create(fs.root, "sparse")
    fs.write(f, 4, b"x")
    assert fs.read(f, 0, 10) == b"\x00\x00\x00\x00x"


def test_overwrite_middle(fs):
    f = fs.create(fs.root, "f")
    fs.write(f, 0, b"abcdef")
    fs.write(f, 2, b"XY")
    assert fs.read(f, 0, 10) == b"abXYef"


def test_truncate(fs):
    f = fs.create(fs.root, "f")
    fs.write(f, 0, b"abcdef")
    fs.truncate(f, 2)
    assert fs.read(f, 0, 10) == b"ab"
    fs.truncate(f)
    assert f.size == 0


def test_unlink(fs):
    fs.create(fs.root, "f")
    fs.unlink(fs.root, "f")
    with pytest.raises(UnixError):
        fs.lookup(fs.root, "f")


def test_unlink_directory_is_eisdir(fs):
    fs.mkdir(fs.root, "d")
    with pytest.raises(UnixError) as exc:
        fs.unlink(fs.root, "d")
    assert exc.value.errno == EISDIR


def test_rmdir(fs):
    d = fs.mkdir(fs.root, "d")
    fs.mkdir(d, "sub")
    with pytest.raises(UnixError) as exc:
        fs.rmdir(fs.root, "d")
    assert exc.value.errno == ENOTEMPTY
    fs.rmdir(d, "sub")
    fs.rmdir(fs.root, "d")


def test_makedirs(fs):
    leaf = fs.makedirs("/usr/tmp/deep")
    assert leaf.is_dir()
    assert fs.resolve_local("/usr/tmp/deep") is leaf
    # idempotent
    assert fs.makedirs("/usr/tmp/deep") is leaf


def test_install_and_read_file(fs):
    fs.install_file("/etc/motd", b"welcome\n")
    assert fs.read_file("/etc/motd") == b"welcome\n"
    # replacement keeps the same inode
    inode = fs.resolve_local("/etc/motd")
    fs.install_file("/etc/motd", b"new")
    assert fs.resolve_local("/etc/motd") is inode
    assert fs.read_file("/etc/motd") == b"new"


def test_stat(fs):
    f = fs.create(fs.root, "f", mode=0o640, uid=3, gid=4)
    fs.write(f, 0, b"12345")
    st = f.stat()
    assert st.is_reg() and not st.is_dir()
    assert st.size == 5
    assert st.mode == 0o640
    assert (st.uid, st.gid) == (3, 4)


def test_entry_names_sorted(fs):
    fs.create(fs.root, "zz")
    fs.create(fs.root, "aa")
    assert fs.entry_names(fs.root) == ["aa", "zz"]


class _Cred:
    def __init__(self, euid, egid):
        self.euid = euid
        self.egid = egid


def test_access_checks(fs):
    f = fs.create(fs.root, "f", mode=0o640, uid=3, gid=4)
    owner = _Cred(3, 100)
    group = _Cred(9, 4)
    other = _Cred(9, 9)
    root = _Cred(0, 0)
    assert f.check_access(owner, want_read=True, want_write=True)
    assert f.check_access(group, want_read=True)
    assert not f.check_access(group, want_write=True)
    assert not f.check_access(other, want_read=True)
    assert f.check_access(root, want_read=True, want_write=True)


def test_exec_permission(fs):
    prog = fs.create(fs.root, "prog", mode=0o755, uid=3)
    noexec = fs.create(fs.root, "doc", mode=0o644, uid=3)
    user = _Cred(5, 5)
    root = _Cred(0, 0)
    assert prog.check_access(user, want_exec=True)
    assert not noexec.check_access(user, want_exec=True)
    # even root cannot exec a file with no exec bits
    assert not noexec.check_access(root, want_exec=True)
