"""Documentation consistency: man pages and examples match reality."""

import os

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: man page -> the /bin name it documents (section 2/7 pages are
#: kernel interfaces, not binaries)
_MAN_BINARIES = {
    "dumpproc.1.md": "dumpproc",
    "restart.1.md": "restart",
    "migrate.1.md": "migrate",
    "migrationd.8.md": "migrationd",
    "ckptd.8.md": "ckptd",
    "recoveryd.8.md": "recoveryd",
    "sh.1.md": "sh",
    "migstat.1.md": "migstat",
    "loadd.8.md": "loadd",
    "statd.8.md": "statd",
    "migtop.1.md": "migtop",
}


def test_every_man_page_exists():
    mandir = os.path.join(REPO, "docs", "man")
    present = set(os.listdir(mandir))
    for page in list(_MAN_BINARIES) + ["rest_proc.2.md",
                                       "sigdump.7.md",
                                       "tracefmt.5.md"]:
        assert page in present, page


def test_documented_binaries_are_installed(site):
    brick = site.machine("brick")
    for page, binary in _MAN_BINARIES.items():
        inode = brick.fs.resolve_local("/bin/%s" % binary)
        assert inode.is_reg() and inode.mode & 0o111, binary


def test_readme_examples_exist_and_examples_are_documented():
    readme = open(os.path.join(REPO, "README.md")).read()
    exdir = os.path.join(REPO, "examples")
    scripts = sorted(name for name in os.listdir(exdir)
                     if name.endswith(".py"))
    assert scripts, "no examples found"
    for name in scripts:
        assert name in readme or name == "service_migration.py", \
            "example %s not mentioned in README" % name
    for mentioned in ("quickstart.py", "checkpointing.py",
                      "load_balancing.py"):
        assert mentioned in scripts


def test_design_md_mentions_every_bench():
    design = open(os.path.join(REPO, "DESIGN.md")).read()
    benchdir = os.path.join(REPO, "benchmarks")
    for name in os.listdir(benchdir):
        if name.startswith("bench_fig"):
            assert name in design, name


def test_perf_counter_reference_is_generated_and_complete():
    """docs/perf_counters.md is generated (python -m
    repro.perf.gendocs) and documents every flat counter."""
    from repro.perf.counters import (PerfCounters, COUNTER_DOCS,
                                     counter_reference)
    path = os.path.join(REPO, "docs", "perf_counters.md")
    assert open(path).read() == counter_reference(), \
        "stale %s: rerun python -m repro.perf.gendocs" % path
    flat = {name for name, value in vars(PerfCounters()).items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)}
    assert flat == set(COUNTER_DOCS), \
        "undocumented counters: %s" % (flat ^ set(COUNTER_DOCS))


def test_experiments_md_has_every_figure():
    experiments = open(os.path.join(REPO, "EXPERIMENTS.md")).read()
    for heading in ("Figure 1", "Figure 2", "Figure 3", "Figure 4",
                    "A1", "A2", "A3", "A4", "A5", "A6", "A7"):
        assert heading in experiments, heading
