"""Tests (incl. property-based) for the dump file formats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnixError
from repro.kernel.constants import NOFILE, FILES_MAGIC, STACK_MAGIC
from repro.kernel.cred import Credentials
from repro.kernel.signals import SigState, SIGUSR1, SIGTERM, SIG_IGN, NSIG
from repro.core.formats import (FdEntry, FilesInfo, StackInfo,
                                FD_FILE, FD_SOCKET, FD_SOCKET_BOUND,
                                FD_UNUSED, dump_file_names)
from repro.vm.image import Registers


def test_dump_file_names():
    assert dump_file_names(1234) == ("/usr/tmp/a.out1234",
                                     "/usr/tmp/files1234",
                                     "/usr/tmp/stack1234")
    assert dump_file_names(7, "/n/brick/usr/tmp")[0] == \
        "/n/brick/usr/tmp/a.out7"


def test_files_info_roundtrip():
    entries = [FdEntry() for __ in range(NOFILE)]
    entries[0] = FdEntry(FD_FILE, "/dev/console", 2, 0)
    entries[3] = FdEntry(FD_FILE, "/tmp/counter.out", 0o1011, 42)
    entries[5] = FdEntry(FD_SOCKET)
    info = FilesInfo("brick", "/u/alonso/work", entries, 0o30)
    back = FilesInfo.unpack(info.pack())
    assert back.hostname == "brick"
    assert back.cwd == "/u/alonso/work"
    assert back.tty_flags == 0o30
    assert back.entries == entries


def test_files_info_bad_magic():
    blob = FilesInfo("x", "/").pack()
    corrupted = b"\x00\x00" + blob[2:]
    with pytest.raises(UnixError):
        FilesInfo.unpack(corrupted)


def test_files_info_truncated():
    blob = FilesInfo("brick", "/tmp").pack()
    with pytest.raises(UnixError):
        FilesInfo.unpack(blob[:10])


def test_files_magic_is_0445():
    blob = FilesInfo("x", "/").pack()
    assert int.from_bytes(blob[:2], "little") == 0o445 == FILES_MAGIC


def test_stack_magic_is_0444():
    blob = StackInfo().pack()
    assert int.from_bytes(blob[:2], "little") == 0o444 == STACK_MAGIC


def test_stack_info_roundtrip():
    regs = Registers()
    regs.d = list(range(8))
    regs.a = [16 * i for i in range(8)]
    regs.pc = 0x1234
    regs.zf = True
    sig = SigState()
    sig.set_handler(SIGUSR1, 0x2000)
    sig.set_handler(SIGTERM, SIG_IGN)
    info = StackInfo(Credentials(100, 10, 100, 10),
                     b"\x01\x02\x03\x04" * 10, regs, sig)
    back = StackInfo.unpack(info.pack())
    assert back.cred == info.cred
    assert back.stack == info.stack
    assert back.registers == regs
    assert back.sigstate.handlers[SIGUSR1] == 0x2000
    assert back.sigstate.handlers[SIGTERM] == SIG_IGN


def test_stack_peek_header():
    info = StackInfo(Credentials(7, 8, 9, 10), b"S" * 99)
    cred, size = StackInfo.peek_header(info.pack())
    assert cred == Credentials(7, 8, 9, 10)
    assert size == 99


def test_stack_bad_magic():
    with pytest.raises(UnixError):
        StackInfo.unpack(b"\xff\xff" + b"\x00" * 64)
    with pytest.raises(UnixError):
        StackInfo.peek_header(b"\xff\xff" + b"\x00" * 64)


def test_uncatchable_signals_forced_default_on_restore():
    """A tampered stack file cannot smuggle a SIGKILL handler in."""
    from repro.kernel.signals import SIGKILL, SIGDUMP, SIG_DFL
    sig = SigState()
    blob = bytearray(sig.pack())
    import struct
    struct.pack_into("<i", blob, 4 * SIGKILL, 0xDEAD)
    struct.pack_into("<i", blob, 4 * SIGDUMP, 0xBEEF)
    back = SigState.unpack(bytes(blob))
    assert back.handlers[SIGKILL] == SIG_DFL
    assert back.handlers[SIGDUMP] == SIG_DFL


# -- property-based tests ---------------------------------------------------

_path = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters='"'),
    min_size=1, max_size=80).map(lambda s: "/" + s)

_fd_entry = st.one_of(
    st.just(FdEntry(FD_UNUSED)),
    st.just(FdEntry(FD_SOCKET)),
    st.builds(FdEntry, st.just(FD_FILE), _path,
              st.integers(0, 0o7777), st.integers(0, 1 << 30)),
    st.builds(lambda port, listening: FdEntry(
        FD_SOCKET_BOUND, port=port, listening=listening),
        st.integers(1, 65535), st.booleans()),
)


@given(hostname=st.text(alphabet="abcdefgh", min_size=1, max_size=16),
       cwd=_path,
       entries=st.lists(_fd_entry, min_size=NOFILE, max_size=NOFILE),
       tty_flags=st.integers(0, 0xFFFF))
@settings(max_examples=60)
def test_files_info_roundtrip_property(hostname, cwd, entries,
                                       tty_flags):
    info = FilesInfo(hostname, cwd, entries, tty_flags)
    back = FilesInfo.unpack(info.pack())
    assert back.hostname == hostname
    assert back.cwd == cwd
    assert back.entries == entries
    assert back.tty_flags == tty_flags


@given(stack=st.binary(max_size=2048),
       d=st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1),
                  min_size=8, max_size=8),
       a=st.lists(st.integers(-(2 ** 31), 2 ** 31 - 1),
                  min_size=8, max_size=8),
       pc=st.integers(0, 2 ** 32 - 1),
       uid=st.integers(0, 2 ** 16), gid=st.integers(0, 2 ** 16))
@settings(max_examples=60)
def test_stack_info_roundtrip_property(stack, d, a, pc, uid, gid):
    regs = Registers()
    regs.d = d
    regs.a = a
    regs.pc = pc
    info = StackInfo(Credentials(uid, gid), stack, regs)
    back = StackInfo.unpack(info.pack())
    assert back.stack == stack
    assert back.registers.d == d
    assert back.registers.a == a
    assert back.registers.pc == pc
    assert back.cred.uid == uid


@given(blob=st.binary(max_size=300))
@settings(max_examples=80)
def test_unpack_never_crashes_unstructured(blob):
    """Garbage input must raise UnixError, never anything else."""
    for parser in (FilesInfo.unpack, StackInfo.unpack,
                   StackInfo.peek_header):
        try:
            parser(blob)
        except UnixError:
            pass
