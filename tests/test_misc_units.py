"""Unit tests for small shared pieces: errors, option parsing,
line readers, cost model, user-level symlink resolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import errors
from repro.costmodel import CostModel, unmodified_kernel_model
from repro.programs.base import (parse_options, LineReader, write_all,
                                 read_all)


# -- errors --------------------------------------------------------------------


def test_errno_names_and_messages():
    assert errors.errno_name(errors.ENOENT) == "ENOENT"
    assert errors.strerror(errors.ENOENT) == \
        "No such file or directory"
    assert errors.errno_name(999) == "E?999"
    assert "Unknown error" in errors.strerror(999)


def test_unix_error_carries_context():
    err = errors.UnixError(errors.EACCES, "/etc/shadow")
    assert err.errno == errors.EACCES
    assert "/etc/shadow" in str(err)
    assert "EACCES" in str(err)


def test_iserr():
    assert errors.iserr(-2)
    assert not errors.iserr(0)
    assert not errors.iserr(5)
    assert not errors.iserr(b"-2")
    assert not errors.iserr("x")


# -- cost model ------------------------------------------------------------------


def test_with_overrides_does_not_mutate():
    base = CostModel()
    other = base.with_overrides(track_names=False,
                                rsh_setup_us=1.0)
    assert base.track_names and not other.track_names
    assert other.rsh_setup_us == 1.0
    assert base.rsh_setup_us != 1.0


def test_unmodified_kernel_model():
    model = unmodified_kernel_model()
    assert not model.track_names


def test_disk_io_us_scales_with_blocks():
    costs = CostModel()
    assert costs.disk_io_us(100) < costs.disk_io_us(5000)
    assert costs.disk_io_us(1, write=True) != costs.disk_io_us(1)


def test_describe_lists_every_field():
    text = CostModel().describe()
    assert "rsh_setup_us" in text
    assert "track_names" in text


# -- option parsing ------------------------------------------------------------------


def test_parse_options_values_and_flags():
    opts, pos = parse_options(
        ["migrate", "-p", "12", "-d", "extra"],
        {"-p": True, "-d": False})
    assert opts == {"-p": "12", "-d": True}
    assert pos == ["extra"]


def test_parse_options_unknown_flag():
    message, pos = parse_options(["x", "-z"], {"-p": True})
    assert pos is None
    assert "-z" in message


def test_parse_options_missing_value():
    message, pos = parse_options(["x", "-p"], {"-p": True})
    assert pos is None
    assert "-p" in message


# -- coroutine helpers -----------------------------------------------------------------


def drive(gen, script):
    """Run a syscall coroutine against a scripted kernel.

    ``script`` maps request name to a list of successive results.
    Returns the coroutine's return value.
    """
    try:
        request = next(gen)
        while True:
            name = request[0]
            result = script[name].pop(0)
            request = gen.send(result)
    except StopIteration as done:
        return done.value


def test_write_all_retries_partial_writes():
    calls = []

    def fake():
        result = yield from write_all(5, b"abcdef")
        return result

    gen = fake()
    request = next(gen)
    assert request == ("write", 5, b"abcdef")
    request = gen.send(2)  # only 2 bytes went
    assert request == ("write", 5, b"cdef")
    with pytest.raises(StopIteration) as stop:
        gen.send(4)
    assert stop.value.value == 6


def test_write_all_propagates_errors():
    def fake():
        return (yield from write_all(5, b"abc"))

    gen = fake()
    next(gen)
    with pytest.raises(StopIteration) as stop:
        gen.send(-13)
    assert stop.value.value == -13


def test_read_all_concatenates_until_eof():
    def fake():
        return (yield from read_all(3))

    value = drive(fake(), {"read": [b"ab", b"cd", b""]})
    assert value == b"abcd"


def test_line_reader_split_and_remainder():
    reader = LineReader(7)

    def fake():
        first = yield from reader.readline()
        second = yield from reader.readline()
        rest = yield from reader.read_remaining()
        return first, second, rest

    value = drive(fake(), {
        "read": [b"alpha\nbe", b"ta\ngam", b"ma", b""]})
    assert value == ("alpha", "beta", b"gamma")


def test_line_reader_eof_returns_none():
    reader = LineReader(7)

    def fake():
        return (yield from reader.readline())

    assert drive(fake(), {"read": [b""]}) is None


# -- user-level symlink resolution ------------------------------------------------------


def test_resolve_symlinks_through_site(site):
    """The dumpproc coroutine resolves the paper's /u/<user> chain."""
    from repro.core.symlinks import resolve_symlinks_syscalls
    brick = site.machine("brick")
    result = {}

    def prog(argv, env):
        result["home"] = yield from resolve_symlinks_syscalls(
            "/u/alonso/work.txt")
        result["plain"] = yield from resolve_symlinks_syscalls(
            "/usr/tmp")
        result["relative"] = yield from resolve_symlinks_syscalls(
            "/usr/tmp/../tmp")
        return 0

    brick.install_native_program("resolver", prog)
    handle = brick.spawn("/bin/resolver", uid=100)
    site.run_until(lambda: handle.exited)
    assert result["home"] == "/n/brador/u2/alonso/work.txt"
    assert result["plain"] == "/usr/tmp"
    assert result["relative"] == "/usr/tmp"


def test_resolve_symlinks_loop_errors(site):
    from repro.core.symlinks import resolve_symlinks_syscalls
    from repro.errors import ELOOP
    brick = site.machine("brick")
    brick.fs.symlink(brick.fs.root, "loopa", "/loopb")
    brick.fs.symlink(brick.fs.root, "loopb", "/loopa")
    result = {}

    def prog(argv, env):
        result["value"] = yield from resolve_symlinks_syscalls(
            "/loopa/file")
        return 0

    brick.install_native_program("resolver", prog)
    handle = brick.spawn("/bin/resolver", uid=100)
    site.run_until(lambda: handle.exited)
    assert result["value"] == -ELOOP


# -- namei agrees with the lexical model when no links exist ------------------------------


_COMPONENT = st.sampled_from(["usr", "tmp", "bin", "etc", "u", ".",
                              ".."])


@given(parts=st.lists(_COMPONENT, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_namei_matches_lexical_resolution(parts):
    """Without symlinks, a *successful* namei lands exactly where
    normalize() predicts.  (namei is allowed to be stricter: real
    Unix rejects ``/missing/..`` even though it normalizes to ``/``.)
    """
    from repro.fs import FileSystem, Namespace
    from repro.fs.paths import normalize
    from repro.errors import UnixError

    fs = FileSystem("solo")
    for path in ("/usr/tmp", "/bin", "/etc", "/u"):
        fs.makedirs(path)
    ns = Namespace(fs, {})
    path = "/" + "/".join(parts)
    expected = normalize(path)
    try:
        resolved = ns.resolve(path)
    except UnixError:
        return  # stricter-than-lexical failures are fine
    assert resolved.inode is fs.resolve_local(expected)
