"""Tests for terminals: modes, ioctls, blocking reads, echo."""

import pytest

from repro.kernel.constants import (TF_CBREAK, TF_CRMOD, TF_ECHO,
                                    TF_RAW, TIOCGETP, TIOCSETP,
                                    TTY_DEFAULT_FLAGS)
from repro.kernel.tty import Terminal
from tests.conftest import run_native


# -- the Terminal object in isolation ------------------------------------


def test_default_modes():
    tty = Terminal()
    assert tty.echoes()
    assert not tty.is_raw()
    assert tty.flags == TTY_DEFAULT_FLAGS
    assert tty.isatty()


def test_cooked_mode_waits_for_a_line():
    tty = Terminal()
    tty.feed("par")
    assert not tty.input_available()
    assert tty.read(10) is None
    tty.feed("tial\n")
    assert tty.read(100) == b"partial\n"


def test_cooked_mode_returns_one_line_at_a_time():
    tty = Terminal()
    tty.feed("one\ntwo\n")
    assert tty.read(100) == b"one\n"
    assert tty.read(100) == b"two\n"
    assert tty.read(100) is None


def test_raw_mode_returns_single_characters():
    tty = Terminal()
    tty.set_flags(TF_RAW)
    tty.feed("ab")
    assert tty.read(1) == b"a"
    assert tty.read(1) == b"b"
    assert tty.read(1) is None


def test_cbreak_returns_available_without_newline():
    tty = Terminal()
    tty.set_flags(TF_CBREAK | TF_ECHO)
    tty.feed("xy")
    assert tty.read(10) == b"xy"


def test_echo_writes_input_to_output():
    tty = Terminal()
    tty.feed("hello\n")
    assert b"hello" in tty.output


def test_noecho_suppresses():
    tty = Terminal()
    tty.set_flags(TF_CRMOD)  # no TF_ECHO
    tty.feed("secret\n")
    assert b"secret" not in tty.output


def test_crmod_maps_cr_to_nl_on_input():
    tty = Terminal()
    tty.feed("line\r")
    assert tty.read(100) == b"line\n"


def test_crmod_maps_nl_to_crnl_on_output():
    tty = Terminal()
    tty.write(b"a\nb")
    assert bytes(tty.output) == b"a\r\nb"
    assert tty.output_text() == "a\nb"


def test_raw_mode_output_untranslated():
    tty = Terminal()
    tty.set_flags(TF_RAW | TF_CRMOD)
    tty.write(b"a\nb")
    assert bytes(tty.output) == b"a\nb"


def test_on_input_callback():
    tty = Terminal()
    fired = []
    tty.on_input = fired.append
    tty.feed("x\n")
    assert fired == [tty]


def test_reset_modes():
    tty = Terminal()
    tty.set_flags(TF_RAW)
    tty.reset_modes()
    assert tty.flags == TTY_DEFAULT_FLAGS


# -- through the kernel ------------------------------------------------------


def test_ioctl_get_and_set_flags(brick, cluster):
    out = []

    def prog(argv, env):
        out.append((yield ("ioctl", 0, TIOCGETP, 0)))
        yield ("ioctl", 0, TIOCSETP, TF_RAW)
        out.append((yield ("ioctl", 0, TIOCGETP, 0)))
        yield ("ioctl", 0, TIOCSETP, TTY_DEFAULT_FLAGS)
        return 0

    run_native(brick, prog)
    assert out == [TTY_DEFAULT_FLAGS, TF_RAW]
    assert brick.console.flags == TTY_DEFAULT_FLAGS


def test_blocking_read_then_feed(brick, cluster):
    got = []

    def prog(argv, env):
        got.append((yield ("read", 0, 100)))
        return 0

    brick.install_native_program("reader", prog)
    handle = brick.spawn("/bin/reader", uid=100)
    cluster.run(max_steps=10_000)
    assert not handle.exited  # blocked on the console
    brick.type_at_console("wake up\n")
    cluster.run_until(lambda: handle.exited)
    assert got == [b"wake up\n"]


def test_dev_tty_resolves_to_controlling_terminal(brick, cluster):
    from repro.kernel.constants import O_RDWR
    window = brick.add_terminal("ttyp0")

    def prog(argv, env):
        fd = yield ("open", "/dev/tty", O_RDWR, 0)
        yield ("write", fd, b"through /dev/tty")
        return 0

    brick.install_native_program("writer", prog)
    handle = brick.spawn("/bin/writer", uid=100, tty=window)
    cluster.run_until(lambda: handle.exited)
    assert "through /dev/tty" in window.output_text()
    assert "through /dev/tty" not in brick.console_text()


def test_two_terminals_are_independent(brick, cluster):
    window = brick.add_terminal("ttyp1")

    def prog(argv, env):
        data = yield ("read", 0, 100)
        yield ("write", 1, b"got " + data)
        return 0

    brick.install_native_program("echoer", prog)
    console_proc = brick.spawn("/bin/echoer", uid=100)
    window_proc = brick.spawn("/bin/echoer", uid=100, tty=window)
    window.feed("window line\n")
    cluster.run_until(lambda: window_proc.exited)
    assert not console_proc.exited
    assert "got window line" in window.output_text()
    brick.type_at_console("console line\n")
    cluster.run_until(lambda: console_proc.exited)
    assert "got console line" in brick.console_text()


def test_tty_charges_time(brick, cluster):
    def prog(argv, env):
        yield ("write", 1, b"x" * 1000)
        return 0

    handle = run_native(brick, prog)
    # 1000 chars at tty_char_us each, at least
    assert handle.proc.stime_us >= 1000 * brick.costs.tty_char_us
