"""Tests reproducing every limitation of section 7.

Each limitation is an *observable behavior* of the simulated system,
not documentation: the pid-derived temp file really is lost, the
waiting parent's wait() really fails, the Sun-3 binary really takes
SIGILL on a Sun-2, and the proposed compatibility extension really
fixes the first of these.
"""

import pytest

from repro.costmodel import CostModel
from repro.core.api import MigrationSite
from repro.kernel.signals import SIGILL, SIGDUMP
from tests.conftest import start_counter


def migrate_simple(site, handle, source="brick", destination="schooner",
                   uid=100):
    site.dumpproc(source, handle.pid, uid=uid)
    return site.restart(destination, handle.pid, from_host=source,
                        uid=uid)


# -- environment knowledge: getpid() ------------------------------------------


def test_pidtemp_breaks_after_migration(site):
    handle = site.start("brick", "/bin/pidtemp", uid=100)
    site.run_until(lambda: "? " in site.console("brick"))
    site.type_at("brick", "probe\n")
    site.run_until(lambda: "ok" in site.console("brick"))
    restarted = migrate_simple(site, handle)
    site.type_at("schooner", "probe\n")
    site.run_until(lambda: restarted.exited)
    assert "LOST" in site.console("schooner")
    assert restarted.exit_status == 1


def test_compat_option_fixes_pidtemp():
    """The section 7 proposal (ablation A5): getpid() keeps returning
    the old pid for migrated processes, so the temp file is found —
    but only when the dump and restart happen on the *same* machine
    namespace for /tmp; run it brick->brick."""
    site = MigrationSite(costs=CostModel(compat_migrated_ids=True))
    site.run_quiet()
    handle = site.start("brick", "/bin/pidtemp", uid=100)
    site.run_until(lambda: "? " in site.console("brick"))
    site.type_at("brick", "probe\n")
    site.run_until(lambda: "ok" in site.console("brick"))
    site.dumpproc("brick", handle.pid, uid=100)
    restarted = site.restart("brick", handle.pid, uid=100)
    site.type_at("brick", "probe\n")
    site.run_until(
        lambda: site.console("brick").count("ok") >= 2
        or restarted.exited)
    assert not restarted.exited
    assert site.console("brick").count("ok") >= 2


def test_getpid_real_tells_the_truth(site):
    """The companion syscalls exist for migration-aware programs."""
    brick = site.machine("brick")
    out = []

    def prog(argv, env):
        out.append((yield ("getpid",)))
        out.append((yield ("getpid_real",)))
        out.append((yield ("gethostname",)))
        out.append((yield ("gethostname_real",)))
        return 0

    from tests.conftest import run_native
    handle = run_native(brick, prog, name="idprog")
    assert out[0] == out[1] == handle.pid  # not migrated: identical
    assert out[2] == out[3] == "brick"


# -- waiting parents ------------------------------------------------------------


def test_migrated_parent_loses_children(site):
    handle = site.start("brick", "/bin/waiter", uid=100)
    site.run_until(lambda: "waiting" in site.console("brick"))
    restarted = migrate_simple(site, handle)
    site.run_until(lambda: restarted.exited)
    assert "wait failed" in site.console("schooner")
    assert restarted.exit_status == 1


def test_unmigrated_parent_reaps_normally(site):
    handle = site.start("brick", "/bin/waiter", uid=100)
    site.run_until(lambda: "waiting" in site.console("brick"))
    site.type_at("brick", "done\n")
    site.run_until(lambda: handle.exited)
    assert "reaped pid" in site.console("brick")
    assert handle.exit_status == 0


# -- heterogeneity ------------------------------------------------------------------


@pytest.fixture
def hetero_site():
    """brick is a Sun-2 (68010), sunny a Sun-3 (68020)."""
    site = MigrationSite(workstations=("brick", "sunny"),
                         cpus={"sunny": "mc68020"})
    site.run_quiet()
    return site


def test_sun3_binary_crashes_on_sun2(hetero_site):
    """Migrating 68020 code down to a 68010 takes SIGILL at the first
    68020-only instruction — the paper's crash."""
    site = hetero_site
    handle = site.start("sunny", "/bin/envdep", uid=100)
    site.run_until(lambda: "# " in site.console("sunny"))
    site.type_at("sunny", "go\n")
    site.run_until(lambda: "v=4" in site.console("sunny"))
    site.dumpproc("sunny", handle.pid, uid=100)
    restarted = site.restart("brick", handle.pid, from_host="sunny",
                             uid=100)
    assert restarted.proc.is_vm()  # exec itself succeeded
    site.type_at("brick", "go\n")
    site.run_until(lambda: restarted.exited)
    assert restarted.term_signal == SIGILL


def test_sun2_binary_migrates_up_to_sun3(hetero_site):
    """The upward direction is fine: the 68020 is a superset."""
    site = hetero_site
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.type_at("brick", "one\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    site.dumpproc("brick", handle.pid, uid=100)
    restarted = site.restart("sunny", handle.pid, from_host="brick",
                             uid=100)
    site.type_at("sunny", "two\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("sunny"))
    assert not restarted.exited


def test_native_envdep_runs_fine_at_home(hetero_site):
    site = hetero_site
    handle = site.start("sunny", "/bin/envdep", uid=100)
    site.run_until(lambda: "# " in site.console("sunny"))
    for i, expected in enumerate(["v=4", "v=13", "v=40"]):
        site.type_at("sunny", "go\n")
        site.run_until(lambda: expected in site.console("sunny"))
    assert not handle.exited


# -- sockets ---------------------------------------------------------------------------


def test_socket_degrades_to_null_and_process_survives(site):
    handle = site.start("brick", "/bin/sockuser", uid=100)
    site.run_until(lambda: "$ " in site.console("brick"))
    site.type_at("brick", "x\n")
    site.run_until(lambda: "w=-1" in site.console("brick"))
    restarted = migrate_simple(site, handle)
    site.type_at("schooner", "x\n")
    site.run_until(lambda: "w=1" in site.console("schooner"))
    assert not restarted.exited  # alive, just disconnected


# -- visual programs over rsh -------------------------------------------------------------


def test_editor_useless_through_rsh(site):
    """Restart run remotely via rsh cannot restore terminal modes:
    the editor's tty state is lost (section 4.1's warning)."""
    from repro.kernel.constants import TF_RAW, TTY_DEFAULT_FLAGS
    handle = site.start("brick", "/bin/editor", uid=100)
    site.run_until(lambda: "=== ed ===" in site.console("brick"))
    site.dumpproc("brick", handle.pid, uid=100)
    # run restart on schooner THROUGH rsh (as migrate would when the
    # command is typed away from the destination); rsh never exits —
    # it stays attached to the editor — so don't wait for it
    site.machine("brador").spawn(
        "/bin/rsh",
        ["rsh", "schooner", "restart", "-p", str(handle.pid),
         "-h", "brick"], uid=100, cwd="/tmp")
    site.run_until(
        lambda: site.find_restarted("schooner") is not None)
    site.run(max_steps=200_000)  # let everything settle
    restarted = site.find_restarted("schooner")
    assert restarted is not None
    assert not restarted.zombie()  # alive, blocked on the rsh socket
    # schooner's console was never switched to raw mode
    assert site.machine("schooner").console.flags == TTY_DEFAULT_FLAGS
    # and the editor has no terminal at all
    assert restarted.user.tty is None
