"""Tests for loadd, the load-balancing daemon (DESIGN.md section 11).

Two halves:

* **property tests for the policy layer** — seeded ``random`` views,
  no extra dependencies, holding every registered policy to the
  contract :mod:`repro.apps.policy` documents: never a move from an
  idle host, never more than ``max_moves_per_round`` moves, decisions
  a pure function of the view (no mutation, no hidden state, same
  answer twice);
* **daemon tests** — loadd end to end on the simulated site: it
  samples, broadcasts, builds a view and migrates a job through
  migrationd; the userland fault sites are namespace-restricted; the
  whole subsystem is opt-in (a site that never starts loadd shows no
  trace of it).
"""

import random

import pytest

from repro.apps.policy import (HostLoad, Move, POLICIES,
                               ThresholdPolicy, WatermarkPolicy,
                               WorkStealingPolicy, make_policy)
from repro.core.api import MigrationSite
from repro.costmodel import CostModel
from repro.errors import EINVAL, UnixError
from repro.net.loadd import (LOADD_PORT, MAX_CANDIDATES, SPOOL_DIR,
                             LoadReport, fresh_hosts)
from tests.conftest import run_native, start_counter

CASES = 150  #: random views per policy


# -- random view generation --------------------------------------------------


def _random_view(rng):
    """A random but well-formed load view (insertion-ordered)."""
    hosts = ["h%d" % i for i in range(rng.randrange(2, 9))]
    view = {}
    pid = 100
    for host in hosts:
        runnable = rng.randrange(0, 8)
        count = rng.randrange(0, runnable + 1)
        candidates = []
        for __ in range(count):
            candidates.append((pid, round(rng.random() * 5.0, 3)))
            pid += 1
        view[host] = HostLoad(host, runnable, tuple(candidates))
    return view


def _random_policy(rng):
    name = rng.choice(sorted(POLICIES))
    knobs = dict(min_cpu_seconds=rng.choice((0.0, 0.5, 2.0)),
                 max_moves_per_round=rng.randrange(0, 5))
    if name == "threshold":
        knobs["imbalance_threshold"] = rng.randrange(0, 4)
    elif name == "watermark":
        knobs["high_watermark"] = rng.randrange(0, 5)
        knobs["low_watermark"] = rng.randrange(0, 4)
    return name, make_policy(name, **knobs)


# -- the policy contract, property-tested ------------------------------------


def test_policy_never_moves_from_an_idle_host():
    rng = random.Random(0x10AD)
    for case in range(CASES):
        view = _random_view(rng)
        name, policy = _random_policy(rng)
        for move in policy.select(view):
            label = "case %d (%s): %r" % (case, name, move)
            assert view[move.source].runnable > 0, label
            eligible = [pid for pid, cpu in view[move.source].candidates
                        if cpu >= policy.min_cpu_seconds]
            assert move.pid in eligible, label
            assert move.source != move.destination, label
            assert move.destination in view, label


def test_policy_never_exceeds_max_moves_per_round():
    rng = random.Random(0x10AE)
    for case in range(CASES):
        view = _random_view(rng)
        name, policy = _random_policy(rng)
        moves = policy.select(view)
        assert len(moves) <= policy.max_moves_per_round, \
            "case %d (%s): %r" % (case, name, moves)
        # a pid moves at most once per round
        pids = [m.pid for m in moves]
        assert len(pids) == len(set(pids))


def test_policy_is_a_pure_function_of_the_view():
    rng = random.Random(0x10AF)
    for case in range(CASES):
        view = _random_view(rng)
        name, policy = _random_policy(rng)
        before = {host: (view[host].runnable, view[host].candidates)
                  for host in view}
        first = policy.select(view)
        second = policy.select(view)
        assert first == second, "case %d (%s) not deterministic" % \
            (case, name)
        # the view was not mutated (HostLoad is frozen; the mapping
        # and the candidate tuples must come back untouched)
        after = {host: (view[host].runnable, view[host].candidates)
                 for host in view}
        assert after == before, "case %d (%s) mutated view" % \
            (case, name)


def test_policy_moves_strictly_reduce_the_spread():
    """Simulating each round's moves in order never inverts a pair:
    the source stays at least as loaded as the destination."""
    rng = random.Random(0x10B0)
    for case in range(CASES):
        view = _random_view(rng)
        name, policy = _random_policy(rng)
        runnable = {h: view[h].runnable for h in view}
        for move in policy.select(view):
            assert runnable[move.source] - runnable[move.destination] \
                >= 2, "case %d (%s): churn move %r" % (case, name, move)
            runnable[move.source] -= 1
            runnable[move.destination] += 1


def test_work_stealing_only_feeds_idle_hosts():
    rng = random.Random(0x10B1)
    policy = WorkStealingPolicy(min_cpu_seconds=0.0,
                                max_moves_per_round=4)
    for __ in range(CASES):
        view = _random_view(rng)
        for move in policy.select(view):
            assert view[move.destination].runnable == 0


def test_watermark_band_is_left_alone():
    """Hosts between the watermarks neither shed nor receive."""
    rng = random.Random(0x10B2)
    policy = WatermarkPolicy(high_watermark=3, low_watermark=1,
                             min_cpu_seconds=0.0,
                             max_moves_per_round=4)
    for __ in range(CASES):
        view = _random_view(rng)
        for move in policy.select(view):
            assert view[move.source].runnable > 3
            assert view[move.destination].runnable < 1


def test_make_policy_rejects_unknown_names_and_knobs():
    with pytest.raises(ValueError):
        make_policy("round-robin")
    with pytest.raises(ValueError):
        make_policy("threshold", frequency=9)
    policy = make_policy("stealing", min_cpu_seconds=1.0)
    assert isinstance(policy, WorkStealingPolicy)


def test_threshold_registry_matches_classes():
    assert POLICIES["threshold"] is ThresholdPolicy
    assert POLICIES["watermark"] is WatermarkPolicy
    assert POLICIES["stealing"] is WorkStealingPolicy


# -- staleness filtering -----------------------------------------------------


def test_fresh_hosts_drops_old_and_keeps_future_reports():
    reports = {
        "brick": LoadReport("brick", 100, 2),
        "schooner": LoadReport("schooner", 80, 1),   # 20s old
        "brador": LoadReport("brador", 103, 0),      # clock ahead
    }
    fresh = fresh_hosts(reports, now_s=100, stale_s=15)
    assert sorted(fresh) == ["brador", "brick"]
    # exactly at the limit is still fresh
    assert "schooner" in fresh_hosts(reports, now_s=95, stale_s=15)


# -- the daemon on the simulated site ----------------------------------------

#: shrunk knobs so daemon runs stay cheap in virtual time; the hogs
#: accumulate CPU fast, so a low candidate floor suffices
LOADD_KNOBS = dict(loadd_interval_s=1.0, loadd_rounds=6,
                   loadd_min_cpu_s=0.1, connect_backoff_s=0.5,
                   net_read_timeout_s=5.0, restart_poll_tries=30,
                   restart_poll_sleep_s=0.5)

#: iterations that keep a cpuhog busy well past a whole daemon run —
#: loadd's workload is CPU-bound jobs (interactive programs lose
#: their tty when migrated by a daemon, and the min-CPU floor is what
#: keeps loadd away from them in real configurations)
HOG_ITERS = 5_000_000


def _loadd_site(**overrides):
    knobs = dict(LOADD_KNOBS)
    knobs.update(overrides)
    site = MigrationSite(costs=CostModel(**knobs))
    site.run_quiet()
    return site


def _start_hogs(site, n, host="brick"):
    return [site.start(host, "/bin/cpuhog",
                       ["cpuhog", str(HOG_ITERS)], uid=100)
            for __ in range(n)]


def _await_loadd(site, handles, drain_us=3_000_000):
    """Run until every daemon exited, plus a bounded drain window so
    in-flight restarts and relays land (the hogs outlive all of it)."""
    site.run_until(lambda: all(h.exited for h in handles),
                   max_steps=80_000_000)
    site.run(until_us=site.cluster.wall_time_us() + drain_us,
             max_steps=80_000_000)


def _live_jobs(site, host):
    """Non-zombie VM jobs on ``host`` (hogs and restarted a.outs)."""
    kernel = site.machine(host).kernel
    return [p for p in kernel.procs.all_procs()
            if p.is_vm() and not p.zombie()]


def test_loadd_balances_a_loaded_host():
    """Three hogs on brick, none on schooner: loadd moves exactly one
    (spread 3 -> 1, then the anti-churn floor stops it — and the
    settling ledger stops the stale-report herd effect)."""
    site = _loadd_site()
    site.cluster.tracer.enable("loadd")
    _start_hogs(site, 3)
    handles = site.start_loadd()
    _await_loadd(site, handles)

    assert [h.exit_status for h in handles] == [0, 0]
    perf = site.cluster.perf
    assert perf.ld_moves == 1
    assert perf.ld_move_failures == 0
    assert perf.ld_rounds == 12      # 6 rounds x 2 daemons
    assert perf.ld_reports_sent >= 6
    # exactly one hog became an a.out on schooner, two stayed home
    moved = site.find_restarted("schooner")
    assert moved is not None and not moved.zombie()
    assert len(_live_jobs(site, "schooner")) == 1
    assert len(_live_jobs(site, "brick")) == 2
    # the balance rounds left spans in the loadd trace category
    spans = [e for e in site.cluster.tracer.events
             if e.get("cat") == "loadd" and e.get("span") == "E"]
    assert spans and all(e["ok"] == 1 for e in spans)


def test_loadd_leaves_a_balanced_cluster_alone():
    """One hog per workstation: no spread, no moves, no churn."""
    site = _loadd_site()
    _start_hogs(site, 1, host="brick")
    _start_hogs(site, 1, host="schooner")
    handles = site.start_loadd()
    _await_loadd(site, handles)
    assert [h.exit_status for h in handles] == [0, 0]
    perf = site.cluster.perf
    assert perf.ld_moves == 0 and perf.ld_move_failures == 0
    assert site.find_restarted("schooner") is None
    assert site.find_restarted("brick") is None


def test_loadd_respects_the_min_cpu_floor():
    """Jobs below the candidate floor are never touched, however
    lopsided the cluster looks — the paper's 'running for more than a
    certain amount of time' rule."""
    site = _loadd_site(loadd_min_cpu_s=1e9)
    _start_hogs(site, 3)
    handles = site.start_loadd()
    _await_loadd(site, handles)
    assert [h.exit_status for h in handles] == [0, 0]
    assert site.cluster.perf.ld_moves == 0
    assert len(_live_jobs(site, "brick")) == 3
    assert site.find_restarted("schooner") is None


def test_loadd_rejects_unknown_policy():
    site = _loadd_site()
    handles = site.start_loadd(policy="round-robin")
    _await_loadd(site, handles, drain_us=100_000)
    assert all(h.exit_status != 0 for h in handles)
    assert "unknown policy" in site.console("brick")
    assert site.cluster.perf.ld_rounds == 0


def test_loadd_drops_corrupt_reports_and_survives():
    """A corrupted report is counted and dropped; the daemons finish
    their rounds and still balance with the clean ones."""
    site = _loadd_site()
    _start_hogs(site, 3)
    site.cluster.inject_faults("loadd.recv corrupt n=1", seed=11)
    handles = site.start_loadd()
    _await_loadd(site, handles)
    assert [h.exit_status for h in handles] == [0, 0]
    perf = site.cluster.perf
    assert perf.ld_reports_dropped >= 1
    assert perf.fault_corruptions == 1
    assert perf.ld_moves == 1        # later rounds still balanced


def test_loadd_off_leaves_no_trace():
    """The subsystem is opt-in: a site that never starts loadd has no
    spool directory, no ld_* activity and no loadd trace events."""
    site = MigrationSite()
    site.cluster.tracer.enable()
    site.run_quiet()
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: "> " in site.console("brick"))
    assert not handle.exited
    snapshot = site.cluster.perf.snapshot()
    assert all(v == 0 for k, v in snapshot.items()
               if k.startswith("ld_"))
    for name in ("brick", "schooner", "brador"):
        with pytest.raises(UnixError):
            site.machine(name).fs.resolve_local(SPOOL_DIR)
    assert not [e for e in site.cluster.tracer.events
                if e.get("cat") == "loadd"]


# -- the userland fault sites ------------------------------------------------


def test_fault_point_is_restricted_to_the_loadd_namespace(brick):
    """Userland programs may only arm loadd.* sites — the kernel's
    own sites cannot be poked from a native request."""
    results = []

    def prober(argv, env):
        results.append((yield ("fault_point", "dump.write.aout", "")))
        results.append((yield ("fault_data", "net.send", b"x", "")))
        results.append((yield ("fault_point", "loadd.send", "peer")))
        results.append((yield ("fault_data", "loadd.recv", b"ok", "")))
        return 0

    handle = run_native(brick, prober)
    assert handle.exit_status == 0
    assert results[0] == -EINVAL
    assert results[1] == -EINVAL
    assert results[2] == 0           # no plan armed: clean pass
    assert results[3] == b"ok"       # ...and data passes unmangled


def test_getproctab_reports_the_vm_flag(site):
    """loadd's sampler keys off the new per-row ``vm`` field."""
    start_counter(site)
    rows = []

    def sampler(argv, env):
        rows.extend((yield ("getproctab",)))
        return 0

    handle = run_native(site.machine("brick"), sampler,
                        name="sampler")
    assert handle.exit_status == 0
    by_command = {row["command"]: row for row in rows}
    assert by_command["counter"]["vm"] == 1
    assert by_command["sampler"]["vm"] == 0


def test_loadd_recv_spools_a_wire_report(site):
    """A report sent to the well-known port lands in the spool,
    byte-identical."""
    brick = site.machine("brick")
    recv = brick.spawn("/bin/loadd-recv", uid=0, cwd="/tmp")
    site.run(until_us=site.cluster.wall_time_us() + 200_000)
    report = LoadReport("schooner", 42, 3, [(7, 1500)])
    blob = report.pack()

    def sender(argv, env):
        from repro.programs.base import write_all
        sock = yield ("socket",)
        result = yield ("connect", sock, "brick", LOADD_PORT)
        assert result == 0
        yield from write_all(sock, blob)
        yield ("close", sock)
        return 0

    handle = run_native(site.machine("schooner"), sender,
                        name="sendreport")
    assert handle.exit_status == 0
    site.run(until_us=site.cluster.wall_time_us() + 2_000_000)
    spooled = brick.fs.read_file("%s/schooner" % SPOOL_DIR)
    assert spooled == blob
    assert LoadReport.unpack(spooled) == report
    assert site.cluster.perf.ld_reports_recv == 1
