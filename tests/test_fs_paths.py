"""Tests for lexical path algebra."""

import pytest

from repro.fs import paths
from repro.fs.paths import (normalize, joinpath, split_components,
                            dirname, basename, is_absolute, is_under)


def test_normalize_collapses_dots():
    assert normalize("/a/./b/../c") == "/a/c"
    assert normalize("/a//b///c") == "/a/b/c"
    assert normalize("/") == "/"
    assert normalize("/..") == "/"
    assert normalize("/../..") == "/"
    assert normalize("/a/..") == "/"


def test_normalize_requires_absolute():
    with pytest.raises(ValueError):
        normalize("relative/path")


def test_joinpath_absolute_argument_wins():
    assert joinpath("/usr/tmp", "/etc/passwd") == "/etc/passwd"


def test_joinpath_relative():
    assert joinpath("/usr", "tmp/x") == "/usr/tmp/x"
    assert joinpath("/usr/tmp", "..") == "/usr"
    assert joinpath("/usr/tmp", ".") == "/usr/tmp"
    assert joinpath("/", "a") == "/a"


def test_joinpath_requires_absolute_cwd():
    with pytest.raises(ValueError):
        joinpath("relative", "x")


def test_split_components():
    assert split_components("/a/b/c") == ["a", "b", "c"]
    assert split_components("a//b/") == ["a", "b"]
    assert split_components("/") == []


def test_dirname_basename():
    assert dirname("/a/b/c") == "/a/b"
    assert dirname("/a") == "/"
    assert basename("/a/b/c") == "c"
    assert basename("/") == "/"


def test_is_absolute():
    assert is_absolute("/x")
    assert not is_absolute("x")


def test_is_under():
    assert is_under("/usr/tmp/a.out123", "/usr/tmp")
    assert is_under("/usr/tmp", "/usr/tmp")
    assert is_under("/anything", "/")
    assert not is_under("/usr/tmpfoo", "/usr/tmp")
    assert not is_under("/usr", "/usr/tmp")
