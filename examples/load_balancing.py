#!/usr/bin/env python
"""Load balancing with migration (section 8 + the paper's future work).

Four CPU-bound jobs all land on brick while schooner sits idle.  The
load balancer selects jobs that have been running "for more than a
certain amount of time" and moves them with dumpproc/restart (not the
slow rsh-based migrate — the paper's own advice).  We compare the
makespan against the unbalanced run and check every job's checksum.
"""

from repro.apps import LoadBalancer, LoadBalancerPolicy
from repro.core.api import MigrationSite
from repro.programs.guest.cpuhog import expected_checksum

ITERATIONS = 300_000
JOBS = 4


def run(balance):
    site = MigrationSite(daemons=False)
    handles = [site.start("brick", "/bin/cpuhog",
                          ["cpuhog", str(ITERATIONS)], uid=100)
               for __ in range(JOBS)]
    site.run(until_us=300_000)  # let them accumulate some CPU

    balancer = LoadBalancer(
        site, ["brick", "schooner"], uid=100,
        policy=LoadBalancerPolicy(min_cpu_seconds=0.05,
                                  imbalance_threshold=2,
                                  max_moves_per_round=4))
    if balance:
        moves = balancer.step()
        for move in moves:
            print("   moved pid %d: %s -> %s (new pid %d)"
                  % (move.pid, move.source, move.destination,
                     move.new_proc.pid))
        print("   loads now:", balancer.loads())

    site.run_until(
        lambda: all(not p.is_vm() or p.zombie()
                    for m in site.cluster.machines.values()
                    for p in m.kernel.procs.all_procs()),
        max_steps=80_000_000)
    return site


def checksums(site):
    import re
    found = []
    for host in ("brick", "schooner"):
        found.extend(int(match) for match in
                     re.findall(r"checksum=(\d+)",
                                site.console(host)))
    return found


def main():
    print("running %d jobs of %d iterations, all started on brick"
          % (JOBS, ITERATIONS))

    print("\nwithout load balancing:")
    site = run(balance=False)
    unbalanced = site.wall_seconds()
    print("   makespan: %.1f virtual seconds" % unbalanced)

    print("\nwith load balancing:")
    site = run(balance=True)
    balanced = site.wall_seconds()
    print("   makespan: %.1f virtual seconds" % balanced)

    expected = expected_checksum(ITERATIONS)
    sums = checksums(site)
    print("\nchecksums after migration: %s (expected %d)"
          % (sums, expected))
    assert all(s == expected for s in sums)
    assert len(sums) == JOBS
    print("speedup from balancing: %.2fx" % (unbalanced / balanced))


if __name__ == "__main__":
    main()
