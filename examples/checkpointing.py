#!/usr/bin/env python
"""Checkpointing a long-running job (section 8, first application).

A long computation appends results to a file.  The checkpoint manager
snapshots it periodically (dump + archive + copy open files + resume).
Then the machine "crashes" the live process — and we restore the
latest checkpoint, rolling the output file back so the program sees a
consistent world, and let it run to completion.
"""

from repro.apps import CheckpointManager
from repro.core.api import MigrationSite
from repro.kernel.signals import SIGKILL


def main():
    site = MigrationSite(daemons=False)
    brick = site.machine("brick")
    manager = CheckpointManager(site, "brick", uid=100,
                                directory="/ckpt")

    print("starting the long-running job on brick ...")
    job = site.start("brick", "/bin/counter", uid=100)
    pid = job.pid
    proc = job.proc

    for round_no in range(1, 4):
        site.run_until(
            lambda: site.console("brick").count("> ") >= round_no)
        site.type_at("brick", "result %d\n" % round_no)
        site.run_until(
            lambda: site.console("brick").count("> ") >= round_no + 1)
        record, resumed = manager.checkpoint(pid)
        pid, proc = resumed.pid, resumed.proc
        print("checkpoint #%d taken (pid is now %d, %d open files "
              "snapshotted)" % (record.index, pid,
                                len(record.file_copies)))

    print("\noutput so far: %r"
          % brick.fs.read_file("/tmp/counter.out"))

    print("\n*** simulated crash: killing the live process ***")
    brick.kernel.post_signal(proc, SIGKILL)
    site.run_until(lambda: proc.zombie() or proc.state == 4)
    # scribble on the output file, as a post-checkpoint corruption
    brick.fs.install_file("/tmp/counter.out", b"CORRUPTED")
    print("output file now: %r"
          % brick.fs.read_file("/tmp/counter.out"))

    print("\nrestoring checkpoint #1 (file content rolled back) ...")
    revived = manager.restore(1)
    print("revived as pid %d; output file: %r"
          % (revived.pid, brick.fs.read_file("/tmp/counter.out")))

    brick.console.clear_output()
    site.type_at("brick", "after restore\n")
    # checkpoint #1 was taken with all three counters at 3 (the dump
    # happens after the third increment), so the next line prints 4
    site.run_until(lambda: "r=4 s=4 k=4" in site.console("brick"))
    print("the job continued from checkpoint #1's counters:")
    for line in site.console("brick").splitlines():
        print("    " + line)
    print("\nfinal output file: %r"
          % brick.fs.read_file("/tmp/counter.out"))


if __name__ == "__main__":
    main()
