#!/usr/bin/env python
"""The day/night CPU-hog scheduler (section 8, last application).

"These jobs can be run in one machine during the day ... At night,
when the load on most machines is low, these jobs can be distributed
evenly throughout the system."

Three big batch jobs live on the file server by day; at nightfall the
scheduler spreads them over the workstations, and at daybreak it
corrals them back — each job simply keeps computing through both
moves.
"""

from repro.apps import NightBatchScheduler
from repro.core.api import MigrationSite


def show(site, sched, label):
    print("%-10s placement: %s" % (label, sched.placement()))
    for job in sched.jobs:
        print("    job #%d: pid %d on %-9s (%d moves, %.1fs CPU)"
              % (job.job_id, job.proc.pid, job.host, job.moves,
                 job.proc.cpu_us() / 1e6))


def main():
    site = MigrationSite(daemons=False)
    sched = NightBatchScheduler(site, day_host="brador",
                                night_hosts=["brick", "schooner"],
                                uid=100)

    print("daytime: submitting three CPU hogs to the file server\n")
    for __ in range(3):
        sched.submit("/bin/cpuhog", ["cpuhog", "600000"])
    site.run(until_us=site.cluster.wall_time_us() + 1_000_000)
    show(site, sched, "day")

    print("\n--- nightfall: users went home, spread the hogs ---\n")
    moved = sched.nightfall()
    print("migrated %d jobs" % moved)
    site.run(until_us=site.cluster.wall_time_us() + 2_000_000)
    show(site, sched, "night")

    print("\n--- daybreak: corral them back to the server ---\n")
    moved = sched.daybreak()
    print("migrated %d jobs" % moved)
    site.run(until_us=site.cluster.wall_time_us() + 1_000_000)
    show(site, sched, "day again")

    print("\nletting the jobs finish ...")
    site.run_until(lambda: all(not j.alive for j in sched.jobs),
                   max_steps=80_000_000)
    print("all done; every job survived two migrations.")
    for host in ("brador", "brick", "schooner"):
        for line in site.console(host).splitlines():
            if "checksum" in line:
                print("    %s: %s" % (host, line))


if __name__ == "__main__":
    main()
