#!/usr/bin/env python
"""Migrating a visual (raw-mode) program — and the rsh caveat.

The paper (section 4.1): terminal modes "are preserved, so that
visual applications such as screen editors can be restarted properly"
— but through rsh "certain terminal modes can not be preserved ...
thus, in these cases, making this command unsuitable for the
migration of visually oriented programs."

We run a raw-mode editor, migrate it with a *local* restart (modes
preserved, a redraw picks up where we left off), then show what rsh
does to a second editor: the process survives but has no terminal.
"""

from repro.core.api import MigrationSite
from repro.kernel.constants import TF_RAW, TTY_DEFAULT_FLAGS


def main():
    site = MigrationSite()
    site.run_quiet()
    brick = site.machine("brick")
    schooner = site.machine("schooner")

    print("starting the editor on brick; it switches to raw mode")
    editor = site.start("brick", "/bin/editor", uid=100)
    site.run_until(lambda: "=== ed ===" in site.console("brick"))
    print("   brick console flags: 0o%o (raw=%s)"
          % (brick.console.flags, brick.console.is_raw()))
    site.type_at("brick", "hi")  # two raw keystrokes
    site.run_until(lambda: "[i]" in site.console("brick"))
    print("   typed 'h', 'i' -> editor echoed %r"
          % site.console("brick").splitlines()[-1])

    print("\nmigrating with dumpproc + local restart on schooner")
    site.dumpproc("brick", editor.pid, uid=100)
    moved = site.restart("schooner", editor.pid, from_host="brick",
                         uid=100)
    print("   schooner console flags: 0o%o (raw=%s) -- preserved!"
          % (schooner.console.flags, schooner.console.is_raw()))
    assert schooner.console.flags == TF_RAW

    print("   pressing 'r' to redraw (the paper: '^L in most cases')")
    site.type_at("schooner", "r")
    site.run_until(lambda: "=== ed ===" in site.console("schooner"))
    site.run_until(lambda: "hi" in site.console("schooner"))
    print("   the buffer ('hi') survived the move:")
    for line in site.console("schooner").splitlines():
        print("      " + line)
    site.type_at("schooner", "q")  # quit cleanly, restore modes
    site.run_until(lambda: moved.exited)
    print("   editor quit; schooner flags back to 0o%o"
          % schooner.console.flags)
    assert schooner.console.flags == TTY_DEFAULT_FLAGS

    print("\nnow the cautionary tale: restart through rsh")
    editor2 = site.start("brick", "/bin/editor", uid=100)
    site.run_until(lambda: editor2.proc.wchan is not None)
    site.dumpproc("brick", editor2.pid, uid=100)
    site.machine("brador").spawn(
        "/bin/rsh", ["rsh", "schooner", "restart",
                     "-p", str(editor2.pid), "-h", "brick"],
        uid=100, cwd="/tmp")
    site.run_until(lambda: site.find_restarted("schooner") is not None)
    site.run(max_steps=300_000)
    ghost = site.find_restarted("schooner")
    print("   the editor is alive on schooner (pid %d) ..."
          % ghost.pid)
    print("   ... but its controlling terminal is: %r"
          % ghost.user.tty)
    print("   ... and schooner's console flags stayed 0o%o (no raw)"
          % schooner.console.flags)
    print("   => keyboard input can never reach it: 'useless', as "
          "the paper says.")


if __name__ == "__main__":
    main()
