#!/usr/bin/env python
"""Migrating a live network service (the paper's section 9 future
work, explored).

A server holds a listening socket on a well-known port — the one
thing the paper's mechanism cannot move ("the main limitation is the
inability to redirect pipes and sockets").  With the experimental
``migrate_listening_sockets`` kernel option, the dump records the
bound port and ``restart`` re-binds it on the destination; the server
— dumped while blocked in ``accept()`` — simply resumes accepting.

Run to see a service answer on brick, move to schooner mid-life, and
keep counting requests where it left off.
"""

from repro.costmodel import CostModel
from repro.core.api import MigrationSite
from repro.errors import iserr
from repro.programs.guest.portserver import PORT


def client(site, client_host, server_host, message):
    out = []

    def main(argv, env):
        from repro.programs.base import read_all
        sock = yield ("socket",)
        result = yield ("connect", sock, server_host, PORT)
        if iserr(result):
            out.append("connection refused")
            return 1
        yield ("write", sock, message.encode())
        reply = yield from read_all(sock)
        out.append(reply.decode())
        return 0

    machine = site.machine(client_host)
    name = "client%d" % machine.clock.now_us
    machine.install_native_program(name, main)
    handle = machine.spawn("/bin/%s" % name, uid=100)
    site.run_until(lambda: handle.exited)
    return out[0]


def main():
    site = MigrationSite(
        costs=CostModel(migrate_listening_sockets=True),
        daemons=False)
    print("starting the port-%d server on brick" % PORT)
    server = site.start("brick", "/bin/portserver", uid=100)
    site.run_until(lambda: "serving" in site.console("brick"))

    for i in range(1, 3):
        reply = client(site, "schooner", "brick", "req%d" % i)
        print("  request %d from schooner -> brick: %r" % (i, reply))

    print("\nmigrating the server brick -> schooner "
          "(dump records port %d)" % PORT)
    site.dumpproc("brick", server.pid, uid=100)
    moved = site.restart("schooner", server.pid, from_host="brick",
                         uid=100)
    print("  server resumed on schooner as pid %d, inside its "
          "interrupted accept()" % moved.pid)

    reply = client(site, "brador", "schooner", "req3")
    print("  request 3 from brador -> schooner: %r" % reply)
    reply = client(site, "brador", "brick", "req4")
    print("  request 4 to the OLD host:          %r" % reply)

    image = moved.proc.image.image
    served = image.read_i32(image.data_base)
    print("\nthe server's request counter (in its data segment): %d"
          % served)
    print("three requests served, across two machines, one socket "
          "endpoint re-established.")


if __name__ == "__main__":
    main()
