#!/usr/bin/env python
"""Quickstart: the paper's section 4.2 walkthrough, end to end.

We run a program on a machine called *brick* and move it to a machine
called *schooner* — both ways the paper describes:

1. ``dumpproc -p <pid>`` on brick, then ``restart -p <pid> -h brick``
   on schooner;
2. ``migrate -p <pid> -f brick -t schooner`` typed on schooner.

The test program is the paper's own: it increments and prints a
register counter, a static (data segment) counter and a stack counter,
then reads a line and appends it to an output file.  If migration is
transparent, all three counters continue across machines, and the
output file keeps appending at the right offset.
"""

from repro.core.api import MigrationSite


def banner(text):
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def show_console(site, host):
    print("--- %s console " % host + "-" * (47 - len(host)))
    for line in site.console(host).splitlines():
        print("    " + line)
    print("-" * 64)


def main():
    banner("Booting the site: brick + schooner + file server brador")
    site = MigrationSite()
    site.run_quiet()
    print("machines:", ", ".join(site.cluster.hosts()))

    banner("Start the test program on brick (as user alonso)")
    job = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    site.type_at("brick", "first line\n")
    site.run_until(lambda: site.console("brick").count("> ") >= 2)
    show_console(site, "brick")
    print("pid on brick: %d" % job.pid)

    banner("Way 1: dumpproc on brick, restart on schooner")
    print("$ dumpproc -p %d        (on brick)" % job.pid)
    site.dumpproc("brick", job.pid, uid=100)
    print("dump files written to brick:/usr/tmp/{a.out,files,stack}%d"
          % job.pid)
    print("$ restart -p %d -h brick   (on schooner)" % job.pid)
    migrated = site.restart("schooner", job.pid, from_host="brick",
                            uid=100)
    print("restarted as pid %d on schooner (the restart process was "
          "overlaid)" % migrated.pid)

    # the restored program is blocked in its read; type to continue
    site.type_at("schooner", "second line\n")
    site.run_until(lambda: "r=3 s=3 k=3" in site.console("schooner"))
    show_console(site, "schooner")
    data = site.machine("brick").fs.read_file("/tmp/counter.out")
    print("output file on brick (offset preserved over NFS): %r"
          % data)
    assert data == b"first line\nsecond line\n"
    assert "r=3 s=3 k=3" in site.console("schooner")

    banner("Way 2: the migrate command (schooner -> brick, via rsh)")
    pid = migrated.pid
    t0 = site.wall_seconds()
    print("$ migrate -p %d -f schooner -t brick   (typed on brick)"
          % pid)
    handle = site.migrate(pid, "schooner", "brick", typed_on="brick",
                          uid=100)
    print("migrate exited %d after %.1f virtual seconds "
          "(rsh dominates!)" % (handle.exit_status,
                                site.wall_seconds() - t0))
    back = site.find_restarted("brick")
    site.machine("brick").console.clear_output()
    site.type_at("brick", "third line\n")
    site.run_until(lambda: "r=4 s=4 k=4" in site.console("brick"))
    show_console(site, "brick")
    print("counters r=4 s=4 k=4: two migrations, nothing lost.")


if __name__ == "__main__":
    main()
