"""Machines and clusters: the hardware the kernels run on."""

from repro.machine.machine import Machine, SpawnHandle
from repro.machine.cluster import Cluster, SimulationStuck

__all__ = ["Machine", "SpawnHandle", "Cluster", "SimulationStuck"]
