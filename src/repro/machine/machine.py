"""One workstation: CPU + kernel + disk + console + event queue.

A :class:`Machine` owns a virtual clock; machines in a cluster run
conceptually in parallel (the cluster always steps the one that is
furthest behind).  The machine also carries the embedding interface
used by tests, examples and benchmarks: install programs, spawn
processes, type at terminals.
"""

import heapq
import itertools

from repro.clock import Clock
from repro.errors import UnixError
from repro.fs.filesystem import FileSystem
from repro.fs.namei import Namespace
from repro.fs.paths import normalize
from repro.kernel.cred import Credentials
from repro.kernel.filetable import FFILE
from repro.kernel.flow import HostCrashed
from repro.kernel.kernel import Kernel, ProcessOverlaid
from repro.kernel.tty import Terminal
from repro.vm.cpu import CPU
from repro.vm.isa import cpu_model

#: standard directories every machine gets at boot
STANDARD_DIRS = ["/bin", "/dev", "/etc", "/tmp", "/usr/tmp", "/u"]


class SpawnHandle:
    """Tracks a process started from outside the simulation."""

    def __init__(self, machine, proc):
        self.machine = machine
        self.proc = proc
        self.pid = proc.pid
        self.exited = False
        self.exit_status = None
        self.term_signal = None
        proc.exit_hooks.append(self._on_exit)

    def _on_exit(self, proc):
        self.exited = True
        self.exit_status = proc.exit_status
        self.term_signal = proc.term_signal

    def __repr__(self):
        return ("SpawnHandle(pid=%d on %s, %s)"
                % (self.pid, self.machine.name,
                   "exited=%r" % self.exit_status if self.exited
                   else "running"))


class Machine:
    """One simulated workstation (or the file server)."""

    def __init__(self, name, cluster, cpu="mc68010"):
        self.name = name
        self.cluster = cluster
        self.costs = cluster.costs
        self.clock = Clock()
        #: False once the host has crashed (cleared by reboot)
        self.running = True
        self.cpu_model = cpu_model(cpu)
        self.cpu = CPU(self.cpu_model)
        self.fs = FileSystem(name)
        self._setup_fs()
        self.namespace = Namespace(
            self.fs,
            remote_roots=lambda host: cluster.exported_fs(host,
                                                          client=name),
            charge=lambda op, fs: self.kernel.fs_charge(op, fs))
        self.terminals = {}
        self.programs = {}  #: native program registry: name -> factory
        self.ports = {}  #: bound sockets by port number
        self._events = []  #: heapq of (time_us, seq, callable)
        self._event_seq = itertools.count()
        #: fast-driver bookkeeping, maintained by the cluster: the
        #: deterministic tie-break index and the heap-entry token
        self.order = 0
        self.heap_token = 0
        self.kernel = Kernel(self)
        self.console = self.add_terminal("console")

    # -- boot-time filesystem layout ------------------------------------------

    def _setup_fs(self):
        for path in STANDARD_DIRS:
            self.fs.makedirs(path)
        dev = self.fs.resolve_local("/dev")
        self.fs.mkchar(dev, "null", "null")
        self.fs.mkchar(dev, "tty", "tty")
        # /tmp and /usr/tmp are world-writable (dump files land there)
        self.fs.resolve_local("/tmp").mode = 0o777
        self.fs.resolve_local("/usr/tmp").mode = 0o777

    def add_terminal(self, name):
        """Attach a terminal (console, or a window like ``ttyp0``)."""
        if name in self.terminals:
            return self.terminals[name]
        terminal = Terminal(name)
        terminal.on_input = lambda t: self.kernel.wakeup(t)
        self.terminals[name] = terminal
        dev = self.fs.resolve_local("/dev")
        if name not in dev.entries:
            self.fs.mkchar(dev, name, name)
        return terminal

    # -- program installation -----------------------------------------------------

    def install_native_program(self, name, factory, path=None,
                               size=24576):
        """Register a native system program and give it a /bin entry.

        ``size`` pads the on-disk file so exec charges a realistic
        load cost for the tool's binary.
        """
        self.programs[name] = factory
        marker = ("#!native %s\n" % name).encode("latin-1")
        data = marker + b"\x00" * max(0, size - len(marker))
        self.fs.install_file(path or "/bin/%s" % name, data, mode=0o755)

    def install_aout(self, name, aout_bytes, path=None):
        """Install an assembled a.out executable under /bin."""
        self.fs.install_file(path or "/bin/%s" % name, aout_bytes,
                             mode=0o755)

    # -- process creation ------------------------------------------------------------

    def create_process(self, path, argv, parent=None, cred=None,
                       cwd="/", tty=None, inherit_from=None):
        """Allocate a process and exec ``path`` into it."""
        kernel = self.kernel
        proc = kernel.procs.alloc(parent=parent, cred=cred)
        if inherit_from is not None:
            proc.user = inherit_from.user.copy_for_fork(kernel.files)
        else:
            proc.user.cred = cred.copy() if cred else Credentials()
            where = normalize(cwd or "/")
            resolved = self.namespace.resolve(where)
            proc.user.cdir = (resolved.fs, resolved.inode)
            if self.costs.track_names:
                proc.user.set_cwd_name(where)
            terminal = tty or self.console
            proc.user.tty = terminal
            self._wire_stdio(proc, terminal)
        proc.command = path.rsplit("/", 1)[-1]
        proc.start_us = self.clock.now_us
        previous = kernel.curproc
        kernel.curproc = proc
        try:
            kernel.sys_execve(proc, path, argv or [path], None)
        except ProcessOverlaid:
            pass
        except UnixError:
            kernel.procs.remove(proc)
            raise
        finally:
            kernel.curproc = previous
        kernel.scheduler.enqueue(proc)
        return proc

    def _wire_stdio(self, proc, terminal):
        """Open fds 0-2 on the terminal's device node (shared entry)."""
        from repro.kernel.constants import O_RDWR
        try:
            inode = self.fs.resolve_local("/dev/%s" % terminal.name)
        except UnixError:
            inode = self.fs.resolve_local("/dev/tty")
        entry = self.kernel.files.alloc(FFILE)
        entry.fs = self.fs
        entry.inode = inode
        entry.flags = O_RDWR
        entry.refcount = 3
        if self.costs.track_names:
            self.kernel.files.set_name(entry, "/dev/%s" % terminal.name)
        for fd in (0, 1, 2):
            proc.user.ofile[fd] = entry

    def spawn(self, path, argv=None, uid=0, gid=None, cwd="/",
              tty=None):
        """Start a program from the outside world; returns a handle."""
        cred = Credentials(uid, gid if gid is not None else uid)
        proc = self.create_process(path, argv or [path], cred=cred,
                                   cwd=cwd, tty=tty)
        return SpawnHandle(self, proc)

    # -- event queue --------------------------------------------------------------------

    def post_event(self, when_us, action):
        if not self.running:
            return  # events for a dead host vanish with it
        heapq.heappush(self._events,
                       (when_us, next(self._event_seq), action))
        # the fast driver must hear about new work: it may move this
        # machine's next-action time, and — if posted from another
        # machine's burst — shrink that burst's event horizon
        self.cluster.note_activity(self)

    def _process_due_events(self):
        fired = False
        while self._events and self._events[0][0] <= self.clock.now_us:
            __, __, action = heapq.heappop(self._events)
            action()
            fired = True
        return fired

    # -- stepping ------------------------------------------------------------------------

    def has_work(self):
        if not self.running:
            return False
        return bool(self._events) or self.kernel.scheduler.has_runnable()

    def next_time(self):
        """The virtual time at which this machine would next act."""
        if not self.running:
            return float("inf")
        if self.kernel.scheduler.has_runnable():
            return self.clock.now_us
        if self._events:
            return max(self.clock.now_us, self._events[0][0])
        return float("inf")

    def step(self):
        """Advance this machine by one scheduling slot or event."""
        if not self.running:
            return False
        try:
            self._process_due_events()
            if self.kernel.scheduler.has_runnable():
                self.kernel.scheduler.run_slot()
                self._process_due_events()
                return True
            if self._events:
                self.clock.advance_to(self._events[0][0])
                self._process_due_events()
                return True
            return False
        except HostCrashed:
            # this machine crashed itself mid-syscall (a crash fault
            # rule fired here); the step "completed" — into the void
            return True

    # -- crash and reboot ---------------------------------------------------------------

    def crash(self):
        """Power off instantly: every process, event and port vanishes.

        The disk (the local filesystem) survives; memory — the process
        table, run queue, pending events, bound ports — does not.
        Terminal scrollback is kept: it is the *user's* screen, not
        the machine's memory.  Use :meth:`Cluster.crash_host`, which
        also tells the network layer to reset peers' sockets.
        """
        from repro.kernel.proc import ProcTable
        self.running = False
        self._events = []
        self.ports.clear()
        self.kernel.scheduler.runq.clear()
        self.kernel.procs = ProcTable()
        # a crash mid-burst can be the horizon machine vanishing: the
        # memoized horizon must hear about it
        self.cluster.note_activity(self)

    def reboot(self):
        """Bring a crashed host back with a fresh kernel.

        ``/tmp`` and ``/usr/tmp`` are wiped (dump files do not survive
        the crash-reboot cycle — they lived in memory-speed scratch
        space); everything else on disk persists, including installed
        programs.  Daemons are NOT restarted — that is the embedder's
        job, as it was the operator's at a real site.
        """
        if self.running:
            raise ValueError("reboot of a running host %r" % self.name)
        for path in ("/tmp", "/usr/tmp"):
            self._wipe_directory(path)
        self.kernel = Kernel(self)
        self.clock.advance_to(max(self.clock.now_us,
                                  self.cluster.wall_time_us())
                              + self.costs.boot_s * 1_000_000.0)
        self.running = True
        # the machine is pickable again (and its next-action time
        # jumped past the boot delay): update the driver's bookkeeping
        self.cluster.note_activity(self)

    def _wipe_directory(self, path):
        try:
            directory = self.fs.resolve_local(path)
        except UnixError:
            return
        self._remove_children(directory)

    def _remove_children(self, directory):
        for name in list(self.fs.entry_names(directory)):
            child = self.fs.lookup(directory, name)
            if child.is_dir():
                self._remove_children(child)
                self.fs.rmdir(directory, name)
            else:
                self.fs.unlink(directory, name)

    # -- conveniences for tests and examples ------------------------------------------------

    def proc(self, pid):
        return self.kernel.procs.lookup(pid)

    def console_text(self):
        return self.console.output_text()

    def type_at_console(self, text):
        self.console.feed(text)

    def __repr__(self):
        return "Machine(%s, %s, t=%.3fs)" % (
            self.name, self.cpu_model.name, self.clock.seconds())
