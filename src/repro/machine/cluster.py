"""The cluster: several machines on one Ethernet, cross-mounted.

Reproduces the paper's site: Sun workstations plus a file server,
every machine's root visible on every other machine as ``/n/<host>``
(the 8th-edition convention), home directories on the file server
behind symbolic links.

The simulation driver is conservative parallel discrete-event: the
machine with the smallest next-action time always steps first, so
cross-machine messages never arrive in a receiver's past.

Two drivers implement that contract:

* ``engine="fast"`` (the default) keeps machines in a lazy min-heap
  keyed by next-action time and, once the laggard is chosen, lets it
  run a *burst* of steps up to its event horizon — the earliest
  virtual time any other machine could affect it.  In a pure
  message-passing simulation that is the peers' best next-action
  time plus the network's minimum message latency (the classic
  conservative-PDES lookahead); because our machines additionally
  share synchronous NFS state, the latency term collapses to zero
  and the horizon is the exact point where the reference scan would
  stop picking this machine.  The horizon is recomputed whenever the
  bursting machine posts new deliveries, because its own messages
  can wake a peer early and solicit a reply inside the old window.
* ``engine="scan"`` is the original reference driver: an O(M) scan
  per step.  It is kept for benchmarking and as the executable
  specification the fast driver must agree with step for step.

Both produce identical virtual-time results; the fast driver only
changes how much *real* time the host spends finding the next event.
"""

import heapq

from repro.costmodel import CostModel
from repro.errors import EHOSTDOWN, UnixError
from repro.faults import FaultInjector, FaultPlan
from repro.machine.machine import Machine
from repro.net.network import Network
from repro.obs import Tracer
from repro.perf import PerfCounters
from repro.store import ChunkStore

_INF = float("inf")


class SimulationStuck(Exception):
    """run_until() could not make progress toward its predicate."""


class Cluster:
    """A set of machines sharing an Ethernet and NFS cross-mounts."""

    def __init__(self, costs=None, engine="fast"):
        if engine not in ("fast", "scan"):
            raise ValueError("unknown engine %r" % engine)
        self.costs = costs or CostModel()
        self.machines = {}
        self.perf = PerfCounters()
        # the tracer must exist before the network and any kernels,
        # which cache a reference to it
        self.tracer = Tracer(self)
        self.network = Network(self)
        self.engine = engine
        self.faults = FaultInjector()
        # the content-addressed chunk store backing incremental dumps
        # (cluster-wide, like the NFS-shared dump directory itself)
        self.chunk_store = ChunkStore(self)
        # fast-driver state: a lazy min-heap of (next_time, order,
        # token, machine).  Stale entries are detected by token (bumped
        # on every re-push) and by re-reading next_time at the top.
        self._heap = []
        self._dirty = set()  #: machines whose heap key may have changed
        self._bursting = None  #: machine currently inside a burst
        self._horizon_stale = False

    # -- topology --------------------------------------------------------------

    def add_machine(self, name, cpu="mc68010"):
        if name in self.machines:
            raise ValueError("duplicate machine %r" % name)
        machine = Machine(name, self, cpu=cpu)
        # the insertion index is the driver's deterministic tie-break,
        # mirroring the reference driver's dict-order scan
        machine.order = len(self.machines)
        machine.cpu.perf = self.perf
        if self.engine == "scan":
            # the reference engine is the *whole* pre-change engine:
            # O(M) scan driver and lazily-decoding interpreter
            machine.cpu.use_predecode = False
        self.machines[name] = machine
        return machine

    def machine(self, name):
        return self.machines[name]

    def inject_faults(self, plan, seed=0):
        """Arm a fault plan: a :class:`FaultPlan` or its textual form
        (see ``repro.faults.plan``).  Replaces any armed plan."""
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan, seed=seed)
        self.faults.arm(plan)
        return plan

    def exported_fs(self, host, client=None):
        """The filesystem served for ``/n/<host>`` lookups.

        Every machine exports its root to every other (and to itself
        — a loopback mount, so ``dumpproc``'s ``/n/<self>/...``
        rewriting also works for same-machine restarts).  A crashed
        server, or one cut off from ``client`` by a partition, raises
        ``EHOSTDOWN`` — NFS here is a hard mount that errors rather
        than hanging forever, so programs can react.
        """
        machine = self.machines.get(host)
        if machine is None:
            return None
        if not machine.running:
            raise UnixError(EHOSTDOWN, host)
        if client is not None and client != host \
                and not self.network.reachable(client, host):
            raise UnixError(EHOSTDOWN, "%s (partitioned)" % host)
        return machine.fs

    def hosts(self):
        return sorted(self.machines)

    # -- host failure primitives -----------------------------------------------

    def crash_host(self, name):
        """Crash a host: its processes vanish mid-instruction, peers'
        sockets see RST/EOF one wire latency later, and its exported
        filesystem stops answering (``EHOSTDOWN``)."""
        machine = self.machines.get(name)
        if machine is None:
            raise ValueError("unknown machine %r" % name)
        if not machine.running:
            return
        self.perf.host_crashes += 1
        self.perf.metrics.inc("host_crashes", host=name)
        if self.tracer.enabled:
            self.tracer.emit("fault", "host_crash", machine)
        base = self.wall_time_us()
        self.network.host_crashed(machine,
                                  base + self.costs.message_us(0))
        machine.crash()

    def reboot_host(self, name):
        """Reboot a crashed host; takes ``costs.boot_s`` virtual time.

        The fresh kernel re-serves the host's NFS exports; daemons
        must be restarted by the embedder."""
        machine = self.machines.get(name)
        if machine is None:
            raise ValueError("unknown machine %r" % name)
        machine.reboot()
        self.perf.host_reboots += 1
        self.perf.metrics.inc("host_reboots", host=name)
        if self.tracer.enabled:
            self.tracer.emit("fault", "host_reboot", machine)
        return machine

    def partition(self, a, b):
        """Cut the network link between hosts ``a`` and ``b``."""
        self.network.partition(a, b)

    def heal(self, a=None, b=None):
        """Heal one cut link (or all cuts when called with no args)."""
        self.network.heal(a, b)

    # -- site conventions ------------------------------------------------------------

    def setup_home_directories(self, server_name, users):
        """Paper-footnote convention: ``/u/<user>`` is a symlink to
        ``/n/<server>/u2/<user>`` on every workstation."""
        server = self.machines[server_name]
        for user, uid in users.items():
            home = server.fs.makedirs("/u2/%s" % user)
            home.uid = uid
            home.mode = 0o755
        for machine in self.machines.values():
            u_dir = machine.fs.resolve_local("/u")
            for user in users:
                if user not in u_dir.entries:
                    machine.fs.symlink(u_dir, user,
                                       "/n/%s/u2/%s" % (server_name,
                                                        user))

    # -- the simulation driver ----------------------------------------------------------

    def wall_time_us(self):
        """The cluster-wide wall clock (the most advanced machine)."""
        if not self.machines:
            return 0.0
        return max(m.clock.now_us for m in self.machines.values())

    def sync_clocks(self):
        """Bring every machine's clock up to the cluster wall time."""
        now = self.wall_time_us()
        for machine in self.machines.values():
            machine.clock.advance_to(now)

    def step(self):
        """Step the laggard machine once; False if nothing has work.

        This is the reference driver (and the ``engine="scan"``
        building block): an O(M) scan with dict-insertion-order
        tie-break, which the fast driver reproduces exactly.
        """
        best = None
        best_time = _INF
        for machine in self.machines.values():
            if not machine.has_work():
                continue
            when = machine.next_time()
            if when < best_time:
                best = machine
                best_time = when
        if best is None:
            return False
        best.step()
        self.perf.steps += 1
        return True

    def run(self, max_steps=5_000_000, until_us=None):
        """Run until idle, a time bound, or a step bound."""
        if self.engine == "scan":
            for __ in range(max_steps):
                if until_us is not None \
                        and self.wall_time_us() >= until_us:
                    return True
                if not self.step():
                    return True
            raise SimulationStuck("exceeded %d steps" % max_steps)
        status = self._drive(max_steps, until_us=until_us)
        if status in ("until", "idle"):
            return True
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_until(self, predicate, max_steps=5_000_000):
        """Run until ``predicate()`` is true.

        Raises :class:`SimulationStuck` if the cluster goes idle (for
        example a process is waiting for terminal input nobody will
        type) or the step bound is hit with the predicate still false.
        """
        if self.engine == "scan":
            for __ in range(max_steps):
                if predicate():
                    return
                if not self.step():
                    if predicate():
                        return
                    raise SimulationStuck(
                        "cluster idle but the awaited condition is false")
            raise SimulationStuck("exceeded %d steps" % max_steps)
        status = self._drive(max_steps, predicate=predicate)
        if status == "predicate":
            return
        if status == "idle":
            if predicate():
                return
            raise SimulationStuck(
                "cluster idle but the awaited condition is false")
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_handle(self, handle, max_steps=5_000_000):
        """Run until a SpawnHandle's process has exited."""
        self.run_until(lambda: handle.exited, max_steps=max_steps)
        return handle

    # -- fast driver internals -------------------------------------------------

    def note_activity(self, machine):
        """A machine's next-action time may have moved (new event or
        newly runnable process).  Called by :meth:`Machine.post_event`
        and the scheduler's enqueue."""
        if self._bursting is not None and machine is not self._bursting:
            # the bursting machine just scheduled work on a peer; the
            # peer might now act (and message back) before the old
            # horizon, so the horizon must be recomputed
            self._horizon_stale = True
            self.perf.horizon_invalidations += 1
        self._dirty.add(machine)

    def _push(self, machine):
        machine.heap_token += 1
        heapq.heappush(self._heap,
                       (machine.next_time(), machine.order,
                        machine.heap_token, machine))

    def _flush_dirty(self):
        if self._dirty:
            for machine in self._dirty:
                if machine is not self._bursting and machine.has_work():
                    self._push(machine)
            self._dirty.clear()

    def _peek(self):
        """The valid heap top, repairing lazily; None when idle.

        An entry is stale if its token was superseded, its machine is
        mid-burst, its machine went idle, or its recorded time no
        longer matches (clocks can be advanced from outside the
        driver, e.g. by :meth:`sync_clocks`).
        """
        heap = self._heap
        while heap:
            when, order, token, machine = heap[0]
            if token != machine.heap_token or machine is self._bursting:
                heapq.heappop(heap)
                continue
            if not machine.has_work():
                heapq.heappop(heap)
                machine.heap_token += 1
                continue
            now = machine.next_time()
            if now != when:
                heapq.heappop(heap)
                self._push(machine)
                continue
            return heap[0]
        return None

    def _drive(self, max_steps, until_us=None, predicate=None):
        """The event-horizon batched driver.

        Returns ``"predicate"``, ``"until"`` or ``"idle"``; exhausting
        ``max_steps`` returns ``"steps"`` and the caller raises.

        Causality argument: the chosen machine is the laggard (minimum
        next-action time, ties broken by machine order exactly like
        the reference scan).  While it bursts, no other machine runs.
        In a pure message-passing PDES the horizon would be the best
        peer next-action time *plus* the network's minimum message
        latency (``costs.message_us(0)``) — but our machines also
        share synchronous state (NFS cross-mounts resolve remote reads
        and writes instantly, with no delivery event), which collapses
        the safe latency term to zero.  The horizon is therefore the
        exact ``(next_time, order)`` key at which the reference scan
        would stop picking this machine, so the burst reproduces the
        reference schedule step for step — bursts amortize the pick,
        they never reorder it.  When the burst posts a delivery to a
        peer, the peer's next-action time — and hence the horizon —
        can shrink (the peer may react and message back), so the
        horizon is recomputed (:meth:`note_activity` flags it).
        """
        perf = self.perf
        steps = 0
        while steps < max_steps:
            if predicate is not None and predicate():
                return "predicate"
            if until_us is not None and self.wall_time_us() >= until_us:
                return "until"
            self._flush_dirty()
            top = self._peek()
            if top is None:
                return "idle"
            machine = top[3]
            heapq.heappop(self._heap)
            self._bursting = machine
            self._horizon_stale = False
            order = machine.order
            burst = 0
            try:
                nxt = self._peek()
                horizon = (nxt[0], nxt[1]) if nxt is not None \
                    else (_INF, _INF)
                while steps < max_steps:
                    # the first step is unconditional: the laggard was
                    # chosen exactly as the reference scan would
                    if burst and (machine.next_time(), order) >= horizon:
                        break
                    if not machine.step():
                        break
                    steps += 1
                    burst += 1
                    perf.steps += 1
                    if predicate is not None and predicate():
                        return "predicate"
                    if until_us is not None \
                            and machine.clock.now_us >= until_us:
                        # only the bursting machine's clock moved, so
                        # its clock alone decides the wall-time bound
                        return "until"
                    if self._horizon_stale:
                        self._horizon_stale = False
                        self._flush_dirty()
                        nxt = self._peek()
                        horizon = (nxt[0], nxt[1]) if nxt is not None \
                            else (_INF, _INF)
            finally:
                self._bursting = None
                perf.note_burst(burst)
                self._dirty.discard(machine)
                if machine.has_work():
                    self._push(machine)
        return "steps"
