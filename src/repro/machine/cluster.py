"""The cluster: several machines on one Ethernet, cross-mounted.

Reproduces the paper's site: Sun workstations plus a file server,
every machine's root visible on every other machine as ``/n/<host>``
(the 8th-edition convention), home directories on the file server
behind symbolic links.

The simulation driver is conservative parallel discrete-event: the
machine with the smallest next-action time always steps first, so
cross-machine messages never arrive in a receiver's past.
"""

from repro.costmodel import CostModel
from repro.machine.machine import Machine
from repro.net.network import Network


class SimulationStuck(Exception):
    """run_until() could not make progress toward its predicate."""


class Cluster:
    """A set of machines sharing an Ethernet and NFS cross-mounts."""

    def __init__(self, costs=None):
        self.costs = costs or CostModel()
        self.machines = {}
        self.network = Network(self)

    # -- topology --------------------------------------------------------------

    def add_machine(self, name, cpu="mc68010"):
        if name in self.machines:
            raise ValueError("duplicate machine %r" % name)
        machine = Machine(name, self, cpu=cpu)
        self.machines[name] = machine
        return machine

    def machine(self, name):
        return self.machines[name]

    def exported_fs(self, host):
        """The filesystem served for ``/n/<host>`` lookups.

        Every machine exports its root to every other (and to itself
        — a loopback mount, so ``dumpproc``'s ``/n/<self>/...``
        rewriting also works for same-machine restarts).
        """
        machine = self.machines.get(host)
        return machine.fs if machine is not None else None

    def hosts(self):
        return sorted(self.machines)

    # -- site conventions ------------------------------------------------------------

    def setup_home_directories(self, server_name, users):
        """Paper-footnote convention: ``/u/<user>`` is a symlink to
        ``/n/<server>/u2/<user>`` on every workstation."""
        server = self.machines[server_name]
        for user, uid in users.items():
            home = server.fs.makedirs("/u2/%s" % user)
            home.uid = uid
            home.mode = 0o755
        for machine in self.machines.values():
            u_dir = machine.fs.resolve_local("/u")
            for user in users:
                if user not in u_dir.entries:
                    machine.fs.symlink(u_dir, user,
                                       "/n/%s/u2/%s" % (server_name,
                                                        user))

    # -- the simulation driver ----------------------------------------------------------

    def wall_time_us(self):
        """The cluster-wide wall clock (the most advanced machine)."""
        if not self.machines:
            return 0.0
        return max(m.clock.now_us for m in self.machines.values())

    def sync_clocks(self):
        """Bring every machine's clock up to the cluster wall time."""
        now = self.wall_time_us()
        for machine in self.machines.values():
            machine.clock.advance_to(now)

    def step(self):
        """Step the laggard machine once; False if nothing has work."""
        best = None
        best_time = float("inf")
        for machine in self.machines.values():
            if not machine.has_work():
                continue
            when = machine.next_time()
            if when < best_time:
                best = machine
                best_time = when
        if best is None:
            return False
        best.step()
        return True

    def run(self, max_steps=5_000_000, until_us=None):
        """Run until idle, a time bound, or a step bound."""
        for __ in range(max_steps):
            if until_us is not None and self.wall_time_us() >= until_us:
                return True
            if not self.step():
                return True
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_until(self, predicate, max_steps=5_000_000):
        """Run until ``predicate()`` is true.

        Raises :class:`SimulationStuck` if the cluster goes idle (for
        example a process is waiting for terminal input nobody will
        type) or the step bound is hit with the predicate still false.
        """
        for __ in range(max_steps):
            if predicate():
                return
            if not self.step():
                if predicate():
                    return
                raise SimulationStuck(
                    "cluster idle but the awaited condition is false")
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_handle(self, handle, max_steps=5_000_000):
        """Run until a SpawnHandle's process has exited."""
        self.run_until(lambda: handle.exited, max_steps=max_steps)
        return handle
