"""The cluster: several machines on one Ethernet, cross-mounted.

Reproduces the paper's site: Sun workstations plus a file server,
every machine's root visible on every other machine as ``/n/<host>``
(the 8th-edition convention), home directories on the file server
behind symbolic links.

The simulation driver is conservative parallel discrete-event: the
machine with the smallest next-action time always steps first, so
cross-machine messages never arrive in a receiver's past.

Two drivers implement that contract:

* ``engine="fast"`` (the default) keeps machines in a lazy min-heap
  keyed by next-action time and, once the laggard is chosen, lets it
  run a *burst* of steps up to its event horizon — the earliest
  virtual time any other machine could affect it.  In a pure
  message-passing simulation that is the peers' best next-action
  time plus the network's minimum message latency (the classic
  conservative-PDES lookahead).  Our machines additionally share
  synchronous NFS state, which collapses the latency term to zero —
  but a peer whose next action is a *scheduling slot* (purely
  runnable, no pending events) cannot emit anything visible before
  its slot charges the context switch and runs, so such peers
  contribute ``next_time + context_switch_us + quantum_us`` to the
  horizon.  That overlap window is what lets machines whose quanta
  overlap in virtual time run several slots per pick instead of
  leapfrogging one step at a time.  The horizon is memoized: a
  peer's activity during a burst does an O(1) min-update, and only
  growth of the horizon machine's own key forces an O(M) recompute.
* ``engine="scan"`` is the original reference driver: an O(M) scan
  per step, using the *same* overlap-window rule (a sticky burst
  machine it keeps picking while no peer's window allows earlier
  interference).  It is kept for benchmarking and as the executable
  specification the fast driver must agree with step for step.

Both produce identical virtual-time results; the fast driver only
changes how much *real* time the host spends finding the next event.
"""

import heapq

from repro.costmodel import CostModel
from repro.errors import EHOSTDOWN, UnixError
from repro.faults import FaultInjector, FaultPlan
from repro.machine.machine import Machine
from repro.net.network import Network
from repro.obs import Tracer
from repro.perf import PerfCounters
from repro.store import ChunkStore
from repro.vm.cpu import CodeCache

_INF = float("inf")


class SimulationStuck(Exception):
    """run_until() could not make progress toward its predicate."""


class Cluster:
    """A set of machines sharing an Ethernet and NFS cross-mounts."""

    def __init__(self, costs=None, engine="fast"):
        if engine not in ("fast", "scan"):
            raise ValueError("unknown engine %r" % engine)
        self.costs = costs or CostModel()
        self.machines = {}
        self.perf = PerfCounters()
        # the tracer must exist before the network and any kernels,
        # which cache a reference to it
        self.tracer = Tracer(self)
        self.network = Network(self)
        self.engine = engine
        self.faults = FaultInjector()
        # the content-addressed chunk store backing incremental dumps
        # (cluster-wide, like the NFS-shared dump directory itself)
        self.chunk_store = ChunkStore(self)
        # fast-driver state: a lazy min-heap of (next_time, order,
        # token, machine).  Stale entries are detected by token (bumped
        # on every re-push) and by re-reading next_time at the top.
        self._heap = []
        self._dirty = set()  #: machines whose heap key may have changed
        self._bursting = None  #: machine currently inside a burst
        self._horizon_stale = False
        # the memoized event horizon: the minimum lookahead key over
        # every non-bursting machine with work, and the machine that
        # attains it (so note_activity can tell a harmless update from
        # one that invalidates the minimum)
        self._horizon = (_INF, _INF)
        self._horizon_src = None
        #: the scan engine's sticky burst machine (the reference twin
        #: of the fast engine's burst; reset per run()/run_until())
        self._burst_machine = None
        # compiled traces shared by every machine's CPU, so a migrated
        # process arrives with its hot code already compiled
        self._code_cache = CodeCache()

    # -- topology --------------------------------------------------------------

    def add_machine(self, name, cpu="mc68010"):
        if name in self.machines:
            raise ValueError("duplicate machine %r" % name)
        machine = Machine(name, self, cpu=cpu)
        # the insertion index is the driver's deterministic tie-break,
        # mirroring the reference driver's dict-order scan
        machine.order = len(self.machines)
        machine.cpu.perf = self.perf
        machine.cpu.code_cache = self._code_cache
        if self.engine == "scan":
            # the reference engine is the *whole* pre-change engine:
            # O(M) scan driver and lazily-decoding interpreter
            machine.cpu.use_predecode = False
        self.machines[name] = machine
        return machine

    def machine(self, name):
        return self.machines[name]

    def inject_faults(self, plan, seed=0):
        """Arm a fault plan: a :class:`FaultPlan` or its textual form
        (see ``repro.faults.plan``).  Replaces any armed plan."""
        if isinstance(plan, str):
            plan = FaultPlan.parse(plan, seed=seed)
        self.faults.arm(plan)
        return plan

    def exported_fs(self, host, client=None):
        """The filesystem served for ``/n/<host>`` lookups.

        Every machine exports its root to every other (and to itself
        — a loopback mount, so ``dumpproc``'s ``/n/<self>/...``
        rewriting also works for same-machine restarts).  A crashed
        server, or one cut off from ``client`` by a partition, raises
        ``EHOSTDOWN`` — NFS here is a hard mount that errors rather
        than hanging forever, so programs can react.
        """
        machine = self.machines.get(host)
        if machine is None:
            return None
        if not machine.running:
            raise UnixError(EHOSTDOWN, host)
        if client is not None and client != host \
                and not self.network.reachable(client, host):
            raise UnixError(EHOSTDOWN, "%s (partitioned)" % host)
        return machine.fs

    def hosts(self):
        return sorted(self.machines)

    # -- host failure primitives -----------------------------------------------

    def crash_host(self, name):
        """Crash a host: its processes vanish mid-instruction, peers'
        sockets see RST/EOF one wire latency later, and its exported
        filesystem stops answering (``EHOSTDOWN``)."""
        machine = self.machines.get(name)
        if machine is None:
            raise ValueError("unknown machine %r" % name)
        if not machine.running:
            return
        self.perf.host_crashes += 1
        self.perf.metrics.inc("host_crashes", host=name)
        if self.tracer.enabled:
            self.tracer.emit("fault", "host_crash", machine)
        base = self.wall_time_us()
        self.network.host_crashed(machine,
                                  base + self.costs.message_us(0))
        machine.crash()

    def reboot_host(self, name):
        """Reboot a crashed host; takes ``costs.boot_s`` virtual time.

        The fresh kernel re-serves the host's NFS exports; daemons
        must be restarted by the embedder."""
        machine = self.machines.get(name)
        if machine is None:
            raise ValueError("unknown machine %r" % name)
        machine.reboot()
        self.perf.host_reboots += 1
        self.perf.metrics.inc("host_reboots", host=name)
        if self.tracer.enabled:
            self.tracer.emit("fault", "host_reboot", machine)
        return machine

    def partition(self, a, b):
        """Cut the network link between hosts ``a`` and ``b``."""
        self.network.partition(a, b)

    def heal(self, a=None, b=None):
        """Heal one cut link (or all cuts when called with no args)."""
        self.network.heal(a, b)

    # -- site conventions ------------------------------------------------------------

    def setup_home_directories(self, server_name, users):
        """Paper-footnote convention: ``/u/<user>`` is a symlink to
        ``/n/<server>/u2/<user>`` on every workstation."""
        server = self.machines[server_name]
        for user, uid in users.items():
            home = server.fs.makedirs("/u2/%s" % user)
            home.uid = uid
            home.mode = 0o755
        for machine in self.machines.values():
            u_dir = machine.fs.resolve_local("/u")
            for user in users:
                if user not in u_dir.entries:
                    machine.fs.symlink(u_dir, user,
                                       "/n/%s/u2/%s" % (server_name,
                                                        user))

    # -- the simulation driver ----------------------------------------------------------

    def wall_time_us(self):
        """The cluster-wide wall clock (the most advanced machine)."""
        if not self.machines:
            return 0.0
        return max(m.clock.now_us for m in self.machines.values())

    def sync_clocks(self):
        """Bring every machine's clock up to the cluster wall time."""
        now = self.wall_time_us()
        for machine in self.machines.values():
            machine.clock.advance_to(now)

    def _lookahead_key(self, machine):
        """The earliest ``(time, order)`` at which ``machine`` could
        make anything visible to a peer.

        A machine whose next action is a scheduling slot (purely
        runnable, no pending events) first charges the context switch
        and then runs a quantum; nothing it does lands on shared state
        before that window opens.  A machine with pending events gets
        no window: an event handler may emit immediately.
        """
        when = machine.next_time()
        if not machine._events \
                and machine.kernel.scheduler.has_runnable():
            when += self.costs.context_switch_us + self.costs.quantum_us
        return (when, machine.order)

    def _peers_horizon(self, current):
        """Minimum lookahead key over every other machine with work."""
        best = (_INF, _INF)
        for machine in self.machines.values():
            if machine is current or not machine.has_work():
                continue
            key = self._lookahead_key(machine)
            if key < best:
                best = key
        return best

    def step(self):
        """Step the laggard machine once; False if nothing has work.

        This is the reference driver (and the ``engine="scan"``
        building block): an O(M) scan with dict-insertion-order
        tie-break.  A sticky burst machine keeps getting picked while
        no peer's overlap window lets it interfere earlier — the exact
        schedule the fast driver reproduces with its heap and
        memoized horizon.
        """
        current = self._burst_machine
        if current is not None and current.has_work() \
                and (current.next_time(), current.order) \
                < self._peers_horizon(current):
            current.step()
            self.perf.steps += 1
            return True
        best = None
        best_key = (_INF, _INF)
        for machine in self.machines.values():
            if not machine.has_work():
                continue
            key = (machine.next_time(), machine.order)
            if key < best_key:
                best = machine
                best_key = key
        self._burst_machine = best
        if best is None:
            return False
        best.step()
        self.perf.steps += 1
        return True

    def run(self, max_steps=5_000_000, until_us=None):
        """Run until idle, a time bound, or a step bound."""
        if self.engine == "scan":
            # a fresh drive starts with a fresh pick, exactly like the
            # fast engine's _drive (bursts never span driver calls)
            self._burst_machine = None
            for __ in range(max_steps):
                if until_us is not None \
                        and self.wall_time_us() >= until_us:
                    return True
                if not self.step():
                    return True
            raise SimulationStuck("exceeded %d steps" % max_steps)
        status = self._drive(max_steps, until_us=until_us)
        if status in ("until", "idle"):
            return True
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_until(self, predicate, max_steps=5_000_000):
        """Run until ``predicate()`` is true.

        Raises :class:`SimulationStuck` if the cluster goes idle (for
        example a process is waiting for terminal input nobody will
        type) or the step bound is hit with the predicate still false.
        """
        if self.engine == "scan":
            self._burst_machine = None
            for __ in range(max_steps):
                if predicate():
                    return
                if not self.step():
                    if predicate():
                        return
                    raise SimulationStuck(
                        "cluster idle but the awaited condition is false")
            raise SimulationStuck("exceeded %d steps" % max_steps)
        status = self._drive(max_steps, predicate=predicate)
        if status == "predicate":
            return
        if status == "idle":
            if predicate():
                return
            raise SimulationStuck(
                "cluster idle but the awaited condition is false")
        raise SimulationStuck("exceeded %d steps" % max_steps)

    def run_handle(self, handle, max_steps=5_000_000):
        """Run until a SpawnHandle's process has exited."""
        self.run_until(lambda: handle.exited, max_steps=max_steps)
        return handle

    # -- fast driver internals -------------------------------------------------

    def note_activity(self, machine):
        """A machine's next-action time may have moved (new event,
        newly runnable process, crash, reboot).  Called by
        :meth:`Machine.post_event`, the scheduler's enqueue and the
        host failure primitives.

        Mid-burst, the memoized horizon absorbs most activity in O(1):
        a key at or above the current minimum from some other machine
        changes nothing (``horizon_memo_hits``); a smaller key lowers
        the minimum in place; only the horizon machine's *own* key
        moving away from the recorded minimum — a peer that crashed or
        rebooted out from under it — forces the O(M) recompute
        (``horizon_invalidations``).
        """
        self._dirty.add(machine)
        bursting = self._bursting
        if bursting is None or machine is bursting:
            return
        key = self._lookahead_key(machine)
        if key < self._horizon:
            self._horizon = key
            self._horizon_src = machine
            self.perf.horizon_invalidations += 1
        elif machine is self._horizon_src and key != self._horizon:
            self._horizon_stale = True
            self.perf.horizon_invalidations += 1
        else:
            self.perf.horizon_memo_hits += 1

    def _push(self, machine):
        machine.heap_token += 1
        self.perf.heap_pushes += 1
        heapq.heappush(self._heap,
                       (machine.next_time(), machine.order,
                        machine.heap_token, machine))

    def _flush_dirty(self):
        if self._dirty:
            for machine in self._dirty:
                if machine is not self._bursting and machine.has_work():
                    self._push(machine)
            self._dirty.clear()

    def _peek(self):
        """The valid heap top, repairing lazily; None when idle.

        An entry is stale if its token was superseded, its machine is
        mid-burst, its machine went idle, or its recorded time no
        longer matches (clocks can be advanced from outside the
        driver, e.g. by :meth:`sync_clocks`).
        """
        heap = self._heap
        while heap:
            when, order, token, machine = heap[0]
            if token != machine.heap_token or machine is self._bursting:
                heapq.heappop(heap)
                continue
            if not machine.has_work():
                heapq.heappop(heap)
                machine.heap_token += 1
                continue
            now = machine.next_time()
            if now != when:
                heapq.heappop(heap)
                self._push(machine)
                continue
            return heap[0]
        return None

    def _recompute_horizon(self):
        """O(M) scan for the burst horizon: the minimum *lookahead*
        key over every other machine with work.  The heap top cannot
        stand in for this — heap entries carry raw next-action keys,
        and the minimum of the lookahead keys is not necessarily
        attained by the raw minimum."""
        best = (_INF, _INF)
        src = None
        bursting = self._bursting
        for machine in self.machines.values():
            if machine is bursting or not machine.has_work():
                continue
            key = self._lookahead_key(machine)
            if key < best:
                best = key
                src = machine
        self._horizon = best
        self._horizon_src = src

    def _drive(self, max_steps, until_us=None, predicate=None):
        """The event-horizon batched driver.

        Returns ``"predicate"``, ``"until"`` or ``"idle"``; exhausting
        ``max_steps`` returns ``"steps"`` and the caller raises.

        Causality argument: the chosen machine is the laggard (minimum
        next-action time, ties broken by machine order exactly like
        the reference scan).  While it bursts, no other machine runs.
        In a pure message-passing PDES the horizon would be the best
        peer next-action time *plus* the network's minimum message
        latency (``costs.message_us(0)``) — but our machines also
        share synchronous state (NFS cross-mounts resolve remote reads
        and writes instantly, with no delivery event), which collapses
        the safe latency term to zero for peers with pending events.
        Peers that would next run a scheduling slot get the overlap
        window instead (see :meth:`_lookahead_key`): machines whose
        quanta overlap in virtual time are simulated-parallel, and
        running the laggard's overlapping slots back to back is a
        valid serialization the reference scan commits to with the
        same rule — bursts amortize the pick and never diverge from
        the scan schedule.  When the burst posts a delivery to a peer,
        the peer's lookahead key — and hence the horizon — can
        shrink; :meth:`note_activity` folds that into the memoized
        horizon in O(1) and only a grown key forces a recompute.
        """
        perf = self.perf
        steps = 0
        while steps < max_steps:
            if predicate is not None and predicate():
                return "predicate"
            if until_us is not None and self.wall_time_us() >= until_us:
                return "until"
            self._flush_dirty()
            top = self._peek()
            if top is None:
                return "idle"
            machine = top[3]
            heapq.heappop(self._heap)
            self._bursting = machine
            self._horizon_stale = False
            order = machine.order
            burst = 0
            try:
                self._recompute_horizon()
                while steps < max_steps:
                    # the first step is unconditional: the laggard was
                    # chosen exactly as the reference scan would
                    if burst and (machine.next_time(), order) \
                            >= self._horizon:
                        break
                    if not machine.step():
                        break
                    steps += 1
                    burst += 1
                    perf.steps += 1
                    if predicate is not None and predicate():
                        return "predicate"
                    if until_us is not None \
                            and machine.clock.now_us >= until_us:
                        # only the bursting machine's clock moved, so
                        # its clock alone decides the wall-time bound
                        return "until"
                    if self._horizon_stale:
                        self._horizon_stale = False
                        self._recompute_horizon()
            finally:
                self._bursting = None
                perf.note_burst(burst)
                self._dirty.discard(machine)
                if machine.has_work():
                    self._push(machine)
        return "steps"
