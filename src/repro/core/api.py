"""High-level Python API over the migration system.

:class:`MigrationSite` builds the paper's testbed — workstations plus
a file server, cross-mounted over NFS, programs installed, daemons
running — and wraps the user commands (``dumpproc``, ``restart``,
``migrate``) so that examples, tests and benchmarks read like the
paper's section 4.2 walkthrough::

    site = MigrationSite()
    pid = site.start("brick", "/bin/counter", uid=100).pid
    ...
    site.dumpproc("brick", pid, uid=100)
    handle = site.restart("schooner", pid, from_host="brick", uid=100)

``MigrationManager`` is an alias kept for API stability.
"""

from repro.costmodel import CostModel
from repro.errors import UnixError
from repro.machine.cluster import Cluster
from repro.programs import install_standard_programs

#: the default user population (uids) of the simulated site
DEFAULT_USERS = {"alonso": 100, "kyrimis": 101}


class CommandFailed(UnixError):
    """A wrapped user command exited non-zero."""

    def __init__(self, command, status):
        from repro.errors import EINVAL
        super().__init__(EINVAL, "%s exited %d" % (command, status))
        self.command = command
        self.status = status


class MigrationSite:
    """The paper's site in a box."""

    def __init__(self, costs=None, workstations=("brick", "schooner"),
                 server="brador", cpus=None, users=None, daemons=True,
                 engine="fast", faults=None, fault_seed=0):
        self.costs = costs or CostModel()
        self.cluster = Cluster(self.costs, engine=engine)
        if faults is not None:
            self.cluster.inject_faults(faults, seed=fault_seed)
        self.server_name = server
        cpus = cpus or {}
        names = list(workstations) + ([server] if server else [])
        for name in names:
            machine = self.cluster.add_machine(
                name, cpu=cpus.get(name, "mc68010"))
            install_standard_programs(machine)
        if server:
            self.cluster.setup_home_directories(
                server, users or dict(DEFAULT_USERS))
        self.daemons = []
        if daemons:
            from repro.programs import start_network_daemons
            for name in names:
                self.daemons.extend(
                    start_network_daemons(self.cluster.machine(name)))

    # -- plumbing -----------------------------------------------------------

    def machine(self, name):
        return self.cluster.machine(name)

    def run(self, **kw):
        return self.cluster.run(**kw)

    def run_until(self, predicate, **kw):
        return self.cluster.run_until(predicate, **kw)

    def run_quiet(self, max_steps=2_000_000):
        """Run until only the daemons are left doing nothing."""
        self.cluster.run(max_steps=max_steps)

    # -- process management -------------------------------------------------------

    def start(self, host, path, argv=None, uid=100, cwd=None, tty=None):
        """Start a program; returns its SpawnHandle."""
        machine = self.machine(host)
        return machine.spawn(path, argv or [path.rsplit("/", 1)[-1]],
                             uid=uid, cwd=cwd or "/tmp", tty=tty)

    def run_command(self, host, argv, uid=100, tty=None, cwd="/tmp",
                    max_steps=2_000_000):
        """Run a command to completion; returns its exit status."""
        machine = self.machine(host)
        handle = machine.spawn("/bin/%s" % argv[0], argv, uid=uid,
                               cwd=cwd, tty=tty)
        self.cluster.run_until(lambda: handle.exited,
                               max_steps=max_steps)
        return handle.exit_status if handle.term_signal is None else 128

    # -- the three commands ------------------------------------------------------------

    def dumpproc(self, host, pid, uid=100, check=True):
        """Run ``dumpproc -p pid`` on ``host``; returns exit status."""
        status = self.run_command(host, ["dumpproc", "-p", str(pid)],
                                  uid=uid)
        if check and status != 0:
            raise CommandFailed("dumpproc -p %d on %s" % (pid, host),
                                status)
        return status

    def restart(self, host, pid, from_host=None, uid=100, tty=None,
                wait_resumed=True):
        """Run ``restart`` on ``host``; returns the SpawnHandle of the
        restart process — which, on success, *is* the migrated
        process.  With ``wait_resumed`` the call runs the simulation
        until the process has been overlaid with the dumped image (or
        exited, which means restart failed)."""
        argv = ["restart", "-p", str(pid)]
        if from_host:
            argv += ["-h", from_host]
        machine = self.machine(host)
        handle = machine.spawn("/bin/restart", argv, uid=uid, tty=tty,
                               cwd="/tmp")
        if wait_resumed:
            self.cluster.run_until(
                lambda: handle.exited or handle.proc.is_vm())
        return handle

    def migrate(self, pid, source, destination, typed_on=None, uid=100,
                use_daemon=False, tty=None, wait_resumed=True):
        """Run ``migrate`` (section 4.1); returns the migrate handle.

        ``typed_on`` is the machine the command is typed at (defaults
        to the destination, the best choice for visual programs).
        """
        typed_on = typed_on or destination
        argv = ["migrate", "-p", str(pid), "-f", source,
                "-t", destination]
        if use_daemon:
            argv.append("-d")
        machine = self.machine(typed_on)
        handle = machine.spawn("/bin/migrate", argv, uid=uid, tty=tty,
                               cwd="/tmp")
        if wait_resumed:
            self.cluster.run_until(
                lambda: handle.exited and (
                    handle.exit_status != 0
                    or self.find_restarted(destination) is not None))
        return handle

    def start_loadd(self, hosts=None, interval=None, rounds=None,
                    policy=None, uid=0):
        """Start the load-balancing daemon on ``hosts`` (DESIGN.md
        section 11).

        Every daemon is told the full host list as its peer set (it
        ignores itself).  Returns the loadd SpawnHandles; each daemon
        exits after its configured number of balance rounds, so a
        ``run_quiet()`` still terminates.  Opt-in by design: a site
        that never calls this runs byte-identically to one built
        before loadd existed.
        """
        hosts = list(hosts) if hosts is not None else \
            [name for name in self.cluster.hosts()
             if name != self.server_name]
        argv_tail = []
        if interval is not None:
            argv_tail += ["-i", str(interval)]
        if rounds is not None:
            argv_tail += ["-n", str(rounds)]
        if policy is not None:
            argv_tail += ["-P", policy]
        handles = []
        for name in hosts:
            machine = self.machine(name)
            handles.append(machine.spawn(
                "/bin/loadd", ["loadd"] + argv_tail + hosts,
                uid=uid, cwd="/tmp"))
        return handles

    def start_statd(self, hosts=None, interval=None, rounds=None,
                    uid=0):
        """Start cluster telemetry (DESIGN.md section 13): the
        ``statd-recv`` spooler on the file server plus one ``statd``
        per host.

        Returns the SpawnHandles (spooler first).  Doubly opt-in: a
        site that never calls this runs byte-identically to one built
        before statd existed, and even a started statd exits
        immediately unless the ``stat_interval_s`` knob (or
        ``interval``) is positive.
        """
        hosts = list(hosts) if hosts is not None else \
            [name for name in self.cluster.hosts()
             if name != self.server_name]
        argv_tail = []
        if interval is not None:
            argv_tail += ["-i", str(interval)]
        if rounds is not None:
            argv_tail += ["-n", str(rounds)]
        handles = []
        if self.server_name:
            handles.append(self.machine(self.server_name).spawn(
                "/bin/statd-recv", ["statd-recv"], uid=uid,
                cwd="/tmp"))
        for name in hosts:
            handles.append(self.machine(name).spawn(
                "/bin/statd", ["statd"] + argv_tail, uid=uid,
                cwd="/tmp"))
        return handles

    # -- inspection helpers --------------------------------------------------------------

    def find_restarted(self, host):
        """The most recent restart-process-turned-VM on ``host``."""
        machine = self.machine(host)
        candidates = [p for p in machine.kernel.procs.all_procs()
                      if p.is_vm() and p.command.startswith("a.out")]
        return candidates[-1] if candidates else None

    def console(self, host):
        return self.machine(host).console_text()

    def type_at(self, host, text):
        self.machine(host).type_at_console(text)

    def wall_seconds(self):
        return self.cluster.wall_time_us() / 1e6


#: stable alias used in DESIGN.md
MigrationManager = MigrationSite
