"""The paper's contribution: the process migration mechanism.

* :mod:`repro.core.formats` — the binary formats of the
  ``filesXXXXX`` (magic 0445) and ``stackXXXXX`` (magic 0444) dump
  files;
* :mod:`repro.core.symlinks` — user-level symlink resolution by
  iterated ``readlink()``;
* :mod:`repro.core.api` — :class:`~repro.core.api.MigrationManager`,
  a high-level Python API over the user commands.

The kernel half of the mechanism (the ``SIGDUMP`` dump writer and the
``rest_proc()`` system call) lives in :mod:`repro.kernel.dump` and
:mod:`repro.kernel.restproc`; the user commands (``dumpproc``,
``restart``, ``migrate``) in :mod:`repro.programs`.
"""

from repro.core.formats import (FilesInfo, StackInfo, FdEntry,
                                FD_UNUSED, FD_FILE, FD_SOCKET,
                                dump_file_names)

__all__ = [
    "FilesInfo", "StackInfo", "FdEntry",
    "FD_UNUSED", "FD_FILE", "FD_SOCKET",
    "dump_file_names",
]
