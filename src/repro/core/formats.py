"""Binary formats of the ``filesXXXXX`` and ``stackXXXXX`` dump files.

``SIGDUMP`` produces three files in ``/usr/tmp``, named by the pid of
the dumped process:

``a.outXXXXX``
    a runnable executable: the text and data segments with an a.out
    header prepended (see :mod:`repro.vm.aout`).

``filesXXXXX`` (magic octal 445)
    "all the information that is not needed by the kernel to restart
    the process, but must be used at user level": hostname, current
    working directory, one entry per slot of the fixed-size open file
    table (unused / open file with path+flags+offset / socket), and
    the terminal flags.

``stackXXXXX`` (magic octal 444)
    "all the information that is required by the kernel": user
    credentials, the size and contents of the stack, the registers,
    and the signal dispositions.

Strings are length-prefixed (u16 little endian).  All path names in
the files file are *lexically* absolute but may still contain
symbolic links — resolving them is explicitly the job of the
user-level ``dumpproc`` (section 4.3 of the paper).
"""

import struct

from repro.errors import UnixError, EINVAL, ENOEXEC
from repro.kernel.constants import (NOFILE, FILES_MAGIC, STACK_MAGIC,
                                    STACK_CHUNK_MAGIC, CHUNK_MAGIC,
                                    DUMPDIR)
from repro.kernel.cred import Credentials, PACKED_SIZE as CRED_SIZE
from repro.kernel.signals import SigState
from repro.store import DIGEST_BYTES
from repro.vm.aout import AOutHeader, HEADER_SIZE, AOUT_FLAG_CHUNKED
from repro.vm.image import Registers

FD_UNUSED = 0
FD_FILE = 1
FD_SOCKET = 2  #: sockets *and* pipes: neither survives migration
#: extension (paper section 9 future work): a socket that was bound
#: to a well-known port, recorded with the port and whether it was
#: listening, so restart can re-establish the service endpoint
FD_SOCKET_BOUND = 3

_U16 = struct.Struct("<H")
_I32 = struct.Struct("<i")
_U32 = struct.Struct("<I")


class _Writer:
    def __init__(self):
        self.parts = []

    def u16(self, value):
        self.parts.append(_U16.pack(value))

    def i32(self, value):
        self.parts.append(_I32.pack(value))

    def u32(self, value):
        self.parts.append(_U32.pack(value))

    def raw(self, blob):
        self.parts.append(bytes(blob))

    def string(self, text):
        data = text.encode("latin-1")
        if len(data) > 0xFFFF:
            raise UnixError(EINVAL, "string too long for dump format")
        self.u16(len(data))
        self.raw(data)

    def getvalue(self):
        return b"".join(self.parts)


class _Reader:
    def __init__(self, blob, what):
        self.blob = blob
        self.pos = 0
        self.what = what

    def _take(self, size):
        if self.pos + size > len(self.blob):
            raise UnixError(EINVAL, "truncated %s file" % self.what)
        chunk = self.blob[self.pos:self.pos + size]
        self.pos += size
        return chunk

    def u16(self):
        return _U16.unpack(self._take(2))[0]

    def i32(self):
        return _I32.unpack(self._take(4))[0]

    def u32(self):
        return _U32.unpack(self._take(4))[0]

    def raw(self, size):
        return bytes(self._take(size))

    def string(self):
        return self.raw(self.u16()).decode("latin-1")


class ChunkManifest:
    """A digest list standing in for a blob in an incremental dump.

    Layout: magic (u16), chunk size (u32), blob length (u32), chunk
    count (u16), then ``count`` raw digests.  The count is fully
    determined by length and chunk size — it is stored anyway and
    cross-checked on unpack, so a truncated or doctored manifest is
    rejected before any chunk is fetched.
    """

    #: magic + chunk_bytes + length + count
    HEADER_SIZE = 2 + 4 + 4 + 2

    def __init__(self, chunk_bytes, length, digests):
        self.chunk_bytes = int(chunk_bytes)
        self.length = int(length)
        self.digests = tuple(digests)
        if self.chunk_bytes <= 0:
            raise UnixError(EINVAL, "bad manifest chunk size %d"
                            % self.chunk_bytes)
        if self.length < 0:
            raise UnixError(EINVAL, "bad manifest length %d" % self.length)
        expected = -(-self.length // self.chunk_bytes)
        if len(self.digests) != expected:
            raise UnixError(EINVAL, "manifest wants %d chunks, has %d"
                            % (expected, len(self.digests)))
        if any(len(d) != DIGEST_BYTES for d in self.digests):
            raise UnixError(EINVAL, "bad manifest digest width")

    def chunk_size(self, index):
        """Size of chunk ``index`` (the last one may be short)."""
        return min(self.chunk_bytes, self.length - index * self.chunk_bytes)

    def packed_size(self):
        return self.HEADER_SIZE + DIGEST_BYTES * len(self.digests)

    def pack_into(self, writer):
        writer.u16(CHUNK_MAGIC)
        writer.u32(self.chunk_bytes)
        writer.u32(self.length)
        writer.u16(len(self.digests))
        for digest in self.digests:
            writer.raw(digest)

    def pack(self):
        writer = _Writer()
        self.pack_into(writer)
        return writer.getvalue()

    @classmethod
    def unpack_from(cls, reader):
        magic = reader.u16()
        if magic != CHUNK_MAGIC:
            raise UnixError(EINVAL, "bad chunk manifest magic 0o%o"
                            % magic)
        chunk_bytes = reader.u32()
        length = reader.u32()
        count = reader.u16()
        if chunk_bytes <= 0:
            raise UnixError(EINVAL, "bad manifest chunk size %d"
                            % chunk_bytes)
        if count != -(-length // chunk_bytes):
            raise UnixError(EINVAL,
                            "manifest count %d does not match length %d"
                            % (count, length))
        digests = [reader.raw(DIGEST_BYTES) for __ in range(count)]
        return cls(chunk_bytes, length, digests)

    @classmethod
    def unpack(cls, blob):
        return cls.unpack_from(_Reader(blob, "chunk manifest"))

    def __eq__(self, other):
        if not isinstance(other, ChunkManifest):
            return NotImplemented
        return (self.chunk_bytes, self.length, self.digests) == \
            (other.chunk_bytes, other.length, other.digests)

    def __repr__(self):
        return ("ChunkManifest(chunk_bytes=%d length=%d chunks=%d)"
                % (self.chunk_bytes, self.length, len(self.digests)))


def pack_chunked_aout(header, text_manifest, data_manifest):
    """An ``a.outXXXXX`` that references its segments by digest.

    The header keeps the *real* segment sizes (so restart can size
    memory before fetching anything) and gains ``AOUT_FLAG_CHUNKED``.
    """
    header.flags |= AOUT_FLAG_CHUNKED
    writer = _Writer()
    writer.raw(header.pack())
    text_manifest.pack_into(writer)
    data_manifest.pack_into(writer)
    return writer.getvalue()


def unpack_chunked_aout(blob):
    """Parse a chunked a.out into (header, text, data) manifests."""
    header = AOutHeader.unpack(blob)
    if not header.flags & AOUT_FLAG_CHUNKED:
        raise UnixError(ENOEXEC, "a.out is not chunked")
    reader = _Reader(blob, "a.out")
    reader._take(HEADER_SIZE)
    text_manifest = ChunkManifest.unpack_from(reader)
    data_manifest = ChunkManifest.unpack_from(reader)
    if text_manifest.length != header.text_size \
            or data_manifest.length != header.data_size:
        raise UnixError(ENOEXEC, "chunked a.out manifest/header mismatch")
    return header, text_manifest, data_manifest


def stack_is_chunked(blob):
    """Sniff a stackXXXXX prefix for the chunked-variant magic."""
    return len(blob) >= 2 and _U16.unpack_from(blob)[0] == STACK_CHUNK_MAGIC


class FdEntry:
    """One slot of the open file table, as recorded in filesXXXXX."""

    __slots__ = ("kind", "path", "flags", "offset", "port",
                 "listening")

    def __init__(self, kind=FD_UNUSED, path="", flags=0, offset=0,
                 port=0, listening=False):
        self.kind = kind
        self.path = path
        self.flags = flags
        self.offset = offset
        self.port = port
        self.listening = listening

    def is_file(self):
        return self.kind == FD_FILE

    def is_socket(self):
        return self.kind in (FD_SOCKET, FD_SOCKET_BOUND)

    def is_bound_socket(self):
        return self.kind == FD_SOCKET_BOUND

    def is_unused(self):
        return self.kind == FD_UNUSED

    def __eq__(self, other):
        if not isinstance(other, FdEntry):
            return NotImplemented
        return (self.kind, self.path, self.flags, self.offset,
                self.port, self.listening) == \
            (other.kind, other.path, other.flags, other.offset,
             other.port, other.listening)

    def __repr__(self):
        if self.kind == FD_UNUSED:
            return "FdEntry(unused)"
        if self.kind == FD_SOCKET:
            return "FdEntry(socket)"
        if self.kind == FD_SOCKET_BOUND:
            return "FdEntry(socket port=%d listening=%s)" % (
                self.port, self.listening)
        return "FdEntry(%r flags=%o offset=%d)" % (self.path, self.flags,
                                                   self.offset)


class FilesInfo:
    """Contents of the ``filesXXXXX`` file (magic 0445)."""

    def __init__(self, hostname="", cwd="/", entries=None, tty_flags=0):
        self.hostname = hostname
        self.cwd = cwd
        self.entries = list(entries) if entries is not None else \
            [FdEntry() for __ in range(NOFILE)]
        if len(self.entries) != NOFILE:
            raise UnixError(EINVAL, "file table must have %d slots"
                            % NOFILE)
        self.tty_flags = tty_flags

    def pack(self):
        writer = _Writer()
        writer.u16(FILES_MAGIC)
        writer.string(self.hostname)
        writer.string(self.cwd)
        for entry in self.entries:
            writer.raw(bytes([entry.kind]))
            if entry.kind == FD_FILE:
                writer.string(entry.path)
                writer.i32(entry.flags)
                writer.i32(entry.offset)
            elif entry.kind == FD_SOCKET_BOUND:
                writer.i32(entry.port)
                writer.raw(bytes([1 if entry.listening else 0]))
        writer.i32(self.tty_flags)
        return writer.getvalue()

    @classmethod
    def unpack(cls, blob):
        reader = _Reader(blob, "files")
        magic = reader.u16()
        if magic != FILES_MAGIC:
            raise UnixError(EINVAL,
                            "bad files magic 0o%o (want 0o%o)"
                            % (magic, FILES_MAGIC))
        hostname = reader.string()
        cwd = reader.string()
        entries = []
        for __ in range(NOFILE):
            kind = reader.raw(1)[0]
            if kind == FD_FILE:
                path = reader.string()
                flags = reader.i32()
                offset = reader.i32()
                entries.append(FdEntry(FD_FILE, path, flags, offset))
            elif kind == FD_SOCKET_BOUND:
                port = reader.i32()
                listening = bool(reader.raw(1)[0])
                entries.append(FdEntry(FD_SOCKET_BOUND, port=port,
                                       listening=listening))
            elif kind in (FD_UNUSED, FD_SOCKET):
                entries.append(FdEntry(kind))
            else:
                raise UnixError(EINVAL, "bad fd entry kind %d" % kind)
        tty_flags = reader.i32()
        return cls(hostname, cwd, entries, tty_flags)


class StackInfo:
    """Contents of the ``stackXXXXX`` file (magic 0444).

    Field order follows the paper: magic, credentials, stack size,
    stack contents, registers, signal dispositions.
    """

    def __init__(self, cred=None, stack=b"", registers=None,
                 sigstate=None, stack_manifest=None):
        self.cred = cred or Credentials()
        self.stack = bytes(stack)
        #: chunked variant (magic 0443): the stack bytes live in the
        #: chunk store and this manifest references them; ``stack``
        #: stays empty
        self.stack_manifest = stack_manifest
        if stack_manifest is not None and self.stack:
            raise UnixError(EINVAL, "stack info cannot carry both "
                            "inline bytes and a manifest")
        self.registers = registers or Registers()
        self.sigstate = sigstate or SigState()

    @property
    def stack_size(self):
        if self.stack_manifest is not None:
            return self.stack_manifest.length
        return len(self.stack)

    def pack(self):
        writer = _Writer()
        if self.stack_manifest is not None:
            # same prefix layout as the classic variant (magic, cred,
            # u32 stack size) so peek_header() serves both
            writer.u16(STACK_CHUNK_MAGIC)
            writer.raw(self.cred.pack())
            writer.u32(self.stack_manifest.length)
            self.stack_manifest.pack_into(writer)
        else:
            writer.u16(STACK_MAGIC)
            writer.raw(self.cred.pack())
            writer.u32(len(self.stack))
            writer.raw(self.stack)
        writer.raw(self.registers.pack())
        writer.raw(self.sigstate.pack())
        return writer.getvalue()

    @classmethod
    def unpack(cls, blob):
        reader = _Reader(blob, "stack")
        magic = reader.u16()
        if magic not in (STACK_MAGIC, STACK_CHUNK_MAGIC):
            raise UnixError(EINVAL,
                            "bad stack magic 0o%o (want 0o%o)"
                            % (magic, STACK_MAGIC))
        cred = Credentials.unpack(reader.raw(CRED_SIZE))
        stack_size = reader.u32()
        stack = b""
        manifest = None
        if magic == STACK_CHUNK_MAGIC:
            manifest = ChunkManifest.unpack_from(reader)
            if manifest.length != stack_size:
                raise UnixError(EINVAL, "stack manifest length %d != %d"
                                % (manifest.length, stack_size))
        else:
            stack = reader.raw(stack_size)
        registers = Registers.unpack(reader.raw(Registers.FORMAT.size))
        sigstate = SigState.unpack(reader.raw(SigState.PACKED_SIZE))
        return cls(cred, stack, registers, sigstate,
                   stack_manifest=manifest)

    @classmethod
    def peek_header(cls, blob):
        """Read only magic, credentials and stack size.

        This is what ``rest_proc()`` does first: "opens the stackXXXXX
        file, checking access permissions and verifying its format by
        checking the magic number ... reads the user credentials and
        the size of the stack".  Both the classic and the chunked
        variant share this prefix, and the size is always the *real*
        stack size, not the manifest size.
        """
        reader = _Reader(blob, "stack")
        magic = reader.u16()
        if magic not in (STACK_MAGIC, STACK_CHUNK_MAGIC):
            raise UnixError(EINVAL, "bad stack magic 0o%o" % magic)
        cred = Credentials.unpack(reader.raw(CRED_SIZE))
        stack_size = reader.u32()
        return cred, stack_size


def dump_file_names(pid, directory=DUMPDIR):
    """The three dump file paths for a pid: (a.out, files, stack)."""
    return ("%s/a.out%d" % (directory, pid),
            "%s/files%d" % (directory, pid),
            "%s/stack%d" % (directory, pid))


#: the archived-dump files of a ledgered migration, in the same
#: (a.out, files, stack) order as ``dump_file_names``; each holds a
#: packed :class:`ChunkManifest` whose payloads live in the cluster
#: chunk store (DESIGN.md section 12)
LEDGER_ARCHIVE_KINDS = ("aout", "files", "stack")


def ledger_archive_names(directory):
    """The three chunk-manifest archive paths of one ledger record."""
    return tuple("%s/dump.%s" % (directory, kind)
                 for kind in LEDGER_ARCHIVE_KINDS)
