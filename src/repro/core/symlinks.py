"""User-level symbolic-link resolution, as prescribed by the paper.

"The way to solve this problem is to resolve symbolic links before
files are reopened.  The Sun 3.0 operating system provides the
readlink() system call, which can be used iteratively to resolve all
symbolic links in a pathname."

:func:`resolve_symlinks_syscalls` is a native-program sub-coroutine
(used with ``yield from`` inside ``dumpproc``) that walks a path one
component at a time, ``lstat``-ing each prefix and splicing in
``readlink()`` results.  It performs *only* system calls — no peeking
at kernel structures — because this logic lives in a user program.
"""

from repro.errors import iserr, ELOOP
from repro.fs.inode import IFLNK
from repro.fs.paths import is_absolute, normalize, split_components

MAXSYMLINKS = 8


def resolve_symlinks_syscalls(path):
    """yield-from: fully expanded path string, or ``-errno``.

    Missing trailing components are tolerated (a dumped process may
    hold an open-but-since-unlinked file; the name is still recorded
    verbatim so restart's fallback-to-/dev/null logic can decide).
    """
    if not is_absolute(path):
        return -ELOOP  # the dump only ever contains absolute names
    pending = split_components(normalize(path))
    resolved = "/"
    expansions = 0
    while pending:
        component = pending.pop(0)
        candidate = resolved.rstrip("/") + "/" + component
        stat = yield ("lstat", candidate)
        if not iserr(stat) and stat.itype == IFLNK:
            expansions += 1
            if expansions > MAXSYMLINKS:
                return -ELOOP
            target = yield ("readlink", candidate)
            if iserr(target):
                return target
            if is_absolute(target):
                resolved = "/"
            pending = split_components(target) + pending
            continue
        resolved = normalize(candidate)
    return resolved
