"""Virtual clocks for the machine simulation.

Each simulated machine owns a :class:`Clock`; all clocks in a cluster
start at zero and conceptually run in parallel.  The cluster driver
always steps the machine whose clock lags furthest behind, which keeps
cross-machine event delivery causal (conservative parallel discrete
event simulation).

Times are floats in virtual microseconds.
"""

US_PER_MS = 1000.0
US_PER_SEC = 1_000_000.0


def fmt_us(us):
    """Human-friendly rendering of a microsecond quantity."""
    if us >= US_PER_SEC:
        return "%.3f s" % (us / US_PER_SEC)
    if us >= US_PER_MS:
        return "%.2f ms" % (us / US_PER_MS)
    return "%.1f us" % us


class Clock:
    """A monotonically advancing virtual clock."""

    def __init__(self, start_us=0.0):
        self.now_us = float(start_us)

    def advance(self, delta_us):
        """Advance by a non-negative amount and return the new time."""
        if delta_us < 0:
            raise ValueError("clock cannot run backwards: %r" % delta_us)
        self.now_us += delta_us
        return self.now_us

    def advance_to(self, when_us):
        """Jump forward to ``when_us`` if it is in the future."""
        if when_us > self.now_us:
            self.now_us = when_us
        return self.now_us

    def seconds(self):
        """Current time in virtual seconds."""
        return self.now_us / US_PER_SEC

    def __repr__(self):
        return "Clock(%s)" % fmt_us(self.now_us)


class RealStopwatch:
    """Measures *host* (real) time, for engine performance reporting.

    Virtual clocks describe the simulated site; this one answers the
    only other timing question the project has — how fast the engine
    itself runs — and feeds ``PerfCounters.snapshot(elapsed_s=...)``.
    """

    def __init__(self):
        import time
        self._counter = time.perf_counter
        self.start_s = self._counter()

    def elapsed_s(self):
        return self._counter() - self.start_s

    def restart(self):
        self.start_s = self._counter()

    def __repr__(self):
        return "RealStopwatch(%.3fs)" % self.elapsed_s()


class Stopwatch:
    """Measures an interval of virtual time against a clock."""

    def __init__(self, clock):
        self._clock = clock
        self.start_us = clock.now_us
        self.stop_us = None

    def stop(self):
        self.stop_us = self._clock.now_us
        return self.elapsed_us

    @property
    def elapsed_us(self):
        end = self.stop_us if self.stop_us is not None else self._clock.now_us
        return end - self.start_us
