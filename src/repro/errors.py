"""Unix error numbers and the kernel-internal error exception.

The simulated kernel signals failures the way a real Unix kernel does:
system call implementations raise :class:`UnixError` carrying an errno,
and the syscall dispatch layer converts that into the user-visible
``-1 / errno`` convention (or a negative return value for native
programs).  The errno values follow 4.2BSD numbering.
"""

EPERM = 1  # Not owner
ENOENT = 2  # No such file or directory
ESRCH = 3  # No such process
EINTR = 4  # Interrupted system call
EIO = 5  # I/O error
ENXIO = 6  # No such device or address
E2BIG = 7  # Arg list too long
ENOEXEC = 8  # Exec format error
EBADF = 9  # Bad file number
ECHILD = 10  # No children
EAGAIN = 11  # No more processes
ENOMEM = 12  # Not enough core
EACCES = 13  # Permission denied
EFAULT = 14  # Bad address
ENOTBLK = 15  # Block device required
EBUSY = 16  # Device busy
EEXIST = 17  # File exists
EXDEV = 18  # Cross-device link
ENODEV = 19  # No such device
ENOTDIR = 20  # Not a directory
EISDIR = 21  # Is a directory
EINVAL = 22  # Invalid argument
ENFILE = 23  # File table overflow
EMFILE = 24  # Too many open files
ENOTTY = 25  # Not a typewriter
ETXTBSY = 26  # Text file busy
EFBIG = 27  # File too large
ENOSPC = 28  # No space left on device
ESPIPE = 29  # Illegal seek
EROFS = 30  # Read-only file system
EMLINK = 31  # Too many links
EPIPE = 32  # Broken pipe
EDOM = 33  # Argument too large
ERANGE = 34  # Result too large
EWOULDBLOCK = 35  # Operation would block
ENAMETOOLONG = 63  # File name too long
ELOOP = 62  # Too many levels of symbolic links
ENOTEMPTY = 66  # Directory not empty
ENOTSOCK = 38  # Socket operation on non-socket
EADDRINUSE = 48  # Address already in use
ECONNREFUSED = 61  # Connection refused
ENOTCONN = 57  # Socket is not connected
ECONNRESET = 54  # Connection reset by peer
ETIMEDOUT = 60  # Connection timed out
EHOSTDOWN = 64  # Host is down

_NAMES = {
    value: name
    for name, value in sorted(globals().items())
    if name.startswith("E") and isinstance(value, int)
}

_MESSAGES = {
    EPERM: "Not owner",
    ENOENT: "No such file or directory",
    ESRCH: "No such process",
    EINTR: "Interrupted system call",
    EIO: "I/O error",
    ENOEXEC: "Exec format error",
    EBADF: "Bad file number",
    ECHILD: "No children",
    EAGAIN: "No more processes",
    ENOMEM: "Not enough core",
    EACCES: "Permission denied",
    EEXIST: "File exists",
    ENODEV: "No such device",
    ENOTDIR: "Not a directory",
    EISDIR: "Is a directory",
    EINVAL: "Invalid argument",
    ENFILE: "File table overflow",
    EMFILE: "Too many open files",
    ENOTTY: "Not a typewriter",
    EFBIG: "File too large",
    ENOSPC: "No space left on device",
    ESPIPE: "Illegal seek",
    EPIPE: "Broken pipe",
    EWOULDBLOCK: "Operation would block",
    ENAMETOOLONG: "File name too long",
    ELOOP: "Too many levels of symbolic links",
    ENOTEMPTY: "Directory not empty",
    ENOTSOCK: "Socket operation on non-socket",
    EADDRINUSE: "Address already in use",
    ECONNREFUSED: "Connection refused",
    ENOTCONN: "Socket is not connected",
    ECONNRESET: "Connection reset by peer",
    ETIMEDOUT: "Connection timed out",
    EHOSTDOWN: "Host is down",
    EFAULT: "Bad address",
    ESRCH: "No such process",
}


def errno_name(errno):
    """Return the symbolic name (``"ENOENT"``) for an errno value."""
    return _NAMES.get(errno, "E?%d" % errno)


def strerror(errno):
    """Return the classic description string for an errno value."""
    return _MESSAGES.get(errno, "Unknown error %d" % errno)


class UnixError(Exception):
    """A failed kernel operation, carrying a Unix errno.

    Raised inside kernel code; the syscall boundary translates it into
    the error-return convention of the calling process type.
    """

    def __init__(self, errno, context=""):
        self.errno = errno
        self.context = context
        message = "[%s] %s" % (errno_name(errno), strerror(errno))
        if context:
            message += ": " + context
        super().__init__(message)


def iserr(value):
    """True if a native-program syscall return value encodes an error.

    Native (Python-coded) user programs receive ``-errno`` as an int on
    failure; successful calls return non-negative ints, bytes or tuples.
    """
    return isinstance(value, int) and value < 0
