"""Drivers that regenerate every figure of the paper's section 6.

Conventions:

* every driver builds fresh machines (no state leaks between runs);
* all times are **virtual** microseconds from the simulation clock —
  the cost model is calibrated, the comparisons are measured;
* each driver returns a dict with a ``rows`` list (one dict per
  bar/series of the figure) carrying ``measured`` and ``paper``
  values, so callers can print tables or assert shapes.
"""

from repro.costmodel import CostModel
from repro.core.api import MigrationSite
from repro.core.formats import dump_file_names
from repro.kernel.signals import SIGDUMP, SIGQUIT
from repro.machine import Cluster


# -- shared helpers -----------------------------------------------------------


def _counter_site(costs=None, daemons=False):
    site = MigrationSite(costs=costs, daemons=daemons)
    if daemons:
        site.run_quiet()
    handle = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: site.console("brick").count("> ") >= 1)
    return site, handle


def _run_workload(costs, factory, name):
    """System CPU time of a native workload on a fresh machine."""
    cluster = Cluster(costs)
    machine = cluster.add_machine("brick")
    machine.fs.install_file("/etc/target", b"x", mode=0o644)
    machine.install_native_program(name, factory)
    handle = machine.spawn("/bin/%s" % name, uid=100, cwd="/tmp")
    cluster.run_until(lambda: handle.exited)
    assert handle.exit_status == 0
    return handle.proc.stime_us


# -- Figure 1: overhead of the modified system calls ---------------------------


OPEN_CLOSE_ITERATIONS = 100
CHDIR_ITERATIONS = 100


def _open_close_workload(argv, env):
    """100 open/close pairs of a certain file (paper section 6.1)."""
    from repro.kernel.constants import O_RDONLY
    for __ in range(OPEN_CLOSE_ITERATIONS):
        fd = yield ("open", "/etc/target", O_RDONLY, 0)
        if fd < 0:
            return 1
        yield ("close", fd)
    return 0


def _chdir_workload(argv, env):
    """100 sets of three chdir() calls: an absolute path, "..", "."
    — "all cases of combining the new value with the old one"."""
    for __ in range(CHDIR_ITERATIONS):
        result = yield ("chdir", "/usr/tmp")
        if result < 0:
            return 1
        yield ("chdir", "..")
        yield ("chdir", ".")
    return 0


def fig1(costs=None):
    """Figure 1: modified vs unmodified open()/close() and chdir()."""
    base = costs or CostModel()
    modified = base.with_overrides(track_names=True)
    original = base.with_overrides(track_names=False)
    rows = []
    for label, factory, iterations, paper_ratio in (
            ("open/close", _open_close_workload,
             OPEN_CLOSE_ITERATIONS, 1.44),
            ("chdir", _chdir_workload, CHDIR_ITERATIONS, 1.36)):
        cpu_mod = _run_workload(modified, factory, "w_" + label[:2])
        cpu_orig = _run_workload(original, factory, "w_" + label[:2])
        rows.append({
            "call": label,
            "original_us_per_iter": cpu_orig / iterations,
            "modified_us_per_iter": cpu_mod / iterations,
            "measured": cpu_mod / cpu_orig,
            "paper": paper_ratio,
        })
    return {"figure": "1", "title": "Performance of modified system "
                                    "calls (normalized to original)",
            "rows": rows}


# -- Figure 2: dumping a process -------------------------------------------------


def _kill_via_signal(sig, costs=None):
    """Kill the test program with a bare signal; (real, cpu) in us.

    CPU is everything consumed system-wide during the kill — which is
    the victim's in-kernel dump/core work.
    """
    site, handle = _counter_site(costs)
    machine = site.machine("brick")
    real0 = machine.clock.now_us
    cpu0 = handle.proc.cpu_us()
    machine.kernel.post_signal(handle.proc, sig)
    site.run_until(lambda: handle.exited)
    return (machine.clock.now_us - real0,
            handle.proc.cpu_us() - cpu0)


def _kill_via_dumpproc(costs=None, poll_sleep=None):
    if poll_sleep is not None:
        costs = (costs or CostModel()).with_overrides(
            dump_poll_sleep_s=poll_sleep)
    site, handle = _counter_site(costs)
    machine = site.machine("brick")
    real0 = machine.clock.now_us
    cpu0 = handle.proc.cpu_us()
    tool = machine.spawn("/bin/dumpproc",
                         ["dumpproc", "-p", str(handle.pid)],
                         uid=100, cwd="/tmp")
    site.run_until(lambda: tool.exited)
    assert tool.exit_status == 0
    real = machine.clock.now_us - real0
    cpu = tool.proc.cpu_us() + (handle.proc.cpu_us() - cpu0)
    return real, cpu


def fig2(costs=None):
    """Figure 2: SIGQUIT vs SIGDUMP vs dumpproc."""
    q_real, q_cpu = _kill_via_signal(SIGQUIT, costs)
    d_real, d_cpu = _kill_via_signal(SIGDUMP, costs)
    p_real, p_cpu = _kill_via_dumpproc(costs)
    rows = [
        {"case": "SIGQUIT", "real_us": q_real, "cpu_us": q_cpu,
         "measured_real": 1.0, "measured_cpu": 1.0,
         "paper_real": 1.0, "paper_cpu": 1.0},
        {"case": "SIGDUMP", "real_us": d_real, "cpu_us": d_cpu,
         "measured_real": d_real / q_real,
         "measured_cpu": d_cpu / q_cpu,
         "paper_real": 3.0, "paper_cpu": 3.0},
        {"case": "dumpproc", "real_us": p_real, "cpu_us": p_cpu,
         "measured_real": p_real / q_real,
         "measured_cpu": p_cpu / q_cpu,
         "paper_real": 6.0, "paper_cpu": 4.0},
    ]
    return {"figure": "2", "title": "SIGQUIT vs SIGDUMP vs dumpproc "
                                    "(normalized to SIGQUIT)",
            "rows": rows, "anchor_sigdump_real_s": d_real / 1e6}


# -- Figure 3: restarting a process -------------------------------------------------


def fig3(costs=None):
    """Figure 3: execve() vs rest_proc() vs restart."""
    # build a dump of the test program (killed at its first prompt)
    site, handle = _counter_site(costs)
    machine = site.machine("brick")
    site.dumpproc("brick", handle.pid, uid=100)

    # baseline: execve() of the a.outXXXXX file, timed in-kernel
    aout_path = dump_file_names(handle.pid)[0]
    runner = machine.spawn(aout_path, ["a.out"], uid=100, cwd="/tmp")
    exec_rec = machine.kernel.timings("execve")[-1]
    # that copy now waits for input; get rid of it
    from repro.kernel.signals import SIGKILL
    machine.kernel.post_signal(runner.proc, SIGKILL)
    site.run_until(lambda: runner.exited)

    # restart (which calls rest_proc(), timed in-kernel)
    real0 = machine.clock.now_us
    restarted = site.restart("brick", handle.pid, uid=100)
    assert restarted.proc.is_vm()
    restart_real = machine.clock.now_us - real0
    restart_cpu = restarted.proc.cpu_us()
    rest_rec = machine.kernel.timings("rest_proc")[-1]

    rows = [
        {"case": "execve", "real_us": exec_rec["real_us"],
         "cpu_us": exec_rec["cpu_us"],
         "measured_real": 1.0, "measured_cpu": 1.0,
         "paper_real": 1.0, "paper_cpu": 1.0},
        {"case": "rest_proc", "real_us": rest_rec["real_us"],
         "cpu_us": rest_rec["cpu_us"],
         "measured_real": rest_rec["real_us"] / exec_rec["real_us"],
         "measured_cpu": rest_rec["cpu_us"] / exec_rec["cpu_us"],
         "paper_real": 1.2, "paper_cpu": 1.2},
        {"case": "restart", "real_us": restart_real,
         "cpu_us": restart_cpu,
         "measured_real": restart_real / exec_rec["real_us"],
         "measured_cpu": restart_cpu / exec_rec["cpu_us"],
         "paper_real": 6.0, "paper_cpu": 5.0,
         # the dotted line: rest_proc's share of restart
         "rest_proc_share_real": rest_rec["real_us"] / restart_real},
    ]
    return {"figure": "3", "title": "execve vs rest_proc vs restart "
                                    "(normalized to execve)",
            "rows": rows, "anchor_execve_real_s":
                exec_rec["real_us"] / 1e6}


# -- Figure 4: migrating a process ------------------------------------------------------


def _separate_dump_restart(site, pid, destination="schooner"):
    """Baseline: dumpproc and restart run on the appropriate
    machines; returns total real time (us).

    The clocks are synchronized between the two phases so the restart
    phase (possibly on another machine) counts sequentially, as it
    would for the user walking to the other terminal.
    """
    site.cluster.sync_clocks()
    wall0 = site.cluster.wall_time_us()
    site.dumpproc("brick", pid, uid=100)
    site.cluster.sync_clocks()
    restarted = site.restart(destination, pid,
                             from_host="brick", uid=100)
    assert restarted.proc.is_vm()
    return site.cluster.wall_time_us() - wall0


def _timed_migrate(site, pid, typed_on, use_daemon=False):
    wall0 = site.cluster.wall_time_us()
    handle = site.migrate(pid, "brick", "schooner", typed_on=typed_on,
                          uid=100, use_daemon=use_daemon)
    assert handle.exit_status == 0
    assert site.find_restarted("schooner") is not None
    return site.cluster.wall_time_us() - wall0


#: the four locality cases: where migrate is typed relative to the
#: source and destination (source=brick, destination=schooner always)
FIG4_CASES = [
    # (label, typed_on, paper_expected_ratio)
    ("local dump, local restart", None, 1.2),
    ("local dump, remote restart (L->R)", "brick", 4.0),
    ("remote dump, local restart (R->L)", "schooner", 5.0),
    ("remote dump, remote restart (R->R)", "brador", 10.0),
]


def fig4(costs=None, use_daemon=False, trace=False):
    """Figure 4: migrate vs separate dumpproc+restart, four ways.

    The first case has no real analogue in a two-host move (migrate
    typed where both commands would be local is impossible when source
    and destination differ), so it is measured as a same-machine
    migrate on brick, like the paper's L=local row.

    With ``trace=True`` each migration is recorded by the cluster
    tracer and its row carries the span ``timeline`` (the paper's
    phase breakdown) plus the raw ``trace_events``; the baseline
    sites stay untraced.
    """
    rows = []
    for label, typed_on, paper in FIG4_CASES:
        site, handle = _counter_site(costs, daemons=True)
        if trace:
            site.cluster.tracer.enable("dump", "restart", "migrate")
            # align clocks so the span timeline (stamped on the
            # emitting machines' clocks) is commensurable with the
            # wall-clock latency the figure reports
            site.cluster.sync_clocks()
        mig = "brick:%d" % handle.pid
        baseline_site, baseline_handle = _counter_site(costs,
                                                       daemons=True)
        # "the appropriate machines" for this case: the L->L case's
        # baseline restarts locally on brick, the rest on schooner
        baseline_us = _separate_dump_restart(
            baseline_site, baseline_handle.pid,
            destination="brick" if typed_on is None else "schooner")
        if typed_on is None:
            # L->L: both phases local: migrate brick->brick on brick
            wall0 = site.cluster.wall_time_us()
            mh = site.migrate(handle.pid, "brick", "brick",
                              typed_on="brick", uid=100)
            assert mh.exit_status == 0
            migrate_us = site.cluster.wall_time_us() - wall0
        else:
            migrate_us = _timed_migrate(site, handle.pid, typed_on,
                                        use_daemon=use_daemon)
        row = {
            "case": label,
            "migrate_us": migrate_us,
            "dumpproc_restart_us": baseline_us,
            "measured": migrate_us / baseline_us,
            "paper": paper,
        }
        if trace:
            row["timeline"] = site.cluster.tracer.migration_timeline(
                mig)
            row["trace_events"] = list(site.cluster.tracer.events)
        rows.append(row)
    return {"figure": "4", "title": "migrate vs separate "
                                    "dumpproc+restart (real time)",
            "rows": rows}


# -- Ablations -----------------------------------------------------------------------------


def ablation_daemon_vs_rsh(costs=None):
    """A1: section 6.4's proposed daemon vs rsh for a remote migrate."""
    rows = []
    for label, use_daemon in (("rsh", False), ("migrationd", True)):
        site, handle = _counter_site(costs, daemons=True)
        elapsed = _timed_migrate(site, handle.pid, typed_on="brador",
                                 use_daemon=use_daemon)
        rows.append({"case": label, "real_us": elapsed})
    rows[0]["speedup"] = 1.0
    rows[1]["speedup"] = rows[0]["real_us"] / rows[1]["real_us"]
    return {"figure": "A1", "title": "remote migrate: rsh vs the "
                                     "migration daemon", "rows": rows}


def ablation_polling_interval(costs=None, intervals=(0.1, 0.5, 1, 2)):
    """A2: dumpproc's poll sleep drives its real-vs-CPU gap.

    The interval is swept through the ``dump_poll_sleep_s`` cost-model
    knob dumpproc reads at run time — no module monkey-patching.
    """
    rows = []
    for interval in intervals:
        real, cpu = _kill_via_dumpproc(costs, poll_sleep=interval)
        rows.append({"sleep_s": interval, "real_us": real,
                     "cpu_us": cpu, "gap": real / cpu})
    return {"figure": "A2", "title": "dumpproc real time vs poll "
                                     "sleep interval", "rows": rows}


def ablation_name_storage(costs=None, open_files=(4, 16, 64)):
    """A3: kernel memory for dynamic name strings vs fixed fields.

    The paper chose dynamically-allocated strings "because ... fixed
    size strings would have had to be large enough to accommodate
    large path names", wasting kernel memory.  Measure live name
    bytes for a population of open files vs the fixed alternative
    (MAXCWD bytes per file-table slot).
    """
    from repro.kernel.constants import MAXCWD
    rows = []
    for count in open_files:
        cluster = Cluster(costs or CostModel())
        machine = cluster.add_machine("brick")

        def opener(argv, env, count=count):
            from repro.kernel.constants import O_CREAT, O_WRONLY
            for index in range(count):
                fd = yield ("open", "/tmp/file%02d" % index,
                            O_WRONLY | O_CREAT, 0o644)
                if fd < 0:
                    break
            yield ("sleep", 5)
            return 0

        machine.install_native_program("opener", opener)
        handle = machine.spawn("/bin/opener", uid=100, cwd="/tmp")
        # synchronous creates are slow; wait until the opener parks
        # itself in its sleep with every file open
        cluster.run_until(lambda: handle.proc.wchan is not None
                          or handle.exited)
        dynamic = machine.kernel.files.name_bytes
        live = machine.kernel.files.live_count()
        fixed = live * MAXCWD
        rows.append({"open_files": live, "dynamic_bytes": dynamic,
                     "fixed_bytes": fixed,
                     "saving": 1.0 - dynamic / fixed})
    return {"figure": "A3", "title": "kernel memory: dynamic name "
                                     "strings vs fixed-size fields",
            "rows": rows}


def app_load_balancing(costs=None, iterations=500_000, hogs=2):
    """A4 (the paper's future work): makespan with/without migration."""
    from repro.apps import LoadBalancer, LoadBalancerPolicy

    def run_once(balance):
        site = MigrationSite(costs=costs, daemons=False)
        handles = [site.start("brick", "/bin/cpuhog",
                              ["cpuhog", str(iterations)], uid=100)
                   for __ in range(hogs)]
        site.run(until_us=400_000)
        if balance:
            balancer = LoadBalancer(
                site, ["brick", "schooner"], uid=100,
                policy=LoadBalancerPolicy(min_cpu_seconds=0.1))
            balancer.step()
        site.run_until(
            lambda: all(not p.is_vm() or p.zombie()
                        for m in site.cluster.machines.values()
                        for p in m.kernel.procs.all_procs()),
            max_steps=50_000_000)
        return site.cluster.wall_time_us()

    unbalanced = run_once(False)
    balanced = run_once(True)
    return {"figure": "A4", "title": "load balancing: makespan of "
                                     "%d CPU hogs" % hogs,
            "rows": [
                {"case": "all on one machine", "makespan_us":
                    unbalanced, "speedup": 1.0},
                {"case": "with load balancer", "makespan_us":
                    balanced, "speedup": unbalanced / balanced},
            ]}


def ablation_namei_cache(costs=None):
    """A7: a 4.3BSD-style name cache under the migration tools.

    restart issues ~20 ``open()`` calls, most of them for the same
    few names (``/dev/null``, ``/dev/tty``); the 1986 namei cache
    would have cut exactly that cost.  Measure Figure 3's restart
    with the cache off and on.
    """
    rows = []
    for label, enabled in (("4.2-style (no cache)", False),
                           ("with namei cache", True)):
        model = (costs or CostModel()).with_overrides(
            namei_cache=enabled)
        result = fig3(model)
        restart_row = result["rows"][2]
        rows.append({"kernel": label,
                     "restart_real_us": restart_row["real_us"],
                     "restart_cpu_us": restart_row["cpu_us"]})
    rows[0]["speedup_cpu"] = 1.0
    rows[1]["speedup_cpu"] = (rows[0]["restart_cpu_us"]
                              / rows[1]["restart_cpu_us"])
    return {"figure": "A7", "title": "restart under a 4.3BSD-style "
                                     "name cache", "rows": rows}


def ext_socket_migration(costs=None):
    """A6 (section 9 future work): migrating a network service.

    A server bound to a well-known port is migrated; with the
    ``migrate_listening_sockets`` option restart re-binds the port on
    the destination and the server keeps serving (measure the service
    outage); the stock kernel loses the socket and the service dies.
    """
    from repro.errors import iserr
    from repro.programs.guest.portserver import PORT

    def one_run(enabled):
        model = (costs or CostModel()).with_overrides(
            migrate_listening_sockets=enabled)
        site = MigrationSite(costs=model, daemons=False)
        server = site.start("brick", "/bin/portserver", uid=100)
        site.run_until(lambda: "serving" in site.console("brick"))

        replies = []

        def client(host):
            def main(argv, env):
                from repro.programs.base import read_all
                sock = yield ("socket",)
                result = yield ("connect", sock, host, PORT)
                if iserr(result):
                    replies.append(None)
                    return 1
                yield ("write", sock, b"req")
                replies.append((yield from read_all(sock)))
                return 0
            return main

        schooner = site.machine("schooner")
        schooner.install_native_program("client", client("brick"))
        probe = schooner.spawn("/bin/client", uid=100)
        site.run_until(lambda: probe.exited)

        outage0 = site.cluster.wall_time_us()
        site.dumpproc("brick", server.pid, uid=100)
        moved = site.restart("schooner", server.pid,
                             from_host="brick", uid=100)
        outage_us = site.cluster.wall_time_us() - outage0

        schooner.install_native_program("client2", client("schooner"))
        probe2 = schooner.spawn("/bin/client2", uid=100)
        site.run_until(lambda: probe2.exited or moved.exited)
        alive = not moved.exited and replies[-1] == b"srv:req"
        return alive, outage_us

    stock_alive, __ = one_run(False)
    ext_alive, outage_us = one_run(True)
    return {"figure": "A6", "title": "migrating a network service "
                                     "(section 9 future work)",
            "rows": [
                {"kernel": "stock", "service survives":
                    "yes" if stock_alive else "no"},
                {"kernel": "migrate_listening_sockets",
                 "service survives": "yes" if ext_alive else "no",
                 "outage_us": outage_us},
            ]}


def ext_compat_ids(costs=None):
    """A5: the section 7 compatibility extension, on vs off."""
    results = {}
    for compat in (False, True):
        model = (costs or CostModel()).with_overrides(
            compat_migrated_ids=compat)
        site = MigrationSite(costs=model, daemons=False)
        handle = site.start("brick", "/bin/pidtemp", uid=100)
        site.run_until(lambda: "? " in site.console("brick"))
        site.type_at("brick", "x\n")
        site.run_until(lambda: "ok" in site.console("brick"))
        site.dumpproc("brick", handle.pid, uid=100)
        restarted = site.restart("brick", handle.pid, uid=100)
        site.type_at("brick", "x\n")
        site.run_until(lambda: restarted.exited
                       or site.console("brick").count("ok") >= 2)
        results[compat] = "survives" if not restarted.exited \
            else "LOST its temp file"
    return {"figure": "A5", "title": "getpid() compatibility option "
                                     "vs the pidtemp misbehaver",
            "rows": [
                {"case": "stock kernel", "outcome": results[False]},
                {"case": "compat_migrated_ids", "outcome":
                    results[True]},
            ]}
