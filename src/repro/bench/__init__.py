"""Measurement drivers for the paper's evaluation (section 6).

Each ``figN()`` function in :mod:`repro.bench.figures` rebuilds the
testbed, runs the paper's workload, and returns measured virtual-time
results together with the values the paper reports, so the benchmark
suite and EXPERIMENTS.md are generated from one source of truth.
"""

from repro.bench.figures import (fig1, fig2, fig3, fig4,
                                 ablation_daemon_vs_rsh,
                                 ablation_polling_interval,
                                 ablation_name_storage,
                                 ablation_namei_cache,
                                 app_load_balancing,
                                 ext_compat_ids,
                                 ext_socket_migration)

__all__ = ["fig1", "fig2", "fig3", "fig4",
           "ablation_daemon_vs_rsh", "ablation_polling_interval",
           "ablation_name_storage", "ablation_namei_cache",
           "app_load_balancing", "ext_compat_ids",
           "ext_socket_migration"]
