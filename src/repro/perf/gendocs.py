"""Regenerate docs/perf_counters.md from the counter docstrings.

Usage::

    PYTHONPATH=src python -m repro.perf.gendocs [output-path]

``tests/test_docs.py`` fails when the checked-in file drifts from
:func:`repro.perf.counters.counter_reference`, so run this after
adding or renaming a counter.
"""

import sys

from repro.perf.counters import counter_reference


def main(argv):
    path = argv[1] if len(argv) > 1 else "docs/perf_counters.md"
    text = counter_reference()
    with open(path, "w") as handle:
        handle.write(text)
    print("wrote %s (%d bytes)" % (path, len(text)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
