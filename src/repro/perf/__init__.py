"""Engine performance instrumentation.

The simulator distinguishes two kinds of time: **virtual** time (what
the cost model charges, what the figures report) and **real** time
(how long the host takes to compute it).  This package instruments the
second kind: the fast-path driver and the VM decode cache report their
work through a :class:`PerfCounters` object owned by the cluster, and
``benchmarks/bench_perf_scale.py`` turns those counters into
``BENCH_perf.json``.

Nothing in here may ever influence virtual time — the counters are
observation only, which is what keeps the fast engine's virtual-time
results bit-identical to the reference scan engine's.
"""

from repro.perf.counters import PerfCounters

__all__ = ["PerfCounters"]
