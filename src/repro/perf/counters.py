"""Counters for the fast-path engine.

One :class:`PerfCounters` instance is owned by each
:class:`~repro.machine.cluster.Cluster` and shared with every machine's
CPU, so a run's scheduler work (steps, bursts, horizon invalidations)
and VM work (instructions, trace-compiler and shared-code-cache
traffic) land in one place.

The flat attributes are the hot-path counters (``perf.steps += 1``
from the innermost driver loop); the labelled per-host/per-phase
statistics live in the attached :class:`~repro.obs.metrics.
MetricsRegistry` (``perf.metrics``).  Both appear in
:meth:`snapshot`, and every flat counter must be documented in
:data:`COUNTER_DOCS` — ``tests/test_docs.py`` enforces that the
generated reference table (``docs/perf_counters.md``) stays complete.
"""

from repro.obs.metrics import MetricsRegistry

#: one-line reference for every flat counter, in display order.
#: ``counter_reference()`` renders these into docs/perf_counters.md;
#: the docs test fails if a counter exists without an entry here.
COUNTER_DOCS = {
    "steps": "machine steps executed by the cluster driver",
    "bursts": "event-horizon bursts (fast engine only)",
    "horizon_invalidations": "horizons recomputed mid-burst",
    "horizon_memo_hits": "mid-burst activity absorbed by the memoized "
                         "horizon without a recompute",
    "heap_pushes": "machine re-insertions into the fast engine's "
                   "lazy heap",
    "vm_instructions": "instructions retired by all CPUs",
    "instructions_decoded": "instructions actually decoded",
    "blocks_compiled": "straight-line blocks compiled into traces",
    "traces_linked": "block-to-block links baked into compiled traces",
    "reg_spills": "cached registers spilled back at trace exits",
    "shared_cache_hits": "exec/restart arrivals whose text was already "
                         "compiled in the shared code cache",
    "cache_rebuilds": "text segments compiled from scratch (first "
                      "sighting of those bytes)",
    "faults_injected": "fault rules that fired",
    "fault_delay_us": "virtual time added by delay rules",
    "fault_corruptions": "blobs mangled by corrupt rules",
    "retries": "retry rounds taken by hardened commands",
    "timeouts": "read/poll timeouts hit by hardened commands",
    "host_crashes": "crash_host() invocations",
    "host_reboots": "reboot_host() invocations",
    "net_partitions": "partition() link cuts installed",
    "net_drops": "messages dropped by dead hosts or cuts",
    "hb_ticks": "heartbeat rounds run by all monitors",
    "hb_probes": "individual peer probes sent",
    "hb_suspects": "suspected-dead verdicts declared",
    "hb_recoveries": "suspected peers seen alive again",
    "recoveries": "jobs recoveryd restarted elsewhere",
    "chunk_puts": "chunks written into the chunk store",
    "chunk_dedup_hits": "chunk writes elided because the store "
                        "already held the digest",
    "chunks_clean_skipped": "baseline chunks skipped by a re-dump "
                            "because their pages stayed clean",
    "chunk_gets": "chunk reads served by the store",
    "chunk_remote_fetches": "chunk reads that crossed the network "
                            "to another holder",
    "chunk_bytes_written": "payload bytes written by chunk puts",
    "chunk_bytes_fetched": "payload bytes fetched from remote holders",
    "lazy_faults": "copy-on-reference chunks faulted in on first touch",
    "ld_reports_sent": "load reports loadd delivered to peers",
    "ld_reports_recv": "load reports loadd-recv accepted and spooled",
    "ld_reports_dropped": "load reports lost, refused, corrupt or "
                          "unparsable",
    "ld_stale_drops": "spooled load reports older than load_stale_s",
    "ld_suspect_skips": "peers skipped because the failure detector "
                        "suspects them",
    "ld_rounds": "balance rounds completed by all loadd daemons",
    "ld_moves": "jobs loadd migrated successfully",
    "ld_move_failures": "loadd moves that failed (victim restored "
                        "or lost)",
    "ml_records": "migration intent records written to the ledger",
    "ml_advances": "ledger phase advances written",
    "ml_claims": "sweep fences (claim files) created on records",
    "ml_archives": "ledgered dumps archived through the chunk store",
    "ml_completions": "migrations marked DONE by their orchestrator",
    "ml_aborts": "migrations aborted or rolled back to their source",
    "ml_sweeps": "in-flight records resolved by the recovery sweep",
    "ml_reaps": "settled ledger records reaped",
    "st_samples": "telemetry sampling rounds completed by all statds",
    "st_series_points": "samples recorded into time-series rings",
    "st_reports_sent": "stat reports statd shipped to the spooler",
    "st_reports_recv": "stat reports statd-recv accepted and spooled",
    "st_reports_dropped": "stat reports lost, refused, corrupt or "
                          "unparsable",
    "st_stale_drops": "spooled stat reports aged out past "
                      "stat_stale_s",
    "st_suspect_skips": "report shipments skipped because the "
                        "failure detector suspects the spooler",
    "st_alerts": "SLO alerts raised by the critical-path analyzer",
}

#: the labelled metrics the subsystems record into ``perf.metrics``
METRIC_DOCS = {
    "dumps": "successful SIGDUMP dumps, by source host",
    "restarts": "successful rest_proc() overlays, by destination host",
    "migrations": "migrate(1) runs that saw the process restarted, "
                  "by the host migrate ran on",
    "recoveries": "jobs recoveryd restarted, by surviving host",
    "host_crashes": "crash_host() invocations, by crashed host",
    "host_reboots": "reboot_host() invocations, by rebooted host",
    "hb_suspects": "suspected-dead verdicts, by observing host and "
                   "suspected peer",
    "span_us": "histogram: span durations in virtual microseconds, "
               "by phase (dump / rest_proc / migrate / recovery / "
               "loadd)",
}


def counter_reference():
    """The generated counter reference table (docs/perf_counters.md).

    Regenerate with ``python -m repro.perf.gendocs`` after adding a
    counter; ``tests/test_docs.py`` diffs the file against this.
    """
    lines = [
        "# Performance counter reference",
        "",
        "Generated by `python -m repro.perf.gendocs` from",
        "`repro.perf.counters` — do not edit by hand.",
        "",
        "## Flat counters (`cluster.perf.<name>`)",
        "",
        "| counter | meaning |",
        "| --- | --- |",
    ]
    for name, doc in COUNTER_DOCS.items():
        lines.append("| `%s` | %s |" % (name, doc))
    lines += [
        "",
        "## Labelled metrics (`cluster.perf.metrics`)",
        "",
        "| metric | meaning |",
        "| --- | --- |",
    ]
    for name, doc in METRIC_DOCS.items():
        lines.append("| `%s` | %s |" % (name, doc))
    lines.append("")
    return "\n".join(lines)


class PerfCounters:
    """Real-time engine statistics for one cluster."""

    def __init__(self):
        self.reset()

    def reset(self):
        # scheduler driver
        self.steps = 0  #: machine steps executed by the cluster driver
        self.bursts = 0  #: event-horizon bursts (fast engine only)
        self.burst_hist = {}  #: bucket exponent -> burst count
        self.horizon_invalidations = 0  #: horizons recomputed mid-burst
        self.horizon_memo_hits = 0  #: activity absorbed by the memo
        self.heap_pushes = 0  #: machine re-insertions into the heap
        # VM / shared code cache
        self.vm_instructions = 0  #: instructions retired by all CPUs
        self.instructions_decoded = 0  #: instructions actually decoded
        self.blocks_compiled = 0  #: blocks compiled into traces
        self.traces_linked = 0  #: block-to-block links baked in
        self.reg_spills = 0  #: cached registers spilled at trace exits
        self.shared_cache_hits = 0  #: arrivals with text already compiled
        self.cache_rebuilds = 0  #: text segments compiled from scratch
        # fault injection / pipeline hardening
        self.faults_injected = 0  #: fault rules that fired
        self.fault_delay_us = 0.0  #: virtual time added by delay rules
        self.fault_corruptions = 0  #: blobs mangled by corrupt rules
        self.retries = 0  #: retry rounds taken by hardened commands
        self.timeouts = 0  #: read/poll timeouts hit by hardened commands
        # host failure model / recovery
        self.host_crashes = 0  #: crash_host() invocations
        self.host_reboots = 0  #: reboot_host() invocations
        self.net_partitions = 0  #: partition() link cuts installed
        self.net_drops = 0  #: messages dropped by dead hosts or cuts
        self.hb_ticks = 0  #: heartbeat rounds run by all monitors
        self.hb_probes = 0  #: individual peer probes sent
        self.hb_suspects = 0  #: suspected-dead verdicts declared
        self.hb_recoveries = 0  #: suspected peers seen alive again
        self.recoveries = 0  #: jobs recoveryd restarted elsewhere
        # chunk store / incremental dumps
        self.chunk_puts = 0  #: chunks written into the store
        self.chunk_dedup_hits = 0  #: writes elided by dedup
        self.chunks_clean_skipped = 0  #: clean baseline chunks skipped
        self.chunk_gets = 0  #: chunk reads served
        self.chunk_remote_fetches = 0  #: reads crossing the network
        self.chunk_bytes_written = 0  #: payload bytes written
        self.chunk_bytes_fetched = 0  #: payload bytes fetched remotely
        self.lazy_faults = 0  #: copy-on-reference fault-ins
        # loadd load balancing
        self.ld_reports_sent = 0  #: load reports delivered to peers
        self.ld_reports_recv = 0  #: load reports accepted + spooled
        self.ld_reports_dropped = 0  #: reports lost/refused/corrupt
        self.ld_stale_drops = 0  #: spooled reports past load_stale_s
        self.ld_suspect_skips = 0  #: peers skipped as suspected dead
        self.ld_rounds = 0  #: balance rounds completed
        self.ld_moves = 0  #: jobs migrated by loadd
        self.ld_move_failures = 0  #: failed loadd moves
        # migration intent ledger
        self.ml_records = 0  #: intent records written
        self.ml_advances = 0  #: phase advances written
        self.ml_claims = 0  #: sweep fences created
        self.ml_archives = 0  #: ledgered dumps archived
        self.ml_completions = 0  #: migrations marked DONE by migrate
        self.ml_aborts = 0  #: migrations aborted / rolled back
        self.ml_sweeps = 0  #: records resolved by the sweep
        self.ml_reaps = 0  #: settled records reaped
        # statd cluster telemetry
        self.st_samples = 0  #: sampling rounds completed
        self.st_series_points = 0  #: ring samples recorded
        self.st_reports_sent = 0  #: reports shipped to the spooler
        self.st_reports_recv = 0  #: reports accepted + spooled
        self.st_reports_dropped = 0  #: reports lost/refused/corrupt
        self.st_stale_drops = 0  #: spooled reports aged out
        self.st_suspect_skips = 0  #: shipments skipped (suspect)
        self.st_alerts = 0  #: SLO alerts raised by the analyzer
        #: labelled counters and virtual-time histograms (per-host,
        #: per-phase statistics the flat counters cannot express)
        self.metrics = MetricsRegistry()

    def note(self, name, amount=1):
        """Bump a counter by name (used by the ``perf_note`` syscall).

        Rejects bool-typed attributes (``True`` is an ``int`` in
        Python, but flags like a hypothetical ``enabled`` must never
        be silently incremented) and non-numeric bumps.
        """
        if isinstance(amount, bool) \
                or not isinstance(amount, (int, float)):
            raise TypeError("perf counter bump must be a number, "
                            "got %r" % (amount,))
        value = getattr(self, name, None)
        if isinstance(value, bool) \
                or not isinstance(value, (int, float)):
            raise ValueError("unknown perf counter %r" % name)
        setattr(self, name, value + amount)

    # -- recording -------------------------------------------------------

    def note_burst(self, length):
        """Record one completed burst of ``length`` machine steps."""
        self.bursts += 1
        bucket = length.bit_length()  # 0, [1], [2-3], [4-7], ...
        self.burst_hist[bucket] = self.burst_hist.get(bucket, 0) + 1

    # -- derived figures -------------------------------------------------

    def decode_hit_rate(self):
        """Fraction of retired instructions that skipped decoding."""
        if not self.vm_instructions:
            return 0.0
        hits = self.vm_instructions - self.instructions_decoded
        return max(0.0, hits) / self.vm_instructions

    def burst_histogram(self):
        """The burst-length histogram with human-readable bucket labels."""
        out = {}
        for exponent in sorted(self.burst_hist):
            if exponent == 0:
                label = "0"
            elif exponent == 1:
                label = "1"
            else:
                label = "%d-%d" % (1 << (exponent - 1),
                                   (1 << exponent) - 1)
            out[label] = self.burst_hist[exponent]
        return out

    def snapshot(self, elapsed_s=None):
        """A JSON-ready dict of everything, for BENCH_perf.json."""
        snap = {
            "steps": self.steps,
            "bursts": self.bursts,
            "burst_histogram": self.burst_histogram(),
            "horizon_invalidations": self.horizon_invalidations,
            "horizon_memo_hits": self.horizon_memo_hits,
            "heap_pushes": self.heap_pushes,
            "vm_instructions": self.vm_instructions,
            "instructions_decoded": self.instructions_decoded,
            "blocks_compiled": self.blocks_compiled,
            "traces_linked": self.traces_linked,
            "reg_spills": self.reg_spills,
            "shared_cache_hits": self.shared_cache_hits,
            "cache_rebuilds": self.cache_rebuilds,
            "decode_hit_rate": round(self.decode_hit_rate(), 6),
            "faults_injected": self.faults_injected,
            "fault_delay_us": self.fault_delay_us,
            "fault_corruptions": self.fault_corruptions,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "host_crashes": self.host_crashes,
            "host_reboots": self.host_reboots,
            "net_partitions": self.net_partitions,
            "net_drops": self.net_drops,
            "hb_ticks": self.hb_ticks,
            "hb_probes": self.hb_probes,
            "hb_suspects": self.hb_suspects,
            "hb_recoveries": self.hb_recoveries,
            "recoveries": self.recoveries,
            "chunk_puts": self.chunk_puts,
            "chunk_dedup_hits": self.chunk_dedup_hits,
            "chunks_clean_skipped": self.chunks_clean_skipped,
            "chunk_gets": self.chunk_gets,
            "chunk_remote_fetches": self.chunk_remote_fetches,
            "chunk_bytes_written": self.chunk_bytes_written,
            "chunk_bytes_fetched": self.chunk_bytes_fetched,
            "lazy_faults": self.lazy_faults,
            "ld_reports_sent": self.ld_reports_sent,
            "ld_reports_recv": self.ld_reports_recv,
            "ld_reports_dropped": self.ld_reports_dropped,
            "ld_stale_drops": self.ld_stale_drops,
            "ld_suspect_skips": self.ld_suspect_skips,
            "ld_rounds": self.ld_rounds,
            "ld_moves": self.ld_moves,
            "ld_move_failures": self.ld_move_failures,
            "ml_records": self.ml_records,
            "ml_advances": self.ml_advances,
            "ml_claims": self.ml_claims,
            "ml_archives": self.ml_archives,
            "ml_completions": self.ml_completions,
            "ml_aborts": self.ml_aborts,
            "ml_sweeps": self.ml_sweeps,
            "ml_reaps": self.ml_reaps,
            "st_samples": self.st_samples,
            "st_series_points": self.st_series_points,
            "st_reports_sent": self.st_reports_sent,
            "st_reports_recv": self.st_reports_recv,
            "st_reports_dropped": self.st_reports_dropped,
            "st_stale_drops": self.st_stale_drops,
            "st_suspect_skips": self.st_suspect_skips,
            "st_alerts": self.st_alerts,
            "metrics": self.metrics.snapshot(),
        }
        if elapsed_s is not None:
            snap["elapsed_s"] = round(elapsed_s, 6)
            snap["steps_per_sec"] = round(
                self.steps / elapsed_s, 3) if elapsed_s else 0.0
            snap["instructions_per_sec"] = round(
                self.vm_instructions / elapsed_s, 3) if elapsed_s else 0.0
        return snap

    def __repr__(self):
        return ("PerfCounters(steps=%d bursts=%d vm=%d hit=%.3f)"
                % (self.steps, self.bursts, self.vm_instructions,
                   self.decode_hit_rate()))
