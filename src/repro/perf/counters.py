"""Counters for the fast-path engine.

One :class:`PerfCounters` instance is owned by each
:class:`~repro.machine.cluster.Cluster` and shared with every machine's
CPU, so a run's scheduler work (steps, bursts, horizon invalidations)
and VM work (instructions, predecode cache traffic) land in one place.
"""


class PerfCounters:
    """Real-time engine statistics for one cluster."""

    def __init__(self):
        self.reset()

    def reset(self):
        # scheduler driver
        self.steps = 0  #: machine steps executed by the cluster driver
        self.bursts = 0  #: event-horizon bursts (fast engine only)
        self.burst_hist = {}  #: bucket exponent -> burst count
        self.horizon_invalidations = 0  #: horizons recomputed mid-burst
        # VM / decode cache
        self.vm_instructions = 0  #: instructions retired by all CPUs
        self.instructions_decoded = 0  #: instructions actually decoded
        self.blocks_compiled = 0  #: straight-line blocks compiled
        self.block_cache_hits = 0  #: whole text segments reused verbatim
        self.cache_rebuilds = 0  #: per-image caches (re)built
        # fault injection / pipeline hardening
        self.faults_injected = 0  #: fault rules that fired
        self.fault_delay_us = 0.0  #: virtual time added by delay rules
        self.fault_corruptions = 0  #: blobs mangled by corrupt rules
        self.retries = 0  #: retry rounds taken by hardened commands
        self.timeouts = 0  #: read/poll timeouts hit by hardened commands
        # host failure model / recovery
        self.host_crashes = 0  #: crash_host() invocations
        self.host_reboots = 0  #: reboot_host() invocations
        self.net_partitions = 0  #: partition() link cuts installed
        self.net_drops = 0  #: messages dropped by dead hosts or cuts
        self.hb_ticks = 0  #: heartbeat rounds run by all monitors
        self.hb_probes = 0  #: individual peer probes sent
        self.hb_suspects = 0  #: suspected-dead verdicts declared
        self.hb_recoveries = 0  #: suspected peers seen alive again
        self.recoveries = 0  #: jobs recoveryd restarted elsewhere

    def note(self, name, amount=1):
        """Bump a counter by name (used by the ``perf_note`` syscall)."""
        value = getattr(self, name, None)
        if not isinstance(value, (int, float)):
            raise ValueError("unknown perf counter %r" % name)
        setattr(self, name, value + amount)

    # -- recording -------------------------------------------------------

    def note_burst(self, length):
        """Record one completed burst of ``length`` machine steps."""
        self.bursts += 1
        bucket = length.bit_length()  # 0, [1], [2-3], [4-7], ...
        self.burst_hist[bucket] = self.burst_hist.get(bucket, 0) + 1

    # -- derived figures -------------------------------------------------

    def decode_hit_rate(self):
        """Fraction of retired instructions that skipped decoding."""
        if not self.vm_instructions:
            return 0.0
        hits = self.vm_instructions - self.instructions_decoded
        return max(0.0, hits) / self.vm_instructions

    def burst_histogram(self):
        """The burst-length histogram with human-readable bucket labels."""
        out = {}
        for exponent in sorted(self.burst_hist):
            if exponent == 0:
                label = "0"
            elif exponent == 1:
                label = "1"
            else:
                label = "%d-%d" % (1 << (exponent - 1),
                                   (1 << exponent) - 1)
            out[label] = self.burst_hist[exponent]
        return out

    def snapshot(self, elapsed_s=None):
        """A JSON-ready dict of everything, for BENCH_perf.json."""
        snap = {
            "steps": self.steps,
            "bursts": self.bursts,
            "burst_histogram": self.burst_histogram(),
            "horizon_invalidations": self.horizon_invalidations,
            "vm_instructions": self.vm_instructions,
            "instructions_decoded": self.instructions_decoded,
            "blocks_compiled": self.blocks_compiled,
            "block_cache_hits": self.block_cache_hits,
            "cache_rebuilds": self.cache_rebuilds,
            "decode_hit_rate": round(self.decode_hit_rate(), 6),
            "faults_injected": self.faults_injected,
            "fault_delay_us": self.fault_delay_us,
            "fault_corruptions": self.fault_corruptions,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "host_crashes": self.host_crashes,
            "host_reboots": self.host_reboots,
            "net_partitions": self.net_partitions,
            "net_drops": self.net_drops,
            "hb_ticks": self.hb_ticks,
            "hb_probes": self.hb_probes,
            "hb_suspects": self.hb_suspects,
            "hb_recoveries": self.hb_recoveries,
            "recoveries": self.recoveries,
        }
        if elapsed_s is not None:
            snap["elapsed_s"] = round(elapsed_s, 6)
            snap["steps_per_sec"] = round(
                self.steps / elapsed_s, 3) if elapsed_s else 0.0
            snap["instructions_per_sec"] = round(
                self.vm_instructions / elapsed_s, 3) if elapsed_s else 0.0
        return snap

    def __repr__(self):
        return ("PerfCounters(steps=%d bursts=%d vm=%d hit=%.3f)"
                % (self.steps, self.bursts, self.vm_instructions,
                   self.decode_hit_rate()))
