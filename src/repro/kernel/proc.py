"""Process structures and the two kinds of process image.

A :class:`Proc` is one entry of the process table.  Its ``image`` is
either a :class:`VMImageState` — a real machine image (memory +
registers) running on the simulated CPU; these are the processes the
migration mechanism can dump and restart — or a :class:`NativeState`,
a Python-coded *system program* (``dumpproc``, ``restart``, ``rshd``,
...) that interacts with the kernel exclusively through system calls.
Native programs exist because the paper's tooling is user-level code;
they cannot be migrated, which mirrors reality: you migrate the
long-running compute job, not the migration tool itself.
"""

from repro.kernel.constants import SRUN, SZOMB, STATE_NAMES
from repro.kernel.user import User


class VMImageState:
    """A VM process: a ProcessImage executing on the machine's CPU."""

    kind = "vm"

    def __init__(self, image):
        self.image = image

    @property
    def regs(self):
        return self.image.regs


class NativeState:
    """A native (Python generator) system program.

    The generator yields syscall requests as tuples
    ``("open", "/etc/passwd", O_RDONLY, 0)`` and receives results.
    Its return value (or an explicit ``("exit", code)``) is the exit
    status.
    """

    kind = "native"

    def __init__(self, name, factory, argv, env=None):
        self.name = name
        self.factory = factory
        self.argv = list(argv)
        self.env = dict(env or {})
        self.generator = None
        self.started = False
        #: a blocked syscall request to retry on wakeup
        self.pending_request = None
        #: result to feed into the generator on next resume
        self.next_result = None

    def start(self):
        self.generator = self.factory(list(self.argv), dict(self.env))
        self.started = True


class Proc:
    """One process-table entry."""

    def __init__(self, pid, parent=None, cred=None):
        self.pid = pid
        self.parent = parent
        self.children = []
        self.state = SRUN
        self.image = None
        self.user = User(cred)
        self.command = "?"
        #: wait channel while sleeping
        self.wchan = None
        self.exit_status = None
        self.term_signal = None
        #: set when the process was killed by SIGDUMP and dumped
        self.dumped = False
        #: ledger record directory armed by dump_ledger(): the next
        #: SIGDUMP also archives the dump through the chunk store
        self.ledger_dir = None
        #: CPU accounting, microseconds
        self.utime_us = 0.0
        self.stime_us = 0.0
        self.start_us = 0.0
        #: section 7 extension (ablation A5): identity of the original
        #: process when this one was created by rest_proc()
        self.old_pid = None
        self.old_host = None
        #: callbacks fired on exit (SpawnHandle wiring, wait channels)
        self.exit_hooks = []
        #: fd -> absolute deadline (us) armed by ``read_timeout``
        self.io_deadlines = {}

    @property
    def ppid(self):
        return self.parent.pid if self.parent is not None else 0

    def is_vm(self):
        return self.image is not None and self.image.kind == "vm"

    def is_native(self):
        return self.image is not None and self.image.kind == "native"

    def runnable(self):
        return self.state == SRUN

    def zombie(self):
        return self.state == SZOMB

    def cpu_us(self):
        return self.utime_us + self.stime_us

    def state_name(self):
        return STATE_NAMES.get(self.state, "?")

    def __repr__(self):
        return "Proc(pid=%d %s %s cmd=%s)" % (
            self.pid, self.state_name(),
            self.image.kind if self.image else "-", self.command)


class ProcTable:
    """The machine's process table."""

    MAXPROC = 256

    def __init__(self):
        self._procs = {}
        self._next_pid = 1

    def alloc(self, parent=None, cred=None):
        from repro.errors import UnixError, EAGAIN
        if len(self._procs) >= self.MAXPROC:
            raise UnixError(EAGAIN, "process table full")
        pid = self._next_pid
        self._next_pid += 1
        proc = Proc(pid, parent=parent,
                    cred=cred.copy() if cred is not None else None)
        self._procs[pid] = proc
        if parent is not None:
            parent.children.append(proc)
        return proc

    def lookup(self, pid):
        return self._procs.get(pid)

    def remove(self, proc):
        self._procs.pop(proc.pid, None)
        if proc.parent is not None and proc in proc.parent.children:
            proc.parent.children.remove(proc)

    def all_procs(self):
        return list(self._procs.values())

    def __len__(self):
        return len(self._procs)
