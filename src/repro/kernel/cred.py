"""User credentials, as dumped into the stackXXXXX file."""

import struct

_FORMAT = struct.Struct("<iiii")

PACKED_SIZE = _FORMAT.size


class Credentials:
    """Real and effective user and group ids."""

    __slots__ = ("uid", "gid", "euid", "egid")

    def __init__(self, uid=0, gid=0, euid=None, egid=None):
        self.uid = uid
        self.gid = gid
        self.euid = uid if euid is None else euid
        self.egid = gid if egid is None else egid

    def is_superuser(self):
        return self.euid == 0

    def can_signal(self, other):
        """The kill() permission rule: superuser, or matching uids."""
        return (self.is_superuser() or self.uid == other.uid
                or self.euid == other.euid or self.euid == other.uid)

    def copy(self):
        return Credentials(self.uid, self.gid, self.euid, self.egid)

    def pack(self):
        return _FORMAT.pack(self.uid, self.gid, self.euid, self.egid)

    @classmethod
    def unpack(cls, blob, offset=0):
        uid, gid, euid, egid = _FORMAT.unpack_from(blob, offset)
        return cls(uid, gid, euid, egid)

    def __eq__(self, other):
        if not isinstance(other, Credentials):
            return NotImplemented
        return (self.uid, self.gid, self.euid, self.egid) == \
            (other.uid, other.gid, other.euid, other.egid)

    def __repr__(self):
        return ("Credentials(uid=%d gid=%d euid=%d egid=%d)"
                % (self.uid, self.gid, self.euid, self.egid))
