"""The system open-file table.

Each :class:`File` is one entry: an inode reference, the open flags,
the current offset and a reference count (shared across ``fork()`` and
``dup()``, exactly like real Unix file structures).

**The paper's modification lives here**: every file structure is
"augmented with a pointer to a dynamically allocated character string
containing the absolute path name of the file to which it refers",
filled in by ``open()``/``creat()`` and freed by ``close()``.  The
allocator hook is how the Figure 1 overhead is charged, and the
ablation A3 (dynamic vs. fixed-size name storage) reads the
bookkeeping this module keeps.
"""

from repro.errors import UnixError, ENFILE

FFILE = 1  #: regular file or device
FSOCKET = 2  #: socket (not migratable)
FPIPE = 3  #: pipe (not migratable; dumped as a socket entry)

PIPE_CAPACITY = 4096


class PipeBuffer:
    """The shared buffer behind a pipe's two ends."""

    def __init__(self):
        self.data = bytearray()
        self.readers = 0
        self.writers = 0

    def space(self):
        return PIPE_CAPACITY - len(self.data)


class File:
    """One system file-table entry."""

    def __init__(self, ftype=FFILE):
        self.ftype = ftype
        self.fs = None  #: FileSystem owning the inode
        self.inode = None
        self.flags = 0
        self.offset = 0
        self.refcount = 1
        #: the paper's addition: the absolute path name, or None.  In
        #: the simulated kernel the pointer is "null" when name
        #: tracking is disabled (the unmodified-kernel baseline) or
        #: before open() fills it in.
        self.name = None
        self.socket = None  #: net-layer socket state for FSOCKET
        self.pipe = None  #: (PipeBuffer, "r"|"w") for FPIPE

    def is_device(self):
        return self.inode is not None and self.inode.is_chr()

    def __repr__(self):
        kind = {FFILE: "file", FSOCKET: "socket", FPIPE: "pipe"}[self.ftype]
        return "File(%s, name=%r, offset=%d)" % (kind, self.name,
                                                 self.offset)


class FileTable:
    """Per-machine table of open file structures."""

    #: system-wide open file limit
    NFILE = 200

    def __init__(self):
        self.entries = []
        #: bytes of kernel memory currently held by name strings
        #: (ablation A3 bookkeeping)
        self.name_bytes = 0
        self.name_allocs = 0
        self.name_frees = 0

    def alloc(self, ftype=FFILE):
        """Allocate a file structure.

        The allocator "has been changed to initialise this pointer to
        a null value" — :class:`File` does that in its constructor.
        """
        live = [f for f in self.entries if f.refcount > 0]
        if len(live) >= self.NFILE:
            raise UnixError(ENFILE)
        entry = File(ftype)
        self.entries.append(entry)
        return entry

    def set_name(self, entry, name):
        """Attach a dynamically-allocated name string to an entry."""
        if entry.name is not None:
            self.name_bytes -= len(entry.name) + 1
        entry.name = name
        self.name_bytes += len(name) + 1
        self.name_allocs += 1

    def release(self, entry):
        """Drop one reference; frees the name when the last goes."""
        entry.refcount -= 1
        if entry.refcount > 0:
            return False
        if entry.name is not None:
            self.name_bytes -= len(entry.name) + 1
            self.name_frees += 1
            entry.name = None
        if entry in self.entries:
            self.entries.remove(entry)
        return True

    def live_count(self):
        return len(self.entries)
