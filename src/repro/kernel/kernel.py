"""The kernel: plumbing, dispatch, and the pieces every syscall shares.

The :class:`Kernel` class is assembled from mixins, one per subsystem:

* :class:`~repro.kernel.sys_file.FileSyscalls` — files, directories,
  descriptors, terminals, pipes, sockets;
* :class:`~repro.kernel.sys_proc.ProcSyscalls` — fork/exit/wait,
  signals, credentials;
* :class:`~repro.kernel.sys_misc.MiscSyscalls` — identity, time,
  spawn, introspection;
* :class:`~repro.kernel.exec_.ExecSupport` — ``execve()`` including
  the paper's migration-flag modification;
* :class:`~repro.kernel.dump.DumpSupport` — the ``SIGDUMP`` dump
  writer and the ``SIGQUIT`` core writer;
* :class:`~repro.kernel.restproc.RestProcSupport` — the new
  ``rest_proc()`` system call.

System calls are implemented once, against Python-level values; a thin
marshalling layer (:mod:`repro.kernel.syscalls`) maps VM traps
(arguments in registers, strings in guest memory) onto them, and
native system programs call them directly through yielded requests.

Two control-flow exceptions thread through everything:

* :class:`WouldBlock` — the classic sleep/retry discipline: a syscall
  that cannot proceed raises it, the scheduler puts the process to
  sleep on the carried channel, and the whole syscall is re-executed
  after :meth:`Kernel.wakeup`;
* :class:`ProcessOverlaid` — raised when ``execve()`` or
  ``rest_proc()`` *succeeds*: the calling image no longer exists, so
  no result must be written back ("normally, there is no return from
  this system call").
"""

from repro.errors import UnixError, ENXIO, EACCES
from repro.kernel.constants import SRUN, SSLEEP, SSTOP, SZOMB
from repro.kernel.filetable import FileTable
from repro.kernel.proc import ProcTable
from repro.kernel import signals as sig_mod
from repro.kernel.flow import (WouldBlock, ProcessOverlaid, NullDevice,
                               NULL_DEVICE)
from repro.kernel.scheduler import Scheduler
from repro.kernel.sys_file import FileSyscalls
from repro.kernel.sys_proc import ProcSyscalls
from repro.kernel.sys_misc import MiscSyscalls
from repro.kernel.exec_ import ExecSupport
from repro.kernel.dump import DumpSupport
from repro.kernel.restproc import RestProcSupport

__all__ = ["Kernel", "WouldBlock", "ProcessOverlaid", "NullDevice",
           "NULL_DEVICE"]


class Kernel(FileSyscalls, ProcSyscalls, MiscSyscalls, ExecSupport,
             DumpSupport, RestProcSupport):
    """One machine's kernel."""

    def __init__(self, machine):
        self.machine = machine
        self.costs = machine.costs
        #: the cluster tracer, cached so every emission site pays a
        #: single attribute check when tracing is off; a reboot builds
        #: a fresh kernel and re-caches it here
        self.tracer = machine.cluster.tracer
        self.procs = ProcTable()
        self.files = FileTable()
        self.scheduler = Scheduler(self)
        self.curproc = None
        #: the global flag execve() checks ("indicates that it is
        #: called from within rest_proc()") and the companion variable
        #: holding the stack size to allocate
        self.migrating = False
        self.migrate_stack_size = 0
        #: in-kernel timing records, keyed by syscall name — the
        #: paper's "timing code inside the kernel" for Figure 3
        self.syscall_timings = {}
        self.messages = []  #: kernel log (like /dev/console messages)
        #: ablation A7: the 4.3BSD-style name cache (path -> resolved)
        self._namei_cache = {}
        self._namei_suppress_charge = False
        self.namei_cache_hits = 0
        self.namei_cache_misses = 0
        #: lazily-created heartbeat failure detector (see
        #: repro.net.heartbeat); a reboot gets a fresh, empty one
        self.hb_monitor = None

    # -- identity ---------------------------------------------------------

    @property
    def hostname(self):
        return self.machine.name

    @property
    def clock(self):
        return self.machine.clock

    def log(self, text):
        self.messages.append("[%.6f] %s" % (self.clock.seconds(), text))

    # -- time accounting ----------------------------------------------------

    def charge(self, us, proc=None):
        """Charge system CPU time (advances the machine clock)."""
        self.clock.advance(us)
        proc = proc or self.curproc
        if proc is not None:
            proc.stime_us += us

    def charge_user(self, us, proc=None):
        self.clock.advance(us)
        proc = proc or self.curproc
        if proc is not None:
            proc.utime_us += us

    def charge_wait(self, us):
        """Real time passing while the process waits (disk, network).

        Advances the clock but charges no CPU — the source of the
        paper's CPU-vs-real-time gaps in Figures 2 and 3.
        """
        self.clock.advance(us)

    def charge_idle(self, us):
        """Time passing without a process (device settle etc.)."""
        self.clock.advance(us)

    # -- fault injection ----------------------------------------------------

    def fault_check(self, site, detail=""):
        """Evaluate a control-flow injection site (no-op unarmed)."""
        faults = self.machine.cluster.faults
        if faults.plan.rules:
            faults.check(self, site, detail)

    def fault_filter(self, site, data, detail=""):
        """Pass a blob through a data injection site (no-op unarmed)."""
        faults = self.machine.cluster.faults
        if faults.plan.rules:
            return faults.filter(self, site, data, detail)
        return data

    # -- filesystem plumbing ---------------------------------------------------

    def fs_is_local(self, fs):
        return fs.hostname == self.hostname

    def fs_check_reachable(self, fs):
        """Fail I/O on an open fd whose remote server died.

        Path resolution catches dead servers at lookup time (the
        namespace's ``remote_roots`` hook raises ``EHOSTDOWN``), but a
        descriptor opened *before* the crash bypasses namei — this is
        the per-operation check that makes pending NFS reads and
        writes fail instead of touching a ghost filesystem.
        """
        if self.fs_is_local(fs):
            return
        from repro.errors import EHOSTDOWN
        server = self.machine.cluster.machines.get(fs.hostname)
        if server is None or not server.running:
            raise UnixError(EHOSTDOWN, fs.hostname)
        if not self.machine.cluster.network.reachable(
                self.hostname, fs.hostname):
            raise UnixError(EHOSTDOWN,
                            "%s (partitioned)" % fs.hostname)

    def fs_charge(self, op, fs):
        """Charge one namei step (the Namespace charge hook)."""
        if self._namei_suppress_charge:
            return
        costs = self.costs
        if op == "lookup":
            us = costs.namei_component_us if self.fs_is_local(fs) \
                else costs.nfs_lookup_us
        else:  # readlink during resolution
            us = costs.inode_op_us if self.fs_is_local(fs) \
                else costs.nfs_lookup_us
        self.charge(us)

    def namei(self, proc, path, follow=True, want_parent=False):
        """Resolve a path in this machine's namespace, from proc's cwd.

        With ``costs.namei_cache`` on (ablation A7, the 4.3BSD name
        cache), a repeated resolution of the same name from the same
        directory is charged one flat hit cost instead of the full
        per-component walk.  The cache is flushed wholesale on any
        metadata change — crude, but safe, and roughly what the first
        implementation's capacity misses amounted to.
        """
        if not path:
            raise UnixError(ENXIO, "empty path")
        cwd = proc.user.cdir if proc is not None else None
        if not self.costs.namei_cache:
            return self.machine.namespace.resolve(
                path, cwd=cwd, follow=follow, want_parent=want_parent)

        key = (path, follow, want_parent,
               None if cwd is None or path.startswith("/")
               else id(cwd[1]))
        if key in self._namei_cache:
            self.namei_cache_hits += 1
            self.charge(self.costs.namei_cache_hit_us)
            self._namei_suppress_charge = True
            try:
                return self.machine.namespace.resolve(
                    path, cwd=cwd, follow=follow,
                    want_parent=want_parent)
            finally:
                self._namei_suppress_charge = False
        self.namei_cache_misses += 1
        resolved = self.machine.namespace.resolve(
            path, cwd=cwd, follow=follow, want_parent=want_parent)
        if resolved.exists:  # negative entries are not cached
            self._namei_cache[key] = True
        return resolved

    def io_charge(self, fs, nbytes, write=False):
        """Charge a data transfer to/from ``fs``.

        Split into a CPU part (buffer cache, driver, RPC marshalling)
        and a wait part (the disk arm, the wire).
        """
        costs = self.costs
        blocks = max(1, -(-int(nbytes) // costs.disk_block_bytes))
        if self.fs_is_local(fs):
            total = costs.disk_io_us(nbytes, write=write)
            cpu = blocks * costs.disk_cpu_per_block_us
        else:
            total = costs.nfs_io_us(nbytes, write=write)
            cpu = blocks * costs.nfs_cpu_per_op_us
        cpu = min(cpu, total)
        self.charge(cpu)
        self.charge_wait(total - cpu)

    def meta_charge(self, fs):
        """Charge a metadata operation (create/remove/truncate).

        These are synchronous directory+inode updates — the dominant
        per-file cost (see ``CostModel.disk_create_us``).
        """
        self._namei_cache.clear()  # names may have changed (A7)
        costs = self.costs
        if self.fs_is_local(fs):
            cpu = costs.inode_op_us + 2 * costs.disk_cpu_per_block_us
            self.charge(cpu)
            self.charge_wait(max(0.0, costs.disk_create_us - cpu))
        else:
            self.charge(costs.nfs_cpu_per_op_us)
            self.charge_wait(max(0.0, costs.nfs_meta_op_us
                                 - costs.nfs_cpu_per_op_us))

    def kread_file(self, proc, path, follow=True):
        """Kernel-internal whole-file read with cost accounting."""
        from repro.errors import EISDIR
        resolved = self.namei(proc, path, follow=follow)
        inode = resolved.inode
        if inode.is_dir():
            raise UnixError(EISDIR, path)
        if not inode.is_reg():
            raise UnixError(EACCES, path)
        if not inode.check_access(proc.user.cred if proc else None,
                                  want_read=True):
            raise UnixError(EACCES, path)
        site = "fs.read" if self.fs_is_local(resolved.fs) else "nfs.read"
        self.fault_check(site, path)
        data = bytes(inode.data)
        data = self.fault_filter(site, data, path)
        self.io_charge(resolved.fs, len(data))
        return data

    def kwrite_file(self, proc, path, data, mode=0o600):
        """Kernel-internal file create/overwrite with cost accounting.

        Used by the SIGDUMP dump writer and the core dumper.
        """
        self.fault_check("fs.kwrite", path)
        resolved = self.namei(proc, path, want_parent=True)
        cred = proc.user.cred if proc is not None else None
        if resolved.inode is None:
            if not resolved.parent.check_access(cred, want_write=True):
                raise UnixError(EACCES, path)
            inode = resolved.parent_fs.create(
                resolved.parent, resolved.name, mode=mode,
                uid=cred.euid if cred else 0,
                gid=cred.egid if cred else 0)
            self.meta_charge(resolved.parent_fs)
            fs = resolved.parent_fs
        else:
            inode = resolved.inode
            if not inode.check_access(cred, want_write=True):
                raise UnixError(EACCES, path)
            fs = resolved.fs
            fs.truncate(inode)
            self.meta_charge(fs)
        fs.write(inode, 0, data)
        self.io_charge(fs, len(data), write=True)
        return inode

    # -- device channels ----------------------------------------------------------

    def device_channel(self, proc, inode):
        """Map a character-device inode to its live channel."""
        name = inode.device
        if name == "null":
            return NULL_DEVICE
        if name == "tty":
            if proc is None or proc.user.tty is None:
                raise UnixError(ENXIO, "/dev/tty with no terminal")
            return proc.user.tty
        terminal = self.machine.terminals.get(name)
        if terminal is None:
            raise UnixError(ENXIO, "no device %r" % name)
        return terminal

    # -- signals ---------------------------------------------------------------------

    def post_signal(self, target, sig):
        """Post ``sig`` to ``target`` and wake it if necessary."""
        if self.tracer.enabled:
            self.tracer.emit("signal", sig_mod.signal_name(sig),
                             self.machine, pid=target.pid)
        target.user.sig.post(sig)
        self.charge(self.costs.signal_post_us)
        action = target.user.sig.action(sig)
        if target.state == SSLEEP and action != sig_mod.A_IGN:
            self._unsleep(target)
        elif target.state == SSTOP and action == sig_mod.A_CONT:
            target.state = SRUN
            self.scheduler.enqueue(target)

    def _unsleep(self, proc):
        proc.state = SRUN
        proc.wchan = None
        self.scheduler.enqueue(proc)

    def wakeup(self, channel):
        """Wake every process sleeping on ``channel``."""
        for proc in self.procs.all_procs():
            if proc.state == SSLEEP and proc.wchan == channel:
                self._unsleep(proc)

    # -- process teardown ---------------------------------------------------------------

    def do_exit(self, proc, status=0, term_signal=None):
        """Terminate ``proc`` (normal exit or fatal signal)."""
        if proc.state == SZOMB:
            return
        for fd in list(proc.user.open_fds()):
            try:
                self.sys_close(proc, fd)
            except UnixError:
                pass
        self.charge(self.costs.exit_base_us, proc=proc)
        proc.exit_status = status
        proc.term_signal = term_signal
        proc.state = SZOMB
        proc.wchan = None
        self.scheduler.remove(proc)
        # orphan the children; already-dead ones are reaped now
        for child in list(proc.children):
            child.parent = None
            proc.children.remove(child)
            if child.state == SZOMB:
                self.procs.remove(child)
        for hook in list(proc.exit_hooks):
            hook(proc)
        parent = proc.parent
        if parent is not None and parent.state != SZOMB:
            self.post_signal(parent, sig_mod.SIGCHLD)
            self.wakeup(("wait", parent.pid))
        elif parent is None:
            # nobody will wait(); reap immediately
            self.procs.remove(proc)

    # -- syscall timing instrumentation -------------------------------------------------

    def record_timing(self, name, real_us, cpu_us):
        self.syscall_timings.setdefault(name, []).append(
            {"real_us": real_us, "cpu_us": cpu_us})

    def timings(self, name):
        return self.syscall_timings.get(name, [])
