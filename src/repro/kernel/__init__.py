"""The simulated Unix kernel.

See :mod:`repro.kernel.kernel` for the overall structure.  The paper's
additions are spread exactly as in the original: the name-tracking
modifications in :mod:`repro.kernel.sys_file`
(``open``/``creat``/``close``/``chdir``), the ``SIGDUMP`` machinery in
:mod:`repro.kernel.signals` and :mod:`repro.kernel.dump`, and the
``rest_proc()`` call in :mod:`repro.kernel.restproc` built on the
modified ``execve()`` of :mod:`repro.kernel.exec_`.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.flow import WouldBlock, ProcessOverlaid, NULL_DEVICE
from repro.kernel.constants import (NOFILE, MAXCWD, O_RDONLY, O_WRONLY,
                                    O_RDWR, O_APPEND, O_CREAT, O_TRUNC,
                                    O_EXCL, SEEK_SET, SEEK_CUR,
                                    SEEK_END, TIOCGETP, TIOCSETP,
                                    TF_ECHO, TF_RAW, TF_CBREAK,
                                    TF_CRMOD, DUMPDIR)
from repro.kernel.cred import Credentials
from repro.kernel.tty import Terminal
from repro.kernel import signals
from repro.kernel.signals import SIGDUMP, SIGQUIT, SIGKILL, SIGTERM
from repro.kernel.syscalls import NR

__all__ = [
    "Kernel", "WouldBlock", "ProcessOverlaid", "NULL_DEVICE",
    "NOFILE", "MAXCWD", "O_RDONLY", "O_WRONLY", "O_RDWR", "O_APPEND",
    "O_CREAT", "O_TRUNC", "O_EXCL", "SEEK_SET", "SEEK_CUR", "SEEK_END",
    "TIOCGETP", "TIOCSETP", "TF_ECHO", "TF_RAW", "TF_CBREAK",
    "TF_CRMOD", "DUMPDIR", "Credentials", "Terminal", "signals",
    "SIGDUMP", "SIGQUIT", "SIGKILL", "SIGTERM", "NR",
]
