"""Process-management system calls."""

from repro.clock import US_PER_SEC
from repro.errors import (UnixError, ECHILD, EINVAL, ENOMEM, EPERM,
                          ESRCH)
from repro.kernel.constants import SZOMB
from repro.kernel.flow import WouldBlock
from repro.kernel.proc import VMImageState
from repro.kernel.signals import NSIG, SIG_DFL, SIG_IGN, signal_name


def pack_wait_status(proc):
    """Encode an exit the way wait() reports it: (code << 8) | sig."""
    sig = proc.term_signal or 0
    code = proc.exit_status or 0
    return ((code & 0xFF) << 8) | (sig & 0x7F)


class ProcSyscalls:
    """Mixin: process system calls (self is the Kernel)."""

    # -- creation and death ------------------------------------------------

    def sys_fork(self, proc):
        """Duplicate the calling process.  VM processes only — native
        system programs use spawn() (documented deviation)."""
        if not proc.is_vm():
            raise UnixError(EINVAL, "fork from a native program")
        child = self.procs.alloc(parent=proc, cred=proc.user.cred)
        child.user = proc.user.copy_for_fork(self.files)
        image = proc.image.image.copy()
        image.regs.d[0] = 0  # fork returns 0 in the child
        child.image = VMImageState(image)
        child.command = proc.command
        child.start_us = self.clock.now_us
        self.charge(self.costs.fork_base_us
                    + self.costs.copy_byte_us * image.mem_size)
        self.scheduler.enqueue(child)
        return child.pid

    def sys_exit(self, proc, status=0):
        self.do_exit(proc, status=status & 0xFF)
        return 0  # never seen: the process is a zombie

    def sys_wait(self, proc):
        """Wait for a child; returns ``(pid, status)``.

        The paper's caveat: a *migrated* process "ceases being the
        parent of what used to be its children" — after rest_proc()
        the new process has no children and wait() fails with ECHILD.
        """
        if not proc.children:
            raise UnixError(ECHILD)
        for child in proc.children:
            if child.state == SZOMB:
                status = pack_wait_status(child)
                pid = child.pid
                self.procs.remove(child)
                self.charge(self.costs.filetable_op_us)
                return pid, status
        raise WouldBlock(("wait", proc.pid))

    def sys_reap(self, proc):
        """Non-blocking wait: ``(pid, status)`` or 0 when no child is
        dead (or there are no children at all).

        The hardened ``migrate`` polls this between retry rounds; a
        blocking wait() would deadlock it against its own ack poll.
        """
        for child in proc.children:
            if child.state == SZOMB:
                status = pack_wait_status(child)
                pid = child.pid
                self.procs.remove(child)
                self.charge(self.costs.filetable_op_us)
                return pid, status
        return 0

    # -- identity -------------------------------------------------------------

    def sys_getpid(self, proc):
        """Section 7 extension (A5): with ``compat_migrated_ids`` on,
        a migrated process keeps seeing its pre-migration pid."""
        if self.costs.compat_migrated_ids and proc.old_pid is not None:
            return proc.old_pid
        return proc.pid

    def sys_getpid_real(self, proc):
        """The proposed companion call that always tells the truth."""
        return proc.pid

    def sys_getppid(self, proc):
        return proc.ppid

    def sys_getuid(self, proc):
        return proc.user.cred.uid

    def sys_geteuid(self, proc):
        return proc.user.cred.euid

    def sys_getgid(self, proc):
        return proc.user.cred.gid

    def sys_getegid(self, proc):
        return proc.user.cred.egid

    def sys_setreuid(self, proc, ruid, euid):
        """Set real/effective uid (-1 leaves a value unchanged).

        restart uses this to "set its real and effective user id to
        that of the old process" before calling rest_proc().
        """
        cred = proc.user.cred
        new_ruid = cred.uid if ruid == -1 else ruid
        new_euid = cred.euid if euid == -1 else euid
        if not cred.is_superuser():
            allowed = {cred.uid, cred.euid}
            if new_ruid not in allowed or new_euid not in allowed:
                raise UnixError(EPERM, "setreuid(%d, %d)" % (ruid, euid))
        cred.uid = new_ruid
        cred.euid = new_euid
        return 0

    # -- signals -----------------------------------------------------------------

    def sys_kill(self, proc, pid, sig):
        """Send a signal.  "For security reasons, only the superuser
        or the owner of the process can kill a process this way."
        """
        target = self.procs.lookup(pid)
        if target is None or target.state == SZOMB:
            raise UnixError(ESRCH, "pid %d" % pid)
        if not proc.user.cred.can_signal(target.user.cred):
            raise UnixError(EPERM, "kill %d" % pid)
        if sig == 0:
            return 0  # existence/permission probe
        if not 0 < sig < NSIG:
            raise UnixError(EINVAL, "signal %d" % sig)
        self.post_signal(target, sig)
        return 0

    def sys_sigvec(self, proc, sig, handler):
        """Install a signal disposition; returns the previous one.

        ``handler`` is SIG_DFL, SIG_IGN, or (for VM processes) the
        text address of a handler routine.
        """
        if not 0 < sig < NSIG:
            raise UnixError(EINVAL, "signal %d" % sig)
        if handler not in (SIG_DFL, SIG_IGN) and not proc.is_vm():
            raise UnixError(EINVAL,
                            "native programs cannot catch signals")
        try:
            return proc.user.sig.set_handler(sig, handler)
        except PermissionError:
            raise UnixError(EINVAL, "signal %s cannot be caught"
                            % signal_name(sig)) from None

    def sys_sigreturn(self, proc):
        """Return from a signal handler (VM processes)."""
        if not proc.is_vm():
            raise UnixError(EINVAL, "sigreturn from native program")
        image = proc.image.image
        image.regs.sr = image.pop_i32()
        image.regs.pc = image.pop_i32() & 0xFFFFFFFF
        return 0

    # -- memory ----------------------------------------------------------------------

    def sys_sbrk(self, proc, increment):
        if not proc.is_vm():
            raise UnixError(EINVAL, "sbrk from native program")
        image = proc.image.image
        old = image.brk
        new = old + increment
        # keep a guard page between the break and the stack
        if new < image.data_base or new > image.regs.sp - 4096:
            raise UnixError(ENOMEM, "sbrk(%d)" % increment)
        if increment > 0:
            image.write_bytes(old, b"\x00" * increment)
            self.charge(self.costs.zero_byte_us * increment)
        image.brk = new
        return old

    # -- sleeping -----------------------------------------------------------------------

    def sys_sleep(self, proc, seconds):
        """Sleep for a number of (virtual) seconds.

        dumpproc "simply sleeps for one second after each
        unsuccessful attempt to open a.outXXXXX".
        """
        if seconds < 0:
            raise UnixError(EINVAL, "sleep(%r)" % seconds)
        channel = ("sleep", proc.pid, self.clock.now_us)
        raise WouldBlock(channel,
                         wake_at_us=self.clock.now_us
                         + seconds * US_PER_SEC)
