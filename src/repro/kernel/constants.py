"""Kernel constants: limits, open flags, seek modes, ioctls, tty flags."""

#: per-process open file limit (the "fixed size" open file table whose
#: every entry the filesXXXXX dump records)
NOFILE = 20

#: maximum length of the cwd name kept in the user structure ("a
#: character string of fixed size was added to this structure")
MAXCWD = 128

#: maximum path length accepted by system calls
MAXPATH = 1024

# -- open(2) flags ------------------------------------------------------
O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_ACCMODE = 3
O_APPEND = 0o10
O_CREAT = 0o1000
O_TRUNC = 0o2000
O_EXCL = 0o4000


def open_mode_readable(flags):
    return (flags & O_ACCMODE) in (O_RDONLY, O_RDWR)


def open_mode_writable(flags):
    return (flags & O_ACCMODE) in (O_WRONLY, O_RDWR)


# -- lseek(2) -----------------------------------------------------------
SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# -- ioctl(2) requests ---------------------------------------------------
TIOCGETP = 0x7408  #: get sgtty parameters
TIOCSETP = 0x7409  #: set sgtty parameters

# -- sgtty mode flags (the "terminal flags" of the filesXXXXX file) -------
TF_ECHO = 0o10  #: echo input characters
TF_RAW = 0o40  #: raw mode: deliver characters as typed, no processing
TF_CBREAK = 0o2  #: cbreak: per-character input, but with processing
TF_CRMOD = 0o20  #: map CR to NL on input, NL to CR-NL on output

#: the modes a freshly opened terminal has
TTY_DEFAULT_FLAGS = TF_ECHO | TF_CRMOD

# -- process states ------------------------------------------------------
SRUN = 1  #: runnable
SSLEEP = 2  #: sleeping on a wait channel
SSTOP = 3  #: stopped by a signal
SZOMB = 4  #: exited, awaiting wait()

STATE_NAMES = {SRUN: "R", SSLEEP: "S", SSTOP: "T", SZOMB: "Z"}

#: where SIGDUMP places its three files
DUMPDIR = "/usr/tmp"

#: magic numbers of the dump files ("arbitrarily set" in the paper)
FILES_MAGIC = 0o445
STACK_MAGIC = 0o444
#: incremental-dump variants (DESIGN.md section 10): the stack file
#: carries a chunk manifest instead of the raw stack bytes, and chunk
#: manifests themselves open with their own magic
STACK_CHUNK_MAGIC = 0o443
CHUNK_MAGIC = 0o446
#: the loadd LOADREPORT wire format (DESIGN.md section 11)
LOADREPORT_MAGIC = 0o447
#: the migration intent-ledger record format (DESIGN.md section 12)
MIGLEDGER_MAGIC = 0o450
#: the statd STATREPORT telemetry wire format (DESIGN.md section 13)
STATREPORT_MAGIC = 0o451
