"""The per-process ``user`` structure (u-area).

"One of the most important structures in the kernel ... contains all
the swappable information about the process that is currently being
executed."  The paper adds one field to it: a **fixed-size character
string holding the full path name of the current directory**, kept up
to date by ``chdir()``.  That field (:attr:`User.cwd_name`) is what
lets ``SIGDUMP`` write the cwd into the ``filesXXXXX`` file without
any inode-to-name reverse mapping.
"""

from repro.errors import UnixError, ENAMETOOLONG, EBADF
from repro.kernel.constants import NOFILE, MAXCWD
from repro.kernel.cred import Credentials
from repro.kernel.signals import SigState


class User:
    """The u-area of one process."""

    def __init__(self, cred=None):
        self.cred = cred or Credentials()
        #: current directory as an inode reference: (FileSystem, Inode)
        self.cdir = None
        #: the paper's new field; "" means not yet initialised (it is
        #: initialised by the first chdir() with an absolute path,
        #: which happens early in the boot procedure)
        self.cwd_name = ""
        #: per-process open file table: fd -> File (or None)
        self.ofile = [None] * NOFILE
        self.sig = SigState()
        #: controlling terminal (a Terminal, or an rsh NetStdio, or None)
        self.tty = None

    # -- cwd name maintenance (the chdir() modification) --------------------

    def set_cwd_name(self, name):
        if len(name) >= MAXCWD:
            raise UnixError(ENAMETOOLONG, name)
        self.cwd_name = name

    # -- descriptor helpers ----------------------------------------------------

    def fd_lookup(self, fd):
        """Return the File for ``fd`` or raise EBADF."""
        if not 0 <= fd < NOFILE or self.ofile[fd] is None:
            raise UnixError(EBADF, "fd %d" % fd)
        return self.ofile[fd]

    def fd_alloc(self, entry, lowest_from=0):
        """Install ``entry`` at the lowest free slot >= ``lowest_from``."""
        for fd in range(lowest_from, NOFILE):
            if self.ofile[fd] is None:
                self.ofile[fd] = entry
                return fd
        from repro.errors import EMFILE
        raise UnixError(EMFILE)

    def open_fds(self):
        return [fd for fd in range(NOFILE) if self.ofile[fd] is not None]

    def copy_for_fork(self, filetable):
        """Duplicate the u-area for a child; file refs are shared."""
        child = User(self.cred.copy())
        child.cdir = self.cdir
        child.cwd_name = self.cwd_name
        child.sig = self.sig.copy()
        child.tty = self.tty
        for fd, entry in enumerate(self.ofile):
            if entry is not None:
                entry.refcount += 1
                child.ofile[fd] = entry
        return child
