"""``execve()`` — including the paper's migration-flag modification.

"The execve() system call has been slightly modified, to check a
global flag which, if set, indicates that it is called from within
rest_proc().  In that case, instead of calculating how much initial
stack to allocate for the process, based on the command line arguments
and the environment, it simply allocates as many bytes as are
indicated in another global variable."

Two binary formats are understood:

* real ``a.out`` executables (VM programs, and ``a.outXXXXX`` dumps);
* native system programs: a file beginning ``#!native <name>`` whose
  implementation is a registered Python generator.  These stand in for
  compiled user-level tools (dumpproc, restart, rsh, ...).

Exec does **not** check the a.out machine id against the CPU — real
4.2BSD loaders didn't either — so running a Sun-3 binary on a Sun-2
succeeds at exec time and dies with SIGILL at the first 68020-only
instruction, exactly the crash mode of the paper's section 7.
"""

from repro.errors import UnixError, EACCES, ENOEXEC, ENOMEM, E2BIG
from repro.fs.paths import basename
from repro.kernel.flow import ProcessOverlaid
from repro.kernel.proc import NativeState, VMImageState
from repro.vm.aout import parse_aout, AOutHeader, AOUT_FLAG_CHUNKED
from repro.vm.image import ProcessImage, DEFAULT_MEM_SIZE

NATIVE_MAGIC = b"#!native "

#: stack space reserved for the argument/environment block
ARG_MAX = 8192


class ExecSupport:
    """Mixin: program loading (self is the Kernel)."""

    def sys_execve(self, proc, path, argv, envp=None):
        """Overlay ``proc`` with the program at ``path``.

        ``argv`` is a list of strings; ``envp`` a list of ``"K=V"``
        strings or None.  On success raises :class:`ProcessOverlaid`
        (there is no return to the old image); on failure raises
        :class:`~repro.errors.UnixError` and the caller continues.
        """
        real0 = self.clock.now_us
        cpu0 = proc.cpu_us()

        resolved = self.namei(proc, path)
        inode = resolved.inode
        if not inode.is_reg():
            raise UnixError(EACCES, path)
        if not inode.check_access(proc.user.cred, want_exec=True):
            raise UnixError(EACCES, path)
        site = "fs.read" if self.fs_is_local(resolved.fs) else "nfs.read"
        self.fault_check(site, path)
        data = bytes(inode.data)
        data = self.fault_filter(site, data, path)
        self.io_charge(resolved.fs, max(1, len(data)))

        if data.startswith(NATIVE_MAGIC):
            self._exec_native(proc, path, data, argv, envp)
        else:
            self._exec_aout(proc, path, data, argv, envp)

        self.charge(self.costs.exec_base_us)
        self.record_timing("execve", self.clock.now_us - real0,
                           proc.cpu_us() - cpu0)
        raise ProcessOverlaid()

    # -- native programs ----------------------------------------------------

    def _exec_native(self, proc, path, data, argv, envp):
        name = data[len(NATIVE_MAGIC):].split(b"\n", 1)[0] \
            .decode("latin-1").strip()
        factory = self.machine.programs.get(name)
        if factory is None:
            raise UnixError(ENOEXEC, "unregistered native program %r"
                            % name)
        env = {}
        for item in envp or []:
            key, __, value = item.partition("=")
            env[key] = value
        proc.image = NativeState(name, factory,
                                 list(argv) if argv else [name], env)
        proc.command = name
        proc.user.sig.exec_reset()

    # -- a.out programs ------------------------------------------------------

    def _exec_aout(self, proc, path, data, argv, envp):
        if AOutHeader.unpack(data).flags & AOUT_FLAG_CHUNKED:
            # an incremental dump: segments live in the chunk store
            return self._exec_chunked_aout(proc, path, data, argv, envp)
        header, text, segment = parse_aout(data)
        image = ProcessImage(DEFAULT_MEM_SIZE)
        total = (image.text_base + header.text_size + header.data_size
                 + header.bss_size)
        if total + ARG_MAX >= image.mem_size:
            raise UnixError(ENOMEM, "program too large")

        image.text_size = header.text_size
        image.data_size = header.data_size
        image.bss_size = header.bss_size
        image.machine_id = header.machine_id
        image.entry = header.entry
        image.write_bytes(image.text_base, text)
        image.write_bytes(image.data_base, segment)
        self.charge(self.costs.copy_byte_us * (len(text) + len(segment)))
        if header.bss_size:
            self.charge(self.costs.zero_byte_us * header.bss_size)
        image.brk = image.data_base + header.data_size + header.bss_size

        self._finish_exec_image(proc, path, image, header, argv, envp)

    def _exec_chunked_aout(self, proc, path, data, argv, envp):
        """Load an incremental (manifest-bearing) a.outXXXXX.

        Text restores eagerly — the process resumes executing it
        immediately, and sharing it through the store is what dedupes
        migrations of processes running the same binary.  The data
        segment restores eagerly too unless ``lazy_restart`` is on,
        in which case its chunks stay pending and fault in on first
        touch, charged at access time instead of here.
        """
        from repro.core.formats import unpack_chunked_aout
        from repro.kernel.dump import _baseline_entry, lazy_records
        header, text_man, data_man = unpack_chunked_aout(data)
        image = ProcessImage(DEFAULT_MEM_SIZE)
        total = (image.text_base + header.text_size + header.data_size
                 + header.bss_size)
        if total + ARG_MAX >= image.mem_size:
            raise UnixError(ENOMEM, "program too large")

        image.text_size = header.text_size
        image.data_size = header.data_size
        image.bss_size = header.bss_size
        image.machine_id = header.machine_id
        image.entry = header.entry
        text = self.fetch_manifest(text_man)
        image.write_bytes(image.text_base, text)
        self.charge(self.costs.copy_byte_us * len(text))
        if self.costs.lazy_restart:
            image.add_lazy_chunks(
                lazy_records(data_man, image.data_base),
                fetch=self.chunk_lazy_fetch)
        else:
            segment = self.fetch_manifest(data_man)
            image.write_bytes(image.data_base, segment)
            self.charge(self.costs.copy_byte_us * len(segment))
        if header.bss_size:
            self.charge(self.costs.zero_byte_us * header.bss_size)
        image.brk = image.data_base + header.data_size + header.bss_size
        # the manifests double as the image's re-dump baseline; every
        # page is clean until the process runs (rest_proc re-clears
        # after it fills the stack in)
        image.chunk_baseline = {
            "text": _baseline_entry(image.text_base, text_man),
            "data": _baseline_entry(image.data_base, data_man),
        }
        self._finish_exec_image(proc, path, image, header, argv, envp)
        image.clear_dirty()

    def _finish_exec_image(self, proc, path, image, header, argv, envp):
        if self.migrating:
            # the modification: allocate exactly the dumped stack size;
            # rest_proc() fills the contents in afterwards
            size = self.migrate_stack_size
            if image.stack_top - size <= image.brk:
                raise UnixError(ENOMEM, "restored stack too large")
            image.regs.clear()
            image.regs.sp = image.stack_top - size
        else:
            image.regs.clear()
            self._build_arg_block(image, argv or [path], envp or [])
        image.regs.pc = header.entry
        # exec is a whole-image transition: no stale predecoded
        # instructions may survive into the new program
        image.invalidate_decode_cache()
        # ... but the new program's text may already be compiled in the
        # shared content-keyed code cache (a re-exec, or a binary a
        # peer already ran before a migration) — account the arrival
        # now so warm-vs-cold lands in telemetry at exec time
        if image._lazy is None:
            self.machine.cpu.warm_code_cache(image)

        proc.image = VMImageState(image)
        proc.command = basename(path)
        proc.user.sig.exec_reset()

    @staticmethod
    def _build_arg_block(image, argv, envp):
        """Lay out args and environment at the top of the stack.

        Layout (top down): the string bytes, then the envp pointer
        array (NULL terminated), the argv pointer array (NULL
        terminated), and finally argc at the stack pointer.  Because
        the whole block lives *in the stack*, it is captured by the
        stack dump and "automatically restored when the stack is read
        in" — which is how the environment survives migration.
        """
        pos = image.stack_top
        addresses = {}
        for text in list(argv) + list(envp):
            blob = text.encode("latin-1") + b"\x00"
            pos -= len(blob)
            if image.stack_top - pos > ARG_MAX:
                raise UnixError(E2BIG)
            image.write_bytes(pos, blob)
            addresses[id(text)] = pos
        pos &= ~3  # align

        words = []
        words.append(len(argv))
        words.extend(addresses[id(a)] for a in argv)
        words.append(0)
        words.extend(addresses[id(e)] for e in envp)
        words.append(0)
        pos -= 4 * len(words)
        sp = pos
        for word in words:
            image.write_i32(pos, word)
            pos += 4
        image.regs.sp = sp
