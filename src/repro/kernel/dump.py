"""The ``SIGDUMP`` dump writer (and the ``SIGQUIT`` core writer).

"Implementing the SIGDUMP signal is simply a matter of dumping the
appropriate data from the kernel structures onto disk.  The code is
similar to that of ... SIGQUIT, which causes a process to terminate
dumping a subset of the information we dump for our new signal."

The dump runs in the context of the process being dumped — it is the
*victim* that spends the CPU and I/O time writing the three files,
which is why ``dumpproc`` must wait (sleeping a second at a time) for
``a.outXXXXX`` to appear: "it has to wait until the kernel switches
its context to that of the process being dumped".
"""

from repro.errors import UnixError, EIO
from repro.fs.paths import joinpath
from repro.kernel.constants import DUMPDIR, NOFILE
from repro.kernel.filetable import FPIPE, FSOCKET
from repro.vm.aout import build_aout
from repro.vm.image import PAGE_BYTES, PAGE_SHIFT


def _baseline_entry(base, manifest):
    """The ``chunk_baseline`` record a manifest leaves on an image."""
    return {"base": base, "length": manifest.length,
            "chunk_bytes": manifest.chunk_bytes,
            "digests": manifest.digests}


def lazy_records(manifest, base):
    """``(start, size, digest)`` triples for copy-on-reference fill."""
    return [(base + i * manifest.chunk_bytes, manifest.chunk_size(i),
             digest) for i, digest in enumerate(manifest.digests)]


class DumpSupport:
    """Mixin: process dumping (self is the Kernel)."""

    def dump_process(self, proc):
        """Write the three restart files for ``proc``.

        Returns True on success.  Native system programs have no
        machine image to dump; for them the signal degenerates to a
        plain terminate (and dumpproc will time out waiting for the
        a.out file), which is logged.
        """
        from repro.core.formats import dump_file_names
        # sys_dump_ledger arms exactly one dump: consume the arming up
        # front, success or failure, so a later plain dump of a
        # surviving process can never re-archive into a stale
        # (possibly already reaped) record directory
        recdir = getattr(proc, "ledger_dir", None)
        proc.ledger_dir = None
        if not proc.is_vm():
            self.log("SIGDUMP: pid %d (%s) is not dumpable"
                     % (proc.pid, proc.command))
            return False
        image = proc.image.image
        aout_path, files_path, stack_path = dump_file_names(proc.pid)
        # a migration is keyed by where the dump was taken
        mig = "%s:%d" % (self.hostname, proc.pid)
        self.tracer.span_begin("dump", "dump", mig, self.machine,
                               pid=proc.pid)

        incremental = self.costs.incremental_dumps
        text_man = data_man = stack_man = None
        written = []
        try:
            if incremental:
                aout_blob, text_man, data_man = \
                    self._build_chunked_aout(proc, image)
            else:
                aout_blob = self._build_aout_dump(image)
            files_blob = self._build_files_info(proc).pack()
            if incremental:
                stack_info, stack_man = \
                    self._build_chunked_stack_info(proc)
                stack_blob = stack_info.pack()
            else:
                stack_blob = self._build_stack_info(proc).pack()
            # formatting kernel structures into each file costs CPU
            self.charge(3 * self.costs.dump_pack_us, proc=proc)
            inodes = {}
            for site, path, blob, mode in (
                    ("dump.write.aout", aout_path, aout_blob, 0o700),
                    ("dump.write.files", files_path, files_blob, 0o600),
                    ("dump.write.stack", stack_path, stack_blob, 0o600)):
                self.fault_check(site, path)
                blob = self.fault_filter(site, blob, path)
                inodes[path] = self.kwrite_file(proc, path, blob,
                                                mode=mode)
                written.append(path)
            self._verify_dump(inodes[aout_path], inodes[files_path],
                              inodes[stack_path])
            if recdir:
                # a ledgered dump (dumpproc -L) is also archived
                # through the chunk store, inside the same
                # all-or-nothing window: no archive, no dump
                self._archive_dump(proc, recdir,
                                   (aout_blob, files_blob, stack_blob))
        except UnixError as err:
            # all-or-nothing: a partial dump is worse than none
            for path in written:
                self._kunlink_quiet(proc, path)
            self.log("SIGDUMP: dump of pid %d failed: %s"
                     % (proc.pid, err))
            self.tracer.span_end("dump", "dump", mig, self.machine,
                                 ok=False, pid=proc.pid)
            return False
        if incremental:
            # the dump is the image's new baseline: a further re-dump
            # only pays for pages dirtied from here on
            image.chunk_baseline = {
                "text": _baseline_entry(image.text_base, text_man),
                "data": _baseline_entry(image.data_base, data_man),
                "stack": _baseline_entry(image.regs.sp, stack_man),
            }
            image.clear_dirty()
        proc.dumped = True
        self.machine.cluster.perf.metrics.inc("dumps",
                                              host=self.hostname)
        self.tracer.span_end("dump", "dump", mig, self.machine,
                             ok=True, pid=proc.pid)
        self.log("SIGDUMP: pid %d dumped to %s/{a.out,files,stack}%d"
                 % (proc.pid, DUMPDIR, proc.pid))
        return True

    def _verify_dump(self, aout_inode, files_inode, stack_inode):
        """Read back the three just-written inodes and parse them.

        Catches write-path corruption while the victim still exists,
        so the dump can fail (and the victim survive) rather than
        shipping a dump nobody can restart.  The blocks just written
        are still in the buffer cache, so the inspection is pure
        in-memory work — it charges nothing, keeping the calibrated
        SIGDUMP timings (Figure 2) untouched.  Parsing goes through
        ``memoryview``s of the inode data: the check never duplicates
        the (potentially segment-sized) file contents, it only copies
        the small typed fields it actually inspects.
        """
        from repro.core.formats import (FilesInfo, StackInfo,
                                        unpack_chunked_aout)
        from repro.vm.aout import (AOutHeader, AOUT_FLAG_CHUNKED,
                                   HEADER_SIZE)
        from repro.errors import ENOEXEC
        views = [memoryview(aout_inode.data),
                 memoryview(files_inode.data),
                 memoryview(stack_inode.data)]
        try:
            aout_view, files_view, stack_view = views
            header = AOutHeader.unpack(aout_view)
            if header.flags & AOUT_FLAG_CHUNKED:
                # validates both manifests against the header sizes
                unpack_chunked_aout(aout_view)
            else:
                need = (HEADER_SIZE + header.text_size
                        + header.data_size)
                if len(aout_view) < need:
                    raise UnixError(ENOEXEC, "truncated a.out: %d < %d"
                                    % (len(aout_view), need))
            FilesInfo.unpack(files_view)
            StackInfo.unpack(stack_view)
        finally:
            # exported views of a bytearray block later resizes (e.g.
            # a truncating rewrite of the same dump file) — drop them
            # deterministically, not when the GC gets around to it
            for view in views:
                view.release()

    def _archive_dump(self, proc, recdir, blobs):
        """Archive the three dump blobs into a ledger record directory.

        Each blob is chunked into the cluster chunk store (which
        survives host crashes *and* reboots) and described by a
        :class:`~repro.core.formats.ChunkManifest` file in ``recdir``
        on the file server; the ``dump.ok`` commit marker is written
        strictly last, so a record directory either holds a complete,
        restorable archive or no usable one at all.  Any failure
        unlinks the partial archive and propagates — the surrounding
        all-or-nothing dump then fails too and the victim survives.
        """
        from repro.core.formats import ChunkManifest, ledger_archive_names
        store = self.machine.cluster.chunk_store
        chunk_bytes = max(1, int(self.costs.dump_chunk_bytes))
        written = []
        try:
            self._archive_record_check(proc, recdir)
            for path, blob in zip(ledger_archive_names(recdir), blobs):
                digests = []
                for start in range(0, len(blob), chunk_bytes):
                    chunk = blob[start:start + chunk_bytes]
                    digest = store.digest(self, chunk)
                    store.put(self, digest, chunk)
                    digests.append(digest)
                manifest = ChunkManifest(chunk_bytes, len(blob), digests)
                self.fault_check("ledger.archive", path)
                self.charge(self.costs.dump_pack_us, proc=proc)
                self.kwrite_file(proc, path, manifest.pack(), mode=0o644)
                written.append(path)
            # the commit marker ("dump.ok", matching migledger.OK_NAME
            # — the kernel cannot import repro.net) goes last, and
            # only if nobody reaped the record while we archived
            self._archive_record_check(proc, recdir)
            ok_path = "%s/dump.ok" % recdir
            self.fault_check("ledger.archive", ok_path)
            self.kwrite_file(proc, ok_path, b"ok\n", mode=0o644)
        except UnixError:
            for path in written:
                self._kunlink_quiet(proc, path)
            raise
        self.machine.cluster.perf.ml_archives += 1
        if self.tracer.enabled:
            self.tracer.emit("dump", "archive", self.machine,
                             pid=proc.pid)

    def _archive_record_check(self, proc, recdir):
        """An archive is only meaningful under a live ledger record.

        A recovery sweep that aborted the intent has reaped the
        record directory; committing an archive into it afterwards
        would leak the manifests with nobody left to restart the
        job.  Checked before the first manifest and again before the
        ``dump.ok`` commit marker — failing here fails the whole
        all-or-nothing dump, so the victim survives at home instead.
        ("rec" matches migledger.REC_NAME — the kernel cannot import
        repro.net.)
        """
        from repro.errors import ENOENT
        try:
            self.namei(proc, "%s/rec" % recdir)
        except UnixError:
            raise UnixError(ENOENT,
                            "ledger record gone: %s" % recdir)

    def _kunlink_quiet(self, proc, path):
        """Best-effort unlink during failure cleanup."""
        try:
            self.sys_unlink(proc, path)
        except UnixError:
            pass

    def _build_aout_dump(self, image):
        """An executable from the live text and data segments.

        The result "can be executed as an ordinary program ... similar
        to running the original program from the beginning, except
        that all static variables will be initialised to the values
        that they had when the process was killed" — the free undump
        utility.  The entry point is therefore the *original* one.
        """
        text = image.text_bytes()
        data = image.data_bytes()
        self.charge(self.costs.copy_byte_us * (len(text) + len(data)))
        return build_aout(image.machine_id, text, data, bss_size=0,
                          entry=image.entry,
                          text_base=image.text_base)

    def _build_files_info(self, proc):
        from repro.core.formats import (FdEntry, FilesInfo, FD_FILE,
                                        FD_SOCKET, FD_SOCKET_BOUND,
                                        FD_UNUSED)
        entries = []
        for fd in range(NOFILE):
            open_file = proc.user.ofile[fd]
            if open_file is None:
                entries.append(FdEntry(FD_UNUSED))
            elif open_file.ftype in (FSOCKET, FPIPE):
                sock = open_file.socket
                if (self.costs.migrate_listening_sockets
                        and sock is not None
                        and sock.bound_port is not None):
                    # section 9 extension: a service endpoint can be
                    # re-established on the destination
                    entries.append(FdEntry(
                        FD_SOCKET_BOUND, port=sock.bound_port,
                        listening=sock.listening))
                else:
                    # "no extra information is kept in the case of a
                    # socket"
                    entries.append(FdEntry(FD_SOCKET))
            else:
                entries.append(FdEntry(FD_FILE,
                                       path=open_file.name or "",
                                       flags=open_file.flags,
                                       offset=open_file.offset))
        tty = proc.user.tty
        tty_flags = tty.get_flags() if tty is not None \
            and hasattr(tty, "get_flags") else 0
        return FilesInfo(hostname=self.hostname,
                         cwd=proc.user.cwd_name or "/",
                         entries=entries, tty_flags=tty_flags)

    def _build_stack_info(self, proc):
        from repro.core.formats import StackInfo
        image = proc.image.image
        stack = image.stack_bytes()
        self.charge(self.costs.copy_byte_us * len(stack))
        return StackInfo(cred=proc.user.cred.copy(), stack=stack,
                         registers=image.regs.copy(),
                         sigstate=proc.user.sig.copy())

    # -- incremental (content-addressed) dumps ---------------------------

    def _chunk_region(self, proc, image, region, base, length):
        """Chunk one memory region into the store; returns a manifest.

        When the image carries a matching baseline (it was restored
        from a chunked dump, or dumped once already), chunks whose
        pages are all clean reuse the baseline digest without being
        read, copied, digested or stored — that skip is the entire
        saving of an incremental re-dump.  It also never materialises
        chunks still pending copy-on-reference fill: an untouched
        lazy chunk is clean by definition and its digest is already
        in the manifest the restore came from.
        """
        from repro.core.formats import ChunkManifest
        store = self.machine.cluster.chunk_store
        costs = self.costs
        chunk_bytes = max(PAGE_BYTES,
                          (int(costs.dump_chunk_bytes) // PAGE_BYTES)
                          * PAGE_BYTES)
        perf = self.machine.cluster.perf
        baseline = (image.chunk_baseline or {}).get(region)
        reuse = (baseline is not None
                 and baseline["base"] == base
                 and baseline["length"] == length
                 and baseline["chunk_bytes"] == chunk_bytes)
        dirty = image.dirty_pages
        digests = []
        for index in range(-(-length // chunk_bytes)):
            start = index * chunk_bytes
            size = min(chunk_bytes, length - start)
            if reuse:
                first = (base + start) >> PAGE_SHIFT
                last = (base + start + size - 1) >> PAGE_SHIFT
                if not any(dirty[first:last + 1]):
                    digests.append(baseline["digests"][index])
                    perf.chunks_clean_skipped += 1
                    continue
            chunk = image.read_bytes(base + start, size)
            self.charge(costs.copy_byte_us * size, proc=proc)
            digest = store.digest(self, chunk)
            store.put(self, digest, chunk)
            digests.append(digest)
        return ChunkManifest(chunk_bytes, length, digests)

    def _build_chunked_aout(self, proc, image):
        """The manifest-bearing a.outXXXXX of an incremental dump."""
        from repro.core.formats import pack_chunked_aout
        from repro.vm.aout import AOutHeader
        text_man = self._chunk_region(proc, image, "text",
                                      image.text_base, image.text_size)
        data_len = max(image.data_size + image.bss_size,
                       image.brk - image.data_base)
        data_man = self._chunk_region(proc, image, "data",
                                      image.data_base, data_len)
        header = AOutHeader(image.machine_id, text_man.length,
                            data_man.length, 0, image.entry)
        return pack_chunked_aout(header, text_man, data_man), \
            text_man, data_man

    def _build_chunked_stack_info(self, proc):
        from repro.core.formats import StackInfo
        image = proc.image.image
        stack_man = self._chunk_region(proc, image, "stack",
                                       image.regs.sp, image.stack_size)
        info = StackInfo(cred=proc.user.cred.copy(),
                         stack_manifest=stack_man,
                         registers=image.regs.copy(),
                         sigstate=proc.user.sig.copy())
        return info, stack_man

    # -- restore-side chunk plumbing (exec and rest_proc) ----------------

    def fetch_manifest(self, manifest):
        """Fetch and assemble a manifest's chunks (eager restore)."""
        parts = []
        store = self.machine.cluster.chunk_store
        for index, digest in enumerate(manifest.digests):
            blob = store.get(self, digest)
            if len(blob) != manifest.chunk_size(index):
                raise UnixError(EIO, "chunk size does not match "
                                "its manifest")
            parts.append(blob)
        return b"".join(parts)

    def chunk_lazy_fetch(self, digest, size):
        """Copy-on-reference fetch of one chunk at first touch.

        Installed as the image's lazy-fetch hook; charges the I/O to
        whoever is touching the memory, which by construction is the
        restored process itself (its own stores, loads and syscall
        copyin/copyout are the only paths into its image).
        """
        perf = self.machine.cluster.perf
        perf.lazy_faults += 1
        blob = self.machine.cluster.chunk_store.get(self, digest)
        if len(blob) != size:
            raise UnixError(EIO, "chunk size does not match its manifest")
        if self.tracer.enabled:
            self.tracer.emit("chunk", "fault", self.machine,
                             digest=digest.hex(), bytes=size)
        return blob

    # -- SIGQUIT-style core dumps (the baseline of Figure 2) --------------------

    #: stand-in for the u-area pages at the front of a 4.2BSD core
    CORE_HEADER_SIZE = 1024

    def write_core(self, proc):
        """Write a classic ``core`` file in the current directory."""
        if not proc.is_vm():
            return False
        image = proc.image.image
        data = image.data_bytes()
        stack = image.stack_bytes()
        blob = (b"\x00" * self.CORE_HEADER_SIZE) + data + stack
        self.charge(self.costs.copy_byte_us * len(blob))
        core_path = joinpath(proc.user.cwd_name or "/", "core")
        try:
            self.kwrite_file(proc, core_path, blob, mode=0o600)
        except UnixError as err:
            self.log("core dump of pid %d failed: %s" % (proc.pid, err))
            return False
        self.log("pid %d dumped core (%d bytes)" % (proc.pid, len(blob)))
        return True
