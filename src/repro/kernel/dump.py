"""The ``SIGDUMP`` dump writer (and the ``SIGQUIT`` core writer).

"Implementing the SIGDUMP signal is simply a matter of dumping the
appropriate data from the kernel structures onto disk.  The code is
similar to that of ... SIGQUIT, which causes a process to terminate
dumping a subset of the information we dump for our new signal."

The dump runs in the context of the process being dumped — it is the
*victim* that spends the CPU and I/O time writing the three files,
which is why ``dumpproc`` must wait (sleeping a second at a time) for
``a.outXXXXX`` to appear: "it has to wait until the kernel switches
its context to that of the process being dumped".
"""

from repro.errors import UnixError
from repro.fs.paths import joinpath
from repro.kernel.constants import DUMPDIR, NOFILE
from repro.kernel.filetable import FPIPE, FSOCKET
from repro.vm.aout import build_aout


class DumpSupport:
    """Mixin: process dumping (self is the Kernel)."""

    def dump_process(self, proc):
        """Write the three restart files for ``proc``.

        Returns True on success.  Native system programs have no
        machine image to dump; for them the signal degenerates to a
        plain terminate (and dumpproc will time out waiting for the
        a.out file), which is logged.
        """
        from repro.core.formats import dump_file_names
        if not proc.is_vm():
            self.log("SIGDUMP: pid %d (%s) is not dumpable"
                     % (proc.pid, proc.command))
            return False
        image = proc.image.image
        aout_path, files_path, stack_path = dump_file_names(proc.pid)
        # a migration is keyed by where the dump was taken
        mig = "%s:%d" % (self.hostname, proc.pid)
        self.tracer.span_begin("dump", "dump", mig, self.machine,
                               pid=proc.pid)

        written = []
        try:
            aout_blob = self._build_aout_dump(image)
            files_blob = self._build_files_info(proc).pack()
            stack_blob = self._build_stack_info(proc).pack()
            # formatting kernel structures into each file costs CPU
            self.charge(3 * self.costs.dump_pack_us, proc=proc)
            inodes = {}
            for site, path, blob, mode in (
                    ("dump.write.aout", aout_path, aout_blob, 0o700),
                    ("dump.write.files", files_path, files_blob, 0o600),
                    ("dump.write.stack", stack_path, stack_blob, 0o600)):
                self.fault_check(site, path)
                blob = self.fault_filter(site, blob, path)
                inodes[path] = self.kwrite_file(proc, path, blob,
                                                mode=mode)
                written.append(path)
            self._verify_dump(inodes[aout_path], inodes[files_path],
                              inodes[stack_path])
        except UnixError as err:
            # all-or-nothing: a partial dump is worse than none
            for path in written:
                self._kunlink_quiet(proc, path)
            self.log("SIGDUMP: dump of pid %d failed: %s"
                     % (proc.pid, err))
            self.tracer.span_end("dump", "dump", mig, self.machine,
                                 ok=False, pid=proc.pid)
            return False
        proc.dumped = True
        self.machine.cluster.perf.metrics.inc("dumps",
                                              host=self.hostname)
        self.tracer.span_end("dump", "dump", mig, self.machine,
                             ok=True, pid=proc.pid)
        self.log("SIGDUMP: pid %d dumped to %s/{a.out,files,stack}%d"
                 % (proc.pid, DUMPDIR, proc.pid))
        return True

    def _verify_dump(self, aout_inode, files_inode, stack_inode):
        """Read back the three just-written inodes and parse them.

        Catches write-path corruption while the victim still exists,
        so the dump can fail (and the victim survive) rather than
        shipping a dump nobody can restart.  The blocks just written
        are still in the buffer cache, so the inspection is pure
        in-memory work — it charges nothing, keeping the calibrated
        SIGDUMP timings (Figure 2) untouched.
        """
        from repro.core.formats import FilesInfo, StackInfo
        from repro.vm.aout import parse_aout
        parse_aout(bytes(aout_inode.data))
        FilesInfo.unpack(bytes(files_inode.data))
        StackInfo.unpack(bytes(stack_inode.data))

    def _kunlink_quiet(self, proc, path):
        """Best-effort unlink during failure cleanup."""
        try:
            self.sys_unlink(proc, path)
        except UnixError:
            pass

    def _build_aout_dump(self, image):
        """An executable from the live text and data segments.

        The result "can be executed as an ordinary program ... similar
        to running the original program from the beginning, except
        that all static variables will be initialised to the values
        that they had when the process was killed" — the free undump
        utility.  The entry point is therefore the *original* one.
        """
        text = image.text_bytes()
        data = image.data_bytes()
        self.charge(self.costs.copy_byte_us * (len(text) + len(data)))
        return build_aout(image.machine_id, text, data, bss_size=0,
                          entry=image.entry,
                          text_base=image.text_base)

    def _build_files_info(self, proc):
        from repro.core.formats import (FdEntry, FilesInfo, FD_FILE,
                                        FD_SOCKET, FD_SOCKET_BOUND,
                                        FD_UNUSED)
        entries = []
        for fd in range(NOFILE):
            open_file = proc.user.ofile[fd]
            if open_file is None:
                entries.append(FdEntry(FD_UNUSED))
            elif open_file.ftype in (FSOCKET, FPIPE):
                sock = open_file.socket
                if (self.costs.migrate_listening_sockets
                        and sock is not None
                        and sock.bound_port is not None):
                    # section 9 extension: a service endpoint can be
                    # re-established on the destination
                    entries.append(FdEntry(
                        FD_SOCKET_BOUND, port=sock.bound_port,
                        listening=sock.listening))
                else:
                    # "no extra information is kept in the case of a
                    # socket"
                    entries.append(FdEntry(FD_SOCKET))
            else:
                entries.append(FdEntry(FD_FILE,
                                       path=open_file.name or "",
                                       flags=open_file.flags,
                                       offset=open_file.offset))
        tty = proc.user.tty
        tty_flags = tty.get_flags() if tty is not None \
            and hasattr(tty, "get_flags") else 0
        return FilesInfo(hostname=self.hostname,
                         cwd=proc.user.cwd_name or "/",
                         entries=entries, tty_flags=tty_flags)

    def _build_stack_info(self, proc):
        from repro.core.formats import StackInfo
        image = proc.image.image
        stack = image.stack_bytes()
        self.charge(self.costs.copy_byte_us * len(stack))
        return StackInfo(cred=proc.user.cred.copy(), stack=stack,
                         registers=image.regs.copy(),
                         sigstate=proc.user.sig.copy())

    # -- SIGQUIT-style core dumps (the baseline of Figure 2) --------------------

    #: stand-in for the u-area pages at the front of a 4.2BSD core
    CORE_HEADER_SIZE = 1024

    def write_core(self, proc):
        """Write a classic ``core`` file in the current directory."""
        if not proc.is_vm():
            return False
        image = proc.image.image
        data = image.data_bytes()
        stack = image.stack_bytes()
        blob = (b"\x00" * self.CORE_HEADER_SIZE) + data + stack
        self.charge(self.costs.copy_byte_us * len(blob))
        core_path = joinpath(proc.user.cwd_name or "/", "core")
        try:
            self.kwrite_file(proc, core_path, blob, mode=0o600)
        except UnixError as err:
            self.log("core dump of pid %d failed: %s" % (proc.pid, err))
            return False
        self.log("pid %d dumped core (%d bytes)" % (proc.pid, len(blob)))
        return True
