"""Kernel control-flow exceptions and trivial devices.

Shared by every syscall module; see :mod:`repro.kernel.kernel` for the
full story of how :class:`WouldBlock` and :class:`ProcessOverlaid`
thread through dispatch.
"""


class WouldBlock(Exception):
    """A syscall must sleep; it is retried in full after wakeup."""

    def __init__(self, channel, wake_at_us=None):
        super().__init__("would block on %r" % (channel,))
        self.channel = channel
        self.wake_at_us = wake_at_us


class ProcessOverlaid(Exception):
    """exec/rest_proc succeeded; the calling image is gone."""


class HostCrashed(Exception):
    """The machine executing the current syscall just crashed.

    Deliberately *not* a :class:`~repro.errors.UnixError`: no process
    survives to see an errno.  It unwinds through the scheduler (whose
    handlers only catch UnixError/WouldBlock/ProcessOverlaid) up to
    :meth:`Machine.step`, which absorbs it — the machine is dead and
    simply stops being schedulable.
    """

    def __init__(self, hostname):
        super().__init__("host %s crashed" % hostname)
        self.hostname = hostname


class NullDevice:
    """``/dev/null``: reads see EOF, writes vanish."""

    @staticmethod
    def read(nbytes):
        return b""

    @staticmethod
    def write(data):
        return len(data)

    @staticmethod
    def isatty():
        return False


NULL_DEVICE = NullDevice()
