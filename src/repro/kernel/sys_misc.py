"""Identity, time, spawn and introspection system calls."""

from repro.errors import UnixError, EINVAL, ESRCH
from repro.kernel.constants import STATE_NAMES


class MiscSyscalls:
    """Mixin: miscellaneous system calls (self is the Kernel)."""

    def sys_gethostname(self, proc):
        """Section 7 extension (A5): under ``compat_migrated_ids`` a
        migrated process keeps seeing the host it started on."""
        if self.costs.compat_migrated_ids and proc.old_host is not None:
            return proc.old_host
        return self.hostname

    def sys_gethostname_real(self, proc):
        return self.hostname

    def sys_set_oldids(self, proc, old_pid, old_host):
        """Record pre-migration identity in the user structure.

        Part of the section 7 proposal: restart calls this before
        rest_proc() when the kernel's compatibility option is on, so
        getpid()/gethostname() can keep lying helpfully.
        """
        proc.old_pid = old_pid
        proc.old_host = old_host
        return 0

    def sys_time(self, proc):
        """Seconds since boot (the simulation epoch)."""
        return int(self.clock.seconds())

    def sys_spawn(self, proc, path, argv, stdio_fd=None, detach=False):
        """Create a child running ``path`` (fork+exec in one step).

        Native-program convenience: Python generators cannot be
        fork()ed, so the tooling uses spawn().  The child inherits
        credentials, cwd, terminal and open files, like fork().

        ``stdio_fd`` rewires the child's descriptors 0-2:

        * an int wires all three to that one caller descriptor — how
          rshd attaches a remote command to its network connection
          (such a child has **no controlling terminal**, which is why
          "certain terminal modes can not be preserved" over rsh);
        * a 3-tuple wires each individually (None = inherit) — how
          the shell builds pipelines and redirections.

        ``detach`` orphans the child immediately (the double-fork
        idiom): it is reaped by the kernel on exit and its death never
        lands on the spawner.  The network daemons use this for their
        per-connection helpers, so a crashed helper can neither
        zombify nor take the daemon's accept loop down with it.
        """
        self.fault_check("proc.spawn", path)
        child = self.machine.create_process(
            path, argv, parent=proc, cred=proc.user.cred,
            cwd=None, tty=proc.user.tty, inherit_from=proc)
        if detach:
            child.parent = None
            proc.children.remove(child)
        if stdio_fd is None:
            return child.pid
        if isinstance(stdio_fd, int):
            wiring = (stdio_fd, stdio_fd, stdio_fd)
            child.user.tty = None
        else:
            wiring = tuple(stdio_fd)
            if len(wiring) != 3:
                from repro.errors import EINVAL
                raise UnixError(EINVAL, "stdio_fd tuple must be 3-long")
        for fd, source in zip((0, 1, 2), wiring):
            if source is None:
                continue
            entry = proc.user.fd_lookup(source)
            old = child.user.ofile[fd]
            if old is not None:
                child.user.ofile[fd] = None
                self._release_entry(old)
            entry.refcount += 1
            child.user.ofile[fd] = entry
        return child.pid

    def sys_rsh_setup(self, proc):
        """The rexec connection dance: reverse host lookup, privileged
        port checks, hosts.equiv scan, login-shell startup.

        A pseudo-call standing in for the user- and kernel-level work
        a real rshd performs per connection; its (large, calibrated)
        cost is the reason Figure 4's remote migrations are so slow.
        """
        self.charge(self.costs.rsh_setup_us)
        return 0

    def sys_daemon_setup(self, proc):
        """Per-connection cost of the paper's proposed alternative: a
        long-running daemon at a well-known port (section 6.4)."""
        self.charge(self.costs.daemon_setup_us)
        return 0

    def sys_getproctab(self, proc):
        """Process-table snapshot for ps(1) (native programs only).

        Stands in for reading /dev/kmem with nlist(), which is how ps
        actually worked on 4.2BSD.
        """
        rows = []
        for entry in self.procs.all_procs():
            rows.append({
                "pid": entry.pid,
                "ppid": entry.ppid,
                "uid": entry.user.cred.uid,
                "state": STATE_NAMES.get(entry.state, "?"),
                "utime_us": entry.utime_us,
                "stime_us": entry.stime_us,
                "command": entry.command,
                "vm": 1 if entry.is_vm() else 0,
            })
        self.charge(self.costs.filetable_op_us * max(1, len(rows)))
        return rows

    def sys_proc_cpu_seconds(self, proc, pid):
        """Total CPU seconds consumed by ``pid`` (load-balancer aid)."""
        target = self.procs.lookup(pid)
        if target is None:
            raise UnixError(ESRCH, "pid %d" % pid)
        return target.cpu_us() / 1e6

    def sys_sysctl(self, proc, name):
        """Read one cost-model / policy knob by name.

        Stands in for 4.3BSD's getkerninfo(): the hardened commands
        read their retry and timeout policy from the kernel instead of
        baking numbers into every tool.  Read-only, plain values only.
        """
        if not isinstance(name, str) or name.startswith("_"):
            raise UnixError(EINVAL, "sysctl %r" % (name,))
        value = getattr(self.costs, name, None)
        if value is None or callable(value):
            raise UnixError(EINVAL, "sysctl %r" % (name,))
        return value

    #: perf counters user commands may bump via ``perf_note``: the
    #: pipeline-hardening trio, loadd's ``ld_*`` family, the
    #: migration ledger's ``ml_*`` family (``ml_archives`` stays
    #: kernel-private — only the dump writer archives) and statd's
    #: ``st_*`` family (``st_alerts`` stays kernel-private — only the
    #: critical-path analyzer raises alerts).  The engine counters
    #: stay kernel-private.
    _PERF_NOTE_COUNTERS = frozenset({
        "retries", "timeouts", "recoveries",
        "ld_reports_sent", "ld_reports_recv", "ld_reports_dropped",
        "ld_stale_drops", "ld_suspect_skips", "ld_rounds",
        "ld_moves", "ld_move_failures",
        "ml_records", "ml_advances", "ml_claims", "ml_completions",
        "ml_aborts", "ml_sweeps", "ml_reaps",
        "st_samples", "st_series_points", "st_reports_sent",
        "st_reports_recv", "st_reports_dropped", "st_stale_drops",
        "st_suspect_skips",
    })

    def sys_perf_note(self, proc, counter, amount=1):
        """Bump a cluster perf counter from a user command."""
        if counter not in self._PERF_NOTE_COUNTERS:
            raise UnixError(EINVAL, "perf_note %r" % (counter,))
        if isinstance(amount, bool) \
                or not isinstance(amount, (int, float)):
            raise UnixError(EINVAL, "perf_note amount %r" % (amount,))
        self.machine.cluster.perf.note(counter, amount)
        if counter == "recoveries":
            self.machine.cluster.perf.metrics.inc(
                "recoveries", amount, host=self.hostname)
            if self.tracer.enabled:
                self.tracer.emit("recovery", "recovered", self.machine,
                                 pid=proc.pid)
        return 0

    # -- observability (DESIGN.md section 9) ---------------------------------

    def sys_trace_status(self, proc):
        """1 if cluster tracing is currently enabled, else 0."""
        return 1 if self.tracer.enabled else 0

    def sys_trace_mark(self, proc, cat, name, mig=None):
        """Record one instant event from a user command.

        Only the high-level pipeline categories are writable from
        userland; the kernel-owned categories stay kernel-private.
        """
        if cat not in ("migrate", "recovery", "loadd", "statd"):
            raise UnixError(EINVAL, "trace_mark category %r" % (cat,))
        if not isinstance(name, str) or not name:
            raise UnixError(EINVAL, "trace_mark name %r" % (name,))
        if self.tracer.enabled:
            if mig is None:
                self.tracer.emit(cat, name, self.machine,
                                 pid=proc.pid)
            else:
                self.tracer.emit(cat, name, self.machine,
                                 pid=proc.pid, mig=str(mig))
        return 0

    def sys_trace_span(self, proc, cat, which, mig, ok=1):
        """Open (``which="B"``) or close (``"E"``) a span from a user
        command — how ``migrate`` brackets its end-to-end phase."""
        if cat not in ("migrate", "recovery", "loadd", "statd"):
            raise UnixError(EINVAL, "trace_span category %r" % (cat,))
        if which not in ("B", "E"):
            raise UnixError(EINVAL, "trace_span %r" % (which,))
        if not isinstance(mig, str) or not mig:
            raise UnixError(EINVAL, "trace_span mig %r" % (mig,))
        if which == "B":
            self.tracer.span_begin(cat, cat, mig, self.machine,
                                   pid=proc.pid)
        else:
            self.tracer.span_end(cat, cat, mig, self.machine,
                                 ok=bool(ok), pid=proc.pid)
            if cat == "migrate" and ok:
                self.machine.cluster.perf.metrics.inc(
                    "migrations", host=self.hostname)
        return 0

    def sys_migstat(self, proc):
        """Per-host migration/fault/heartbeat stats for migstat(1).

        The metrics-registry sibling of getproctab(): a snapshot of
        the cluster-wide labelled counters, one row per host.
        """
        metrics = self.machine.cluster.perf.metrics
        rows = []
        for host in self.machine.cluster.hosts():
            machine = self.machine.cluster.machines[host]
            rows.append({
                "host": host,
                "up": 1 if machine.running else 0,
                "dumps": metrics.total("dumps", host=host),
                "restarts": metrics.total("restarts", host=host),
                "migrations": metrics.total("migrations", host=host),
                "recoveries": metrics.total("recoveries", host=host),
                "crashes": metrics.total("host_crashes", host=host),
                "suspects": metrics.total("hb_suspects", host=host),
            })
        self.charge(self.costs.filetable_op_us * max(1, len(rows)))
        return rows

    def sys_vmcache(self, proc):
        """The trace compiler's cluster-wide cache counters, for
        migstat(1) and migtop(1).

        One flat dict: how many exec/restart arrivals found their text
        already compiled in the shared content-keyed code cache
        (``shared_cache_hits``) versus compiled from scratch
        (``cache_rebuilds``), the compiler's volume counters, and how
        many distinct text segments the cache currently holds.  A
        healthy migration-heavy cluster shows hits far above rebuilds
        — re-arrivals of unchanged text never recompile.
        """
        perf = self.machine.cluster.perf
        cache = self.machine.cluster._code_cache
        self.charge(self.costs.filetable_op_us)
        return {
            "shared_cache_hits": perf.shared_cache_hits,
            "cache_rebuilds": perf.cache_rebuilds,
            "blocks_compiled": perf.blocks_compiled,
            "traces_linked": perf.traces_linked,
            "instructions_decoded": perf.instructions_decoded,
            "reg_spills": perf.reg_spills,
            "cached_texts": cache.texts(),
        }

    # -- cluster telemetry (DESIGN.md section 13) ----------------------------

    def sys_statgauges(self, proc):
        """This host's kernel gauges for statd's sampling round.

        The scheduler/proc-table/socket numbers a real statd would
        pull out of /dev/kmem with nlist(): runnable queue depth,
        live (non-zombie) processes, bound sockets, and how many
        peers the failure detector currently suspects.
        """
        from repro.kernel.constants import SRUN, SZOMB
        runq = sum(1 for entry in self.scheduler.runq
                   if entry.state == SRUN)
        procs = sum(1 for entry in self.procs.all_procs()
                    if entry.state != SZOMB)
        suspects = len(self.hb_monitor.suspected) \
            if self.hb_monitor is not None else 0
        self.charge(self.costs.filetable_op_us * 4)
        return {"runq": runq, "procs": procs,
                "socks": len(self.machine.ports),
                "hb_suspects": suspects}

    def sys_critpath(self, proc):
        """The migration critical-path report, for migtop(1).

        Aggregates every recorded migration timeline into per-phase
        p50/p95/max breakdowns with host/pair rollups, then evaluates
        the SLO thresholds (raising ``alert`` trace events).  Purely
        a function of the recorded trace and cluster state, so the
        report is byte-identical across engines.
        """
        from repro.obs.critpath import critical_path_report, slo_alerts
        cluster = self.machine.cluster
        report = critical_path_report(cluster)
        report["alerts"] = slo_alerts(cluster, report, self.machine,
                                      int(self.clock.seconds()))
        self.charge(self.costs.filetable_op_us
                    * max(1, 8 * report["migrations"]))
        return report

    # -- userland fault sites (loadd, the migration ledger, statd) -----------

    #: userland site namespaces: daemons and tools coded as native
    #: programs may evaluate sites here, but cannot spoof kernel sites
    _FAULT_NAMESPACES = ("loadd.", "ledger.", "statd.")

    def sys_fault_point(self, proc, site, detail=""):
        """Evaluate a *userland* fault-injection site.

        Daemons coded as native programs have no kernel write path of
        their own to hang fault sites on, so this call lets them ask
        the injector directly — restricted to the ``loadd.``,
        ``ledger.`` and ``statd.`` site namespaces so userland cannot
        spoof kernel sites.  Armed fail rules surface as the rule's errno;
        delay/crash/partition behave exactly as at kernel sites.
        """
        if not isinstance(site, str) \
                or not site.startswith(self._FAULT_NAMESPACES):
            raise UnixError(EINVAL, "fault_point %r" % (site,))
        self.fault_check(site, str(detail))
        return 0

    def sys_fault_data(self, proc, site, data, detail=""):
        """Pass a userland blob through a data fault site (corrupt
        rules); same namespace restriction as ``fault_point``."""
        if not isinstance(site, str) \
                or not site.startswith(self._FAULT_NAMESPACES):
            raise UnixError(EINVAL, "fault_data %r" % (site,))
        if not isinstance(data, (bytes, bytearray)):
            raise UnixError(EINVAL, "fault_data needs bytes")
        return self.fault_filter(site, bytes(data), str(detail))

    # -- migration intent ledger (DESIGN.md section 12) ----------------------

    def sys_dump_ledger(self, proc, pid, recdir):
        """Arm ledgered dumping for ``pid``.

        ``dumpproc -L`` calls this before sending SIGDUMP; the
        victim's next dump is then also archived through the cluster
        chunk store into ``recdir`` (manifests + the ``dump.ok``
        commit marker), inside the dump's all-or-nothing window.  Same
        permission rule as kill(): only the superuser or the owner.
        """
        from repro.kernel.constants import SZOMB
        if not isinstance(recdir, str) or not recdir.startswith("/"):
            raise UnixError(EINVAL, "dump_ledger dir %r" % (recdir,))
        target = self.procs.lookup(pid)
        if target is None or target.state == SZOMB:
            raise UnixError(ESRCH, "pid %d" % pid)
        if not proc.user.cred.can_signal(target.user.cred):
            from repro.errors import EPERM
            raise UnixError(EPERM, "dump_ledger %d" % pid)
        target.ledger_dir = recdir
        return 0

    def sys_store_get(self, proc, digest):
        """Fetch one chunk from the cluster chunk store by digest.

        The read half of the ledger archive: the recovery sweep
        reassembles an archived dump from its manifests without any
        kernel dump state.  Charged like any other chunk fetch (local
        or NFS rates, end-to-end digest check).
        """
        from repro.store import DIGEST_BYTES
        if not isinstance(digest, (bytes, bytearray)) \
                or len(digest) != DIGEST_BYTES:
            raise UnixError(EINVAL, "store_get digest %r" % (digest,))
        return self.machine.cluster.chunk_store.get(self, bytes(digest))

    # -- heartbeat failure detector ------------------------------------------

    def _heartbeat(self):
        """The machine's failure detector, created on first use.

        Living on the kernel (not the machine) means a reboot gets a
        fresh, empty monitor — suspicion state does not survive a
        crash, just like any other kernel memory.
        """
        if self.hb_monitor is None:
            from repro.net.heartbeat import HeartbeatMonitor
            self.hb_monitor = HeartbeatMonitor(self.machine)
        return self.hb_monitor

    def sys_hb_start(self, proc):
        """Ensure the heartbeat monitor exists (daemons call this at
        startup so their host participates in failure detection)."""
        self._heartbeat()
        return 0

    def sys_hb_status(self, proc, host):
        """1 if the failure detector currently suspects ``host`` is
        dead, else 0.  Querying starts (and leases) the probe lane."""
        if not isinstance(host, str) or not host:
            raise UnixError(EINVAL, "hb_status %r" % (host,))
        return self._heartbeat().status(host)
