"""Terminals.

A :class:`Terminal` models one console or window: an input queue, an
output transcript, and the sgtty mode flags that ``dumpproc`` saves
and ``restart`` re-establishes ("terminal modes such as raw ... or
noecho ... are preserved, so that visual applications such as screen
editors can be restarted properly").

An rsh connection's stdio is *not* a terminal — ``isatty`` is False
and mode changes are impossible — which is why the paper's ``migrate``
cannot preserve terminal modes when it must run ``restart`` remotely.
That stand-in lives in :mod:`repro.net.rsh`; this module only defines
the interface it mimics.
"""

from repro.kernel.constants import (TTY_DEFAULT_FLAGS, TF_ECHO, TF_RAW,
                                    TF_CBREAK, TF_CRMOD)


class Terminal:
    """One terminal (or window)."""

    def __init__(self, name="console"):
        self.name = name
        self.flags = TTY_DEFAULT_FLAGS
        self._input = bytearray()
        self.output = bytearray()  #: everything written to the screen
        self.on_input = None  #: callback invoked when input arrives

    def isatty(self):
        return True

    # -- modes ----------------------------------------------------------------

    def get_flags(self):
        return self.flags

    def set_flags(self, flags):
        self.flags = flags & 0xFFFF

    def is_raw(self):
        return bool(self.flags & TF_RAW)

    def is_cbreak(self):
        return bool(self.flags & TF_CBREAK)

    def echoes(self):
        return bool(self.flags & TF_ECHO)

    def reset_modes(self):
        self.flags = TTY_DEFAULT_FLAGS

    # -- input ----------------------------------------------------------------

    def feed(self, text):
        """Type characters at the terminal (harness side)."""
        data = text.encode("latin-1") if isinstance(text, str) else text
        if self.flags & TF_CRMOD:
            data = data.replace(b"\r", b"\n")
        self._input.extend(data)
        if self.echoes():
            self.output.extend(data)
        if self.on_input is not None:
            self.on_input(self)

    def input_available(self):
        """True if a read() would make progress under current modes."""
        if not self._input:
            return False
        if self.is_raw() or self.is_cbreak():
            return True
        return b"\n" in self._input

    def read(self, nbytes):
        """Take up to ``nbytes`` from the queue, honouring the modes.

        Returns ``None`` when a read would block (the kernel turns
        that into a sleep on this terminal).
        """
        if not self.input_available():
            return None
        if self.is_raw() or self.is_cbreak():
            take = min(nbytes, len(self._input))
        else:
            line_end = self._input.index(b"\n") + 1
            take = min(nbytes, line_end)
        data = bytes(self._input[:take])
        del self._input[:take]
        return data

    # -- output ---------------------------------------------------------------

    def write(self, data):
        if isinstance(data, str):
            data = data.encode("latin-1")
        if self.flags & TF_CRMOD and not self.is_raw():
            data = data.replace(b"\n", b"\r\n")
        self.output.extend(data)
        return len(data)

    def output_text(self):
        """The transcript as text, with CR-NL folded back to NL."""
        return bytes(self.output).replace(b"\r\n", b"\n").decode(
            "latin-1")

    def clear_output(self):
        del self.output[:]

    def __repr__(self):
        return "Terminal(%s, flags=0o%o)" % (self.name, self.flags)
