"""Signals, including the new ``SIGDUMP``.

Signal numbers follow 4.2BSD.  ``SIGDUMP`` is the paper's addition:
number 32 (one past the classic set), default action ``DUMP`` — the
process is terminated and the three restart files are written, the
same shape as ``SIGQUIT``'s core dump but with more state.  Like
``SIGKILL``, it can be neither caught nor ignored.

A process's signal state (:class:`SigState`) — which signals are
ignored, which are caught and by which handler addresses — is part of
what ``SIGDUMP`` saves and ``rest_proc()`` restores ("all the
information kept in the user and process structures that is related
to the disposition of signals").
"""

import struct

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGIOT = 6
SIGEMT = 7
SIGFPE = 8
SIGKILL = 9
SIGBUS = 10
SIGSEGV = 11
SIGSYS = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGURG = 16
SIGSTOP = 17
SIGTSTP = 18
SIGCONT = 19
SIGCHLD = 20
SIGTTIN = 21
SIGTTOU = 22
SIGIO = 23
SIGXCPU = 24
SIGXFSZ = 25
SIGVTALRM = 26
SIGPROF = 27
SIGWINCH = 28
SIGUSR1 = 30
SIGUSR2 = 31
#: the new signal: terminate and dump the three restart files
SIGDUMP = 32

NSIG = 33

SIG_DFL = 0
SIG_IGN = 1

SIGNAL_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("SIG") and isinstance(value, int)
    and name not in ("SIG_DFL", "SIG_IGN")
}

# default actions
A_TERM = "terminate"
A_CORE = "core"  #: terminate with a core dump
A_DUMP = "dump"  #: terminate writing the three migration dump files
A_IGN = "ignore"
A_STOP = "stop"
A_CONT = "continue"

_CORE_SIGNALS = {SIGQUIT, SIGILL, SIGTRAP, SIGIOT, SIGEMT, SIGFPE,
                 SIGBUS, SIGSEGV, SIGSYS}
_IGNORE_SIGNALS = {SIGURG, SIGCHLD, SIGIO, SIGWINCH}
_STOP_SIGNALS = {SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU}

#: signals whose disposition cannot be changed
UNCATCHABLE = {SIGKILL, SIGSTOP, SIGDUMP}


def default_action(sig):
    if sig in _CORE_SIGNALS:
        return A_CORE
    if sig == SIGDUMP:
        return A_DUMP
    if sig in _IGNORE_SIGNALS:
        return A_IGN
    if sig in _STOP_SIGNALS:
        return A_STOP
    if sig == SIGCONT:
        return A_CONT
    return A_TERM


def signal_name(sig):
    return SIGNAL_NAMES.get(sig, "SIG#%d" % sig)


class SigState:
    """Per-process signal dispositions and pending set."""

    #: serialized as NSIG little-endian i32 handler slots
    _FORMAT = struct.Struct("<%di" % NSIG)
    PACKED_SIZE = _FORMAT.size

    def __init__(self):
        #: sig -> SIG_DFL | SIG_IGN | handler address (VM text address)
        self.handlers = [SIG_DFL] * NSIG
        self.pending = set()

    def action(self, sig):
        """The action delivering ``sig`` now would take."""
        handler = self.handlers[sig]
        if handler == SIG_IGN:
            return A_IGN
        if handler != SIG_DFL:
            return "catch"
        return default_action(sig)

    def set_handler(self, sig, handler):
        if sig <= 0 or sig >= NSIG:
            raise ValueError("bad signal %d" % sig)
        if sig in UNCATCHABLE and handler != SIG_DFL:
            raise PermissionError("signal %s cannot be caught or ignored"
                                  % signal_name(sig))
        old = self.handlers[sig]
        self.handlers[sig] = handler
        return old

    def post(self, sig):
        if sig <= 0 or sig >= NSIG:
            raise ValueError("bad signal %d" % sig)
        self.pending.add(sig)

    def take_pending(self):
        """Pop the lowest-numbered deliverable pending signal, or None."""
        for sig in sorted(self.pending):
            self.pending.discard(sig)
            if self.action(sig) == A_IGN:
                continue
            return sig
        return None

    def exec_reset(self):
        """On exec, caught signals revert to default (ignored stay)."""
        self.handlers = [SIG_IGN if h == SIG_IGN else SIG_DFL
                         for h in self.handlers]

    def copy(self):
        other = SigState()
        other.handlers = list(self.handlers)
        other.pending = set(self.pending)
        return other

    # -- dump serialization (part of the stackXXXXX file) -----------------

    def pack(self):
        return self._FORMAT.pack(*self.handlers)

    @classmethod
    def unpack(cls, blob, offset=0):
        state = cls()
        handlers = list(cls._FORMAT.unpack_from(blob, offset))
        # uncatchable signals are forced back to the default on restore
        for sig in UNCATCHABLE:
            handlers[sig] = SIG_DFL
        state.handlers = handlers
        return state

    def __repr__(self):
        caught = [signal_name(sig) for sig, h in enumerate(self.handlers)
                  if h not in (SIG_DFL, SIG_IGN)]
        ignored = [signal_name(sig) for sig, h in enumerate(self.handlers)
                   if h == SIG_IGN]
        return "SigState(caught=%s ignored=%s pending=%s)" % (
            caught, ignored, sorted(self.pending))
