"""The process scheduler: round-robin with a fixed quantum.

Each :meth:`Scheduler.run_slot` picks the next runnable process,
charges a context switch, delivers pending signals (which is where
``SIGDUMP`` dumps and ``SIGQUIT`` cores happen — in the context of the
victim), and then runs the process for up to one quantum, executing
any system calls it makes along the way.
"""

from collections import deque

from repro.errors import UnixError
from repro.kernel.constants import SRUN, SSLEEP, SSTOP
from repro.kernel.flow import WouldBlock, ProcessOverlaid
from repro.kernel import signals as sig_mod
from repro.vm.cpu import TrapStop, FaultStop, HaltStop
from repro.vm import isa

_FAULT_SIGNALS = {"ill": sig_mod.SIGILL, "segv": sig_mod.SIGSEGV,
                  "fpe": sig_mod.SIGFPE}

#: cost-model knobs native tools may read for free via ``("sysctl0",
#: name)`` — stand-ins for constants the real binaries had compiled
#: in, routed through the cost model so experiments can sweep them
_SYSCTL0_KNOBS = frozenset({
    "dump_poll_tries", "dump_poll_sleep_s",
    "restart_poll_tries", "restart_poll_sleep_s",
    "migration_ledger", "migration_ledger_dir", "ledger_stale_s",
    "stat_interval_s", "stat_rounds", "stat_stale_s",
    "stat_series_len", "stat_spool_dir",
})


class Scheduler:
    """One machine's run queue."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.runq = deque()

    # -- queue management ---------------------------------------------------

    def enqueue(self, proc):
        if proc not in self.runq:
            self.runq.append(proc)
            # a newly runnable process moves the machine's
            # next-action time; tell the cluster's fast driver
            machine = self.kernel.machine
            machine.cluster.note_activity(machine)

    def remove(self, proc):
        try:
            self.runq.remove(proc)
        except ValueError:
            pass

    def has_runnable(self):
        return any(proc.state == SRUN for proc in self.runq)

    def _next_runnable(self):
        while self.runq:
            proc = self.runq.popleft()
            if proc.state == SRUN:
                return proc
        return None

    # -- signal delivery --------------------------------------------------------

    def check_signals(self, proc):
        """Deliver pending signals; False if proc stopped running."""
        kernel = self.kernel
        while True:
            sig = proc.user.sig.take_pending()
            if sig is None:
                break
            action = proc.user.sig.action(sig)
            if action == "catch":
                self._deliver_caught(proc, sig)
            elif action == sig_mod.A_STOP:
                proc.state = SSTOP
                self.remove(proc)
                return False
            elif action == sig_mod.A_CONT:
                continue
            elif action == sig_mod.A_DUMP:
                if kernel.dump_process(proc) or not proc.is_vm():
                    # a native process has nothing to dump; the signal
                    # degenerates to a plain terminate
                    kernel.do_exit(proc, term_signal=sig)
                    return False
                # the dump failed: killing the victim anyway would
                # lose the process with nothing to restart from, so
                # it survives and the dump can be retried
                continue
            elif action == sig_mod.A_CORE:
                kernel.write_core(proc)
                kernel.do_exit(proc, term_signal=sig)
                return False
            elif action == sig_mod.A_TERM:
                kernel.do_exit(proc, term_signal=sig)
                return False
        return proc.state == SRUN

    def _deliver_caught(self, proc, sig):
        """Build a signal frame: push sr and pc, enter the handler."""
        kernel = self.kernel
        if not proc.is_vm():  # native programs cannot catch
            kernel.do_exit(proc, term_signal=sig)
            return
        image = proc.image.image
        handler = proc.user.sig.handlers[sig]
        image.push_i32(image.regs.pc)
        image.push_i32(image.regs.sr)
        image.push_i32(sig)
        image.regs.pc = handler
        kernel.charge(kernel.costs.signal_deliver_us, proc=proc)

    # -- sleep plumbing -------------------------------------------------------------

    def _sleep(self, proc, blocked):
        proc.state = SSLEEP
        proc.wchan = blocked.channel
        self.remove(proc)
        if blocked.wake_at_us is not None:
            kernel = self.kernel
            channel = blocked.channel
            kernel.machine.post_event(
                blocked.wake_at_us, lambda: kernel.wakeup(channel))

    # -- the main loop ---------------------------------------------------------------

    def run_slot(self):
        """Run one scheduling slot; True if a process got CPU time."""
        kernel = self.kernel
        proc = self._next_runnable()
        if proc is None:
            return False
        kernel.curproc = proc
        if kernel.tracer.enabled:
            kernel.tracer.emit("sched", "run", kernel.machine,
                               pid=proc.pid)
        kernel.charge(kernel.costs.context_switch_us, proc=proc)
        try:
            if not self.check_signals(proc):
                return True
            if proc.is_vm():
                self._run_vm(proc)
            elif proc.is_native():
                self._run_native(proc)
            if proc.state == SRUN:
                self.enqueue(proc)
        finally:
            kernel.curproc = None
        return True

    # -- VM processes -------------------------------------------------------------------

    def _run_vm(self, proc):
        kernel = self.kernel
        costs = kernel.costs
        budget = max(1, int(costs.quantum_us / costs.instruction_us))
        while budget > 0 and proc.state == SRUN:
            image = proc.image.image
            stop = kernel.machine.cpu.run(image, budget)
            kernel.charge_user(stop.executed * costs.instruction_us,
                               proc=proc)
            budget -= stop.executed
            if isinstance(stop, TrapStop):
                self._vm_syscall(proc)
                if proc.state != SRUN:
                    break
                if not self.check_signals(proc):
                    break
                continue
            if isinstance(stop, (FaultStop, HaltStop)):
                kind = getattr(stop, "kind", "ill")
                kernel.post_signal(proc, _FAULT_SIGNALS.get(
                    kind, sig_mod.SIGILL))
                if not self.check_signals(proc):
                    break
                continue
            break  # quantum exhausted

    def _vm_syscall(self, proc):
        from repro.kernel.syscalls import vm_syscall
        kernel = self.kernel
        image = proc.image.image
        kernel.charge(kernel.costs.syscall_base_us, proc=proc)
        try:
            result = vm_syscall(kernel, proc)
        except UnixError as err:
            image.regs.d[0] = -1
            image.regs.d[1] = err.errno
        except WouldBlock as blocked:
            if blocked.wake_at_us is None:
                # sleep/retry: back the pc up so the trap re-executes
                image.regs.pc -= isa.INSTRUCTION_SIZE
            else:
                # timed sleep: the call completes upon wakeup
                image.regs.d[0] = 0
                image.regs.d[1] = 0
            self._sleep(proc, blocked)
        except ProcessOverlaid:
            pass  # exec/rest_proc: never touch the (new) registers
        else:
            if proc.is_vm():
                regs = proc.image.image.regs
                regs.d[0] = result if result is not None else 0
                regs.d[1] = 0

    # -- native processes ------------------------------------------------------------------

    def _run_native(self, proc):
        from repro.kernel.syscalls import native_request
        kernel = self.kernel
        costs = kernel.costs
        state = proc.image
        slot_end = kernel.clock.now_us + costs.quantum_us
        while proc.state == SRUN and kernel.clock.now_us < slot_end:
            if state.pending_request is not None:
                request = state.pending_request
                state.pending_request = None
            else:
                kernel.charge_user(costs.native_step_us, proc=proc)
                if not state.started:
                    state.start()
                try:
                    request = state.generator.send(state.next_result)
                    # "sysctl0": a free read of a tool's build-time
                    # tuning constant from the cost model.  The old
                    # binaries had these compiled in, so fetching one
                    # must cost nothing and leave no trace event —
                    # it is resolved here, never dispatched
                    while (isinstance(request, tuple) and len(request) == 2
                           and request[0] == "sysctl0"
                           and request[1] in _SYSCTL0_KNOBS):
                        request = state.generator.send(
                            getattr(costs, request[1]))
                except StopIteration as done:
                    kernel.do_exit(proc, status=done.value or 0)
                    break
                state.next_result = None
            kernel.charge(costs.syscall_base_us, proc=proc)
            try:
                state.next_result = native_request(kernel, proc, request)
            except UnixError as err:
                state.next_result = -err.errno
            except WouldBlock as blocked:
                if blocked.wake_at_us is None:
                    state.pending_request = request
                else:
                    state.next_result = 0
                self._sleep(proc, blocked)
                break
            except ProcessOverlaid:
                break  # the generator was replaced by a VM image
            if proc.state != SRUN:
                break
            if not self.check_signals(proc):
                break
