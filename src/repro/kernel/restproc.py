"""The new ``rest_proc()`` system call.

Section 5.2's recipe, implemented step for step:

1. open the ``stackXXXXX`` file, checking access permissions and the
   magic number;
2. read the user credentials and the stack size;
3. set the global migration flag and the stack-size variable;
4. call ``execve()`` on the ``a.outXXXXX`` file with a null
   environment (the old environment lives in the dumped stack);
5. reset the flag so later execs behave normally;
6. establish the credentials read in step 2 (the *old* credentials
   were used for the exec permission check, so only the owner or the
   superuser can do this);
7. read in the stack contents and the registers;
8. read and establish the signal dispositions;
9. return — "at this point, the process running is a copy of the old
   process".

One defensive deviation: the stack file is parsed and validated in
full *before* the exec, because once the caller has been overlaid
there is nothing to return an error to.  The paper's kernel had the
same constraint implicitly (a truncated stack file after exec would
have been unrecoverable).
"""

from repro.errors import UnixError, EINVAL, ENOMEM
from repro.kernel.flow import ProcessOverlaid
from repro.obs import dump_migration_id


class RestProcSupport:
    """Mixin: the rest_proc() system call (self is the Kernel)."""

    def sys_rest_proc(self, proc, aout_path, stack_path):
        """Overlay ``proc`` with the dumped process.

        On success raises :class:`ProcessOverlaid`; "normally, there
        is no return from this system call".  If it *does* return (an
        exception carrying an errno), "either the system didn't have
        enough resources ... or something was wrong with the two
        files".
        """
        # the restart span covers reading the dump files (the
        # transfer, when they live on the source) and the overlay
        mig = dump_migration_id(aout_path, self.hostname)
        self.tracer.span_begin("restart", "rest_proc", mig,
                               self.machine, pid=proc.pid)
        try:
            self._rest_proc_body(proc, aout_path, stack_path)
        except ProcessOverlaid:
            self.machine.cluster.perf.metrics.inc(
                "restarts", host=self.hostname)
            self.tracer.span_end("restart", "rest_proc", mig,
                                 self.machine, ok=True, pid=proc.pid)
            raise
        except BaseException:
            self.tracer.span_end("restart", "rest_proc", mig,
                                 self.machine, ok=False, pid=proc.pid)
            raise

    def _rest_proc_body(self, proc, aout_path, stack_path):
        from repro.core.formats import StackInfo
        real0 = self.clock.now_us
        cpu0 = proc.cpu_us()

        # steps 1-2: open + verify + read credentials and stack size.
        # (kread_file performs the access check with the caller's
        # current credentials.)
        blob = self.kread_file(proc, stack_path)
        try:
            info = StackInfo.unpack(blob)
        except UnixError as err:
            raise UnixError(EINVAL, "stackXXXXX: %s" % err.context)

        # step 3: the global flag and the stack-size variable
        self.migrating = True
        self.migrate_stack_size = info.stack_size
        overlaid = False
        try:
            # step 4: exec the a.out with a null environment
            try:
                self.sys_execve(proc, aout_path, [aout_path], None)
            except ProcessOverlaid:
                overlaid = True
        finally:
            # step 5: "so that further calls to execve() will work"
            self.migrating = False
            self.migrate_stack_size = 0
        if not overlaid:  # pragma: no cover - execve raises or errors
            raise UnixError(EINVAL, "exec did not complete")

        try:
            self.fault_check("restproc.overlay", aout_path)
        except UnixError:
            # past the point of no return: the caller's image is gone,
            # so a mid-overlay failure can only kill the process (the
            # same discipline as the stack-collision check below)
            self.do_exit(proc, status=1)
            raise

        image = proc.image.image
        if image.stack_top - info.stack_size <= image.brk:
            # should have been caught by exec's allocation check
            self.do_exit(proc, status=1)
            raise UnixError(ENOMEM, "restored stack collides with data")

        # step 6: establish the old credentials
        proc.user.cred = info.cred.copy()

        # step 7: stack contents and registers
        if info.stack_manifest is not None:
            self._restore_chunked_stack(proc, image, info.stack_manifest,
                                        aout_path)
        else:
            image.restore_stack(info.stack)
            self.charge(self.costs.copy_byte_us * info.stack_size)
        image.regs.load_from(info.registers)
        # the overlay replaced text and stack wholesale; any decode
        # cache predating the overlay must not be resumed into
        image.invalidate_decode_cache()
        # a migrated process usually lands with text this cluster has
        # seen before: the shared code cache already holds its traces,
        # so the restart pays no recompilation (zero cache_rebuilds
        # for re-arrivals of unchanged text)
        if image._lazy is None:
            self.machine.cpu.warm_code_cache(image)
        if info.stack_manifest is not None and image.chunk_baseline is not None:
            # the stack manifest completes the re-dump baseline the
            # chunked exec started; every page is clean until the
            # process runs again
            from repro.kernel.dump import _baseline_entry
            image.chunk_baseline["stack"] = _baseline_entry(
                image.regs.sp, info.stack_manifest)
            image.clear_dirty()

        # step 8: signal dispositions
        sigstate = info.sigstate.copy()
        sigstate.pending = set()
        proc.user.sig = sigstate

        self.record_timing("rest_proc", self.clock.now_us - real0,
                           proc.cpu_us() - cpu0)
        self.log("rest_proc: pid %d resumed at pc=0x%x"
                 % (proc.pid, image.regs.pc))
        # the dump files have served their purpose; consuming them
        # here (a) keeps /usr/tmp clean without trusting user-level
        # cleanup and (b) gives migrate its success signal — the
        # a.outXXXXX file disappears exactly when the restart took
        self._consume_dump_files(proc, aout_path, stack_path)
        # step 9: "the process running is a copy of the old process"
        raise ProcessOverlaid()

    def _restore_chunked_stack(self, proc, image, manifest, aout_path):
        """Fill the restored stack from the chunk store.

        Eagerly unless ``lazy_restart`` is on, in which case the
        chunks stay pending and fault in on first touch — the
        ``fault_in`` span measures how long the deferred transfer
        trails the (much shorter) freeze window.
        """
        from repro.kernel.dump import lazy_records
        sp = image.stack_top - manifest.length
        if self.costs.lazy_restart:
            mig = dump_migration_id(aout_path, self.hostname)
            tracer, machine, pid = self.tracer, self.machine, proc.pid
            tracer.span_begin("restart", "fault_in", mig, machine, pid=pid)

            def _drained():
                tracer.span_end("restart", "fault_in", mig, machine,
                                ok=True, pid=pid)
            # covers the data chunks the chunked exec left pending too:
            # the span closes when the *last* chunk of either region
            # lands (immediately, if nothing is pending at all)
            image.add_lazy_chunks(lazy_records(manifest, sp),
                                  fetch=self.chunk_lazy_fetch,
                                  on_drained=_drained)
        else:
            blob = self.fetch_manifest(manifest)
            image.restore_stack(blob)
            self.charge(self.costs.copy_byte_us * manifest.length)

    def _consume_dump_files(self, proc, aout_path, stack_path):
        """Unlink the three dump files after a successful overlay."""
        head, sep, tail = stack_path.rpartition("/")
        paths = [aout_path, stack_path]
        if tail.startswith("stack"):
            paths.append(head + sep + "files" + tail[len("stack"):])
        for path in paths:
            self._kunlink_quiet(proc, path)
