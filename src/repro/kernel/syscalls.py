"""System call numbering and marshalling.

One source of truth for syscall numbers (:data:`NR`) — the assembler
library (:mod:`repro.programs.guest.libasm`) generates guest-side
equates from it.

VM convention: syscall number in ``d0``, arguments in ``d1``-``d5``;
on return ``d0`` holds the result (or -1) and ``d1`` the errno.
Strings are NUL-terminated in guest memory; buffers are
(address, length) pairs.

Native programs yield ``(name, *args)`` tuples with Python values and
get Python values back (negative int = errno).
"""

from repro.errors import UnixError, EINVAL, EFAULT
from repro.vm.image import SegmentationFault

#: syscall numbers (loosely after 4.2BSD where sensible)
NR = {
    "exit": 1,
    "fork": 2,
    "read": 3,
    "write": 4,
    "open": 5,
    "close": 6,
    "wait": 7,
    "creat": 8,
    "unlink": 10,
    "execve": 11,
    "chdir": 12,
    "time": 13,
    "sbrk": 17,
    "stat": 18,
    "lseek": 19,
    "getpid": 20,
    "getuid": 24,
    "geteuid": 25,
    "fstat": 28,
    "kill": 37,
    "getppid": 39,
    "dup": 41,
    "pipe": 42,
    "setreuid": 46,
    "getgid": 47,
    "signal": 48,
    "getegid": 49,
    "sigreturn": 51,
    "ioctl": 54,
    "symlink": 57,
    "readlink": 58,
    "mkdir": 59,
    "sleep": 65,
    "gethostname": 66,
    "socket": 67,
    "rest_proc": 68,  #: the new system call
    "dup2": 72,
    "getcwd": 73,
    "isatty": 83,
    "bind": 84,
    "listen": 85,
    "accept": 86,
    "connect": 87,
    # section 7 extension (ablation A5)
    "getpid_real": 90,
    "gethostname_real": 91,
    "set_oldids": 92,
    # observability (DESIGN.md section 9)
    "trace_status": 93,
}

NR_TO_NAME = {number: name for name, number in NR.items()}


# -- VM-side helpers -----------------------------------------------------------


def _image(proc):
    return proc.image.image


def _read_str(kernel, proc, address):
    image = _image(proc)
    try:
        text = image.read_cstring(address)
    except SegmentationFault:
        raise UnixError(EFAULT, "string at 0x%x" % address) from None
    kernel.charge(kernel.costs.copy_byte_us * len(text), proc=proc)
    return text


def _read_strvec(kernel, proc, address):
    """Read a NULL-terminated vector of string pointers."""
    if address == 0:
        return []
    image = _image(proc)
    out = []
    try:
        for slot in range(64):
            ptr = image.read_i32(address + 4 * slot) & 0xFFFFFFFF
            if ptr == 0:
                return out
            out.append(_read_str(kernel, proc, ptr))
    except SegmentationFault:
        raise UnixError(EFAULT, "strvec at 0x%x" % address) from None
    raise UnixError(EINVAL, "argument vector too long")


def _write_guest(kernel, proc, address, data):
    image = _image(proc)
    try:
        image.write_bytes(address, data)
    except SegmentationFault:
        raise UnixError(EFAULT, "buffer at 0x%x" % address) from None
    kernel.charge(kernel.costs.copy_byte_us * len(data), proc=proc)


def _read_guest(kernel, proc, address, nbytes):
    image = _image(proc)
    try:
        data = image.read_bytes(address, nbytes)
    except SegmentationFault:
        raise UnixError(EFAULT, "buffer at 0x%x" % address) from None
    kernel.charge(kernel.costs.copy_byte_us * nbytes, proc=proc)
    return data


def _pack_stat(stat):
    import struct
    return struct.pack("<8i", stat.ino, stat.itype, stat.mode,
                       stat.uid, stat.size, stat.nlink,
                       1 if stat.itype == 0o020000 else 0,
                       1 if stat.is_terminal() else 0)


# -- VM marshalling, one function per syscall ------------------------------------


def vm_syscall(kernel, proc):
    """Decode and execute the trap the current VM process just made."""
    regs = _image(proc).regs
    number = regs.d[0]
    d1, d2, d3 = regs.d[1], regs.d[2], regs.d[3]
    name = NR_TO_NAME.get(number)
    if kernel.tracer.enabled:
        kernel.tracer.emit("syscall", name or "nr%d" % number,
                           kernel.machine, pid=proc.pid)

    if name == "exit":
        return kernel.sys_exit(proc, d1)
    if name == "fork":
        return kernel.sys_fork(proc)
    if name == "read":
        data = kernel.sys_read(proc, d1, d3)
        _write_guest(kernel, proc, d2, data)
        return len(data)
    if name == "write":
        data = _read_guest(kernel, proc, d2, d3)
        return kernel.sys_write(proc, d1, data)
    if name == "open":
        return kernel.sys_open(proc, _read_str(kernel, proc, d1), d2, d3)
    if name == "creat":
        return kernel.sys_creat(proc, _read_str(kernel, proc, d1), d2)
    if name == "close":
        return kernel.sys_close(proc, d1)
    if name == "wait":
        pid, status = kernel.sys_wait(proc)
        if d1:
            import struct
            _write_guest(kernel, proc, d1, struct.pack("<i", status))
        return pid
    if name == "unlink":
        return kernel.sys_unlink(proc, _read_str(kernel, proc, d1))
    if name == "execve":
        path = _read_str(kernel, proc, d1)
        argv = _read_strvec(kernel, proc, d2)
        envp = _read_strvec(kernel, proc, d3) if d3 else None
        return kernel.sys_execve(proc, path, argv, envp)
    if name == "chdir":
        return kernel.sys_chdir(proc, _read_str(kernel, proc, d1))
    if name == "time":
        return kernel.sys_time(proc)
    if name == "sbrk":
        return kernel.sys_sbrk(proc, d1)
    if name == "stat":
        stat = kernel.sys_stat(proc, _read_str(kernel, proc, d1))
        _write_guest(kernel, proc, d2, _pack_stat(stat))
        return 0
    if name == "fstat":
        stat = kernel.sys_fstat(proc, d1)
        _write_guest(kernel, proc, d2, _pack_stat(stat))
        return 0
    if name == "lseek":
        return kernel.sys_lseek(proc, d1, d2, d3)
    if name == "getpid":
        return kernel.sys_getpid(proc)
    if name == "getpid_real":
        return kernel.sys_getpid_real(proc)
    if name == "getppid":
        return kernel.sys_getppid(proc)
    if name == "getuid":
        return kernel.sys_getuid(proc)
    if name == "geteuid":
        return kernel.sys_geteuid(proc)
    if name == "getgid":
        return kernel.sys_getgid(proc)
    if name == "getegid":
        return kernel.sys_getegid(proc)
    if name == "setreuid":
        return kernel.sys_setreuid(proc, d1, d2)
    if name == "kill":
        return kernel.sys_kill(proc, d1, d2)
    if name == "dup":
        return kernel.sys_dup(proc, d1)
    if name == "dup2":
        return kernel.sys_dup2(proc, d1, d2)
    if name == "pipe":
        rfd, wfd = kernel.sys_pipe(proc)
        import struct
        _write_guest(kernel, proc, d1, struct.pack("<ii", rfd, wfd))
        return 0
    if name == "signal":
        return kernel.sys_sigvec(proc, d1, d2)
    if name == "sigreturn":
        return kernel.sys_sigreturn(proc)
    if name == "ioctl":
        if d3:
            import struct
            arg = struct.unpack(
                "<i", _read_guest(kernel, proc, d3, 4))[0]
        else:
            arg = 0
        result = kernel.sys_ioctl(proc, d1, d2, arg)
        if d3 and result is not None:
            import struct
            _write_guest(kernel, proc, d3,
                         struct.pack("<i", result))
            return 0
        return result
    if name == "symlink":
        return kernel.sys_symlink(proc, _read_str(kernel, proc, d1),
                                  _read_str(kernel, proc, d2))
    if name == "readlink":
        target = kernel.sys_readlink(proc, _read_str(kernel, proc, d1))
        blob = target.encode("latin-1")[:max(0, d3)]
        _write_guest(kernel, proc, d2, blob)
        return len(blob)
    if name == "mkdir":
        return kernel.sys_mkdir(proc, _read_str(kernel, proc, d1), d2)
    if name == "sleep":
        return kernel.sys_sleep(proc, d1)
    if name == "gethostname":
        text = kernel.sys_gethostname(proc)
        blob = (text.encode("latin-1") + b"\x00")[:max(0, d2)]
        _write_guest(kernel, proc, d1, blob)
        return 0
    if name == "gethostname_real":
        text = kernel.sys_gethostname_real(proc)
        blob = (text.encode("latin-1") + b"\x00")[:max(0, d2)]
        _write_guest(kernel, proc, d1, blob)
        return 0
    if name == "set_oldids":
        return kernel.sys_set_oldids(proc, d1,
                                     _read_str(kernel, proc, d2))
    if name == "socket":
        return kernel.sys_socket(proc)
    if name == "bind":
        return kernel.sys_bind(proc, d1, d2)
    if name == "listen":
        return kernel.sys_listen(proc, d1)
    if name == "accept":
        return kernel.sys_accept(proc, d1)
    if name == "connect":
        return kernel.sys_connect(proc, d1,
                                  _read_str(kernel, proc, d2), d3)
    if name == "rest_proc":
        return kernel.sys_rest_proc(proc,
                                    _read_str(kernel, proc, d1),
                                    _read_str(kernel, proc, d2))
    if name == "getcwd":
        text = kernel.sys_getcwd(proc)
        blob = (text.encode("latin-1") + b"\x00")[:max(0, d2)]
        _write_guest(kernel, proc, d1, blob)
        return len(blob)
    if name == "isatty":
        return kernel.sys_isatty(proc, d1)
    if name == "trace_status":
        return kernel.sys_trace_status(proc)

    raise UnixError(EINVAL, "bad syscall %d" % number)


# -- native dispatch ------------------------------------------------------------------

#: request names native programs may use, mapped to kernel methods.
#: Mostly mechanical; a few wrappers adapt convenience shapes.
_NATIVE_SIMPLE = {
    "open", "creat", "close", "read", "write", "lseek", "dup", "dup2",
    "chdir", "getcwd", "unlink", "mkdir", "symlink", "readlink",
    "ioctl", "isatty", "pipe", "exit", "wait", "getpid", "getpid_real",
    "getppid", "getuid", "geteuid", "getgid", "getegid", "setreuid",
    "kill", "sigvec", "sleep", "time", "gethostname",
    "gethostname_real", "set_oldids", "spawn", "getproctab",
    "proc_cpu_seconds", "socket", "bind", "listen", "accept",
    "connect", "execve", "rest_proc", "stat", "fstat", "rsh_setup",
    "daemon_setup", "chmod", "chown", "access", "link", "rename",
    "read_timeout", "reap", "sysctl", "perf_note", "hb_start",
    "hb_status", "readdir", "trace_status", "trace_mark",
    "trace_span", "migstat", "vmcache", "statgauges", "critpath",
    "fault_point", "fault_data", "dump_ledger", "store_get",
}


def native_request(kernel, proc, request):
    """Execute one yielded request from a native program."""
    if not isinstance(request, tuple) or not request:
        raise UnixError(EINVAL, "bad native request %r" % (request,))
    name, args = request[0], request[1:]
    if kernel.tracer.enabled:
        kernel.tracer.emit("syscall", name, kernel.machine,
                           pid=proc.pid)
    if name == "lstat":
        return kernel.sys_stat(proc, args[0], follow=False)
    if name in _NATIVE_SIMPLE:
        return getattr(kernel, "sys_" + name)(proc, *args)
    raise UnixError(EINVAL, "unknown native request %r" % name)
