"""File, descriptor, terminal, pipe and socket system calls.

This module contains the paper's **kernel modifications** (section
5.1):

* ``open()``/``creat()`` record the absolute path name of the opened
  file in a dynamically-allocated string hung off the file structure
  (relative names are combined with the cwd name from the user
  structure);
* ``close()`` frees that string;
* ``chdir()`` maintains the fixed-size cwd-name field in the user
  structure (absolute arguments replace it, relative ones are
  combined with the old value; the update is skipped until the field
  has been initialised by a first absolute ``chdir()``).

All of this is conditional on ``costs.track_names`` so the unmodified
kernel of Figure 1's baseline is one configuration flag away, and the
extra work is *charged* (allocator calls, per-byte string handling) so
the overhead is measured rather than asserted.
"""

from repro.errors import (UnixError, EACCES, EBADF, EEXIST, EINVAL,
                          EISDIR, ENOENT, ENOTDIR, ENOTTY, EPERM,
                          EPIPE, ESPIPE, ENOTSOCK, ENAMETOOLONG)
from repro.fs.paths import is_absolute, joinpath, normalize
from repro.kernel.constants import (O_ACCMODE, O_APPEND, O_CREAT,
                                    O_EXCL, O_RDONLY, O_TRUNC,
                                    O_WRONLY, open_mode_readable,
                                    open_mode_writable, SEEK_CUR,
                                    SEEK_END, SEEK_SET, TIOCGETP,
                                    TIOCSETP, MAXPATH)
from repro.kernel.filetable import FFILE, FPIPE, FSOCKET, PipeBuffer
from repro.kernel.flow import WouldBlock
from repro.kernel.signals import SIGPIPE


class FileSyscalls:
    """Mixin: file-related system calls (self is the Kernel)."""

    # -- name tracking (the paper's modification) --------------------------

    def _absolute_name(self, proc, path):
        """Combine ``path`` with the stored cwd name, lexically."""
        if is_absolute(path):
            return normalize(path)
        base = proc.user.cwd_name or "/"
        return joinpath(base, path)

    def _track_open_name(self, proc, entry, path):
        """open()/creat() half of the modification."""
        costs = self.costs
        if not costs.track_names:
            return
        name = self._absolute_name(proc, path)
        # kernel malloc for the dynamic string, copyin of the argument,
        # the cwd combine, and the copy into the allocated buffer (one
        # copy more than chdir, which writes its fixed field in place —
        # hence open's higher Figure 1 overhead, 44% vs 36%)
        self.charge(costs.kmem_alloc_us
                    + costs.kstring_byte_us * (len(path)
                                               + 2 * len(name)))
        self.files.set_name(entry, name)

    def _untrack_name(self, entry):
        """close() half: the dynamic string is freed with the entry."""
        if self.costs.track_names and entry.name is not None \
                and entry.refcount == 1:
            self.charge(self.costs.kmem_free_us)

    # -- open/creat/close ------------------------------------------------------

    def sys_open(self, proc, path, flags, mode=0o644):
        if len(path) >= MAXPATH:
            raise UnixError(ENAMETOOLONG, path)
        cred = proc.user.cred
        want_parent = bool(flags & O_CREAT)
        resolved = self.namei(proc, path, want_parent=want_parent)
        created = False
        if resolved.inode is None:
            # O_CREAT and the file does not exist
            if not resolved.parent.check_access(cred, want_write=True):
                raise UnixError(EACCES, path)
            inode = resolved.parent_fs.create(
                resolved.parent, resolved.name, mode=mode & 0o777,
                uid=cred.euid, gid=cred.egid)
            fs = resolved.parent_fs
            self.meta_charge(fs)
            created = True
        else:
            inode = resolved.inode
            fs = resolved.fs
            if flags & O_CREAT and flags & O_EXCL:
                raise UnixError(EEXIST, path)
        if inode.is_dir() and open_mode_writable(flags):
            raise UnixError(EISDIR, path)
        if inode.is_link():
            raise UnixError(EINVAL, "open of unfollowed symlink")
        if not created:
            if open_mode_readable(flags) and not inode.check_access(
                    cred, want_read=True):
                raise UnixError(EACCES, path)
            if open_mode_writable(flags) and not inode.check_access(
                    cred, want_write=True):
                raise UnixError(EACCES, path)
        if flags & O_TRUNC and inode.is_reg() and not created:
            fs.truncate(inode)
            self.meta_charge(fs)
        if inode.is_chr():
            # opening /dev/tty with no controlling terminal fails now,
            # not at first use (rsh-spawned processes have none)
            self.device_channel(proc, inode)

        entry = self.files.alloc(FFILE)
        entry.fs = fs
        entry.inode = inode
        entry.flags = flags
        entry.offset = inode.size if flags & O_APPEND else 0
        self.charge(self.costs.filetable_op_us + self.costs.inode_op_us)
        fd = proc.user.fd_alloc(entry)
        self._track_open_name(proc, entry, path)
        return fd

    def sys_creat(self, proc, path, mode=0o644):
        """creat() "simply calls the same internal routine that
        open() calls, with slightly different arguments"."""
        return self.sys_open(proc, path, O_WRONLY | O_CREAT | O_TRUNC,
                             mode)

    def sys_close(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        proc.user.ofile[fd] = None
        self._release_entry(entry)
        self.charge(self.costs.filetable_op_us)
        return 0

    def _release_entry(self, entry):
        self._untrack_name(entry)
        if entry.ftype == FPIPE and entry.refcount == 1:
            buffer, role = entry.pipe
            if role == "r":
                buffer.readers -= 1
            else:
                buffer.writers -= 1
            self.wakeup(buffer)
        if entry.ftype == FSOCKET and entry.refcount == 1 \
                and entry.socket is not None:
            self.machine.cluster.network.sock_close(self.machine,
                                                    entry.socket)
        self.files.release(entry)

    # -- read/write/seek ----------------------------------------------------------

    def sys_read(self, proc, fd, nbytes):
        entry = proc.user.fd_lookup(fd)
        if not open_mode_readable(entry.flags) \
                and entry.ftype == FFILE and not entry.is_device():
            raise UnixError(EBADF, "fd %d not open for reading" % fd)
        if nbytes <= 0:
            return b""

        if entry.ftype == FSOCKET:
            data = self.machine.cluster.network.sock_recv(
                self.machine, entry.socket, nbytes)
            self.charge(self.costs.net_byte_us * len(data))
            return data
        if entry.ftype == FPIPE:
            return self._pipe_read(entry, nbytes)
        if entry.is_device():
            chan = self.device_channel(proc, entry.inode)
            data = chan.read(nbytes)
            if data is None:
                raise WouldBlock(chan)
            self.charge(self.costs.tty_char_us * max(1, len(data)))
            return data
        self.fs_check_reachable(entry.fs)
        site = "fs.read" if self.fs_is_local(entry.fs) else "nfs.read"
        self.fault_check(site, entry.name or "")
        data = entry.fs.read(entry.inode, entry.offset, nbytes)
        data = self.fault_filter(site, data, entry.name or "")
        self.io_charge(entry.fs, max(1, len(data)))
        entry.offset += len(data)
        return data

    def sys_read_timeout(self, proc, fd, nbytes, timeout_s):
        """``read()`` that fails with ``ETIMEDOUT`` instead of
        sleeping past a deadline.

        The deadline is set on the first blocked attempt and armed as
        a wakeup event, so the sleeping reader is re-run at expiry
        even if no data ever arrives; the usual sleep/retry discipline
        then re-executes the whole call, which notices the deadline
        has passed.  A successful read clears the deadline.
        """
        from repro.errors import ETIMEDOUT
        deadlines = proc.io_deadlines
        try:
            data = self.sys_read(proc, fd, nbytes)
        except WouldBlock as blocked:
            now = self.clock.now_us
            deadline = deadlines.get(fd)
            if deadline is None:
                deadlines[fd] = now + timeout_s * 1_000_000
                channel = blocked.channel
                self.machine.post_event(deadlines[fd],
                                        lambda: self.wakeup(channel))
            elif now >= deadline:
                del deadlines[fd]
                self.machine.cluster.perf.note("timeouts")
                raise UnixError(ETIMEDOUT,
                                "read on fd %d" % fd) from None
            raise
        deadlines.pop(fd, None)
        return data

    def sys_write(self, proc, fd, data):
        if isinstance(data, str):
            data = data.encode("latin-1")
        entry = proc.user.fd_lookup(fd)
        if not open_mode_writable(entry.flags) \
                and entry.ftype == FFILE and not entry.is_device():
            raise UnixError(EBADF, "fd %d not open for writing" % fd)

        if entry.ftype == FSOCKET:
            count = self.machine.cluster.network.sock_send(
                self.machine, entry.socket, data)
            self.charge(self.costs.net_byte_us * len(data))
            return count
        if entry.ftype == FPIPE:
            return self._pipe_write(proc, entry, data)
        if entry.is_device():
            chan = self.device_channel(proc, entry.inode)
            count = chan.write(data)
            self.charge(self.costs.tty_char_us * max(1, len(data)))
            return count
        self.fs_check_reachable(entry.fs)
        if entry.flags & O_APPEND:
            entry.offset = entry.inode.size
        count = entry.fs.write(entry.inode, entry.offset, data)
        self.io_charge(entry.fs, max(1, count), write=True)
        entry.offset += count
        return count

    def sys_lseek(self, proc, fd, offset, whence=SEEK_SET):
        entry = proc.user.fd_lookup(fd)
        if entry.ftype != FFILE or entry.is_device():
            raise UnixError(ESPIPE, "seek on non-file")
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = entry.offset + offset
        elif whence == SEEK_END:
            new = entry.inode.size + offset
        else:
            raise UnixError(EINVAL, "whence %d" % whence)
        if new < 0:
            raise UnixError(EINVAL, "negative offset")
        entry.offset = new
        return new

    # -- pipes ----------------------------------------------------------------------

    def sys_pipe(self, proc):
        buffer = PipeBuffer()
        buffer.readers = 1
        buffer.writers = 1
        rend = self.files.alloc(FPIPE)
        rend.pipe = (buffer, "r")
        rend.flags = O_RDONLY
        wend = self.files.alloc(FPIPE)
        wend.pipe = (buffer, "w")
        wend.flags = O_WRONLY
        rfd = proc.user.fd_alloc(rend)
        wfd = proc.user.fd_alloc(wend)
        self.charge(2 * self.costs.filetable_op_us)
        return rfd, wfd

    def _pipe_read(self, entry, nbytes):
        buffer, role = entry.pipe
        if role != "r":
            raise UnixError(EBADF, "read on pipe write end")
        if buffer.data:
            take = min(nbytes, len(buffer.data))
            data = bytes(buffer.data[:take])
            del buffer.data[:take]
            self.wakeup(buffer)
            self.charge(self.costs.copy_byte_us * take)
            return data
        if buffer.writers == 0:
            return b""
        raise WouldBlock(buffer)

    def _pipe_write(self, proc, entry, data):
        buffer, role = entry.pipe
        if role != "w":
            raise UnixError(EBADF, "write on pipe read end")
        if buffer.readers == 0:
            self.post_signal(proc, SIGPIPE)
            raise UnixError(EPIPE)
        space = buffer.space()
        if space <= 0:
            raise WouldBlock(buffer)
        take = min(space, len(data))
        buffer.data.extend(data[:take])
        self.wakeup(buffer)
        self.charge(self.costs.copy_byte_us * take)
        return take

    # -- descriptor duplication -------------------------------------------------------

    def sys_dup(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        entry.refcount += 1
        new = proc.user.fd_alloc(entry)
        self.charge(self.costs.filetable_op_us)
        return new

    def sys_dup2(self, proc, fd, fd2):
        entry = proc.user.fd_lookup(fd)
        from repro.kernel.constants import NOFILE
        if not 0 <= fd2 < NOFILE:
            raise UnixError(EBADF, "fd2 %d" % fd2)
        if fd == fd2:
            return fd2
        if proc.user.ofile[fd2] is not None:
            self.sys_close(proc, fd2)
        entry.refcount += 1
        proc.user.ofile[fd2] = entry
        self.charge(self.costs.filetable_op_us)
        return fd2

    # -- chdir (the other half of the modification) ------------------------------------

    def sys_chdir(self, proc, path):
        resolved = self.namei(proc, path)
        if not resolved.inode.is_dir():
            raise UnixError(ENOTDIR, path)
        if not resolved.inode.check_access(proc.user.cred,
                                           want_exec=True):
            raise UnixError(EACCES, path)
        proc.user.cdir = (resolved.fs, resolved.inode)
        costs = self.costs
        if costs.track_names:
            # copyin of the argument string
            self.charge(costs.kstring_byte_us * len(path))
            if is_absolute(path):
                name = normalize(path)
                self.charge(costs.kstring_byte_us * len(name))
                proc.user.set_cwd_name(name)
            elif proc.user.cwd_name:
                name = joinpath(proc.user.cwd_name, path)
                self.charge(costs.kstring_byte_us * len(name))
                proc.user.set_cwd_name(name)
            # else: field not initialised yet; skip the update
        return 0

    def sys_getcwd(self, proc):
        """Return the kernel-tracked cwd name.

        Not in the paper's kernel (4.2BSD's getwd() was a library
        routine walking ".."); exposed here because the tracked name
        exists anyway.  Fails on the unmodified kernel.
        """
        if not self.costs.track_names or not proc.user.cwd_name:
            raise UnixError(EINVAL, "cwd name not tracked")
        return proc.user.cwd_name

    # -- metadata ------------------------------------------------------------------------

    def sys_stat(self, proc, path, follow=True):
        resolved = self.namei(proc, path, follow=follow)
        self.charge(self.costs.inode_op_us)
        return resolved.inode.stat(dev=resolved.fs.hostname)

    def sys_fstat(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        self.charge(self.costs.inode_op_us)
        if entry.inode is None:
            from repro.fs.inode import Stat
            return Stat(0, 0, 0, 0, 0, 0, 0, self.hostname)
        return entry.inode.stat(dev=entry.fs.hostname
                                if entry.fs else self.hostname)

    def sys_readdir(self, proc, path):
        """List a directory's entry names, sorted.

        The whole listing is returned at once (a native-program
        convenience; the VM side has no getdents), charged as one
        block read of the directory.
        """
        resolved = self.namei(proc, path)
        inode = resolved.inode
        if not inode.is_dir():
            raise UnixError(ENOTDIR, path)
        if not inode.check_access(proc.user.cred, want_read=True):
            raise UnixError(EACCES, path)
        names = tuple(sorted(resolved.fs.entry_names(inode)))
        self.io_charge(resolved.fs, max(1, sum(map(len, names))))
        return names

    def sys_unlink(self, proc, path):
        resolved = self.namei(proc, path, follow=False,
                              want_parent=True)
        if resolved.inode is None:
            raise UnixError(ENOENT, path)
        if not resolved.parent.check_access(proc.user.cred,
                                            want_write=True):
            raise UnixError(EACCES, path)
        resolved.parent_fs.unlink(resolved.parent, resolved.name)
        self.meta_charge(resolved.parent_fs)
        return 0

    def sys_mkdir(self, proc, path, mode=0o755):
        resolved = self.namei(proc, path, want_parent=True)
        if resolved.inode is not None:
            raise UnixError(EEXIST, path)
        if not resolved.parent.check_access(proc.user.cred,
                                            want_write=True):
            raise UnixError(EACCES, path)
        cred = proc.user.cred
        resolved.parent_fs.mkdir(resolved.parent, resolved.name,
                                 mode=mode & 0o777, uid=cred.euid,
                                 gid=cred.egid)
        self.meta_charge(resolved.parent_fs)
        return 0

    def sys_symlink(self, proc, target, path):
        resolved = self.namei(proc, path, want_parent=True)
        if resolved.inode is not None:
            raise UnixError(EEXIST, path)
        if not resolved.parent.check_access(proc.user.cred,
                                            want_write=True):
            raise UnixError(EACCES, path)
        cred = proc.user.cred
        resolved.parent_fs.symlink(resolved.parent, resolved.name,
                                   target, uid=cred.euid, gid=cred.egid)
        self.meta_charge(resolved.parent_fs)
        return 0

    def sys_chmod(self, proc, path, mode):
        resolved = self.namei(proc, path)
        cred = proc.user.cred
        if not cred.is_superuser() and cred.euid != resolved.inode.uid:
            raise UnixError(EPERM, path)
        resolved.inode.mode = mode & 0o7777
        self.meta_charge(resolved.fs)
        return 0

    def sys_chown(self, proc, path, uid, gid):
        resolved = self.namei(proc, path)
        if not proc.user.cred.is_superuser():
            raise UnixError(EPERM, path)  # BSD: chown is root-only
        if uid != -1:
            resolved.inode.uid = uid
        if gid != -1:
            resolved.inode.gid = gid
        self.meta_charge(resolved.fs)
        return 0

    def sys_access(self, proc, path, mode):
        """Check permissions against the *real* uid (like access(2));
        mode bits: 4 read, 2 write, 1 exec, 0 existence."""
        resolved = self.namei(proc, path)
        cred = proc.user.cred
        real = type(cred)(cred.uid, cred.gid, cred.uid, cred.gid)
        if not resolved.inode.check_access(
                real, want_read=bool(mode & 4),
                want_write=bool(mode & 2), want_exec=bool(mode & 1)):
            raise UnixError(EACCES, path)
        self.charge(self.costs.inode_op_us)
        return 0

    def sys_link(self, proc, target, path):
        """Hard link (same filesystem only, like the real thing)."""
        source = self.namei(proc, target)
        if source.inode.is_dir():
            raise UnixError(EISDIR, target)
        destination = self.namei(proc, path, want_parent=True)
        if destination.inode is not None:
            raise UnixError(EEXIST, path)
        if destination.parent_fs is not source.fs:
            from repro.errors import EXDEV
            raise UnixError(EXDEV, "%s -> %s" % (path, target))
        if not destination.parent.check_access(proc.user.cred,
                                               want_write=True):
            raise UnixError(EACCES, path)
        destination.parent.entries[destination.name] = source.inode
        source.inode.nlink += 1
        self.meta_charge(source.fs)
        return 0

    def sys_rename(self, proc, old, new):
        source = self.namei(proc, old, follow=False, want_parent=True)
        if source.inode is None:
            raise UnixError(ENOENT, old)
        destination = self.namei(proc, new, want_parent=True)
        cred = proc.user.cred
        if not source.parent.check_access(cred, want_write=True) or \
                not destination.parent.check_access(cred,
                                                    want_write=True):
            raise UnixError(EACCES, new)
        if destination.parent_fs is not source.parent_fs:
            from repro.errors import EXDEV
            raise UnixError(EXDEV, "%s -> %s" % (old, new))
        if destination.inode is not None:
            if destination.inode.is_dir():
                raise UnixError(EISDIR, new)
            del destination.parent.entries[destination.name]
        del source.parent.entries[source.name]
        destination.parent.entries[destination.name] = source.inode
        source.inode.parent = destination.parent
        self.meta_charge(source.parent_fs)
        return 0

    def sys_readlink(self, proc, path):
        """Returns the link target (the Sun 3.0 call the user tools
        iterate to resolve symbolic links)."""
        resolved = self.namei(proc, path, follow=False)
        if not resolved.inode.is_link():
            raise UnixError(EINVAL, "%s is not a symlink" % path)
        self.charge(self.costs.inode_op_us)
        return resolved.inode.target

    # -- terminal control ---------------------------------------------------------------

    def _terminal_channel(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        if entry.is_device():
            chan = self.device_channel(proc, entry.inode)
            if hasattr(chan, "get_flags"):
                return chan
        raise UnixError(ENOTTY, "fd %d" % fd)

    def sys_ioctl(self, proc, fd, request, arg=0):
        chan = self._terminal_channel(proc, fd)
        self.charge(self.costs.tty_ioctl_us)
        if request == TIOCGETP:
            return chan.get_flags()
        if request == TIOCSETP:
            chan.set_flags(arg)
            return 0
        raise UnixError(EINVAL, "ioctl 0x%x" % request)

    def sys_isatty(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        if entry.is_device():
            chan = self.device_channel(proc, entry.inode)
            return 1 if getattr(chan, "isatty", lambda: False)() else 0
        return 0

    # -- sockets --------------------------------------------------------------------------

    def _socket_entry(self, proc, fd):
        entry = proc.user.fd_lookup(fd)
        if entry.ftype != FSOCKET or entry.socket is None:
            raise UnixError(ENOTSOCK, "fd %d" % fd)
        return entry

    def sys_socket(self, proc):
        network = self.machine.cluster.network
        entry = self.files.alloc(FSOCKET)
        entry.socket = network.sock_create(self.machine)
        entry.flags = 2  # O_RDWR
        fd = proc.user.fd_alloc(entry)
        self.charge(self.costs.filetable_op_us)
        return fd

    def sys_bind(self, proc, fd, port):
        entry = self._socket_entry(proc, fd)
        self.machine.cluster.network.sock_bind(self.machine,
                                               entry.socket, port)
        return 0

    def sys_listen(self, proc, fd):
        entry = self._socket_entry(proc, fd)
        self.machine.cluster.network.sock_listen(self.machine,
                                                 entry.socket)
        return 0

    def sys_accept(self, proc, fd):
        entry = self._socket_entry(proc, fd)
        conn = self.machine.cluster.network.sock_accept(self.machine,
                                                        entry.socket)
        new_entry = self.files.alloc(FSOCKET)
        new_entry.socket = conn
        new_entry.flags = 2
        return proc.user.fd_alloc(new_entry)

    def sys_connect(self, proc, fd, host, port):
        entry = self._socket_entry(proc, fd)
        self.machine.cluster.network.sock_connect(self.machine,
                                                  entry.socket, host,
                                                  port)
        return 0
