"""Lexical path algebra.

These functions implement exactly what the paper's modified kernel
does when it maintains the current-working-directory name and the
open-file names: combine the string the process handed to the kernel
with the stored cwd, "resolving any references to the current or
parent directories" — *lexically*, without touching symbolic links
(which is why the user-level tools must later resolve links with
``readlink()``).
"""


def is_absolute(path):
    return path.startswith("/")


def split_components(path):
    """Split a path into its non-empty components."""
    return [c for c in path.split("/") if c]


def normalize(path):
    """Collapse ``//``, ``.`` and ``..`` lexically.

    ``..`` at the root stays at the root, as in Unix.  The result is
    always an absolute path; ``path`` must be absolute.
    """
    if not is_absolute(path):
        raise ValueError("normalize() requires an absolute path: %r" % path)
    stack = []
    for component in split_components(path):
        if component == ".":
            continue
        if component == "..":
            if stack:
                stack.pop()
            continue
        stack.append(component)
    return "/" + "/".join(stack)


def joinpath(cwd, path):
    """Combine a cwd with a (possibly relative) path, lexically.

    This is the kernel's name-combining rule: an absolute argument
    replaces the stored name outright; a relative one is appended to
    the cwd and the result normalized.
    """
    if is_absolute(path):
        return normalize(path)
    if not is_absolute(cwd):
        raise ValueError("cwd must be absolute: %r" % cwd)
    return normalize(cwd + "/" + path)


def dirname(path):
    """Everything up to the final slash (``/`` for top-level names)."""
    path = normalize(path) if is_absolute(path) else path
    if "/" not in path:
        return "."
    head = path.rsplit("/", 1)[0]
    return head or "/"


def basename(path):
    """The final component of a path."""
    components = split_components(path)
    return components[-1] if components else "/"


def is_under(path, prefix):
    """True if ``path`` equals or lies beneath directory ``prefix``."""
    path = normalize(path)
    prefix = normalize(prefix)
    if prefix == "/":
        return True
    return path == prefix or path.startswith(prefix + "/")
