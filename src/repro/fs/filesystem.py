"""The per-machine inode filesystem.

A :class:`FileSystem` is the exported disk of one machine: a tree of
inodes rooted at ``root``.  All operations here are pure
data-structure manipulation; *costs* (local disk vs. NFS) are charged
by the kernel layer, which knows whether the calling machine owns this
filesystem.

Note the ``/n`` mount namespace is *not* part of a filesystem — it is
synthesized per-machine by :mod:`repro.fs.namei`, which is why a
remote machine's ``/n`` is invisible over NFS (the property that
breaks naive symlink handling in the paper's section 4.3 example).
"""

from repro.errors import (UnixError, ENOENT, EEXIST, ENOTDIR, EISDIR,
                          EINVAL, ENOTEMPTY, EACCES)
from repro.fs.inode import Inode, IFREG, IFDIR, IFLNK, IFCHR


class FileSystem:
    """One machine's exported file tree."""

    def __init__(self, hostname):
        self.hostname = hostname
        self.root = Inode(IFDIR, mode=0o755)
        self.root.parent = self.root

    # -- directory operations ---------------------------------------------

    def lookup(self, directory, name):
        """Look ``name`` up in ``directory``; handles ``.`` and ``..``."""
        if not directory.is_dir():
            raise UnixError(ENOTDIR, name)
        if name == ".":
            return directory
        if name == "..":
            return directory.parent if directory.parent is not None \
                else directory
        try:
            return directory.entries[name]
        except KeyError:
            raise UnixError(ENOENT, name) from None

    def entry_names(self, directory):
        if not directory.is_dir():
            raise UnixError(ENOTDIR)
        return sorted(directory.entries)

    def _enter(self, directory, name, inode):
        if not directory.is_dir():
            raise UnixError(ENOTDIR, name)
        if name in directory.entries or name in (".", ".."):
            raise UnixError(EEXIST, name)
        if not name or "/" in name:
            raise UnixError(EINVAL, name)
        directory.entries[name] = inode
        inode.parent = directory
        return inode

    def create(self, directory, name, mode=0o644, uid=0, gid=0):
        """Create an empty regular file."""
        return self._enter(directory, name,
                           Inode(IFREG, mode=mode, uid=uid, gid=gid))

    def mkdir(self, directory, name, mode=0o755, uid=0, gid=0):
        return self._enter(directory, name,
                           Inode(IFDIR, mode=mode, uid=uid, gid=gid))

    def symlink(self, directory, name, target, uid=0, gid=0):
        inode = Inode(IFLNK, mode=0o777, uid=uid, gid=gid)
        inode.target = target
        return self._enter(directory, name, inode)

    def mkchar(self, directory, name, device, mode=0o666):
        inode = Inode(IFCHR, mode=mode)
        inode.device = device
        return self._enter(directory, name, inode)

    def unlink(self, directory, name):
        inode = self.lookup(directory, name)
        if inode.is_dir():
            raise UnixError(EISDIR, name)
        del directory.entries[name]
        inode.nlink -= 1
        return inode

    def rmdir(self, directory, name):
        inode = self.lookup(directory, name)
        if not inode.is_dir():
            raise UnixError(ENOTDIR, name)
        if inode.entries:
            raise UnixError(ENOTEMPTY, name)
        del directory.entries[name]
        return inode

    # -- file data ----------------------------------------------------------

    def read(self, inode, offset, nbytes):
        if not inode.is_reg():
            raise UnixError(EINVAL, "read of non-regular file")
        if offset >= len(inode.data):
            return b""
        return bytes(inode.data[offset:offset + nbytes])

    def write(self, inode, offset, data):
        if not inode.is_reg():
            raise UnixError(EINVAL, "write of non-regular file")
        if offset > len(inode.data):
            inode.data.extend(b"\x00" * (offset - len(inode.data)))
        inode.data[offset:offset + len(data)] = data
        return len(data)

    def truncate(self, inode, size=0):
        if not inode.is_reg():
            raise UnixError(EINVAL, "truncate of non-regular file")
        del inode.data[size:]

    # -- convenience tree builders (used in machine setup and tests) --------

    def makedirs(self, path, mode=0o755):
        """mkdir -p by absolute path; returns the leaf directory."""
        node = self.root
        for component in [c for c in path.split("/") if c]:
            try:
                node = self.lookup(node, component)
            except UnixError as err:
                if err.errno != ENOENT:
                    raise
                node = self.mkdir(node, component, mode=mode)
        if not node.is_dir():
            raise UnixError(ENOTDIR, path)
        return node

    def resolve_local(self, path):
        """Walk an absolute path purely inside this filesystem.

        No symlink following, no ``/n`` namespace — a tool for tests
        and setup code, not a substitute for :mod:`repro.fs.namei`.
        """
        node = self.root
        for component in [c for c in path.split("/") if c]:
            node = self.lookup(node, component)
        return node

    def install_file(self, path, data, mode=0o644, uid=0, gid=0):
        """Create (or replace) a file at an absolute path, mkdir -p'ing."""
        from repro.fs.paths import dirname, basename
        directory = self.makedirs(dirname(path))
        name = basename(path)
        if name in directory.entries:
            inode = directory.entries[name]
            if not inode.is_reg():
                raise UnixError(EISDIR, path)
            inode.data[:] = data
        else:
            inode = self.create(directory, name, mode=mode, uid=uid,
                                gid=gid)
            inode.data[:] = data
        return inode

    def read_file(self, path):
        """Read a whole file by absolute local path (test helper)."""
        inode = self.resolve_local(path)
        if not inode.is_reg():
            raise UnixError(EACCES, path)
        return bytes(inode.data)
