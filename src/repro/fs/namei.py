"""Client-side path resolution (``namei``) with NFS remote roots.

Every machine resolves paths in its own *namespace*: its local
filesystem, plus a virtual ``/n`` directory holding the root of every
other machine in the cluster (the 8th-edition convention the paper's
site followed).  Two properties of real NFS that the paper's
user-level tools depend on are reproduced faithfully:

* **symbolic links are resolved on the client** — a link read from a
  remote filesystem is interpreted in the *calling* machine's
  namespace, so a link ``/usr -> /n/brador/usr`` stored on machine
  ``classic`` does not lead back to classic's disk when followed from
  another machine;
* **``/n`` is not exported** — it is a client-side mount namespace,
  so a path like ``/n/classic/n/brador/usr/foo`` fails with ENOENT
  ("NFS does not allow this syntax"), which is exactly why
  ``dumpproc`` must resolve symlinks *before* rewriting path names.
"""

from repro.errors import (UnixError, ENOENT, ENOTDIR, ELOOP, EACCES,
                          EINVAL)
from repro.fs.paths import split_components, is_absolute

#: maximum symlink expansions in one resolution (4.2BSD used 8)
MAXSYMLINKS = 8

#: the conventional mount directory name
MOUNT_DIR = "n"

_MOUNTDIR = object()  # sentinel position: the virtual /n directory


class ResolvedPath:
    """The result of a :meth:`Namespace.resolve` call."""

    def __init__(self, fs, inode, parent_fs, parent, name):
        self.fs = fs  #: filesystem owning the inode (None if missing)
        self.inode = inode  #: final inode, or None (want_parent mode)
        self.parent_fs = parent_fs
        self.parent = parent  #: containing directory inode
        self.name = name  #: final component name

    @property
    def exists(self):
        return self.inode is not None

    def __repr__(self):
        return "ResolvedPath(%r on %s)" % (
            self.name, self.fs.hostname if self.fs else "?")


class Namespace:
    """One machine's view of all filesystems."""

    def __init__(self, local_fs, remote_roots=None, charge=None):
        """``remote_roots`` maps hostname -> FileSystem (may be a dict
        or a callable); ``charge(op, fs)`` is invoked for every
        directory lookup and symlink read so the kernel can account
        local vs. NFS costs (``op`` is ``"lookup"`` or ``"readlink"``).
        """
        self.local_fs = local_fs
        self._remote_roots = remote_roots or {}
        self._charge = charge or (lambda op, fs: None)

    @property
    def hostname(self):
        return self.local_fs.hostname

    def remote_fs(self, hostname):
        """The exported filesystem of ``hostname``, or None."""
        if callable(self._remote_roots):
            return self._remote_roots(hostname)
        return self._remote_roots.get(hostname)

    def known_hosts(self):
        if callable(self._remote_roots):
            raise TypeError("host enumeration not available")
        return sorted(self._remote_roots)

    # -- resolution ----------------------------------------------------------

    def resolve(self, path, cwd=None, follow=True, want_parent=False):
        """Resolve ``path`` to a :class:`ResolvedPath`.

        ``cwd`` is a ``(fs, inode)`` pair for relative paths (defaults
        to the local root).  ``follow`` controls whether a symlink in
        the *final* component is followed.  With ``want_parent`` the
        final component may be missing; the parent directory and leaf
        name are returned so the caller can create it.
        """
        if not path:
            raise UnixError(ENOENT, "empty path")
        components = split_components(path)
        if is_absolute(path):
            position = ("fs", self.local_fs, self.local_fs.root)
        else:
            if cwd is None:
                position = ("fs", self.local_fs, self.local_fs.root)
            else:
                position = ("fs", cwd[0], cwd[1])
        if not components:
            # the path was "/" (or ".")
            fs, inode = position[1], position[2]
            return ResolvedPath(fs, inode, fs, inode.parent or inode, ".")

        nlinks = 0
        parent_fs, parent = None, None
        index = 0
        while index < len(components):
            name = components[index]
            is_final = index == len(components) - 1

            if position is _MOUNTDIR or (
                    isinstance(position, tuple) and position[0] == "mnt"):
                # inside the virtual /n directory
                if name == ".":
                    index += 1
                    continue
                if name == "..":
                    position = ("fs", self.local_fs, self.local_fs.root)
                    index += 1
                    continue
                remote = self.remote_fs(name)
                if remote is None:
                    if is_final and want_parent:
                        raise UnixError(EACCES,
                                        "/n is a mount namespace")
                    raise UnixError(ENOENT, "/n/%s" % name)
                position = ("fs", remote, remote.root)
                parent_fs, parent = remote, remote.root
                index += 1
                continue

            __, fs, inode = position
            if not inode.is_dir():
                raise UnixError(ENOTDIR, name)

            if name == "..":
                if inode is fs.root:
                    if fs is self.local_fs:
                        pass  # root's .. is root
                    else:
                        position = _MOUNTDIR
                        index += 1
                        continue
                else:
                    inode = inode.parent
                position = ("fs", fs, inode)
                index += 1
                continue
            if name == ".":
                index += 1
                continue

            # the /n mount namespace exists only at the *local* root
            if (name == MOUNT_DIR and fs is self.local_fs
                    and inode is fs.root
                    and MOUNT_DIR not in inode.entries):
                if is_final and want_parent:
                    raise UnixError(EACCES, "/n is a mount namespace")
                position = _MOUNTDIR
                index += 1
                continue

            self._charge("lookup", fs)
            try:
                child = fs.lookup(inode, name)
            except UnixError as err:
                if err.errno == ENOENT and is_final and want_parent:
                    return ResolvedPath(None, None, fs, inode, name)
                raise

            if child.is_link() and (follow or not is_final):
                nlinks += 1
                if nlinks > MAXSYMLINKS:
                    raise UnixError(ELOOP, path)
                self._charge("readlink", fs)
                target = child.target
                target_components = split_components(target)
                components = target_components + components[index + 1:]
                index = 0
                if is_absolute(target):
                    # client-side resolution: restart from *our* root
                    position = ("fs", self.local_fs, self.local_fs.root)
                else:
                    position = ("fs", fs, inode)
                if not components:
                    raise UnixError(ENOENT, "empty symlink target")
                continue

            if is_final:
                if want_parent:
                    return ResolvedPath(fs, child, fs, inode, name)
                return ResolvedPath(fs, child, fs, inode, name)
            parent_fs, parent = fs, inode
            position = ("fs", fs, child)
            index += 1

        # components exhausted via trailing "." or ".."
        if want_parent:
            raise UnixError(EINVAL, path)
        if position is _MOUNTDIR:
            raise UnixError(EACCES, "/n is a mount namespace")
        __, fs, inode = position
        return ResolvedPath(fs, inode, parent_fs or fs,
                            parent or inode.parent or inode, ".")

    # -- convenience -----------------------------------------------------------

    def resolve_symlinks(self, path):
        """Expand every symbolic link in an absolute ``path`` and
        return the resulting link-free path string.

        This mirrors the algorithm the paper prescribes for the
        user-level tools — walk the name a component at a time,
        calling ``readlink()`` on each prefix and splicing targets in
        — and is used by tests; the real ``dumpproc`` implementation
        does the same thing through system calls
        (:mod:`repro.core.symlinks`).
        """
        from repro.fs.paths import normalize
        if not is_absolute(path):
            raise ValueError("resolve_symlinks requires an absolute path")
        pending = split_components(normalize(path))
        resolved = "/"
        expansions = 0
        while pending:
            component = pending.pop(0)
            candidate = resolved.rstrip("/") + "/" + component
            try:
                found = self.resolve(candidate, follow=False)
                inode = found.inode
            except UnixError:
                inode = None
            if inode is not None and inode.is_link():
                expansions += 1
                if expansions > MAXSYMLINKS:
                    raise UnixError(ELOOP, path)
                target = inode.target
                if is_absolute(target):
                    resolved = "/"
                    pending = split_components(target) + pending
                else:
                    pending = split_components(target) + pending
                continue
            resolved = normalize(candidate)
        return resolved
