"""Inodes: the on-disk representation of files.

As the paper observes, the unmodified kernel "keeps information about
where the file is located physically on disk, in a structure called an
inode" — names are not recoverable from it.  Our inodes are the same:
they carry type, permissions, ownership and contents, but no name.
The name-tracking fields the paper adds live in the *file table* and
*user structure* (:mod:`repro.kernel.filetable`,
:mod:`repro.kernel.user`), not here.
"""

import itertools

IFREG = 0o100000  #: regular file
IFDIR = 0o040000  #: directory
IFLNK = 0o120000  #: symbolic link
IFCHR = 0o020000  #: character device

_TYPE_NAMES = {IFREG: "file", IFDIR: "directory", IFLNK: "symlink",
               IFCHR: "device"}


def type_name(itype):
    return _TYPE_NAMES.get(itype, "?")


class Stat:
    """The result of ``stat()``/``fstat()``."""

    __slots__ = ("ino", "itype", "mode", "uid", "gid", "size", "nlink",
                 "dev", "rdev")

    def __init__(self, ino, itype, mode, uid, gid, size, nlink, dev,
                 rdev=None):
        self.ino = ino
        self.itype = itype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.size = size
        self.nlink = nlink
        self.dev = dev
        self.rdev = rdev  #: character-device name for IFCHR inodes

    def is_terminal(self):
        """True for a terminal device (any character device but null)."""
        return self.itype == IFCHR and self.rdev != "null"

    def is_dir(self):
        return self.itype == IFDIR

    def is_reg(self):
        return self.itype == IFREG

    def is_chr(self):
        return self.itype == IFCHR

    def __repr__(self):
        return ("Stat(ino=%d %s mode=%o uid=%d size=%d)"
                % (self.ino, type_name(self.itype), self.mode, self.uid,
                   self.size))


class Inode:
    """One inode.  Directory entries map names to child inodes."""

    _counter = itertools.count(2)

    def __init__(self, itype, mode=0o644, uid=0, gid=0):
        self.ino = next(Inode._counter)
        self.itype = itype
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = 1
        self.parent = None  #: containing directory (for ``..``)
        if itype == IFREG:
            self.data = bytearray()
        elif itype == IFDIR:
            self.entries = {}
        elif itype == IFLNK:
            self.target = ""
        elif itype == IFCHR:
            self.device = None  #: device name, e.g. "null" or "tty"
        else:
            raise ValueError("bad inode type %o" % itype)

    @property
    def size(self):
        if self.itype == IFREG:
            return len(self.data)
        if self.itype == IFLNK:
            return len(self.target)
        if self.itype == IFDIR:
            return len(self.entries)
        return 0

    def is_dir(self):
        return self.itype == IFDIR

    def is_reg(self):
        return self.itype == IFREG

    def is_link(self):
        return self.itype == IFLNK

    def is_chr(self):
        return self.itype == IFCHR

    def stat(self, dev=0):
        rdev = self.device if self.itype == IFCHR else None
        return Stat(self.ino, self.itype, self.mode, self.uid, self.gid,
                    self.size, self.nlink, dev, rdev)

    def check_access(self, cred, want_read=False, want_write=False,
                     want_exec=False):
        """Unix owner/group/other permission check.

        Returns True if the credentials allow the requested access.
        The superuser (uid 0) passes everything except exec of a file
        with no exec bits at all.
        """
        if cred is None:
            return True
        if cred.euid == 0:
            if want_exec and not (self.mode & 0o111) \
                    and self.itype == IFREG:
                return False
            return True
        if cred.euid == self.uid:
            shift = 6
        elif cred.egid == self.gid:
            shift = 3
        else:
            shift = 0
        bits = (self.mode >> shift) & 0o7
        if want_read and not bits & 0o4:
            return False
        if want_write and not bits & 0o2:
            return False
        if want_exec and not bits & 0o1:
            return False
        return True

    def __repr__(self):
        return "Inode(%d, %s)" % (self.ino, type_name(self.itype))
