"""The filesystem substrate.

Provides a per-machine inode filesystem (:mod:`repro.fs.filesystem`),
lexical path utilities matching how the modified kernel combines names
(:mod:`repro.fs.paths`), and client-side path resolution with
NFS-style ``/n/<host>`` remote roots and symbolic links
(:mod:`repro.fs.namei`).
"""

from repro.fs.paths import (normalize, joinpath, split_components,
                            dirname, basename, is_absolute)
from repro.fs.inode import (Inode, IFREG, IFDIR, IFLNK, IFCHR, Stat,
                            type_name)
from repro.fs.filesystem import FileSystem
from repro.fs.namei import Namespace, ResolvedPath

__all__ = [
    "normalize", "joinpath", "split_components", "dirname", "basename",
    "is_absolute",
    "Inode", "IFREG", "IFDIR", "IFLNK", "IFCHR", "Stat", "type_name",
    "FileSystem", "Namespace", "ResolvedPath",
]
