"""The cluster-shared content-addressed chunk store.

Incremental dumps (``CostModel.incremental_dumps``) split the a.out
and stack blobs into fixed-size chunks keyed by a short content
digest.  The dump files then carry only *manifests* (digest lists, see
:class:`repro.core.formats.ChunkManifest`); the chunk payloads live in
this store, shared by every machine of the cluster the way the dump
directory itself is shared over NFS.

The store is modelled after a log-structured segment shared through
the network filesystem:

* ``put`` appends the chunk to the local machine's store segment —
  sequential block writes at local-disk rates, no per-chunk create
  (the whole point: ``disk_create_us`` stays a per-*file* cost and the
  manifests are the only files a dump creates).  A chunk already
  present anywhere in the store is deduplicated for free.
* ``get`` reads the chunk from the nearest holder: a local copy at
  local-disk rates, otherwise over NFS from the first reachable
  machine holding it (hosts sorted by name, so both simulation
  engines pick the same holder).  A remote fetch leaves a local copy
  behind (write-behind caching, not charged — the write happens off
  the migration path).

Digesting is charged per byte (``digest_byte_us``); the digest itself
is a real (truncated blake2b) hash so content collisions behave like
content equality, deterministically across runs.

Fault-injection sites: ``store.put`` and ``store.get`` (the latter
also honours ``corrupt`` filters, which a restart detects through the
end-to-end digest check and reports as ``EIO``).
"""

import hashlib

from repro.errors import UnixError, EIO, EHOSTDOWN

#: digest width: 64 bits is plenty for a cluster-lifetime of chunks
DIGEST_BYTES = 8


def chunk_digest(blob):
    """The (uncharged) content digest of a chunk."""
    return hashlib.blake2b(bytes(blob), digest_size=DIGEST_BYTES).digest()


class ChunkStore:
    """One per cluster; holds chunk payloads and who has a copy."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._chunks = {}   # digest -> bytes
        self._holders = {}  # digest -> set of hostnames with a copy

    def __len__(self):
        return len(self._chunks)

    def contains(self, digest):
        return digest in self._chunks

    def holders(self, digest):
        return frozenset(self._holders.get(digest, ()))

    def digest(self, kernel, blob):
        """Digest ``blob``, charging the per-byte checksum cost."""
        kernel.charge(kernel.costs.digest_byte_us * len(blob))
        return chunk_digest(blob)

    def put(self, kernel, digest, blob):
        """Store one chunk; True if it was new (and paid for).

        A duplicate put is the dedup hit the incremental dump exists
        for: nothing is written, nothing is charged.
        """
        kernel.fault_check("store.put", digest.hex())
        perf = self.cluster.perf
        tracer = self.cluster.tracer
        if digest in self._chunks:
            perf.chunk_dedup_hits += 1
            if tracer.enabled:
                tracer.emit("chunk", "dedup", kernel.machine,
                            digest=digest.hex(), bytes=len(blob))
            return False
        self._chunks[digest] = bytes(blob)
        self._holders[digest] = {kernel.hostname}
        perf.chunk_puts += 1
        perf.chunk_bytes_written += len(blob)
        kernel.io_charge(kernel.machine.fs, len(blob), write=True)
        if tracer.enabled:
            tracer.emit("chunk", "put", kernel.machine,
                        digest=digest.hex(), bytes=len(blob))
        return True

    def get(self, kernel, digest):
        """Fetch one chunk, charging local or NFS read rates."""
        kernel.fault_check("store.get", digest.hex())
        perf = self.cluster.perf
        tracer = self.cluster.tracer
        blob = self._chunks.get(digest)
        if blob is None:
            raise UnixError(EIO, "missing chunk %s" % digest.hex())
        holders = self._holders[digest]
        perf.chunk_gets += 1
        if kernel.hostname in holders:
            kernel.io_charge(kernel.machine.fs, len(blob))
            source = kernel.hostname
        else:
            source = self._pick_holder(kernel, holders)
            kernel.io_charge(self.cluster.machines[source].fs, len(blob))
            perf.chunk_remote_fetches += 1
            perf.chunk_bytes_fetched += len(blob)
            holders.add(kernel.hostname)  # write-behind local copy
        blob = kernel.fault_filter("store.get", blob, digest.hex())
        if chunk_digest(blob) != digest:
            raise UnixError(EIO, "chunk %s failed its digest check"
                            % digest.hex())
        if tracer.enabled:
            tracer.emit("chunk", "get", kernel.machine,
                        digest=digest.hex(), bytes=len(blob),
                        source=source)
        return blob

    def _pick_holder(self, kernel, holders):
        """The holder a remote fetch reads from (deterministic)."""
        for host in sorted(holders):
            machine = self.cluster.machines.get(host)
            if machine is None or not machine.running:
                continue
            if not self.cluster.network.reachable(kernel.hostname, host):
                continue
            return host
        raise UnixError(EHOSTDOWN, "no reachable holder for chunk")
