"""Cluster-shared content-addressed chunk store (DESIGN.md section 10)."""

from repro.store.chunkstore import ChunkStore, DIGEST_BYTES, chunk_digest

__all__ = ["ChunkStore", "DIGEST_BYTES", "chunk_digest"]
