"""Small native utilities: echo, cat, pwd, true, false.

Enough of a userland for the shell to be useful and for pipelines to
have something to pump through.
"""

from repro.errors import iserr, errno_name
from repro.kernel.constants import O_RDONLY
from repro.programs.base import print_err, read_all, write_all


def echo_main(argv, env):
    """echo [args...] — arguments to stdout, newline-terminated."""
    yield from write_all(1, " ".join(argv[1:]) + "\n")
    return 0


def cat_main(argv, env):
    """cat [file...] — concatenate files (or stdin) to stdout."""
    status = 0
    names = argv[1:]
    if not names:
        data = yield from read_all(0)
        if not iserr(data):
            yield from write_all(1, data)
        return 0
    for name in names:
        fd = yield ("open", name, O_RDONLY, 0)
        if iserr(fd):
            yield from print_err("cat: %s: %s"
                                 % (name, errno_name(-fd)))
            status = 1
            continue
        data = yield from read_all(fd)
        yield ("close", fd)
        if iserr(data):
            status = 1
            continue
        yield from write_all(1, data)
    return status


def pwd_main(argv, env):
    """pwd — the kernel-tracked current directory name."""
    cwd = yield ("getcwd",)
    if iserr(cwd):
        yield from print_err("pwd: cannot determine cwd")
        return 1
    yield from write_all(1, cwd + "\n")
    return 0


def wc_main(argv, env):
    """wc [file] — line, word and byte counts."""
    if len(argv) > 1:
        from repro.programs.base import read_file
        data = yield from read_file(argv[1])
        if iserr(data):
            yield from print_err("wc: %s: %s"
                                 % (argv[1], errno_name(-data)))
            return 1
    else:
        data = yield from read_all(0)
        if iserr(data):
            return 1
    lines = data.count(b"\n")
    words = len(data.split())
    yield from write_all(1, "%7d %7d %7d\n" % (lines, words,
                                               len(data)))
    return 0


def true_main(argv, env):
    yield ("getpid",)
    return 0


def false_main(argv, env):
    yield ("getpid",)
    return 1
