"""``kill`` — send a signal; ``kill -32 pid`` sends SIGDUMP by hand.

"A new signal, SIGDUMP.  When a process receives this signal (which
can be sent using the UNIX kill system call), the process is
terminated, and all the information that is necessary to restart it
will be dumped to disk."
"""

from repro.errors import iserr, errno_name
from repro.kernel.signals import SIGTERM
from repro.programs.base import print_err

USAGE = "usage: kill [-signal] pid ..."


def kill_main(argv, env):
    args = argv[1:]
    signal = SIGTERM
    if args and args[0].startswith("-") and args[0][1:].isdigit():
        signal = int(args[0][1:])
        args = args[1:]
    if not args:
        yield from print_err(USAGE)
        return 1
    status = 0
    for arg in args:
        try:
            pid = int(arg)
        except ValueError:
            yield from print_err("kill: bad pid %r" % arg)
            status = 1
            continue
        result = yield ("kill", pid, signal)
        if iserr(result):
            yield from print_err("kill: %d: %s"
                                 % (pid, errno_name(-result)))
            status = 1
    return status
