"""Coroutine helpers for native (Python-coded) user programs.

Native programs are generators that interact with the kernel only by
yielding syscall requests (``("open", path, flags)``) and receiving
results.  These helpers are sub-coroutines used with ``yield from``;
they compose like ordinary library calls but every kernel interaction
still flows through the syscall boundary (and is charged for).

Error convention: kernel errors arrive as negative ints (``-errno``);
:func:`repro.errors.iserr` tests for them.
"""

from repro.errors import iserr
from repro.kernel.constants import (O_CREAT, O_RDONLY, O_TRUNC,
                                    O_WRONLY)


def write_all(fd, data):
    """Write every byte of ``data`` (retrying partial writes)."""
    if isinstance(data, str):
        data = data.encode("latin-1")
    done = 0
    while done < len(data):
        count = yield ("write", fd, data[done:])
        if iserr(count):
            return count
        done += count
    return done


def print_to(fd, text):
    return (yield from write_all(fd, text))


def println(text=""):
    return (yield from write_all(1, text + "\n"))


def print_err(text):
    return (yield from write_all(2, text + "\n"))


def read_all(fd, chunk=4096):
    """Read ``fd`` to EOF; returns bytes (or -errno)."""
    parts = []
    while True:
        data = yield ("read", fd, chunk)
        if iserr(data):
            return data
        if data == b"":
            return b"".join(parts)
        parts.append(data)


def read_file(path):
    """Open + read a whole file; bytes or -errno."""
    fd = yield ("open", path, O_RDONLY, 0)
    if iserr(fd):
        return fd
    data = yield from read_all(fd)
    yield ("close", fd)
    return data


def write_file(path, data, mode=0o600):
    """Create/overwrite ``path`` with ``data``; 0 or -errno."""
    fd = yield ("open", path, O_WRONLY | O_CREAT | O_TRUNC, mode)
    if iserr(fd):
        return fd
    result = yield from write_all(fd, data)
    yield ("close", fd)
    return 0 if not iserr(result) else result


class LineReader:
    """Buffered line reading over a raw fd (sockets, files)."""

    def __init__(self, fd):
        self.fd = fd
        self.buffer = bytearray()
        self.eof = False

    def readline(self):
        """yield-from: one line without the newline, or None at EOF."""
        while b"\n" not in self.buffer and not self.eof:
            data = yield ("read", self.fd, 512)
            if iserr(data) or data == b"":
                self.eof = True
                break
            self.buffer.extend(data)
        if b"\n" in self.buffer:
            index = self.buffer.index(b"\n")
            line = bytes(self.buffer[:index]).decode("latin-1")
            del self.buffer[:index + 1]
            return line
        if self.buffer:
            line = bytes(self.buffer).decode("latin-1")
            del self.buffer[:]
            return line
        return None

    def read_remaining(self):
        """yield-from: everything up to EOF as bytes."""
        rest = yield from read_all(self.fd)
        if iserr(rest):
            rest = b""
        data = bytes(self.buffer) + rest
        del self.buffer[:]
        self.eof = True
        return data


def parse_options(argv, spec):
    """A tiny getopt: ``spec`` maps ``-x`` flags to ``True`` (takes a
    value) or ``False`` (boolean).  Returns ``(options, positional)``
    or an error string.
    """
    options = {}
    positional = []
    index = 1
    while index < len(argv):
        arg = argv[index]
        if arg.startswith("-") and len(arg) > 1:
            if arg not in spec:
                return "unknown option %s" % arg, None
            if spec[arg]:
                if index + 1 >= len(argv):
                    return "option %s needs a value" % arg, None
                options[arg] = argv[index + 1]
                index += 2
            else:
                options[arg] = True
                index += 1
        else:
            positional.append(arg)
            index += 1
    return options, positional
