"""User programs: native system tools and guest assembly programs.

``install_standard_programs(machine)`` provisions a machine the way
the paper's workstations were provisioned: the three migration
commands (``dumpproc``, ``restart``, ``migrate``), supporting tools
(``ps``, ``kill``, ``rshd``, ``migrationd``) and the guest test
programs under ``/bin``.
"""

from repro.vm.assembler import assemble


def install_standard_programs(machine):
    """Install the full program suite on ``machine``."""
    from repro.programs.dumpproc import dumpproc_main
    from repro.programs.restart import restart_main
    from repro.programs.migrate import migrate_main
    from repro.programs.psprog import ps_main
    from repro.programs.migstat import migstat_main
    from repro.programs.killprog import kill_main
    from repro.net.rsh import rshd_main, rsh_main, rshd_helper_main
    from repro.net.migrationd import (migrationd_main,
                                      migrationd_helper_main,
                                      migrationd_run_main)
    from repro.programs.shell import sh_main
    from repro.programs.ckptd import ckptd_main
    from repro.programs.recoveryd import recoveryd_main
    from repro.programs.loadd import loadd_main, loadd_recv_main
    from repro.programs.statd import statd_main, statd_recv_main
    from repro.programs.migtop import migtop_main
    from repro.programs.coreutils import (echo_main, cat_main,
                                          pwd_main, wc_main,
                                          true_main, false_main)
    from repro.programs import guest

    machine.install_native_program("dumpproc", dumpproc_main,
                                   size=8192)
    machine.install_native_program("restart", restart_main, size=6144)
    machine.install_native_program("migrate", migrate_main, size=6144)
    machine.install_native_program("ps", ps_main, size=28672)
    machine.install_native_program("migstat", migstat_main, size=8192)
    machine.install_native_program("kill", kill_main, size=8192)
    machine.install_native_program("rsh", rsh_main, size=24576)
    machine.install_native_program("rshd", rshd_main, size=24576)
    machine.install_native_program("rshd-helper", rshd_helper_main,
                                   size=16384)
    machine.install_native_program("migrationd", migrationd_main,
                                   size=20480)
    machine.install_native_program("migrationd-helper",
                                   migrationd_helper_main, size=16384)
    machine.install_native_program("migrationd-run",
                                   migrationd_run_main, size=16384)
    machine.install_native_program("sh", sh_main, size=32768)
    machine.install_native_program("ckptd", ckptd_main, size=12288)
    machine.install_native_program("recoveryd", recoveryd_main,
                                   size=16384)
    machine.install_native_program("loadd", loadd_main, size=16384)
    machine.install_native_program("loadd-recv", loadd_recv_main,
                                   size=8192)
    machine.install_native_program("statd", statd_main, size=16384)
    machine.install_native_program("statd-recv", statd_recv_main,
                                   size=8192)
    machine.install_native_program("migtop", migtop_main, size=8192)
    machine.install_native_program("echo", echo_main, size=2048)
    machine.install_native_program("cat", cat_main, size=4096)
    machine.install_native_program("pwd", pwd_main, size=2048)
    machine.install_native_program("wc", wc_main, size=6144)
    machine.install_native_program("true", true_main, size=1024)
    machine.install_native_program("false", false_main, size=1024)
    guest.install_guest_programs(machine)
    return machine


def start_network_daemons(machine, rsh=True, daemon=True):
    """Boot-time daemons: rshd and (optionally) migrationd."""
    handles = []
    if rsh:
        handles.append(machine.spawn("/bin/rshd", uid=0))
    if daemon:
        handles.append(machine.spawn("/bin/migrationd", uid=0))
    return handles
