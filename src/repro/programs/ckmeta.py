"""The on-disk protocol between ``ckptd`` and ``recoveryd``.

A checkpointed job's shared directory (on the NFS file server, so it
survives the home workstation) holds:

* ``ck<N>.aout`` / ``ck<N>.files`` / ``ck<N>.stack`` — the archived
  dump of round *N*, plus ``ck<N>.fd<slot>`` snapshots of the open
  regular files;
* ``meta`` — advisory state: where the job lives, its current pid,
  the latest saved round, the owner's epoch.  Written atomically
  (temp file + same-directory rename) so a reader never sees a torn
  update;
* ``claim.<E>`` — the **fence**.  Claim files are created with
  ``O_CREAT|O_EXCL`` and never written again, so creation is an
  atomic test-and-set on the server: whoever creates ``claim.<E>``
  owns epoch *E*.  A checkpoint daemon that finds a claim with an
  epoch above its own has been superseded — some recovery daemon
  declared its host dead and restarted the job elsewhere — and must
  kill its copy (see ``EX_FENCED``).  This is what keeps a healed
  partition from leaving two live copies of one job.
"""

from repro.errors import iserr
from repro.programs.base import read_file, write_file

#: meta keys parsed as integers
_INT_KEYS = ("pid", "round", "epoch", "interval", "rounds_left")


def pack_meta(meta):
    """Serialise a meta dict to sorted ``key=value`` lines."""
    return "".join("%s=%s\n" % (key, meta[key]) for key in sorted(meta))


def parse_meta(blob):
    """Parse ``key=value`` lines; ints where the protocol says int."""
    meta = {}
    for line in blob.decode("latin-1").splitlines():
        key, sep, value = line.partition("=")
        if not sep:
            continue
        meta[key] = int(value) if key in _INT_KEYS else value
    return meta


def read_meta(directory):
    """yield-from: the parsed meta dict, or -errno."""
    blob = yield from read_file("%s/meta" % directory)
    if iserr(blob):
        return blob
    try:
        return parse_meta(blob)
    except ValueError:
        from repro.errors import EINVAL
        return -EINVAL


def write_meta(directory, meta):
    """yield-from: atomically replace ``meta``; 0 or -errno.

    Write-then-rename within one directory, so concurrent readers see
    either the old or the new contents, never a prefix.
    """
    tmp = "%s/meta.tmp" % directory
    result = yield from write_file(tmp, pack_meta(meta), mode=0o644)
    if iserr(result):
        return result
    result = yield ("rename", tmp, "%s/meta" % directory)
    return result if iserr(result) else 0


def claim_name(epoch):
    return "claim.%d" % epoch


def highest_claim(names):
    """The largest epoch among ``claim.<E>`` entries; -1 if none."""
    best = -1
    for name in names:
        if name.startswith("claim."):
            try:
                best = max(best, int(name[6:]))
            except ValueError:
                pass
    return best
