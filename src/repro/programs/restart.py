"""The ``restart`` command (sections 4.1 and 4.4).

"Restart a process that was killed on some host with the dumpproc
command. ... The process will be restarted on the host on which the
command was given and at the terminal (or window) on which the command
was typed."

Section 4.4's recipe:

* verify the three dump files exist and check their magic numbers;
* read the old credentials from stackXXXXX (the only thing read from
  it at user level) and establish them with setreuid();
* establish the old current working directory;
* reopen every file with the right access modes and offset, keeping
  the fd numbers identical; files that cannot be reopened — and all
  sockets — become /dev/null, except stdio which falls back to the
  terminal "so that the user may have some control";
* close the /dev/null placeholders that only existed to keep fd
  numbers in order;
* re-establish the dumped terminal modes on the current terminal;
* call rest_proc().

The fd juggling below keeps copies of restart's own stdio in the top
descriptor slots while the table is rebuilt, so that when a dumped
stdio stream cannot be reattached to a terminal (the rsh case) it can
at least inherit restart's own channel.

Hardening (DESIGN.md section 7): a failed restart reports *why* via
distinct exit statuses (``repro.programs.exitcodes``) and, when the
dump itself is bad, removes the orphaned ``a.out/files/stack`` files
instead of leaving them in ``/usr/tmp`` forever.  ``-k`` suppresses
the cleanup — ``migrate`` passes it so a failed attempt leaves the
files for the next retry round (and so their disappearance remains an
unambiguous success signal).  Permission failures never clean up:
the files belong to somebody else.
"""

import struct

from repro.errors import (iserr, errno_name, UnixError, EACCES,
                          ENOENT, EPERM)
from repro.kernel.constants import (NOFILE, O_ACCMODE, O_APPEND,
                                    O_RDONLY, O_RDWR, SEEK_SET,
                                    TIOCSETP)
from repro.core.formats import (FilesInfo, StackInfo, dump_file_names,
                                FD_FILE, FD_SOCKET, FD_SOCKET_BOUND)
from repro.kernel.cred import PACKED_SIZE as CRED_SIZE
from repro.programs.base import parse_options, print_err, read_file
from repro.programs.exitcodes import (EX_BADDUMP, EX_FAIL,
                                      EX_RESTPROC, EX_TRANSIENT)
from repro.vm.aout import AOUT_MAGIC

USAGE = "usage: restart -p pid [-h host] [-k]"

#: descriptor slots used to stash restart's own stdio during rebuild
_SAVE_BASE = NOFILE - 3


def restart_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True, "-h": True,
                                    "-k": False})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return EX_FAIL
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL
    keep = bool(opts.get("-k"))

    local = yield ("gethostname",)
    host = opts.get("-h") or local
    directory = "/usr/tmp" if host == local \
        else "/n/%s/usr/tmp" % host
    paths = dump_file_names(pid, directory)
    aout_path, files_path, stack_path = paths

    # -- verify the three files and their magic numbers -------------------
    magic = yield from _read_prefix(aout_path, 2)
    if iserr(magic) or struct.unpack("<H", magic)[0] != AOUT_MAGIC:
        yield from print_err("restart: %s is not a dumped executable"
                             % aout_path)
        return (yield from _fail_dump(magic, paths, keep))

    files_blob = yield from read_file(files_path)
    if iserr(files_blob):
        yield from print_err("restart: cannot read %s" % files_path)
        return (yield from _fail_dump(files_blob, paths, keep))
    try:
        info = FilesInfo.unpack(files_blob)
    except UnixError:
        yield from print_err("restart: bad magic in %s" % files_path)
        return (yield from _fail_dump(0, paths, keep))

    # the credentials are the only thing read from stackXXXXX here
    header = yield from _read_prefix(stack_path, 2 + CRED_SIZE + 4)
    if iserr(header):
        yield from print_err("restart: cannot read %s" % stack_path)
        return (yield from _fail_dump(header, paths, keep))
    try:
        cred, __ = StackInfo.peek_header(header)
    except UnixError:
        yield from print_err("restart: bad magic in %s" % stack_path)
        return (yield from _fail_dump(0, paths, keep))

    # -- adopt the old identity --------------------------------------------
    result = yield ("setreuid", cred.uid, cred.euid)
    if iserr(result):
        yield from print_err("restart: permission denied (%s)"
                             % errno_name(-result))
        return EX_FAIL  # not our files to remove
    result = yield ("chdir", info.cwd)
    if iserr(result):
        yield from print_err("restart: cannot chdir to %s: %s"
                             % (info.cwd, errno_name(-result)))
        return EX_FAIL

    # -- rebuild the descriptor table ----------------------------------------
    for save in range(3):
        yield ("dup2", save, _SAVE_BASE + save)
    placeholders = []
    for fd in range(_SAVE_BASE):
        yield from _restore_slot(fd, info.entries[fd], placeholders,
                                 saved=True)
    for save in range(3):
        yield ("close", _SAVE_BASE + save)
    for fd in range(_SAVE_BASE, NOFILE):
        yield from _restore_slot(fd, info.entries[fd], placeholders,
                                 saved=False)
    for fd in placeholders:
        yield ("close", fd)

    # -- terminal modes -----------------------------------------------------------
    tty_fd = yield ("open", "/dev/tty", O_RDWR, 0)
    if not iserr(tty_fd):
        yield ("ioctl", tty_fd, TIOCSETP, info.tty_flags)
        yield ("close", tty_fd)
    # (under rsh there is no terminal: modes cannot be preserved)

    # -- section 7 extension: remember who we used to be ---------------------------
    yield ("set_oldids", pid, info.hostname)

    # -- and go ----------------------------------------------------------------------
    result = yield ("rest_proc", aout_path, stack_path)
    # reached only on failure
    yield from print_err("restart: rest_proc failed: %s"
                         % errno_name(-result if iserr(result)
                                      else result))
    if not keep:
        yield from _cleanup(paths)
    return EX_RESTPROC


def _fail_dump(err, paths, keep):
    """yield-from: classify a dump-verification failure.

    ``err`` is the failing return value (or 0 for a parse failure).
    Permission problems are EX_FAIL and never clean up (the dump
    belongs to somebody else); other read errors are transient (the
    files may be fine — it is the read that failed); a missing or
    corrupt file is EX_BADDUMP, and the orphaned remainder is removed
    unless ``-k`` was given.
    """
    if err in (-EACCES, -EPERM):
        return EX_FAIL
    if iserr(err) and err != -ENOENT:
        return EX_TRANSIENT
    if not keep:
        yield from _cleanup(paths)
    return EX_BADDUMP


def _cleanup(paths):
    """Remove the orphaned dump files (best effort)."""
    for path in paths:
        yield ("unlink", path)


def _read_prefix(path, nbytes):
    """yield-from: the first bytes of a file, or a -errno int."""
    from repro.errors import EIO
    fd = yield ("open", path, O_RDONLY, 0)
    if iserr(fd):
        return fd
    data = yield ("read", fd, nbytes)
    yield ("close", fd)
    if iserr(data):
        return data
    if len(data) < nbytes:
        return -EIO  # truncated: the dump is damaged
    return data


def _restore_slot(fd, entry, placeholders, saved):
    """Install the right object at descriptor ``fd``.

    Relies on open() assigning the lowest free descriptor: slots are
    rebuilt in ascending order with no holes, so each open lands
    exactly on ``fd``.
    """
    yield ("close", fd)  # whatever we held there (may be EBADF)
    if entry.kind == FD_FILE and entry.path:
        flags = entry.flags & (O_ACCMODE | O_APPEND)
        new_fd = yield ("open", entry.path, flags, 0)
        if not iserr(new_fd):
            if entry.path != "/dev/tty":
                yield ("lseek", new_fd, entry.offset, SEEK_SET)
            return
        if fd < 3:
            # stdio: try the terminal, then restart's own channel
            new_fd = yield ("open", "/dev/tty", O_RDWR, 0)
            if not iserr(new_fd):
                return
            if saved:
                new_fd = yield ("dup2", _SAVE_BASE + fd, fd)
                if not iserr(new_fd):
                    return
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    if entry.kind == FD_SOCKET_BOUND:
        # the section 9 extension: re-establish the service endpoint
        new_fd = yield ("socket",)
        if not iserr(new_fd):
            bound = yield ("bind", new_fd, entry.port)
            if not iserr(bound):
                if entry.listening:
                    yield ("listen", new_fd)
                return
            yield ("close", new_fd)  # port taken: degrade to null
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    if entry.kind == FD_SOCKET:
        # sockets (and pipes) cannot be migrated: /dev/null forever
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    # unused slot: a placeholder only, closed again afterwards
    new_fd = yield ("open", "/dev/null", O_RDWR, 0)
    if not iserr(new_fd):
        placeholders.append(new_fd)
