"""The ``restart`` command (sections 4.1 and 4.4).

"Restart a process that was killed on some host with the dumpproc
command. ... The process will be restarted on the host on which the
command was given and at the terminal (or window) on which the command
was typed."

Section 4.4's recipe:

* verify the three dump files exist and check their magic numbers;
* read the old credentials from stackXXXXX (the only thing read from
  it at user level) and establish them with setreuid();
* establish the old current working directory;
* reopen every file with the right access modes and offset, keeping
  the fd numbers identical; files that cannot be reopened — and all
  sockets — become /dev/null, except stdio which falls back to the
  terminal "so that the user may have some control";
* close the /dev/null placeholders that only existed to keep fd
  numbers in order;
* re-establish the dumped terminal modes on the current terminal;
* call rest_proc().

The fd juggling below keeps copies of restart's own stdio in the top
descriptor slots while the table is rebuilt, so that when a dumped
stdio stream cannot be reattached to a terminal (the rsh case) it can
at least inherit restart's own channel.
"""

import struct

from repro.errors import iserr, errno_name, UnixError
from repro.kernel.constants import (NOFILE, O_ACCMODE, O_APPEND,
                                    O_RDONLY, O_RDWR, SEEK_SET,
                                    TIOCSETP)
from repro.core.formats import (FilesInfo, StackInfo, dump_file_names,
                                FD_FILE, FD_SOCKET, FD_SOCKET_BOUND)
from repro.kernel.cred import PACKED_SIZE as CRED_SIZE
from repro.programs.base import parse_options, print_err, read_file
from repro.vm.aout import AOUT_MAGIC

USAGE = "usage: restart -p pid [-h host]"

#: descriptor slots used to stash restart's own stdio during rebuild
_SAVE_BASE = NOFILE - 3


def restart_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True, "-h": True})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return 1
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return 1

    local = yield ("gethostname",)
    host = opts.get("-h") or local
    directory = "/usr/tmp" if host == local \
        else "/n/%s/usr/tmp" % host
    aout_path, files_path, stack_path = dump_file_names(pid, directory)

    # -- verify the three files and their magic numbers -------------------
    magic = yield from _read_prefix(aout_path, 2)
    if magic is None or struct.unpack("<H", magic)[0] != AOUT_MAGIC:
        yield from print_err("restart: %s is not a dumped executable"
                             % aout_path)
        return 1

    files_blob = yield from read_file(files_path)
    if iserr(files_blob):
        yield from print_err("restart: cannot read %s" % files_path)
        return 1
    try:
        info = FilesInfo.unpack(files_blob)
    except UnixError:
        yield from print_err("restart: bad magic in %s" % files_path)
        return 1

    # the credentials are the only thing read from stackXXXXX here
    header = yield from _read_prefix(stack_path, 2 + CRED_SIZE + 4)
    if header is None:
        yield from print_err("restart: cannot read %s" % stack_path)
        return 1
    try:
        cred, __ = StackInfo.peek_header(header)
    except UnixError:
        yield from print_err("restart: bad magic in %s" % stack_path)
        return 1

    # -- adopt the old identity --------------------------------------------
    result = yield ("setreuid", cred.uid, cred.euid)
    if iserr(result):
        yield from print_err("restart: permission denied (%s)"
                             % errno_name(-result))
        return 1
    result = yield ("chdir", info.cwd)
    if iserr(result):
        yield from print_err("restart: cannot chdir to %s: %s"
                             % (info.cwd, errno_name(-result)))
        return 1

    # -- rebuild the descriptor table ----------------------------------------
    for save in range(3):
        yield ("dup2", save, _SAVE_BASE + save)
    placeholders = []
    for fd in range(_SAVE_BASE):
        yield from _restore_slot(fd, info.entries[fd], placeholders,
                                 saved=True)
    for save in range(3):
        yield ("close", _SAVE_BASE + save)
    for fd in range(_SAVE_BASE, NOFILE):
        yield from _restore_slot(fd, info.entries[fd], placeholders,
                                 saved=False)
    for fd in placeholders:
        yield ("close", fd)

    # -- terminal modes -----------------------------------------------------------
    tty_fd = yield ("open", "/dev/tty", O_RDWR, 0)
    if not iserr(tty_fd):
        yield ("ioctl", tty_fd, TIOCSETP, info.tty_flags)
        yield ("close", tty_fd)
    # (under rsh there is no terminal: modes cannot be preserved)

    # -- section 7 extension: remember who we used to be ---------------------------
    yield ("set_oldids", pid, info.hostname)

    # -- and go ----------------------------------------------------------------------
    result = yield ("rest_proc", aout_path, stack_path)
    # reached only on failure
    yield from print_err("restart: rest_proc failed: %s"
                         % errno_name(-result if iserr(result)
                                      else result))
    return 1


def _read_prefix(path, nbytes):
    """yield-from: the first bytes of a file, or None."""
    fd = yield ("open", path, O_RDONLY, 0)
    if iserr(fd):
        return None
    data = yield ("read", fd, nbytes)
    yield ("close", fd)
    if iserr(data) or len(data) < nbytes:
        return None
    return data


def _restore_slot(fd, entry, placeholders, saved):
    """Install the right object at descriptor ``fd``.

    Relies on open() assigning the lowest free descriptor: slots are
    rebuilt in ascending order with no holes, so each open lands
    exactly on ``fd``.
    """
    yield ("close", fd)  # whatever we held there (may be EBADF)
    if entry.kind == FD_FILE and entry.path:
        flags = entry.flags & (O_ACCMODE | O_APPEND)
        new_fd = yield ("open", entry.path, flags, 0)
        if not iserr(new_fd):
            if entry.path != "/dev/tty":
                yield ("lseek", new_fd, entry.offset, SEEK_SET)
            return
        if fd < 3:
            # stdio: try the terminal, then restart's own channel
            new_fd = yield ("open", "/dev/tty", O_RDWR, 0)
            if not iserr(new_fd):
                return
            if saved:
                new_fd = yield ("dup2", _SAVE_BASE + fd, fd)
                if not iserr(new_fd):
                    return
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    if entry.kind == FD_SOCKET_BOUND:
        # the section 9 extension: re-establish the service endpoint
        new_fd = yield ("socket",)
        if not iserr(new_fd):
            bound = yield ("bind", new_fd, entry.port)
            if not iserr(bound):
                if entry.listening:
                    yield ("listen", new_fd)
                return
            yield ("close", new_fd)  # port taken: degrade to null
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    if entry.kind == FD_SOCKET:
        # sockets (and pipes) cannot be migrated: /dev/null forever
        yield ("open", "/dev/null", O_RDWR, 0)
        return
    # unused slot: a placeholder only, closed again afterwards
    new_fd = yield ("open", "/dev/null", O_RDWR, 0)
    if not iserr(new_fd):
        placeholders.append(new_fd)
