"""``recoveryd`` — restart checkpointed jobs whose host crashed.

The missing half of the section 8 checkpointing story: ``ckptd``
archives snapshots to a directory on the file server, and this daemon
— run on any surviving workstation — watches that directory and
brings orphaned jobs back from their latest checkpoint.

Each scan round, for every job directory under the watch directory:

1. read the advisory ``meta`` file (skip jobs that are done, lost,
   or homed on *this* host);
2. ask the kernel's failure detector about the job's home host
   (``hb_status``); only **suspected-dead** homes are touched;
3. claim the job by creating ``claim.<epoch+1>`` with
   ``O_CREAT|O_EXCL`` — an atomic test-and-set on the server.  Losing
   the race (or failing to reach the server) means somebody else owns
   the recovery, so skip;
4. stage the archived round-*N* dump into the local ``/usr/tmp``
   under the names ``restart`` expects, restore the snapshotted open
   files, and run ``restart -k``; like ``migrate``, success is
   observed as the kernel consuming the staged a.out;
5. rewrite ``meta`` for the new home/pid/epoch and, if checkpoint
   rounds remain, hand the job to a fresh local ``ckptd -e <epoch+1>``
   so it keeps being checkpointed (and keeps honouring the fence).

Exactly-once across a partition heal: the claim file is the fence.  A
``ckptd`` cut off from the server cannot *disprove* a claim, so it
kills its copy (``EX_FENCED``); one that can see the directory dies
the moment it reads a higher claim.  Either way at most one live copy
survives the heal.

``-m ledgerdir`` adds the **migration-ledger sweep** (DESIGN.md
section 12): each round also walks the migration intent ledger and
settles every record whose orchestrator is suspected dead (or that
has simply gone stale).  A claimed record is re-read (the claim only
fences the orchestrator's *next* advance) and resolved by looking at
reality — if the destination already runs the migrated copy the
record is marked DONE; if a crash hit before the dump was captured
the intent is aborted, but only once it is also *stale*, because the
dumpproc a dead orchestrator fired outlives it and the dump may
still land (the victim either still runs at home or is the one
documented loss); otherwise the original dump files are neutralised
and the job is brought up *here* from its chunk-store archive, with
the record re-pointed at this host as both destination and
orchestrator — peers then defer to this sweeper's liveness and
staleness clock instead of retrying a record forever pinned to the
dead host.  A sweeper that is itself fenced after its restage kills
the copy it just made (the EX_FENCED discipline) unless the new
owner's record shows it committed to that very copy.  Never zero
live copies of a captured job, never two.

Usage: ``recoveryd [-i interval] [-n rounds] [-m ledgerdir]
[watchdir]`` (defaults from the ``recovery_interval_s`` /
``recovery_rounds`` sysctl knobs).
"""

from repro.errors import iserr, EIO, ENOENT, UnixError
from repro.core.formats import (ChunkManifest, FilesInfo, StackInfo,
                                dump_file_names)
from repro.kernel.constants import O_CREAT, O_EXCL, O_RDONLY, O_WRONLY
from repro.kernel.signals import SIGKILL
from repro.net.migledger import (LEDGER_FENCED, OK_NAME, PH_ABORTED,
                                 PH_DONE, PH_INTENT, PH_RESTARTING,
                                 archive_paths, ledger_advance,
                                 ledger_claim, ledger_read, ledger_reap)
from repro.programs.base import (parse_options, print_err, println,
                                 read_file, write_file)
from repro.programs.ckmeta import claim_name, read_meta, write_meta
from repro.programs.exitcodes import EX_FAIL, EX_OK

USAGE = ("usage: recoveryd [-i interval] [-n rounds] [-m ledgerdir] "
         "[watchdir]")


def recoveryd_main(argv, env):
    options, positional = parse_options(argv, {"-i": True, "-n": True,
                                               "-m": True})
    if positional is None or len(positional) > 1 \
            or (not positional and "-m" not in options):
        yield from print_err(USAGE)
        return EX_FAIL
    watchdir = positional[0] if positional else None
    ledgerdir = options.get("-m")
    try:
        interval = float(options["-i"]) if "-i" in options \
            else (yield ("sysctl", "recovery_interval_s"))
        rounds = int(options["-n"]) if "-n" in options \
            else (yield ("sysctl", "recovery_rounds"))
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL

    yield ("hb_start",)
    local = yield ("gethostname",)
    for __ in range(rounds):
        yield ("sleep", interval)
        if watchdir:
            names = yield ("readdir", watchdir)
            if iserr(names):
                names = ()  # the server may be down; next round
            for name in names:
                stat = yield ("stat", "%s/%s" % (watchdir, name))
                if iserr(stat) or not stat.is_dir():
                    continue
                yield from _consider("%s/%s" % (watchdir, name), local)
        if ledgerdir:
            yield from _sweep(ledgerdir, local)
    return EX_OK


def _consider(directory, local):
    """Recover one job directory if its home host is suspected dead."""
    meta = yield from read_meta(directory)
    if iserr(meta) or meta.get("status") != "running":
        return
    home = meta.get("host")
    if not home or home == local:
        return
    suspected = yield ("hb_status", home)
    if suspected != 1:
        return

    # the fence: atomically claim the next epoch.  EEXIST = somebody
    # beat us to it; any other error = server unreachable.  Either
    # way this job is not ours this round.
    epoch = meta.get("epoch", 0) + 1
    fd = yield ("open", "%s/%s" % (directory, claim_name(epoch)),
                O_WRONLY | O_CREAT | O_EXCL, 0o644)
    if iserr(fd):
        return
    yield ("close", fd)

    saved = meta.get("round", -1)
    if saved < 0:
        # crashed before the first checkpoint landed: nothing to
        # restart from — record the loss so nobody keeps trying
        meta.update(host=local, epoch=epoch, status="lost")
        yield from write_meta(directory, meta)
        yield from print_err("recoveryd: %s: no checkpoint to recover"
                             % directory)
        return

    new_pid = yield from _restage(directory, saved, meta["pid"],
                                  home, local)
    if new_pid is None:
        yield from print_err("recoveryd: %s: restart of round %d "
                             "failed" % (directory, saved))
        return
    yield ("perf_note", "recoveries")
    rounds_left = meta.get("rounds_left", 0)
    interval = meta.get("interval", 1)
    meta.update(host=local, pid=new_pid, epoch=epoch)
    yield from write_meta(directory, meta)
    if rounds_left > 0:
        yield ("spawn", "/bin/ckptd",
               ["ckptd", "-e", str(epoch), "-s", str(saved + 1),
                str(new_pid), str(interval), str(rounds_left),
                directory])
    yield from println(
        "recoveryd: recovered %s from %s round %d, pid %d epoch %d"
        % (directory, home, saved, new_pid, epoch))


def _rehome(info, home, local):
    """Point a dump's paths at *this* host instead of the dead home.

    ``dumpproc`` rewrote every path to ``/n/<home>/...`` so a migrated
    process keeps using its home machine's files (section 4.4).  In
    recovery the home is gone — the snapshots of those files are being
    restored locally — so strip the prefix back off and adopt the job.
    """
    prefix = "/n/%s" % home

    def strip(path):
        if path == prefix or path.startswith(prefix + "/"):
            return path[len(prefix):] or "/"
        return path

    info.hostname = local
    info.cwd = strip(info.cwd)
    for entry in info.entries:
        if entry.path:
            entry.path = strip(entry.path)


def _restage(directory, round_no, pid, home, local):
    """Stage round ``round_no`` locally (rehomed) and restart it.

    Returns the restarted job's pid (the restart child *becomes* the
    job), or None.
    """
    targets = dump_file_names(pid)
    info = None
    stack_blob = None
    for kind, target in zip(("aout", "files", "stack"), targets):
        data = yield from read_file("%s/ck%d.%s" % (directory,
                                                    round_no, kind))
        if iserr(data):
            yield from _unstage(targets)
            return None
        if kind == "files":
            try:
                info = FilesInfo.unpack(data)
            except UnixError:
                yield from _unstage(targets)
                return None
            _rehome(info, home, local)
            data = info.pack()
        elif kind == "stack":
            stack_blob = data
        result = yield from write_file(target, data)
        if iserr(result):
            yield from _unstage(targets)
            return None
        if kind == "aout":
            yield ("chmod", target, 0o700)
    yield from _adopt_staged(targets, stack_blob)

    # put the snapshotted open files back where the job expects them
    seen = set()
    for slot, entry in enumerate(info.entries):
        if not entry.is_file() or entry.path in seen \
                or entry.path.startswith("/dev/"):
            continue
        seen.add(entry.path)
        data = yield from read_file("%s/ck%d.fd%d" % (directory,
                                                      round_no, slot))
        if iserr(data):
            continue  # not snapshotted (a device, or unreadable then)
        yield from write_file(entry.path, data)

    child = yield ("spawn", "/bin/restart",
                   ["restart", "-k", "-p", str(pid)])
    if iserr(child):
        yield from _unstage(targets)
        return None
    poll_tries = yield ("sysctl", "restart_poll_tries")
    poll_sleep = yield ("sysctl", "restart_poll_sleep_s")
    for __ in range(max(1, poll_tries)):
        fd = yield ("open", targets[0], O_RDONLY, 0)
        if fd == -ENOENT:
            return child  # rest_proc consumed the dump: it took
        if not iserr(fd):
            yield ("close", fd)
        reaped = yield ("reap",)
        if isinstance(reaped, tuple) and reaped[0] == child:
            yield from _unstage(targets)
            return None
        yield ("sleep", poll_sleep)
    yield from _unstage(targets)
    return None


def _unstage(targets):
    for path in targets:
        yield ("unlink", path)


def _adopt_staged(targets, stack_blob):
    """yield-from: chown a staged dump back to its owner.

    The kernel writes dump files owned by the dumped process, and
    ``restart`` drops to that identity *before* ``rest_proc`` execs
    the a.out — so a dump staged by a root recoveryd must be given
    back, or the exec fails its permission check.  A non-root
    recoveryd cannot chown (EPERM, ignored) but needs no fixup: it
    stages under its own uid, the only one that may restart then.
    """
    try:
        cred, __ = StackInfo.peek_header(stack_blob)
    except UnixError:
        return
    for target in targets:
        yield ("chown", target, cred.uid, cred.gid)


# -- the migration-ledger sweep (DESIGN.md section 12) ---------------------


def _sweep(ledgerdir, local):
    """yield-from: one pass over the migration intent ledger."""
    names = yield ("readdir", ledgerdir)
    if iserr(names):
        return  # the server may be down; try again next round
    for name in sorted(names):
        directory = "%s/%s" % (ledgerdir, name)
        stat = yield ("stat", directory)
        if iserr(stat) or not stat.is_dir():
            continue
        yield from _sweep_one(directory, local)


def _sweep_one(directory, local):
    """Settle one ledger record, exactly once."""
    record = yield from ledger_read(directory)
    if iserr(record):
        return  # already reaped, torn, or unreachable
    if record.phase in (PH_DONE, PH_ABORTED):
        yield from ledger_reap(directory)  # straggler cleanup
        return

    # eligibility: only records whose orchestrator is suspected dead
    # — or that have gone stale, since an orchestrator *process* can
    # die without its host being suspected — may be touched.  An
    # orchestrator on this very host is never "suspected"; staleness
    # is the only signal for it.
    if record.orchestrator == local:
        suspected = 0
    else:
        suspected = yield ("hb_status", record.orchestrator)
    if suspected != 1:
        now = yield ("time",)
        stale_s = yield ("sysctl0", "ledger_stale_s")
        if now - record.time_s <= stale_s:
            return

    ok_stat = yield ("stat", "%s/%s" % (directory, OK_NAME))
    if record.phase == PH_INTENT and iserr(ok_stat):
        # an uncaptured intent gets the full staleness grace even
        # when the orchestrator is suspected: the dumpproc it fired
        # outlives it on the source, so the dump may still be in
        # flight — aborting now would reap the record out from under
        # a dump that then lands with nobody left to restart it
        now = yield ("time",)
        stale_s = yield ("sysctl0", "ledger_stale_s")
        if now - record.time_s <= stale_s:
            return

    # the fence: whoever creates claim.<E> owns the record at epoch E.
    # The orchestrator checks for claims at every phase advance and
    # stands down (EX_FENCED) once one exists.
    epoch = yield from ledger_claim(directory, record)
    if iserr(epoch):
        return  # lost the race, or the server is unreachable

    # the claim only fences the orchestrator's *next* advance; one
    # already past its fence check may still land.  Re-read so this
    # sweep acts on the last state anybody managed to publish.
    record = yield from ledger_read(directory)
    if iserr(record):
        return
    if record.phase in (PH_DONE, PH_ABORTED):
        yield from ledger_reap(directory)
        return

    ok_stat = yield ("stat", "%s/%s" % (directory, OK_NAME))
    if record.phase == PH_INTENT and iserr(ok_stat):
        # the crash hit before the dump was captured: nothing exists
        # to restart from.  Either SIGDUMP never landed (the victim
        # still runs at home, untouched) or the victim died mid-dump
        # — the one documented loss.  Abort the intent.  (The kernel
        # refuses to commit an archive once the record is reaped, so
        # a dump still racing this abort fails and spares its victim.)
        result = yield from ledger_advance(directory, record,
                                           PH_ABORTED,
                                           fence_epoch=epoch)
        if result == 0:
            yield ("perf_note", "ml_aborts")
            yield from ledger_reap(directory)
            yield from println("recoveryd: aborted pre-capture %s"
                               % record.mig_id())
        return

    # the dump was captured: finish the migration.  Reality first —
    # the destination may already be running the copy.
    verdict = yield from _probe_destination(record, local)
    if verdict == "busy":
        return  # a restart is in flight there; decide next round
    if verdict == "live":
        result = yield from ledger_advance(directory, record, PH_DONE,
                                           fence_epoch=epoch)
        if result == 0:
            yield ("perf_note", "ml_sweeps")
            yield from ledger_reap(directory)
            yield from println("recoveryd: %s already live on %s"
                               % (record.mig_id(), record.destination))
        return

    # no copy at the destination: make sure a straggling restart can
    # never produce one (the originals are its only source), then
    # bring the job up *here* from the chunk-store archive.  The
    # record is re-pointed at this host *before* the restage: this
    # sweeper becomes the migration's orchestrator (so peers judge
    # eligibility against a live daemon's host and staleness clock,
    # not the dead orchestrator's) as well as its destination (so
    # any later probe looks at the right host).
    yield from _neutralize(record, local)
    record.destination = local
    record.orchestrator = local
    record.epoch = epoch
    result = yield from ledger_advance(directory, record,
                                       PH_RESTARTING,
                                       fence_epoch=epoch)
    if result != 0:
        return  # fenced by a later claim, or the server went away
    new_pid = yield from _restage_ledger(directory, record, local)
    if new_pid is None:
        yield from print_err("recoveryd: %s: restage failed; will "
                             "retry" % record.mig_id())
        return  # the record stands; a later round (or peer) retries
    result = yield from ledger_advance(directory, record, PH_DONE,
                                       fence_epoch=epoch)
    if result == LEDGER_FENCED:
        # superseded after the restage: a later claim owns the record
        # now.  Unless its owner already committed to *this* copy
        # (record gone or DONE), mirror EX_FENCED and kill it — the
        # new owner settles from its own probe and must never find
        # a second copy racing its restage.
        record = yield from ledger_read(directory)
        if not iserr(record) and record.phase == PH_DONE \
                and record.destination == local:
            yield from println("recoveryd: recovered %s on %s as "
                               "pid %d, epoch %d"
                               % (record.mig_id(), local, new_pid,
                                  epoch))
            return
        if iserr(record) and record == -ENOENT:
            return  # reaped: the claimant committed to this copy
        yield ("kill", new_pid, SIGKILL)
        yield ("reap",)
        yield from print_err("recoveryd: fenced after restage of %s; "
                             "killed local pid %d" % (directory,
                                                      new_pid))
        return
    if result != 0:
        return  # unreachable server: the record stands, the copy is
                # live here, and a later probe settles it as DONE
    yield ("perf_note", "ml_sweeps")
    yield from ledger_reap(directory)
    yield from println("recoveryd: recovered %s on %s as pid %d, "
                       "epoch %d" % (record.mig_id(), local, new_pid,
                                     epoch))


def _probe_destination(record, local):
    """yield-from: "live", "busy" or "clear" for the record's dest.

    Fail-stop model: a destination the failure detector suspects
    holds no copy (a crashed host loses its processes, and its disk
    — though it survives — cannot host a *running* process).  An
    unreachable-but-unsuspected destination defers the verdict.  A
    native ``restart`` seen on the destination also defers: its
    ``rest_proc`` may be about to produce the copy.
    """
    token = "a.out%d" % record.pid
    if record.destination == local:
        rows = yield ("getproctab",)
        if iserr(rows):
            return "busy"
        if any(row["vm"] and row["command"] == token for row in rows):
            return "live"
        if any(not row["vm"] and row["command"] == "restart"
               for row in rows):
            return "busy"
        return "clear"
    suspected = yield ("hb_status", record.destination)
    if suspected == 1:
        return "clear"
    output, status = yield from _relay_ps(record.destination)
    if status != EX_OK:
        return "busy"  # reachable host, failed probe: retry later
    live = busy = False
    for line in output.decode("latin-1", "replace").split("\n"):
        words = line.split()
        if not words:
            continue
        if words[-1] == token:
            live = True
        elif words[-1] == "restart":
            busy = True
    return "live" if live else ("busy" if busy else "clear")


def _relay_ps(dest):
    """yield-from: (output bytes, exit status) of ``ps -a`` on dest."""
    pipe = yield ("pipe",)
    if iserr(pipe):
        return b"", EX_FAIL
    rfd, wfd = pipe
    child = yield ("spawn", "/bin/migrationd-run",
                   ["migrationd-run", dest, "ps -a"],
                   (None, wfd, wfd))
    yield ("close", wfd)
    if iserr(child):
        yield ("close", rfd)
        return b"", EX_FAIL
    output = bytearray()
    while True:
        data = yield ("read", rfd, 1024)
        if iserr(data) or data == b"":
            break
        output.extend(data)
    yield ("close", rfd)
    status = EX_FAIL
    for __ in range(10):
        reaped = yield ("reap",)
        if isinstance(reaped, tuple):
            if reaped[0] != child:
                continue  # somebody else's zombie; keep looking
            raw = reaped[1]
            status = (raw >> 8) & 0xFF if not raw & 0x7F else EX_FAIL
            break
        yield ("sleep", 1)
    return bytes(output), status


def _neutralize(record, local):
    """yield-from: unlink the original dump files on the source.

    Any restart still straggling toward the old destination reads
    these files; removing them guarantees it can only fail.  Errors
    are ignored — a source that is down cannot serve a straggler
    either, and its ``/usr/tmp`` does not survive the reboot that
    brings it back.
    """
    directory = "/usr/tmp" if record.source == local \
        else "/n/%s/usr/tmp" % record.source
    for path in dump_file_names(record.pid, directory):
        yield ("unlink", path)


def _fetch_archive(manifest):
    """yield-from: reassemble one manifest from the chunk store."""
    parts = []
    for index, digest in enumerate(manifest.digests):
        blob = yield ("store_get", digest)
        if iserr(blob):
            return blob
        if len(blob) != manifest.chunk_size(index):
            return -EIO
        parts.append(blob)
    return b"".join(parts)


def _rewrite_archived(path, source, terminal_check=True):
    """yield-from: the section 4.4 rewrite for an *archived* name.

    The kernel archives the files info at dump time, *before*
    ``dumpproc``'s rewrite pass runs on the source, so the sweep
    applies the same rules here — from the far end: the name is made
    remote first, then checked against the source's devices.
    Idempotent when a name already carries a ``/n/`` prefix.
    """
    if not path.startswith("/n/"):
        path = "/n/%s%s" % (source, path)
    if terminal_check:
        stat = yield ("stat", path)
        if not iserr(stat) and stat.is_terminal():
            return "/dev/tty"
    return path


def _restage_ledger(directory, record, local):
    """Stage the record's chunk-store archive locally and restart it.

    Returns the restarted job's pid, or None.  Mirrors ``_restage``,
    but the bytes come from the cluster chunk store via the record's
    manifests — so not even a source reboot (which wipes
    ``/usr/tmp``) can have lost the dump.
    """
    blobs = []
    for path in archive_paths(directory):
        manifest_blob = yield from read_file(path)
        if iserr(manifest_blob):
            return None
        try:
            manifest = ChunkManifest.unpack(manifest_blob)
        except UnixError:
            return None
        blob = yield from _fetch_archive(manifest)
        if iserr(blob):
            return None
        blobs.append(blob)
    aout_blob, files_blob, stack_blob = blobs
    try:
        info = FilesInfo.unpack(files_blob)
    except UnixError:
        return None
    info.cwd = yield from _rewrite_archived(info.cwd, record.source,
                                            terminal_check=False)
    for entry in info.entries:
        if entry.is_file() and entry.path:
            entry.path = yield from _rewrite_archived(entry.path,
                                                      record.source)
    files_blob = info.pack()

    targets = dump_file_names(record.pid)
    for target, data in zip(targets,
                            (aout_blob, files_blob, stack_blob)):
        result = yield from write_file(target, data)
        if iserr(result):
            yield from _unstage(targets)
            return None
    yield ("chmod", targets[0], 0o700)
    yield from _adopt_staged(targets, stack_blob)

    child = yield ("spawn", "/bin/restart",
                   ["restart", "-k", "-p", str(record.pid)])
    if iserr(child):
        yield from _unstage(targets)
        return None
    poll_tries = yield ("sysctl", "restart_poll_tries")
    poll_sleep = yield ("sysctl", "restart_poll_sleep_s")
    for __ in range(max(1, poll_tries)):
        fd = yield ("open", targets[0], O_RDONLY, 0)
        if fd == -ENOENT:
            return child  # rest_proc consumed the dump: it took
        if not iserr(fd):
            yield ("close", fd)
        reaped = yield ("reap",)
        if isinstance(reaped, tuple) and reaped[0] == child:
            yield from _unstage(targets)
            return None
        yield ("sleep", poll_sleep)
    yield from _unstage(targets)
    return None
