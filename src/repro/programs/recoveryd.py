"""``recoveryd`` — restart checkpointed jobs whose host crashed.

The missing half of the section 8 checkpointing story: ``ckptd``
archives snapshots to a directory on the file server, and this daemon
— run on any surviving workstation — watches that directory and
brings orphaned jobs back from their latest checkpoint.

Each scan round, for every job directory under the watch directory:

1. read the advisory ``meta`` file (skip jobs that are done, lost,
   or homed on *this* host);
2. ask the kernel's failure detector about the job's home host
   (``hb_status``); only **suspected-dead** homes are touched;
3. claim the job by creating ``claim.<epoch+1>`` with
   ``O_CREAT|O_EXCL`` — an atomic test-and-set on the server.  Losing
   the race (or failing to reach the server) means somebody else owns
   the recovery, so skip;
4. stage the archived round-*N* dump into the local ``/usr/tmp``
   under the names ``restart`` expects, restore the snapshotted open
   files, and run ``restart -k``; like ``migrate``, success is
   observed as the kernel consuming the staged a.out;
5. rewrite ``meta`` for the new home/pid/epoch and, if checkpoint
   rounds remain, hand the job to a fresh local ``ckptd -e <epoch+1>``
   so it keeps being checkpointed (and keeps honouring the fence).

Exactly-once across a partition heal: the claim file is the fence.  A
``ckptd`` cut off from the server cannot *disprove* a claim, so it
kills its copy (``EX_FENCED``); one that can see the directory dies
the moment it reads a higher claim.  Either way at most one live copy
survives the heal.

Usage: ``recoveryd [-i interval] [-n rounds] <watchdir>`` (defaults
from the ``recovery_interval_s`` / ``recovery_rounds`` sysctl knobs).
"""

from repro.errors import iserr, ENOENT, UnixError
from repro.core.formats import FilesInfo, dump_file_names
from repro.kernel.constants import O_CREAT, O_EXCL, O_RDONLY, O_WRONLY
from repro.programs.base import (parse_options, print_err, println,
                                 read_file, write_file)
from repro.programs.ckmeta import claim_name, read_meta, write_meta
from repro.programs.exitcodes import EX_FAIL, EX_OK

USAGE = "usage: recoveryd [-i interval] [-n rounds] watchdir"


def recoveryd_main(argv, env):
    options, positional = parse_options(argv, {"-i": True,
                                               "-n": True})
    if positional is None or len(positional) != 1:
        yield from print_err(USAGE)
        return EX_FAIL
    watchdir = positional[0]
    try:
        interval = float(options["-i"]) if "-i" in options \
            else (yield ("sysctl", "recovery_interval_s"))
        rounds = int(options["-n"]) if "-n" in options \
            else (yield ("sysctl", "recovery_rounds"))
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL

    yield ("hb_start",)
    local = yield ("gethostname",)
    for __ in range(rounds):
        yield ("sleep", interval)
        names = yield ("readdir", watchdir)
        if iserr(names):
            continue  # the server may be down; try again next round
        for name in names:
            stat = yield ("stat", "%s/%s" % (watchdir, name))
            if iserr(stat) or not stat.is_dir():
                continue
            yield from _consider("%s/%s" % (watchdir, name), local)
    return EX_OK


def _consider(directory, local):
    """Recover one job directory if its home host is suspected dead."""
    meta = yield from read_meta(directory)
    if iserr(meta) or meta.get("status") != "running":
        return
    home = meta.get("host")
    if not home or home == local:
        return
    suspected = yield ("hb_status", home)
    if suspected != 1:
        return

    # the fence: atomically claim the next epoch.  EEXIST = somebody
    # beat us to it; any other error = server unreachable.  Either
    # way this job is not ours this round.
    epoch = meta.get("epoch", 0) + 1
    fd = yield ("open", "%s/%s" % (directory, claim_name(epoch)),
                O_WRONLY | O_CREAT | O_EXCL, 0o644)
    if iserr(fd):
        return
    yield ("close", fd)

    saved = meta.get("round", -1)
    if saved < 0:
        # crashed before the first checkpoint landed: nothing to
        # restart from — record the loss so nobody keeps trying
        meta.update(host=local, epoch=epoch, status="lost")
        yield from write_meta(directory, meta)
        yield from print_err("recoveryd: %s: no checkpoint to recover"
                             % directory)
        return

    new_pid = yield from _restage(directory, saved, meta["pid"],
                                  home, local)
    if new_pid is None:
        yield from print_err("recoveryd: %s: restart of round %d "
                             "failed" % (directory, saved))
        return
    yield ("perf_note", "recoveries")
    rounds_left = meta.get("rounds_left", 0)
    interval = meta.get("interval", 1)
    meta.update(host=local, pid=new_pid, epoch=epoch)
    yield from write_meta(directory, meta)
    if rounds_left > 0:
        yield ("spawn", "/bin/ckptd",
               ["ckptd", "-e", str(epoch), "-s", str(saved + 1),
                str(new_pid), str(interval), str(rounds_left),
                directory])
    yield from println(
        "recoveryd: recovered %s from %s round %d, pid %d epoch %d"
        % (directory, home, saved, new_pid, epoch))


def _rehome(info, home, local):
    """Point a dump's paths at *this* host instead of the dead home.

    ``dumpproc`` rewrote every path to ``/n/<home>/...`` so a migrated
    process keeps using its home machine's files (section 4.4).  In
    recovery the home is gone — the snapshots of those files are being
    restored locally — so strip the prefix back off and adopt the job.
    """
    prefix = "/n/%s" % home

    def strip(path):
        if path == prefix or path.startswith(prefix + "/"):
            return path[len(prefix):] or "/"
        return path

    info.hostname = local
    info.cwd = strip(info.cwd)
    for entry in info.entries:
        if entry.path:
            entry.path = strip(entry.path)


def _restage(directory, round_no, pid, home, local):
    """Stage round ``round_no`` locally (rehomed) and restart it.

    Returns the restarted job's pid (the restart child *becomes* the
    job), or None.
    """
    targets = dump_file_names(pid)
    info = None
    for kind, target in zip(("aout", "files", "stack"), targets):
        data = yield from read_file("%s/ck%d.%s" % (directory,
                                                    round_no, kind))
        if iserr(data):
            yield from _unstage(targets)
            return None
        if kind == "files":
            try:
                info = FilesInfo.unpack(data)
            except UnixError:
                yield from _unstage(targets)
                return None
            _rehome(info, home, local)
            data = info.pack()
        result = yield from write_file(target, data)
        if iserr(result):
            yield from _unstage(targets)
            return None
        if kind == "aout":
            yield ("chmod", target, 0o700)

    # put the snapshotted open files back where the job expects them
    seen = set()
    for slot, entry in enumerate(info.entries):
        if not entry.is_file() or entry.path in seen \
                or entry.path.startswith("/dev/"):
            continue
        seen.add(entry.path)
        data = yield from read_file("%s/ck%d.fd%d" % (directory,
                                                      round_no, slot))
        if iserr(data):
            continue  # not snapshotted (a device, or unreadable then)
        yield from write_file(entry.path, data)

    child = yield ("spawn", "/bin/restart",
                   ["restart", "-k", "-p", str(pid)])
    if iserr(child):
        yield from _unstage(targets)
        return None
    poll_tries = yield ("sysctl", "restart_poll_tries")
    poll_sleep = yield ("sysctl", "restart_poll_sleep_s")
    for __ in range(max(1, poll_tries)):
        fd = yield ("open", targets[0], O_RDONLY, 0)
        if fd == -ENOENT:
            return child  # rest_proc consumed the dump: it took
        if not iserr(fd):
            yield ("close", fd)
        reaped = yield ("reap",)
        if isinstance(reaped, tuple) and reaped[0] == child:
            yield from _unstage(targets)
            return None
        yield ("sleep", poll_sleep)
    yield from _unstage(targets)
    return None


def _unstage(targets):
    for path in targets:
        yield ("unlink", path)
