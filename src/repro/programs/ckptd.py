"""``ckptd`` — the section 8 checkpointing application, in-universe.

"We may write an application to take periodic snapshots of it and
save those snapshots by moving them to a directory managed by the
application (perhaps renaming them appropriately) ... The application
should also make copies of all files that were open when the process
was checkpointed."

Unlike the host-side :class:`repro.apps.CheckpointManager` (a Python
orchestration API), ``ckptd`` is a *native user program*: everything
it does — killing the job, archiving the dump, copying the open
files, resuming the job — happens through system calls, exactly as
the paper's application would have.

Usage: ``ckptd [-e epoch] [-s round] <pid> <interval-seconds>
<rounds> [<directory>]``.  After each snapshot the job continues
under a new pid (a child of ckptd); the daemon tracks it and prints
one status line per round.

For crash recovery (see ``recoveryd(8)``) the daemon also maintains a
``meta`` file in the checkpoint directory and honours the epoch fence
(see :mod:`repro.programs.ckmeta`): ``-e`` names the epoch this
incarnation runs under, ``-s`` resumes round numbering after a
restart elsewhere.  Distinct exit statuses tell the caller what
happened: ``EX_JOBLOST`` (5) — the job died between rounds, the last
saved round is announced; ``EX_FENCED`` (6) — a recovery daemon
claimed a higher epoch (or the checkpoint directory became
unreachable, so it *may* have), and the local copy killed itself.
"""

from repro.errors import iserr, ECHILD, EEXIST, UnixError
from repro.core.formats import FilesInfo, dump_file_names
from repro.kernel.signals import SIGKILL
from repro.programs.base import (parse_options, print_err, println,
                                 read_file, write_file)
from repro.programs.ckmeta import highest_claim, write_meta
from repro.programs.exitcodes import EX_FENCED, EX_JOBLOST

DEFAULT_DIRECTORY = "/tmp/ckpt"

USAGE = "usage: ckptd [-e epoch] [-s round] pid interval rounds " \
        "[directory]"


def ckptd_main(argv, env):
    options, positional = parse_options(argv, {"-e": True, "-s": True})
    if positional is None or not 3 <= len(positional) <= 4:
        yield from print_err(USAGE)
        return 1
    try:
        pid = int(positional[0])
        interval = int(positional[1])
        rounds = int(positional[2])
        epoch = int(options.get("-e", 0))
        start = int(options.get("-s", 0))
    except ValueError:
        yield from print_err(USAGE)
        return 1
    directory = positional[3] if len(positional) > 3 \
        else DEFAULT_DIRECTORY
    result = yield ("mkdir", directory, 0o755)
    if iserr(result) and result != -EEXIST:
        yield from print_err("ckptd: cannot create %s" % directory)
        return 1

    probe = yield ("kill", pid, 0)
    if iserr(probe):
        yield from print_err("ckptd: probe of pid %d failed" % pid)
        return 1
    host = yield ("gethostname",)
    saved = start - 1  #: latest round safely archived

    def meta(pid, status, rounds_left):
        return {"host": host, "pid": pid, "round": saved,
                "epoch": epoch, "interval": interval,
                "rounds_left": rounds_left, "status": status}

    yield from write_meta(directory, meta(pid, "running", rounds))

    for round_no in range(start, start + rounds):
        yield ("sleep", interval)
        left = start + rounds - round_no  #: incl. this round

        fenced = yield from _check_fence(directory, epoch)
        if fenced:
            yield ("kill", pid, SIGKILL)
            yield ("reap",)
            yield from print_err(
                "ckptd: fenced at epoch %d, killed pid %d" % (epoch,
                                                              pid))
            return EX_FENCED

        yield ("reap",)  # collect a dead job before probing it
        probe = yield ("kill", pid, 0)
        if iserr(probe):
            yield from print_err(
                "ckptd: pid %d died, last saved round %d" % (pid,
                                                             saved))
            yield from write_meta(directory, meta(pid, "lost", left))
            return EX_JOBLOST

        new_pid = yield from _snapshot(pid, round_no, directory)
        if new_pid is None:
            yield from print_err("ckptd: checkpoint %d of pid %d "
                                 "failed" % (round_no, pid))
            return 1
        yield from println("ckptd: checkpoint %d taken, pid %d -> %d"
                           % (round_no, pid, new_pid))
        pid = new_pid
        saved = round_no
        yield from write_meta(directory,
                              meta(pid, "running", left - 1))
    yield from write_meta(directory, meta(pid, "done", 0))
    return 0


def _check_fence(directory, epoch):
    """True if a higher-epoch claim exists — or might (directory
    unreachable, so a partitioned-away recoveryd could have claimed
    without us seeing it): the job must not keep running here."""
    names = yield ("readdir", directory)
    if iserr(names):
        return True
    return highest_claim(names) > epoch


def _snapshot(pid, round_no, directory):
    """One checkpoint: dump, archive, copy files, resume.

    Returns the resumed job's pid, or None.
    """
    # 1. dump the job (dumpproc kills it and rewrites the files file)
    dumper = yield ("spawn", "/bin/dumpproc",
                    ["dumpproc", "-p", str(pid)])
    if iserr(dumper):
        return None
    status = yield from _wait_for(dumper)
    if status != 0:
        return None

    # 2. archive the three dump files (copying, so restart can still
    #    find them under the names it expects)
    sources = dump_file_names(pid)
    for index, (kind, source) in enumerate(
            zip(("aout", "files", "stack"), sources)):
        data = yield from read_file(source)
        if iserr(data):
            return None
        target = "%s/ck%d.%s" % (directory, round_no, kind)
        result = yield from write_file(target, data)
        if iserr(result):
            return None
        if kind == "aout":
            yield ("chmod", target, 0o700)

    # 3. snapshot every open regular file recorded in the dump
    files_blob = yield from read_file(sources[1])
    try:
        info = FilesInfo.unpack(files_blob)
    except UnixError:
        return None
    seen = set()
    for slot, entry in enumerate(info.entries):
        if not entry.is_file() or entry.path in seen \
                or entry.path.startswith("/dev/"):
            continue
        seen.add(entry.path)
        stat = yield ("stat", entry.path)
        if iserr(stat) or stat.is_terminal():
            continue
        data = yield from read_file(entry.path)
        if iserr(data):
            continue
        yield from write_file("%s/ck%d.fd%d" % (directory, round_no,
                                                slot), data)

    # 4. resume the job: the restart child *becomes* the job
    runner = yield ("spawn", "/bin/restart",
                    ["restart", "-p", str(pid)])
    if iserr(runner):
        return None
    return runner


def _wait_for(target_pid):
    """Reap children until ``target_pid`` exits; returns its status.

    ckptd accumulates other children (past incarnations of the job it
    dumped), so wait() may hand those back first.
    """
    while True:
        result = yield ("wait",)
        if iserr(result):
            return 1 if result == -ECHILD else 1
        pid, raw = result
        if pid == target_pid:
            return (raw >> 8) & 0xFF if not raw & 0x7F else 1
