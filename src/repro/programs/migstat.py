"""The ``migstat`` command: live per-host migration statistics.

In the spirit of ``ps``: where ps snapshots the process table via
``getproctab``, migstat snapshots the cluster's labelled metrics via
the ``migstat`` pseudo-call and prints one row per host — dumps
taken, processes restarted, migrations completed, jobs recovered,
crashes, and heartbeat suspicions raised by that host's detector.
The footer reports the trace compiler's shared code-cache health
(the ``vmcache`` pseudo-call: warm arrivals versus recompiles, and
how many distinct text segments are cached) and whether event
tracing is currently on (the ``trace_status`` syscall).

``-m`` additionally lists the in-flight records of the migration
intent ledger (DESIGN.md section 12): one row per record with its
phase, fencing epoch, endpoints and age — the operator's view of
what a recovery sweep would find.

``-s`` additionally lists the statd telemetry spool (DESIGN.md
section 13): one row per reporting host with the virtual age of its
last report and how many series/samples it carries — the operator's
view of which hosts' telemetry is flowing.
"""

from repro.errors import iserr, errno_name, UnixError
from repro.net.migledger import PHASE_NAMES, ledger_read
from repro.net.statd import REPORT_NAME, StatReport
from repro.programs.base import (parse_options, println, print_err,
                                 read_file)

_HEADER = ("HOST        UP  DUMPS  RESTARTS  MIGR  RECOV"
           "  CRASH  SUSP")
_ROW = "%-10s  %2s  %5d  %8d  %4d  %5d  %5d  %4d"

_LEDGER_HEADER = "LEDGER           PHASE       EPOCH  DEST      ORCH      AGE"
_LEDGER_ROW = "%-15s  %-10s  %5d  %-8s  %-8s  %ds"

_SPOOL_HEADER = "SPOOL       AGE  SEQ  SERIES  SAMPLES"
_SPOOL_ROW = "%-10s  %3ds  %3d  %6d  %7d"


def migstat_main(argv, env):
    opts, __ = parse_options(argv, {"-m": False, "-s": False})
    if not isinstance(opts, dict):
        yield from print_err("usage: migstat [-m] [-s]")
        return 1
    rows = yield ("migstat",)
    if iserr(rows):
        yield from print_err("migstat: %s" % errno_name(-rows))
        return 1
    yield from println(_HEADER)
    for row in rows:
        yield from println(_ROW % (
            row["host"], "up" if row["up"] else "dn",
            row["dumps"], row["restarts"], row["migrations"],
            row["recoveries"], row["crashes"], row["suspects"]))
    if opts.get("-m"):
        yield from _show_ledger()
    if opts.get("-s"):
        yield from _show_spool()
    cache = yield ("vmcache",)
    if not iserr(cache):
        yield from println(
            "vm cache: %d warm arrivals, %d rebuilds, %d texts "
            "(%d blocks, %d links)"
            % (cache["shared_cache_hits"], cache["cache_rebuilds"],
               cache["cached_texts"], cache["blocks_compiled"],
               cache["traces_linked"]))
    tracing = yield ("trace_status",)
    yield from println("tracing: %s" % ("on" if tracing == 1
                                        else "off"))
    return 0


def _show_ledger():
    """yield-from: list the migration ledger's records, if any."""
    ledgerdir = yield ("sysctl0", "migration_ledger_dir")
    names = yield ("readdir", ledgerdir)
    if iserr(names):
        yield from println("no migration ledger at %s" % ledgerdir)
        return
    now = yield ("time",)
    shown = 0
    for name in sorted(names):
        directory = "%s/%s" % (ledgerdir, name)
        stat = yield ("stat", directory)
        if iserr(stat) or not stat.is_dir():
            continue
        record = yield from ledger_read(directory)
        if iserr(record):
            continue  # reaped or torn: not an in-flight record
        if not shown:
            yield from println(_LEDGER_HEADER)
        shown += 1
        yield from println(_LEDGER_ROW % (
            record.mig_id(), PHASE_NAMES.get(record.phase, "?"),
            record.epoch, record.destination, record.orchestrator,
            max(0, now - record.time_s)))
    if not shown:
        yield from println("migration ledger: empty")


def _show_spool():
    """yield-from: list the statd spool's reports, if any."""
    spool_dir = yield ("sysctl0", "stat_spool_dir")
    names = yield ("readdir", spool_dir)
    if iserr(names):
        yield from println("no statd spool at %s" % spool_dir)
        return
    now = yield ("time",)
    shown = 0
    for name in sorted(names):
        data = yield from read_file("%s/%s/%s"
                                    % (spool_dir, name, REPORT_NAME))
        if iserr(data):
            continue
        try:
            report = StatReport.unpack(data)
        except UnixError:
            continue  # torn: the spooler will toss it
        if not shown:
            yield from println(_SPOOL_HEADER)
        shown += 1
        samples = sum(len(samples) for __, __, samples
                      in report.series)
        yield from println(_SPOOL_ROW % (
            report.host, max(0, now - report.time_s), report.seq,
            len(report.series), samples))
    if not shown:
        yield from println("statd spool: empty")
