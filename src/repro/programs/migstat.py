"""The ``migstat`` command: live per-host migration statistics.

In the spirit of ``ps``: where ps snapshots the process table via
``getproctab``, migstat snapshots the cluster's labelled metrics via
the ``migstat`` pseudo-call and prints one row per host — dumps
taken, processes restarted, migrations completed, jobs recovered,
crashes, and heartbeat suspicions raised by that host's detector.
The footer reports whether event tracing is currently on (the
``trace_status`` syscall).
"""

from repro.errors import iserr, errno_name
from repro.programs.base import println, print_err

_HEADER = ("HOST        UP  DUMPS  RESTARTS  MIGR  RECOV"
           "  CRASH  SUSP")
_ROW = "%-10s  %2s  %5d  %8d  %4d  %5d  %5d  %4d"


def migstat_main(argv, env):
    rows = yield ("migstat",)
    if iserr(rows):
        yield from print_err("migstat: %s" % errno_name(-rows))
        return 1
    yield from println(_HEADER)
    for row in rows:
        yield from println(_ROW % (
            row["host"], "up" if row["up"] else "dn",
            row["dumps"], row["restarts"], row["migrations"],
            row["recoveries"], row["crashes"], row["suspects"]))
    tracing = yield ("trace_status",)
    yield from println("tracing: %s" % ("on" if tracing == 1
                                        else "off"))
    return 0
