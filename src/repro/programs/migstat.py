"""The ``migstat`` command: live per-host migration statistics.

In the spirit of ``ps``: where ps snapshots the process table via
``getproctab``, migstat snapshots the cluster's labelled metrics via
the ``migstat`` pseudo-call and prints one row per host — dumps
taken, processes restarted, migrations completed, jobs recovered,
crashes, and heartbeat suspicions raised by that host's detector.
The footer reports whether event tracing is currently on (the
``trace_status`` syscall).

``-m`` additionally lists the in-flight records of the migration
intent ledger (DESIGN.md section 12): one row per record with its
phase, fencing epoch, endpoints and age — the operator's view of
what a recovery sweep would find.
"""

from repro.errors import iserr, errno_name
from repro.net.migledger import PHASE_NAMES, ledger_read
from repro.programs.base import parse_options, println, print_err

_HEADER = ("HOST        UP  DUMPS  RESTARTS  MIGR  RECOV"
           "  CRASH  SUSP")
_ROW = "%-10s  %2s  %5d  %8d  %4d  %5d  %5d  %4d"

_LEDGER_HEADER = "LEDGER           PHASE       EPOCH  DEST      ORCH      AGE"
_LEDGER_ROW = "%-15s  %-10s  %5d  %-8s  %-8s  %ds"


def migstat_main(argv, env):
    opts, __ = parse_options(argv, {"-m": False})
    if not isinstance(opts, dict):
        yield from print_err("usage: migstat [-m]")
        return 1
    rows = yield ("migstat",)
    if iserr(rows):
        yield from print_err("migstat: %s" % errno_name(-rows))
        return 1
    yield from println(_HEADER)
    for row in rows:
        yield from println(_ROW % (
            row["host"], "up" if row["up"] else "dn",
            row["dumps"], row["restarts"], row["migrations"],
            row["recoveries"], row["crashes"], row["suspects"]))
    if opts.get("-m"):
        yield from _show_ledger()
    tracing = yield ("trace_status",)
    yield from println("tracing: %s" % ("on" if tracing == 1
                                        else "off"))
    return 0


def _show_ledger():
    """yield-from: list the migration ledger's records, if any."""
    ledgerdir = yield ("sysctl0", "migration_ledger_dir")
    names = yield ("readdir", ledgerdir)
    if iserr(names):
        yield from println("no migration ledger at %s" % ledgerdir)
        return
    now = yield ("time",)
    shown = 0
    for name in sorted(names):
        directory = "%s/%s" % (ledgerdir, name)
        stat = yield ("stat", directory)
        if iserr(stat) or not stat.is_dir():
            continue
        record = yield from ledger_read(directory)
        if iserr(record):
            continue  # reaped or torn: not an in-flight record
        if not shown:
            yield from println(_LEDGER_HEADER)
        shown += 1
        yield from println(_LEDGER_ROW % (
            record.mig_id(), PHASE_NAMES.get(record.phase, "?"),
            record.epoch, record.destination, record.orchestrator,
            max(0, now - record.time_s)))
    if not shown:
        yield from println("migration ledger: empty")
