"""``loadd`` — the automatic load-balancing daemon (section 8).

The paper's closing application: "CPU bound jobs can be moved from
busy nodes of the network to others that are idle", but "the migrate
application may be too slow in terms of real time response".  loadd
is the daemonized answer: it never touches rsh — remote work goes
through ``migrationd`` at its well-known port, exactly the section
6.4 proposal.

One loadd runs per participating host, told its peers on the command
line.  Each round it:

1. samples local load via ``getproctab`` (runnable VM jobs and their
   CPU consumption) and spools its own ``LOADREPORT``;
2. broadcasts the report to every peer's ``loadd-recv`` at the
   well-known port — skipping peers the heartbeat detector already
   suspects dead, so a crashed host costs nothing but its absence;
3. rebuilds the cluster load view from the spool, dropping reports
   that are corrupt (unlinked and counted, never fatal), stale
   (older than ``load_stale_s`` — a partitioned peer ages out), or
   from hb-suspected hosts;
4. asks its policy (:mod:`repro.apps.policy`) for moves and executes
   only the ones whose *source is this host* — only the owner of a
   job may dump it, which is what keeps two balancers from ever
   duplicating a process.  Destinations it just fed are assumed one
   job busier for ``SETTLE_ROUNDS`` rounds, damping the herd effect
   of re-balancing against a peer's not-yet-updated report;
5. moves a job by running ``dumpproc`` locally, then ``restart -k``
   on the destination through ``migrationd-run``, taking the kernel's
   consumption of the staged a.out as the ack (the ``migrate``
   technique).  If the remote restart fails the job is restarted
   *locally* from the same dump — a failed move degrades to a no-op
   instead of losing the job.

The companion ``loadd-recv`` process owns the well-known port: it
blocks in accept (so an idle cluster still quiesces), reads one
report per connection, validates it, and spools it for the next
balancing round.  Fault sites ``loadd.send`` / ``loadd.recv`` inject
report loss, delay, corruption, crashes and partitions on either
side of the exchange.

Usage: ``loadd [-i interval] [-n rounds] [-P policy] peer...``
(defaults from the ``loadd_interval_s`` / ``loadd_rounds`` /
``loadd_policy`` sysctl knobs; the local host may appear in the peer
list and is ignored there).
"""

from repro.errors import iserr, ENOENT, UnixError
from repro.kernel.constants import O_RDONLY
from repro.core.formats import dump_file_names
from repro.apps.policy import HostLoad, make_policy
from repro.net.loadd import (LOADD_PORT, MAX_CANDIDATES, SPOOL_DIR,
                             LoadReport)
from repro.programs.base import (parse_options, print_err, read_file,
                                 write_all, write_file)
from repro.programs.exitcodes import EX_FAIL, EX_OK

USAGE = "usage: loadd [-i interval] [-n rounds] [-P policy] peer..."

#: rounds a successful move keeps inflating the destination's view
#: entry: the peer's own report reflects the arrival only after its
#: next sample crosses the wire, and until then re-balancing against
#: the stale count would re-trigger the same decision (the classic
#: herd effect).  Two rounds cover sample + wire latency; an
#: overestimate is safe — it only delays the next move by a round.
SETTLE_ROUNDS = 2


def loadd_main(argv, env):
    options, positional = parse_options(argv, {"-i": True, "-n": True,
                                               "-P": True})
    if positional is None or not positional:
        yield from print_err(USAGE)
        return EX_FAIL
    try:
        interval = float(options["-i"]) if "-i" in options \
            else (yield ("sysctl", "loadd_interval_s"))
        rounds = int(options["-n"]) if "-n" in options \
            else (yield ("sysctl", "loadd_rounds"))
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL
    policy = yield from _build_policy(options.get("-P"))
    if policy is None:
        return EX_FAIL

    yield ("hb_start",)
    local = yield ("gethostname",)
    peers = [host for host in positional if host != local]
    yield ("mkdir", SPOOL_DIR, 0o755)  # EEXIST is fine
    # the receiver owns the well-known port; detached, so it neither
    # zombifies nor dies with this (finite-rounds) policy loop.  If a
    # receiver is already bound it exits quietly.
    yield ("spawn", "/bin/loadd-recv", ["loadd-recv"], None, True)

    settling = {}  # destination -> rounds an in-flight move covers
    for round_no in range(rounds):
        yield ("sleep", interval)
        yield from _drain_children()  # e.g. timed-out move relays
        report = yield from _sample(local)
        yield from write_file("%s/%s" % (SPOOL_DIR, local),
                              report.pack())
        yield from _broadcast(report, peers)
        view = yield from _build_view(local, peers)
        _apply_settling(view, settling)
        landed = yield from _balance(policy, view, local, round_no)
        for host in landed:
            settling[host] = SETTLE_ROUNDS
        yield ("perf_note", "ld_rounds")
    return EX_OK


def _apply_settling(view, settling):
    """Account for this host's own in-flight moves in a fresh view."""
    for host in list(settling):
        if host in view:
            entry = view[host]
            view[host] = HostLoad(host, entry.runnable + 1,
                                  entry.candidates)
        settling[host] -= 1
        if settling[host] <= 0:
            del settling[host]


def _build_policy(name):
    """Instantiate the policy from argv/-P or the sysctl knobs."""
    if name is None:
        name = yield ("sysctl", "loadd_policy")
    knobs = dict(
        min_cpu_seconds=(yield ("sysctl", "loadd_min_cpu_s")),
        max_moves_per_round=(yield ("sysctl", "loadd_max_moves")))
    if name == "threshold":
        knobs["imbalance_threshold"] = \
            yield ("sysctl", "loadd_imbalance")
    elif name == "watermark":
        knobs["high_watermark"] = \
            yield ("sysctl", "loadd_high_watermark")
        knobs["low_watermark"] = \
            yield ("sysctl", "loadd_low_watermark")
    try:
        return make_policy(name, **knobs)
    except ValueError:
        yield from print_err("loadd: unknown policy %r" % (name,))
        return None


def _sample(local):
    """Snapshot this host's load as a LoadReport."""
    now_s = yield ("time",)
    rows = yield ("getproctab",)
    jobs = [(row["pid"], row["utime_us"] + row["stime_us"])
            for row in rows if row.get("vm") and row["state"] != "Z"]
    candidates = sorted(jobs, key=lambda j: (-j[1], j[0]))
    candidates = [(pid, cpu_us // 1000)
                  for pid, cpu_us in candidates[:MAX_CANDIDATES]]
    return LoadReport(local, now_s, len(jobs), candidates)


def _broadcast(report, peers):
    """Send the report to every peer not already suspected dead."""
    for peer in peers:
        suspected = yield ("hb_status", peer)
        if suspected == 1:
            yield ("perf_note", "ld_suspect_skips")
            continue
        fate = yield ("fault_point", "loadd.send", peer)
        if iserr(fate):
            yield ("perf_note", "ld_reports_dropped")
            continue
        blob = yield ("fault_data", "loadd.send", report.pack(), peer)
        sock = yield ("socket",)
        result = yield ("connect", sock, peer, LOADD_PORT)
        if iserr(result):
            yield ("close", sock)
            yield ("perf_note", "ld_reports_dropped")
            continue
        result = yield from write_all(sock, blob)
        yield ("close", sock)
        if iserr(result):
            yield ("perf_note", "ld_reports_dropped")
        else:
            yield ("perf_note", "ld_reports_sent")


def _build_view(local, peers):
    """The cluster load view from the spool, staleness-filtered."""
    now_s = yield ("time",)
    stale_s = yield ("sysctl", "load_stale_s")
    view = {}
    for host in [local] + peers:
        if host != local:
            suspected = yield ("hb_status", host)
            if suspected == 1:
                continue
        path = "%s/%s" % (SPOOL_DIR, host)
        data = yield from read_file(path)
        if iserr(data):
            continue  # no report from this peer yet
        try:
            report = LoadReport.unpack(data)
        except UnixError:
            report = None
        if report is None or report.host != host:
            yield ("unlink", path)  # corrupt or misfiled: toss it
            yield ("perf_note", "ld_reports_dropped")
            continue
        if max(0, now_s - report.time_s) > stale_s:
            yield ("perf_note", "ld_stale_drops")
            continue
        view[host] = HostLoad(
            host=host, runnable=report.runnable,
            candidates=tuple((pid, cpu_ms / 1000.0)
                             for pid, cpu_ms in report.candidates))
    return view


def _balance(policy, view, local, round_no):
    """One decision round: select and execute this host's moves.

    Returns the destinations that received a job, so the caller can
    inflate their view entries until their own reports catch up.
    """
    round_id = "%s:%d" % (local, round_no)
    yield ("trace_span", "loadd", "B", round_id)
    ok = 1
    landed = []
    for move in policy.select(view):
        if move.source != local:
            # only the owner dumps its own jobs: a decision about
            # another host is that host's loadd's business
            continue
        yield ("trace_mark", "loadd", "move",
               "%s:%d" % (local, move.pid))
        moved = yield from _move_one(move.pid, move.destination,
                                     local)
        if moved:
            yield ("perf_note", "ld_moves")
            landed.append(move.destination)
        else:
            yield ("perf_note", "ld_move_failures")
            ok = 0
    yield ("trace_span", "loadd", "E", round_id, ok)
    return landed


def _move_one(pid, destination, local):
    """dumpproc locally, restart remotely via migrationd.

    A failed dump leaves the victim running (nothing to undo).  A
    failed remote restart falls back to restarting the job *locally*
    from the same dump, so the worst normal outcome of a move is the
    status quo; only a host that dies mid-fallback can lose the job
    (fail-stop, same as any crash).
    """
    child = yield ("spawn", "/bin/dumpproc",
                   ["dumpproc", "-p", str(pid)])
    if iserr(child):
        return False
    status = yield from _wait_for(child)
    if status != EX_OK:
        return False
    dump_paths = dump_file_names(pid)

    restart_cmd = "restart -k -p %d -h %s" % (pid, local)
    runner = ["migrationd-run", destination, restart_cmd]
    child = yield ("spawn", "/bin/migrationd-run", runner)
    landed = yield from _await_ack(child, dump_paths[0])
    if landed:
        return True

    # undo: bring the job back up where it was
    child = yield ("spawn", "/bin/restart",
                   ["restart", "-k", "-p", str(pid)])
    landed = yield from _await_ack(child, dump_paths[0])
    if not landed:
        for path in dump_paths:
            yield ("unlink", path)
    return False


def _await_ack(child, aout_path):
    """Poll for the restart ack: the staged a.out disappearing."""
    if iserr(child):
        return False
    poll_tries = yield ("sysctl0", "restart_poll_tries")
    poll_sleep = yield ("sysctl0", "restart_poll_sleep_s")
    for __ in range(max(1, poll_tries)):
        fd = yield ("open", aout_path, O_RDONLY, 0)
        if fd == -ENOENT:
            return True  # rest_proc consumed the dump: it took
        if not iserr(fd):
            yield ("close", fd)
        reaped = yield ("reap",)
        if isinstance(reaped, tuple) and reaped[0] == child:
            return False  # the restart (or its relay) died
        yield ("sleep", poll_sleep)
    return False


def _drain_children():
    """Reap finished children without blocking (a successful remote
    restart leaves its migrationd-run relay to time out on the reply
    sentinel — the relayed restart became the migrated process and
    will never exit — so the relay dies a round or two later)."""
    while True:
        reaped = yield ("reap",)
        if not isinstance(reaped, tuple):
            return


def _wait_for(child):
    while True:
        result = yield ("wait",)
        if iserr(result):
            return EX_FAIL
        reaped, raw = result
        if reaped == child:
            return (raw >> 8) & 0xFF if not raw & 0x7F else EX_FAIL


# -- the receiver -----------------------------------------------------------


def loadd_recv_main(argv, env):
    """Own the well-known port; spool one report per connection."""
    sock = yield ("socket",)
    result = yield ("bind", sock, LOADD_PORT)
    if iserr(result):
        return EX_OK  # a receiver is already running: nothing to do
    yield ("listen", sock)
    yield ("mkdir", SPOOL_DIR, 0o755)
    timeout = yield ("sysctl", "net_read_timeout_s")
    while True:
        conn = yield ("accept", sock)
        if iserr(conn):
            yield ("sleep", 1)  # transient: don't spin hot
            continue
        blob = yield from _read_report(conn, timeout)
        yield ("close", conn)
        if blob is None:
            yield ("perf_note", "ld_reports_dropped")
            continue
        fate = yield ("fault_point", "loadd.recv", "")
        if iserr(fate):
            yield ("perf_note", "ld_reports_dropped")
            continue
        blob = yield ("fault_data", "loadd.recv", blob, "")
        try:
            report = LoadReport.unpack(blob)
        except UnixError:
            report = None  # torn or doctored: drop, never crash
        if report is None:
            yield ("perf_note", "ld_reports_dropped")
            continue
        yield from write_file("%s/%s" % (SPOOL_DIR, report.host),
                              blob)
        yield ("perf_note", "ld_reports_recv")


def _read_report(conn, timeout):
    """Read one connection to EOF (bounded); None on timeout/error."""
    from repro.errors import ETIMEDOUT
    parts = []
    total = 0
    while total <= 4096:  # reports are tiny; don't buffer a firehose
        data = yield ("read_timeout", conn, 1024, timeout)
        if data == -ETIMEDOUT:
            yield ("perf_note", "timeouts")
            return None
        if iserr(data):
            return None
        if data == b"":
            return b"".join(parts) if parts else None
        parts.append(data)
        total += len(data)
    return None
