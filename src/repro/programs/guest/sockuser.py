"""A process holding a socket: the main migration limitation.

"The main limitation is the inability to redirect pipes and sockets
... The best we can do in our current implementation is to redirect
socket I/O to a file [/dev/null], which is probably of little use."

The program creates a socket, then on each line of input writes a byte
to the socket fd and reports the result.  Before migration the socket
is unconnected, so the write fails (``w=-1``); after migration the fd
has silently become ``/dev/null`` and the write "succeeds" (``w=1``) —
observable evidence of the documented degradation.
"""

from repro.programs.guest.libasm import program

BODY = """
start:  move  #SYS_socket, d0
        trap
        move  d0, d7                ; the socket fd

skloop: lea   prompt, a0
        jsr   puts
        move  #SYS_read, d0         ; wait for a line (dump point)
        move  #0, d1
        move  #linebuf, d2
        move  #64, d3
        trap
        tst   d0
        ble   done
        move  #SYS_write, d0        ; poke the socket
        move  d7, d1
        move  #onebyte, d2
        move  #1, d3
        trap
        move  d0, d6                ; write result (puts clobbers d2)
        lea   msg_w, a0
        jsr   puts
        move  d6, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        bra   skloop

done:   move  #0, d2
        jsr   exit
"""

DATA = """
prompt:  .asciz "$ "
linebuf: .space 64
onebyte: .asciz "x"
msg_w:   .asciz "w="
msg_nl:  .asciz "\\n"
"""


def sockuser_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
