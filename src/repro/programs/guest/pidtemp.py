"""The section 7 misbehaver: temp files named after getpid().

"If a process repeatedly opens a temporary file whose name consists of
a fixed prefix to which the process id is appended, then, after the
process is migrated and the process id is changed, it will no longer
be able to locate that file.  (This will happen if the program
requests the process id from the system every time ...)"

The program creates ``/tmp/pt<pid>`` once, then on every line of input
re-derives the name from a *fresh* ``getpid()`` and tries to reopen
it, printing ``ok`` or ``LOST``.  Migrated without the
``compat_migrated_ids`` kernel option it prints ``LOST``; with the
option (the paper's proposed fix, ablation A5) it keeps printing
``ok``.
"""

from repro.programs.guest.libasm import program

BODY = """
start:  jsr   makename              ; build /tmp/pt<pid> from getpid()
        move  #SYS_creat, d0        ; create the temp file once
        move  #namebuf, d1
        move  #420, d2
        trap
        tst   d0
        blt   fail
        move  d0, d1                ; and close it again
        move  #SYS_close, d0
        trap

ptloop: lea   prompt, a0
        jsr   puts
        move  #SYS_read, d0         ; wait for a line (dump point)
        move  #0, d1
        move  #linebuf, d2
        move  #64, d3
        trap
        tst   d0
        ble   done
        jsr   makename              ; ask for the pid *again*
        move  #SYS_open, d0
        move  #namebuf, d1
        move  #O_RDONLY, d2
        move  #0, d3
        trap
        tst   d0
        blt   lost
        move  d0, d1
        move  #SYS_close, d0
        trap
        lea   msg_ok, a0
        jsr   puts
        bra   ptloop
lost:   lea   msg_lost, a0
        jsr   puts
        move  #1, d2
        jsr   exit

done:   move  #0, d2
        jsr   exit
fail:   move  #2, d2
        jsr   exit

; build "/tmp/pt<pid>" into namebuf
makename:
        lea   namebuf, a0
        lea   prefix, a1
mkcopy: movb  (a1), d5
        beq   mkpid
        movb  d5, (a0)
        add   #1, a0
        add   #1, a1
        bra   mkcopy
mkpid:  move  #SYS_getpid, d0
        trap
        move  d0, d2
        jsr   itoa                  ; itoa NUL-terminates
        rts
"""

DATA = """
prefix:   .asciz "/tmp/pt"
namebuf:  .space 64
linebuf:  .space 64
prompt:   .asciz "? "
msg_ok:   .asciz "ok\\n"
msg_lost: .asciz "LOST\\n"
"""


def pidtemp_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
