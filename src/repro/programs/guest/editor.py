"""A raw-mode "screen editor": the visually-oriented test program.

Puts its terminal into raw (no-echo, character-at-a-time) mode, keeps
an in-memory text buffer, and processes keystrokes:

* ``r`` — redraw the screen (the paper: after restarting a visual
  program one types "whatever command will cause that program to
  redraw the screen", "^L in most cases" — ours is ``r``);
* ``q`` — restore the terminal modes and quit;
* anything else — append to the buffer and echo it bracketed.

Because ``dumpproc`` records the terminal flags and ``restart``
re-establishes them, the editor keeps working after a *local* restart;
through ``rsh`` (whose stdio is a socket, not a terminal) the mode
restoration is impossible and the program becomes useless — the exact
limitation of section 4.1.
"""

from repro.programs.guest.libasm import program

BODY = """
start:  move  #SYS_ioctl, d0        ; save current terminal flags
        move  #0, d1
        move  #TIOCGETP, d2
        move  #flagbuf, d3
        trap
        move  flagbuf, d7           ; original flags live in d7
        move  #TF_RAW, flagbuf      ; raw, no echo
        move  #SYS_ioctl, d0
        move  #0, d1
        move  #TIOCSETP, d2
        move  #flagbuf, d3
        trap
        jsr   redraw

edloop: move  #SYS_read, d0
        move  #0, d1
        move  #charbuf, d2
        move  #1, d3
        trap
        tst   d0
        ble   edquit
        movb  charbuf, d5
        cmp   #'q', d5
        beq   edquit
        cmp   #'r', d5
        beq   edredraw

        lea   textbuf, a0           ; insert at textbuf[textlen]
        move  a0, d3
        add   textlen, d3
        move  d3, a1
        movb  charbuf, d5
        movb  d5, (a1)
        add   #1, textlen

        lea   msg_lb, a0            ; echo "[c]"
        jsr   puts
        move  #SYS_write, d0
        move  #1, d1
        move  #charbuf, d2
        move  #1, d3
        trap
        lea   msg_rb, a0
        jsr   puts
        bra   edloop

edredraw:
        jsr   redraw
        bra   edloop

edquit: move  d7, flagbuf           ; restore the terminal
        move  #SYS_ioctl, d0
        move  #0, d1
        move  #TIOCSETP, d2
        move  #flagbuf, d3
        trap
        move  #0, d2
        jsr   exit

redraw: lea   msg_screen, a0
        jsr   puts
        move  #SYS_write, d0
        move  #1, d1
        move  #textbuf, d2
        move  textlen, d3
        trap
        lea   msg_bar, a0
        jsr   puts
        rts
"""

DATA = """
flagbuf:    .word 0
charbuf:    .space 4
textlen:    .word 0
msg_screen: .asciz "=== ed ===\\n"
msg_bar:    .asciz "\\n---\\n"
msg_lb:     .asciz "["
msg_rb:     .asciz "]"
textbuf:    .space 256
"""


def editor_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
