"""A network service: the test program for the section 9 extension.

The paper's future work asks "whether support for sockets can be
added".  This server binds a well-known port, listens, and serves one
request per connection (echoing the payload back behind a ``srv:``
prefix, and counting requests in its data segment).

With the stock kernel, dumping it loses the socket and the restarted
server spins uselessly on ``/dev/null``.  With the
``migrate_listening_sockets`` kernel option, the dump records the
bound port, restart re-binds and re-listens on the destination, and
the process — resuming *inside* its interrupted ``accept()`` — simply
starts serving clients of the new machine, request counter intact.
"""

from repro.programs.guest.libasm import program

PORT = 6000

BODY = """
start:  move  #SYS_socket, d0
        trap
        move  d0, d7                ; the listening socket
        move  #SYS_bind, d0
        move  d7, d1
        move  #%(port)d, d2
        trap
        tst   d0
        blt   fail
        move  #SYS_listen, d0
        move  d7, d1
        trap
        lea   msg_up, a0
        jsr   puts

serve:  move  #SYS_accept, d0       ; <- dump point: blocked here
        move  d7, d1
        trap
        tst   d0
        blt   fail                  ; socket gone (stock kernel)
        move  d0, d6                ; the connection

        move  #SYS_read, d0
        move  d6, d1
        move  #buf, d2
        move  #64, d3
        trap
        tst   d0
        ble   hangup
        move  d0, d5                ; request length

        move  #SYS_write, d0        ; reply: "srv:" + request
        move  d6, d1
        move  #msg_srv, d2
        move  #4, d3
        trap
        move  #SYS_write, d0
        move  d6, d1
        move  #buf, d2
        move  d5, d3
        trap
        add   #1, served

hangup: move  #SYS_close, d0
        move  d6, d1
        trap
        bra   serve

fail:   lea   msg_down, a0
        jsr   puts
        move  #1, d2
        jsr   exit
""" % {"port": PORT}

DATA = """
served:   .word 0
buf:      .space 64
msg_up:   .asciz "serving\\n"
msg_srv:  .asciz "srv:"
msg_down: .asciz "socket lost\\n"
"""


def portserver_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
