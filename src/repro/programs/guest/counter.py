"""The paper's section 6.2 test program.

"The program increments and prints three counters (a register, a
static variable allocated on the data segment and a variable allocated
on the stack).  On each iteration it inputs a line and appends it to
an output file."

Small, but it verifies the whole mechanism: the register counter
survives only if registers are restored, the static counter only if
the data segment is dumped into the a.out, the stack counter only if
the stack is restored, and the output file only if open files are
reopened with the right flags and offset.  It is "always killed after
its first prompt for input" in the Figure 2/3/4 measurements — i.e.
while blocked reading the terminal.
"""

from repro.programs.guest.libasm import program

BODY = """
start:  move  #SYS_open, d0
        move  #outname, d1
        move  #O_WRONLY + O_CREAT + O_APPEND, d2
        move  #420, d3              ; 0644
        trap
        move  d0, d7                ; output fd lives in d7
        push  #0                    ; the stack counter
        move  #0, d6                ; the register counter

loop:   add   #1, d6
        add   #1, static_ctr
        move  (sp), d5
        add   #1, d5
        move  d5, (sp)

        lea   msg_r, a0
        jsr   puts
        move  d6, d2
        jsr   putnum
        lea   msg_s, a0
        jsr   puts
        move  static_ctr, d2
        jsr   putnum
        lea   msg_k, a0
        jsr   puts
        move  (sp), d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts

        lea   prompt, a0
        jsr   puts
        move  #SYS_read, d0
        move  #0, d1
        move  #linebuf, d2
        move  #128, d3
        trap
        tst   d0
        ble   done                  ; EOF (or error): finish up
        move  d0, d3                ; append the line to the file
        move  #linebuf, d2
        move  #SYS_write, d0
        move  d7, d1
        trap
        bra   loop

done:   move  #0, d2
        jsr   exit
"""

DATA = """
static_ctr: .word 0
outname:    .asciz "counter.out"
msg_r:      .asciz "r="
msg_s:      .asciz " s="
msg_k:      .asciz " k="
msg_nl:     .asciz "\\n"
prompt:     .asciz "> "
linebuf:    .space 128
"""


def counter_source():
    return BODY, DATA


def counter_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
