"""The section 7 wait() caveat demonstrator.

"Processes that wait for one or more of their children to complete
should not be migrated while waiting.  When such a process is moved to
another machine, it ceases being the parent of what used to be its
children, and waiting for them will produce undefined results."

The program forks a child that reads one line of input and exits; the
parent announces itself and calls ``wait()``.  Dump the *parent* while
it blocks in wait(), restart it anywhere, and the retried wait() fails
with ECHILD — the restarted process prints ``wait failed``.
"""

from repro.programs.guest.libasm import program

BODY = """
start:  move  #SYS_fork, d0
        trap
        tst   d0
        blt   fail
        beq   child

        lea   msg_waiting, a0       ; parent
        jsr   puts
        move  #SYS_wait, d0         ; <- dump point
        move  #0, d1
        trap
        tst   d0
        blt   wait_failed
        move  d0, d6                ; reaped pid (puts clobbers d0)
        lea   msg_reaped, a0
        jsr   puts
        move  d6, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        move  #0, d2
        jsr   exit

wait_failed:
        lea   msg_failed, a0
        jsr   puts
        move  #1, d2
        jsr   exit

child:  move  #SYS_read, d0         ; the child waits for input ...
        move  #0, d1
        move  #linebuf, d2
        move  #64, d3
        trap
        move  #0, d2                ; ... and exits
        jsr   exit

fail:   move  #2, d2
        jsr   exit
"""

DATA = """
linebuf:     .space 64
msg_waiting: .asciz "waiting\\n"
msg_reaped:  .asciz "reaped pid "
msg_failed:  .asciz "wait failed\\n"
msg_nl:      .asciz "\\n"
"""


def waiter_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout
