"""The section 7 hardware-dependence misbehaver (Sun-3 only).

"A more serious example is that of a process that acts differently
depending on which machine it is running (e.g., uses hardware floating
point operations if running on host A, otherwise emulates them in
software) — if that process is migrated from host A to some other host
after it decides to use hardware operations, it will crash."

Our analogue: this program is built for the MC68020 and its inner loop
uses the 68020-only ``mull`` instruction ("the hardware operation").
Migrating it from a Sun-3 to a Sun-2 executes ``mull`` on a CPU that
does not have it — an illegal-instruction fault, i.e. the crash the
paper predicts.  Migrating Sun-2 → Sun-3 programs is always safe
("upward-compatible").
"""

from repro.programs.guest.libasm import program

BODY = """
start:  move  #1, d6                ; accumulator

edloop: lea   prompt, a0
        jsr   puts
        move  #SYS_read, d0         ; wait for a line (dump point)
        move  #0, d1
        move  #linebuf, d2
        move  #64, d3
        trap
        tst   d0
        ble   done
        mull  #3, d6                ; THE hardware-only operation
        add   #1, d6
        lea   msg_v, a0
        jsr   puts
        move  d6, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        bra   edloop

done:   move  #0, d2
        jsr   exit
"""

DATA = """
prompt:  .asciz "# "
linebuf: .space 64
msg_v:   .asciz "v="
msg_nl:  .asciz "\\n"
"""


def envdep_aout():
    return program(BODY, DATA, cpu="mc68020").aout
