"""The guest-side assembly library.

:data:`PRELUDE` defines equates for every syscall number, the open
flags, ioctl requests, tty flags and common signals — generated from
the same tables the kernel uses, so the two sides cannot drift.

:data:`STDLIB` provides the routines every guest program wants:

``strlen``   a0 = string → d0 = length           (clobbers d0, a1)
``puts``     a0 = string → written to fd 1       (clobbers d0-d3, a1)
``putnum``   d2 = value  → decimal to fd 1       (clobbers d0-d5, a1, a2)
``exit``     d2 = status → never returns

Programs append ``STDLIB`` to their text and ``STDLIB_DATA`` to their
data section.
"""

from repro.kernel.constants import (O_APPEND, O_CREAT, O_EXCL, O_RDONLY,
                                    O_RDWR, O_TRUNC, O_WRONLY,
                                    TIOCGETP, TIOCSETP, TF_CBREAK,
                                    TF_CRMOD, TF_ECHO, TF_RAW)
from repro.kernel.signals import (SIGDUMP, SIGHUP, SIGINT, SIGKILL,
                                  SIGQUIT, SIGTERM, SIGUSR1, SIGUSR2)
from repro.kernel.syscalls import NR


def _equates():
    lines = []
    for name, number in sorted(NR.items(), key=lambda kv: kv[1]):
        lines.append("SYS_%s = %d" % (name, number))
    flags = {
        "O_RDONLY": O_RDONLY, "O_WRONLY": O_WRONLY, "O_RDWR": O_RDWR,
        "O_APPEND": O_APPEND, "O_CREAT": O_CREAT, "O_TRUNC": O_TRUNC,
        "O_EXCL": O_EXCL,
        "TIOCGETP": TIOCGETP, "TIOCSETP": TIOCSETP,
        "TF_ECHO": TF_ECHO, "TF_RAW": TF_RAW, "TF_CBREAK": TF_CBREAK,
        "TF_CRMOD": TF_CRMOD,
        "SIGHUP": SIGHUP, "SIGINT": SIGINT, "SIGQUIT": SIGQUIT,
        "SIGKILL": SIGKILL, "SIGTERM": SIGTERM, "SIGUSR1": SIGUSR1,
        "SIGUSR2": SIGUSR2, "SIGDUMP": SIGDUMP,
    }
    for name, value in flags.items():
        lines.append("%s = %d" % (name, value))
    return "\n".join(lines) + "\n"


PRELUDE = _equates()

STDLIB = """
; ---------------------------------------------------------------
; guest standard library (see repro/programs/guest/libasm.py)
; ---------------------------------------------------------------
strlen: move  a0, a1
strlen_loop:
        movb  (a1), d0
        beq   strlen_done
        add   #1, a1
        bra   strlen_loop
strlen_done:
        move  a1, d0
        sub   a0, d0
        rts

puts:   jsr   strlen
        move  d0, d3
        move  a0, d2
        move  #SYS_write, d0
        move  #1, d1
        trap
        rts

putnum: lea   lib_numbuf_end, a1
        move  d2, d4
        tst   d4
        bge   putnum_digits
        neg   d4
putnum_digits:
        move  d4, d5
        mod   #10, d5
        add   #'0', d5
        sub   #1, a1
        movb  d5, (a1)
        div   #10, d4
        tst   d4
        bne   putnum_digits
        tst   d2
        bge   putnum_write
        sub   #1, a1
        movb  #'-', (a1)
putnum_write:
        lea   lib_numbuf_end, a2
        move  a2, d3
        sub   a1, d3
        move  a1, d2
        move  #SYS_write, d0
        move  #1, d1
        trap
        rts

exit:   move  #SYS_exit, d0
        move  d2, d1
        trap
        halt            ; not reached

; itoa: d2 = value, a0 = destination buffer (decimal + NUL)
;       clobbers d0, d3, d4, d5, a1, a2; a0 left past the NUL
itoa:   lea   lib_numbuf_end, a1
        move  d2, d4
        tst   d4
        bge   itoa_digits
        neg   d4
itoa_digits:
        move  d4, d5
        mod   #10, d5
        add   #'0', d5
        sub   #1, a1
        movb  d5, (a1)
        div   #10, d4
        tst   d4
        bne   itoa_digits
        tst   d2
        bge   itoa_copy
        sub   #1, a1
        movb  #'-', (a1)
itoa_copy:
        lea   lib_numbuf_end, a2
itoa_copy_loop:
        move  a1, d3
        cmp   a2, d3
        bge   itoa_done
        movb  (a1), d5
        movb  d5, (a0)
        add   #1, a0
        add   #1, a1
        bra   itoa_copy_loop
itoa_done:
        movb  #0, (a0)
        rts

; atoi: a0 = string -> d0 = value (stops at first non-digit)
;       clobbers d0, d1, a0
atoi:   move  #0, d0
atoi_loop:
        movb  (a0), d1
        beq   atoi_done
        cmp   #'0', d1
        blt   atoi_done
        cmp   #'9', d1
        bgt   atoi_done
        mul   #10, d0
        sub   #'0', d1
        add   d1, d0
        add   #1, a0
        bra   atoi_loop
atoi_done:
        rts

; the rest of "libc": real 1987 binaries linked in crt0, stdio and
; friends whether they used them or not; this block gives guest
; executables (and therefore a.outXXXXX dumps) a realistic text size
lib_rest_of_libc:
        .space 1600
"""

STDLIB_DATA = """
lib_numbuf:     .space 16
lib_numbuf_end:
"""


def program(body_text, body_data="", cpu="mc68010"):
    """Assemble a guest program: prelude + body + stdlib."""
    from repro.vm.assembler import assemble
    source = (PRELUDE + "        .text\n" + body_text + STDLIB
              + "        .data\n" + body_data + STDLIB_DATA)
    return assemble(source, cpu=cpu)
