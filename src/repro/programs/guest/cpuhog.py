"""A CPU-bound job: the load-balancing workload.

Section 8: "CPU bound jobs can be moved from busy nodes of the network
to others that are idle."  This program spins through ``argv[1]``
iterations of integer busywork, accumulating a checksum, then prints
it — so a test can verify that migrating the job mid-run does not
change the result.  Every ``PROGRESS_EVERY`` iterations it rewrites a
one-line progress file, giving the load balancer something to watch.
"""

from repro.programs.guest.libasm import program

#: iterations between progress-file updates
PROGRESS_EVERY = 20000

BODY = """
start:  move  (sp), d3              ; argc
        cmp   #2, d3
        blt   hog_default
        move  8(sp), a0             ; argv[1]
        jsr   atoi
        move  d0, d6                ; total iterations
        bra   hog_go
hog_default:
        move  #100000, d6
hog_go: move  #0, d7                ; iteration counter

hog_loop:
        add   #1, d7
        move  d7, d5                ; busywork: ((i*7)+3) mod 123
        mul   #7, d5
        add   #3, d5
        mod   #123, d5
        add   d5, checksum
        move  d7, d5                ; progress marker every N iterations
        mod   #%(progress)d, d5
        tst   d5
        bne   hog_next
        jsr   progress
hog_next:
        cmp   d6, d7
        blt   hog_loop

        lea   msg_done, a0
        jsr   puts
        move  checksum, d2
        jsr   putnum
        lea   msg_nl, a0
        jsr   puts
        move  #0, d2
        jsr   exit

; rewrite the progress file with the current iteration count
; (the fd lives in memory: itoa clobbers every scratch register)
progress:
        move  #SYS_creat, d0
        move  #progname, d1
        move  #420, d2              ; 0644
        trap
        tst   d0
        blt   progress_out
        move  d0, progfd
        lea   pbuf, a0
        move  d7, d2
        jsr   itoa
        lea   pbuf, a0
        jsr   strlen
        move  d0, d3
        move  #pbuf, d2
        move  #SYS_write, d0
        move  progfd, d1
        trap
        move  #SYS_close, d0
        move  progfd, d1
        trap
progress_out:
        rts
""" % {"progress": PROGRESS_EVERY}

DATA = """
checksum:  .word 0
progfd:    .word 0
progname:  .asciz "hog.progress"
pbuf:      .space 16
msg_done:  .asciz "checksum="
msg_nl:    .asciz "\\n"
"""


def cpuhog_aout(cpu="mc68010"):
    return program(BODY, DATA, cpu=cpu).aout


def expected_checksum(iterations):
    """What the program should print for a given iteration count."""
    total = 0
    for i in range(1, iterations + 1):
        total = (total + ((i * 7) + 3) % 123) & 0xFFFFFFFF
    if total & 0x80000000:
        total -= 1 << 32
    return total
