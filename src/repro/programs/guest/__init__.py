"""Guest (assembly) programs.

These are the *migratable* processes: real machine images whose
registers, stack and data the dump/restore machinery captures.
"""

from repro.programs.guest.libasm import program, PRELUDE, STDLIB


def install_guest_programs(machine):
    """Assemble and install every guest program under /bin."""
    from repro.programs.guest.counter import counter_aout
    from repro.programs.guest.cpuhog import cpuhog_aout
    from repro.programs.guest.editor import editor_aout
    from repro.programs.guest.pidtemp import pidtemp_aout
    from repro.programs.guest.envdep import envdep_aout
    from repro.programs.guest.waiter import waiter_aout
    from repro.programs.guest.sockuser import sockuser_aout
    from repro.programs.guest.portserver import portserver_aout

    machine.install_aout("counter", counter_aout())
    machine.install_aout("cpuhog", cpuhog_aout())
    machine.install_aout("editor", editor_aout())
    machine.install_aout("pidtemp", pidtemp_aout())
    machine.install_aout("envdep", envdep_aout())
    machine.install_aout("waiter", waiter_aout())
    machine.install_aout("sockuser", sockuser_aout())
    machine.install_aout("portserver", portserver_aout())


__all__ = ["program", "PRELUDE", "STDLIB", "install_guest_programs"]
