"""``migtop`` — the operator's live view of cluster telemetry.

In the spirit of top(1): one row per host from the statd spool
(DESIGN.md section 13) with the host's newest gauge samples, the
virtual age of its last report, and a power-of-two sparkline of its
recent run-queue history; below the table, any SLO alerts the
critical-path analyzer raises.  With ``-p`` migtop also prints the
full critical-path report: per-phase p50/p95/max migration latency
with dominant-phase attribution and per-pair rollups — the automated
answer to "which phase dominates migration latency on this cluster".

Reads the spool over NFS (``stat_spool_dir``), so it can run on any
host; hosts whose statd stopped reporting age out of the table.  A
footer line shows the trace compiler's shared code-cache health (the
``vmcache`` pseudo-call): warm versus cold arrivals answers "are
migrated processes paying recompilation on landing" at a glance.

Usage: ``migtop [-p]``
"""

from repro.errors import iserr, UnixError
from repro.net.statd import REPORT_NAME, StatReport
from repro.programs.base import parse_options, println, print_err
from repro.programs.statd import GAUGES

USAGE = "usage: migtop [-p]"

_HEADER = "HOST        AGE  RUNQ  PROCS  SOCKS  SUSP  RUNQ HISTORY"
_ROW = "%-10s  %3ds  %4d  %5d  %5d  %4d  %s"

_PHASE_HEADER = ("PHASE       N     P50(us)     P95(us)     MAX(us)"
                 "  SHARE")
_PHASE_ROW = "%-8s  %3d  %10d  %10d  %10d  %5.1f%%"


def migtop_main(argv, env):
    opts, __ = parse_options(argv, {"-p": False})
    if not isinstance(opts, dict):
        yield from print_err(USAGE)
        return 1
    spool_dir = yield ("sysctl0", "stat_spool_dir")
    now_s = yield ("time",)
    names = yield ("readdir", spool_dir)
    if iserr(names):
        yield from println("migtop: no statd spool at %s" % spool_dir)
    else:
        yield from _show_hosts(spool_dir, sorted(names), now_s)
    report = yield ("critpath",)
    if iserr(report):
        yield from print_err("migtop: critpath unavailable")
        return 1
    cache = yield ("vmcache",)
    if not iserr(cache):
        total = cache["shared_cache_hits"] + cache["cache_rebuilds"]
        warm = (100.0 * cache["shared_cache_hits"] / total) \
            if total else 0.0
        yield from println("vm cache: %d/%d arrivals warm (%.0f%%), "
                           "%d texts cached"
                           % (cache["shared_cache_hits"], total, warm,
                              cache["cached_texts"]))
    yield from _show_alerts(report)
    if opts.get("-p"):
        yield from _show_critpath(report)
    return 0


def _show_hosts(spool_dir, names, now_s):
    """The per-host table from the spooled reports."""
    shown = 0
    for name in names:
        data = yield from _read(spool_dir, name)
        if data is None:
            continue
        try:
            report = StatReport.unpack(data)
        except UnixError:
            continue  # torn: the spooler will toss it
        series = report.to_series()
        if not shown:
            yield from println(_HEADER)
        shown += 1
        last = {key: (series.get(key).last()
                      if series.get(key) else 0) for key in GAUGES}
        runq = series.get("runq")
        yield from println(_ROW % (
            report.host, max(0, now_s - report.time_s),
            last["runq"], last["procs"], last["socks"],
            last["hb_suspects"],
            runq.sparkline() if runq else ""))
    if not shown:
        yield from println("statd spool: empty")


def _read(spool_dir, host):
    """yield-from: one spooled report's bytes, or None."""
    from repro.programs.base import read_file
    data = yield from read_file("%s/%s/%s"
                                % (spool_dir, host, REPORT_NAME))
    return None if iserr(data) else data


def _show_alerts(report):
    alerts = report.get("alerts") or []
    if not alerts:
        yield from println("alerts: none")
        return
    for alert in alerts:
        yield from println("ALERT %s: %s over limit %s"
                           % (alert["name"], alert["value"],
                              alert["limit"]))


def _show_critpath(report):
    """The -p report: phase breakdown plus rollups."""
    yield from println("critical path (%d migrations):"
                       % report["migrations"])
    if not report["phases"]:
        yield from println("  no complete migration timelines "
                           "recorded (is tracing on?)")
        return
    yield from println(_PHASE_HEADER)
    for row in report["phases"]:
        yield from println(_PHASE_ROW % (
            row["phase"], row["count"], row["p50_us"],
            row["p95_us"], row["max_us"], row["share"] * 100.0))
    e2e = report["end_to_end"]
    yield from println("end-to-end  n=%d p50=%dus p95=%dus max=%dus"
                       % (e2e["count"], e2e["p50_us"], e2e["p95_us"],
                          e2e["max_us"]))
    yield from println("dominant phase: %s" % report["dominant"])
    for pair in sorted(report["pairs"]):
        stats = report["pairs"][pair]
        yield from println("  %-20s n=%d p95=%dus"
                           % (pair, stats["count"], stats["p95_us"]))
