"""The ``dumpproc`` command (sections 4.1 and 4.4).

"Terminate a process (kill it) dumping to disk all the information
that is necessary to restart it."

Implementation, following section 4.4 step for step:

* kill the specified process with a SIGDUMP signal;
* wait for the dump to appear (the dump is written by the *victim*
  when it is next scheduled, so dumpproc "simply sleeps for one second
  after each unsuccessful attempt to open a.outXXXXX (aborting after
  ten tries)");
* read in the filesXXXXX file;
* resolve symbolic links for the cwd and all open files;
* file names that point to a terminal become ``/dev/tty``;
* names still local to this machine get ``/n/<machinename>``
  prepended;
* overwrite the modified information onto the filesXXXXX file.

Only the superuser or the owner of the process can do this — the
``kill()`` permission check enforces it.
"""

from repro.errors import iserr, errno_name, UnixError
from repro.kernel.constants import O_RDONLY
from repro.kernel.signals import SIGDUMP
from repro.core.formats import FilesInfo, dump_file_names
from repro.core.symlinks import resolve_symlinks_syscalls
from repro.programs.base import (parse_options, print_err, read_file,
                                 write_file)

#: polling parameters from the paper
POLL_TRIES = 10
POLL_SLEEP_SECONDS = 1

USAGE = "usage: dumpproc -p pid"


def dumpproc_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return 1
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return 1

    result = yield ("kill", pid, SIGDUMP)
    if iserr(result):
        yield from print_err("dumpproc: cannot signal %d: %s"
                             % (pid, errno_name(-result)))
        return 1

    aout_path, files_path, __ = dump_file_names(pid)

    # wait for the victim to be scheduled and finish writing its dump
    for attempt in range(POLL_TRIES):
        fd = yield ("open", aout_path, O_RDONLY, 0)
        if not iserr(fd):
            yield ("close", fd)
            break
        yield ("sleep", POLL_SLEEP_SECONDS)
    else:
        yield from print_err("dumpproc: no dump appeared at %s"
                             % aout_path)
        return 1

    blob = yield from read_file(files_path)
    if iserr(blob):
        yield from print_err("dumpproc: cannot read %s" % files_path)
        return 1
    try:
        info = FilesInfo.unpack(blob)
    except UnixError:
        yield from print_err("dumpproc: bad magic in %s" % files_path)
        return 1

    hostname = yield ("gethostname",)
    info.cwd = yield from _rewrite_path(info.cwd, hostname,
                                        terminal_check=False)
    for entry in info.entries:
        if entry.is_file() and entry.path:
            entry.path = yield from _rewrite_path(entry.path, hostname)

    result = yield from write_file(files_path, info.pack())
    if iserr(result):
        yield from print_err("dumpproc: cannot rewrite %s" % files_path)
        return 1
    return 0


def _rewrite_path(path, hostname, terminal_check=True):
    """Apply the section 4.4 rewriting rules to one path name."""
    if terminal_check:
        stat = yield ("stat", path)
        if not iserr(stat) and stat.is_terminal():
            # point it at the current terminal of whatever opens it
            return "/dev/tty"
    resolved = yield from resolve_symlinks_syscalls(path)
    if iserr(resolved):
        resolved = path  # keep the name; restart will fall back
    if not resolved.startswith("/n/"):
        resolved = "/n/%s%s" % (hostname, resolved)
    return resolved
