"""The ``dumpproc`` command (sections 4.1 and 4.4).

"Terminate a process (kill it) dumping to disk all the information
that is necessary to restart it."

Implementation, following section 4.4 step for step:

* kill the specified process with a SIGDUMP signal;
* wait for the dump to appear (the dump is written by the *victim*
  when it is next scheduled, so dumpproc "simply sleeps for one second
  after each unsuccessful attempt to open a.outXXXXX (aborting after
  ten tries)");
* read in the filesXXXXX file;
* resolve symbolic links for the cwd and all open files;
* file names that point to a terminal become ``/dev/tty``;
* names still local to this machine get ``/n/<machinename>``
  prepended;
* overwrite the modified information onto the filesXXXXX file.

Only the superuser or the owner of the process can do this — the
``kill()`` permission check enforces it.

Hardening (DESIGN.md section 7): dumpproc is idempotent — if the
process is already gone but its dump exists (a previous round died
between dump and acknowledgment), it picks up from the dump; it
verifies the dump (magic + length) before shipping; and its exit
status tells the caller whether retrying can help (see
``repro.programs.exitcodes``).
"""

import struct

from repro.errors import iserr, errno_name, UnixError, EIO, ESRCH
from repro.kernel.constants import O_RDONLY
from repro.kernel.cred import PACKED_SIZE as CRED_SIZE
from repro.kernel.signals import SigState, SIGDUMP
from repro.core.formats import (ChunkManifest, FilesInfo, StackInfo,
                                dump_file_names, stack_is_chunked)
from repro.core.symlinks import resolve_symlinks_syscalls
from repro.programs.base import (parse_options, print_err, read_file,
                                 write_file)
from repro.programs.exitcodes import EX_FAIL, EX_TRANSIENT
from repro.store import DIGEST_BYTES
from repro.vm.aout import AOUT_MAGIC

#: polling parameters from the paper — these are the *defaults* of the
#: ``dump_poll_tries`` / ``dump_poll_sleep_s`` cost-model knobs, which
#: the tool reads at run time (via the free ``sysctl0`` fetch) so the
#: latency benchmark isn't floored by a hard-coded one-second sleep
POLL_TRIES = 10
POLL_SLEEP_SECONDS = 1

USAGE = "usage: dumpproc -p pid [-L recdir]"


def dumpproc_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True, "-L": True})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return EX_FAIL
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL

    aout_path, files_path, stack_path = dump_file_names(pid)

    recdir = opts.get("-L")
    if recdir:
        # ledgered dump (DESIGN.md section 12): arm the kernel so the
        # SIGDUMP below also archives through the chunk store.  ESRCH
        # falls through to the idempotent already-dumped pickup.
        result = yield ("dump_ledger", pid, recdir)
        if iserr(result) and result != -ESRCH:
            yield from print_err("dumpproc: cannot ledger %d: %s"
                                 % (pid, errno_name(-result)))
            return EX_FAIL

    result = yield ("kill", pid, SIGDUMP)
    if iserr(result):
        probe = yield ("open", aout_path, O_RDONLY, 0)
        if result == -ESRCH and not iserr(probe):
            # the process is gone but its dump exists: a previous
            # round was cut off after the dump was written.  The
            # rewriting pass below is idempotent (already-rewritten
            # names start with /n/), so just pick up from the dump.
            yield ("close", probe)
        else:
            yield from print_err("dumpproc: cannot signal %d: %s"
                                 % (pid, errno_name(-result)))
            return EX_FAIL

    # wait for the victim to be scheduled and finish writing its dump
    # (checking the a.out magic through the open we make anyway)
    poll_tries = yield ("sysctl0", "dump_poll_tries")
    poll_sleep = yield ("sysctl0", "dump_poll_sleep_s")
    if isinstance(poll_sleep, float) and poll_sleep.is_integer():
        # whole-second intervals sleep with int arithmetic, keeping
        # virtual timestamps int-valued exactly as the old constant did
        poll_sleep = int(poll_sleep)
    for attempt in range(poll_tries):
        fd = yield ("open", aout_path, O_RDONLY, 0)
        if not iserr(fd):
            magic = yield ("read", fd, 2)
            yield ("close", fd)
            if iserr(magic) or len(magic) < 2 or \
                    struct.unpack("<H", magic)[0] != AOUT_MAGIC:
                yield from print_err("dumpproc: bad dump %s"
                                     % aout_path)
                return EX_TRANSIENT
            break
        yield ("sleep", poll_sleep)
    else:
        yield from print_err("dumpproc: no dump appeared at %s"
                             % aout_path)
        return EX_TRANSIENT

    # -- verify the dump before shipping it ---------------------------------
    # The kernel parsed all three files in full at dump time, so this
    # guards the *read path* only (magic + length, prefix reads — no
    # full re-read): any failure is transient, worth a retry round.
    # The files file gets its magic + full parse in the rewrite pass
    # right below.
    status = yield from _verify_stack(stack_path)
    if status is not None:
        return status

    blob = yield from read_file(files_path)
    if iserr(blob):
        yield from print_err("dumpproc: cannot read %s" % files_path)
        return EX_TRANSIENT
    try:
        info = FilesInfo.unpack(blob)
    except UnixError:
        yield from print_err("dumpproc: bad magic in %s" % files_path)
        return EX_TRANSIENT

    hostname = yield ("gethostname",)
    info.cwd = yield from _rewrite_path(info.cwd, hostname,
                                        terminal_check=False)
    for entry in info.entries:
        if entry.is_file() and entry.path:
            entry.path = yield from _rewrite_path(entry.path, hostname)

    result = yield from write_file(files_path, info.pack())
    if iserr(result):
        yield from print_err("dumpproc: cannot rewrite %s" % files_path)
        return EX_TRANSIENT
    # the rewrite is the boundary between the dump and transfer
    # phases in the trace timeline (dumpproc always runs on the
    # source host, so hostname names the dump's origin)
    yield ("trace_mark", "migrate", "rewrite",
           "%s:%d" % (hostname, pid))
    return 0


#: magic + credentials + stack size — all rest_proc peeks at first
_STACK_HEADER = 2 + CRED_SIZE + 4


def _verify_stack(stack_path):
    """yield-from: an exit status on verification failure, else None.

    Magic + length checks only: the stack header, and the stack
    file's exact expected size.  A chunked stack (incremental dump)
    carries a manifest instead of the raw bytes, so its expected size
    is computed from the manifest header read in a second prefix.
    """
    from repro.vm.image import Registers
    header = yield from _read_prefix(stack_path, _STACK_HEADER)
    bad_stack = iserr(header)
    if not bad_stack:
        try:
            __, stack_size = StackInfo.peek_header(header)
            stat = yield ("stat", stack_path)
            if stack_is_chunked(header):
                payload = yield from _chunked_stack_payload(
                    stack_path, stack_size)
            else:
                payload = stack_size
            bad_stack = iserr(stat) or iserr(payload) or stat.size != (
                _STACK_HEADER + payload + Registers.FORMAT.size
                + SigState.PACKED_SIZE)
        except UnixError:
            bad_stack = True
    if bad_stack:
        yield from print_err("dumpproc: bad dump %s" % stack_path)
        return EX_TRANSIENT
    return None


def _chunked_stack_payload(stack_path, stack_size):
    """yield-from: expected bytes between header and registers, or -errno.

    For a chunked stack that is the manifest: its fixed header plus
    one digest per chunk, cross-checked against the stack size the
    file header advertised.
    """
    prefix = yield from _read_prefix(
        stack_path, _STACK_HEADER + ChunkManifest.HEADER_SIZE)
    if iserr(prefix):
        return prefix
    __, chunk_bytes, length, count = struct.unpack(
        "<HIIH", prefix[_STACK_HEADER:])
    if chunk_bytes <= 0 or length != stack_size or \
            count != -(-length // chunk_bytes):
        return -EIO
    return ChunkManifest.HEADER_SIZE + DIGEST_BYTES * count


def _read_prefix(path, nbytes):
    """yield-from: the first bytes of a file, or a -errno int."""
    fd = yield ("open", path, O_RDONLY, 0)
    if iserr(fd):
        return fd
    data = yield ("read", fd, nbytes)
    yield ("close", fd)
    if iserr(data):
        return data
    if len(data) < nbytes:
        return -EIO  # truncated: the dump is damaged
    return data


def _rewrite_path(path, hostname, terminal_check=True):
    """Apply the section 4.4 rewriting rules to one path name."""
    if terminal_check:
        stat = yield ("stat", path)
        if not iserr(stat) and stat.is_terminal():
            # point it at the current terminal of whatever opens it
            return "/dev/tty"
    resolved = yield from resolve_symlinks_syscalls(path)
    if iserr(resolved):
        resolved = path  # keep the name; restart will fall back
    if not resolved.startswith("/n/"):
        resolved = "/n/%s%s" % (hostname, resolved)
    return resolved
