"""The ``migrate`` command (sections 4.1 and 6.4).

"Move a process from one machine to another.  This is simply a
combination of the two previous commands ... Migrate calls dumpproc
and restart internally, by using the remote shell command rsh ... if
necessary."

``migrate -p pid [-f fromhost] [-t tohost]`` — both hosts default to
the machine the command is typed on.  With ``-d`` the remote execution
goes through the migration daemon (``migrationd``) instead of rsh —
the faster alternative the paper sketches in section 6.4; this is
ablation A1.

Hardening (DESIGN.md section 7).  The paper's migrate assumed both
phases succeed; this one owns the pipeline end to end:

* the dump phase is retried (with backoff) on transient failures —
  a failed kernel dump leaves the victim *running*, so another
  ``dumpproc`` round can simply try again;
* the restart phase cannot learn success from an exit status (a
  successful restart never exits — it *becomes* the migrated
  process), so the kernel's behaviour of consuming the dump files at
  the end of ``rest_proc()`` is the ack: migrate polls for
  ``a.outXXXXX`` to disappear.  Restart is run with ``-k`` so a
  *failed* attempt keeps the files (and the retry loop its chances);
  migrate itself removes them when it finally gives up;
* every retry round is counted on the cluster perf counters.

Crash atomicity (DESIGN.md section 12).  With the ``migration_ledger``
knob on, migrate brackets the pipeline with a durable intent record on
the file server: the record is written before SIGDUMP, advanced at
every phase boundary, and the dump itself is archived through the
cluster chunk store (``dumpproc -L``).  If migrate — or the host it
runs on — dies mid-pipeline, ``recoveryd -m`` finds the record and
finishes or rolls back the migration exactly once; if the sweep fences
the record first, migrate stands down (``EX_FENCED``) rather than
race it.  When restart retries are exhausted, a ledgered migrate
rolls the job back to the *source* host from its own dump, so a
reachable-but-unreceptive destination costs nothing but time.
"""

from repro.errors import iserr, ECHILD, ENOENT
from repro.kernel.constants import O_RDONLY
from repro.core.formats import dump_file_names
from repro.net.migledger import (LEDGER_FENCED, MigRecord, PH_ABORTED,
                                 PH_DONE, PH_DUMPED, PH_RESTARTING,
                                 ledger_advance, ledger_put,
                                 ledger_reap, mkdir_p, record_dir)
from repro.programs.base import parse_options, print_err
from repro.programs.exitcodes import (EX_FAIL, EX_FENCED, EX_OK,
                                      EX_TRANSIENT)

USAGE = "usage: migrate -p pid [-f fromhost] [-t tohost] [-d]"


def migrate_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True, "-f": True, "-t": True,
                                    "-d": False})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return EX_FAIL
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL
    local = yield ("gethostname",)
    source = opts.get("-f") or local
    destination = opts.get("-t") or local
    remote_runner = "migrationd-run" if opts.get("-d") else "rsh"
    # bracket the whole pipeline for the trace timeline (DESIGN.md
    # section 9); the id matches the kernel's dump/restart spans
    mig = "%s:%d" % (source, pid)
    yield ("trace_span", "migrate", "B", mig)

    attempts = yield ("sysctl", "migrate_attempts")
    backoff = yield ("sysctl", "migrate_backoff_s")
    # the dump files as seen from *this* machine (the ack we poll)
    directory = "/usr/tmp" if source == local \
        else "/n/%s/usr/tmp" % source
    dump_paths = dump_file_names(pid, directory)

    # -- phase 0: durable intent (opt-in, DESIGN.md section 12) -------------
    # ("sysctl0" keeps the ledger-off path byte-identical: the read is
    # free, untraced and never dispatched)
    recdir = record = None
    if (yield ("sysctl0", "migration_ledger")):
        ledger_dir = yield ("sysctl0", "migration_ledger_dir")
        recdir = record_dir(ledger_dir, source, pid)
        yield from mkdir_p(recdir)
        now = yield ("time",)
        record = MigRecord(source, pid, destination, local, time_s=now)
        result = yield from ledger_put(recdir, record)
        if iserr(result):
            yield from print_err("migrate: cannot write intent record "
                                 "%s" % recdir)
            yield ("trace_span", "migrate", "E", mig, 0)
            return EX_FAIL

    # -- phase 1: dump on the source host (waited for) ----------------------
    dump_args = ["dumpproc", "-p", str(pid)]
    if record:
        dump_args += ["-L", recdir]
    status = None
    for attempt in range(max(1, attempts)):
        if attempt:
            yield ("perf_note", "retries")
            yield from print_err("migrate: retrying dump on %s"
                                 % source)
            yield ("sleep", backoff * attempt)
        status = yield from _run(source, local, dump_args,
                                 remote_runner, wait=True)
        if status == EX_OK:
            break
        if status == EX_FAIL:
            break  # permanent (no such process, permission): no retry
    if status != EX_OK:
        yield from _cleanup(dump_paths)
        if record:
            yield from _ledger_abort(recdir, record)
        yield from print_err("migrate: dump on %s failed" % source)
        yield ("trace_span", "migrate", "E", mig, 0)
        return EX_FAIL
    if record:
        result = yield from ledger_advance(recdir, record, PH_DUMPED)
        if result == LEDGER_FENCED:
            return (yield from _fenced(mig, "dump"))
        # an unreachable ledger is not fatal here: the dump exists
        # and the sweep resolves stale records by probing reality

    # -- phase 2: restart on the destination host ---------------------------
    # -k: a failed restart must keep the dump files, both for the next
    # attempt and so the files' disappearance can only mean success
    if record:
        result = yield from ledger_advance(recdir, record,
                                           PH_RESTARTING)
        if result == LEDGER_FENCED:
            return (yield from _fenced(mig, "restart"))
    restart_args = ["restart", "-k", "-p", str(pid), "-h", source]
    for attempt in range(max(1, attempts)):
        if attempt:
            yield ("perf_note", "retries")
            yield from print_err("migrate: retrying restart on %s"
                                 % destination)
            yield ("sleep", backoff * attempt)
        done = yield from _restart_once(destination, local,
                                        restart_args, remote_runner,
                                        dump_paths[0])
        if done:
            if record:
                result = yield from ledger_advance(recdir, record,
                                                   PH_DONE)
                if result == 0:
                    yield ("perf_note", "ml_completions")
                    yield from ledger_reap(recdir)
                # fenced: a sweeper claimed the record, but the copy
                # is live — its probe finds it and settles the record;
                # the migration itself still succeeded
            yield ("trace_span", "migrate", "E", mig, 1)
            return EX_OK

    if record:
        # roll the job back home: the source restarts it from its own
        # dump (the /n/<self> loopback mount serves the rewritten
        # names), so a dead-end destination never strands the victim
        yield from print_err("migrate: restart on %s failed, rolling "
                             "back to %s" % (destination, source))
        done = yield from _restart_once(source, local, restart_args,
                                        remote_runner, dump_paths[0])
        if done:
            yield from _ledger_abort(recdir, record)
            yield from print_err("migrate: %s rolled back to %s"
                                 % (mig, source))
        else:
            # leave the record and the archived dump: the recovery
            # sweep owns this migration now
            yield from print_err("migrate: %s left for recovery" % mig)
        yield ("trace_span", "migrate", "E", mig, 0)
        return EX_FAIL

    yield from _cleanup(dump_paths)
    yield from print_err("migrate: restart on %s failed" % destination)
    yield ("trace_span", "migrate", "E", mig, 0)
    return EX_FAIL


def _ledger_abort(recdir, record):
    """yield-from: mark the record ABORTED and reap it (best effort).

    A fenced or unreachable record is left alone: whoever fenced it
    owns its fate now.
    """
    result = yield from ledger_advance(recdir, record, PH_ABORTED)
    if result == 0:
        yield ("perf_note", "ml_aborts")
        yield from ledger_reap(recdir)


def _fenced(mig, phase):
    """yield-from: stand down — a recovery sweep claimed this record."""
    yield from print_err("migrate: %s fenced by a recovery sweep "
                         "during %s; standing down" % (mig, phase))
    yield ("trace_span", "migrate", "E", mig, 0)
    return EX_FENCED


def _restart_once(destination, local, restart_args, remote_runner,
                  aout_path):
    """One restart attempt; True when the ack (consumed dump) lands.

    The attempt is over when either the a.out file disappears (the
    kernel consumed the dump: success) or the spawned child dies (the
    restart — or its remote relay — failed).  A child that does
    neither within the poll budget counts as a failed attempt.
    """
    poll_tries = yield ("sysctl", "restart_poll_tries")
    poll_sleep = yield ("sysctl", "restart_poll_sleep_s")
    if destination == local:
        child = yield ("spawn", "/bin/%s" % restart_args[0],
                       restart_args)
    else:
        runner_argv = [remote_runner, destination,
                       " ".join(restart_args)]
        child = yield ("spawn", "/bin/%s" % remote_runner, runner_argv)
    if iserr(child):
        return False
    for __ in range(max(1, poll_tries)):
        fd = yield ("open", aout_path, O_RDONLY, 0)
        if fd == -ENOENT:
            return True  # rest_proc consumed the dump: it took
        if not iserr(fd):
            yield ("close", fd)
        reaped = yield ("reap",)
        if isinstance(reaped, tuple) and reaped[0] == child:
            return False  # the restart (or its relay) died: retry
        yield ("sleep", poll_sleep)
    return False


def _cleanup(dump_paths):
    """Remove whatever dump files the failed pipeline left behind."""
    for path in dump_paths:
        yield ("unlink", path)


def _run(host, local, command_argv, remote_runner, wait):
    """Run a command locally or through rsh/migrationd."""
    if host == local:
        child = yield ("spawn", "/bin/%s" % command_argv[0],
                       command_argv)
    else:
        runner_argv = [remote_runner, host, " ".join(command_argv)]
        child = yield ("spawn", "/bin/%s" % remote_runner, runner_argv)
    if iserr(child):
        return EX_FAIL
    if not wait:
        return EX_OK
    while True:
        result = yield ("wait",)
        if iserr(result):
            if result == -ECHILD:
                # our child vanished without us reaping it (something
                # else consumed the exit): we cannot know whether the
                # command worked, so report it as transient — retrying
                # is safe (dumpproc is idempotent) and may yet succeed
                yield from print_err("migrate: wait: no child to reap")
                return EX_TRANSIENT
            return EX_FAIL
        reaped, status = result
        if reaped == child:
            return (status >> 8) & 0xFF if not status & 0x7F \
                else EX_FAIL
