"""The ``migrate`` command (sections 4.1 and 6.4).

"Move a process from one machine to another.  This is simply a
combination of the two previous commands ... Migrate calls dumpproc
and restart internally, by using the remote shell command rsh ... if
necessary."

``migrate -p pid [-f fromhost] [-t tohost]`` — both hosts default to
the machine the command is typed on.  The dump phase is waited for
(its success gates the restart); the restart phase is only *started*:
on success the restart process becomes the migrated program, which may
run forever on migrate's terminal.

With ``-d`` the remote execution goes through the migration daemon
(``migrationd``) instead of rsh — the faster alternative the paper
sketches in section 6.4 ("applications will simply send messages to
the daemon, who will start the processes on their behalf"); this is
ablation A1.
"""

from repro.errors import iserr, ECHILD
from repro.programs.base import parse_options, print_err

USAGE = "usage: migrate -p pid [-f fromhost] [-t tohost] [-d]"


def migrate_main(argv, env):
    opts, __ = parse_options(argv, {"-p": True, "-f": True, "-t": True,
                                    "-d": False})
    if not isinstance(opts, dict) or "-p" not in opts:
        yield from print_err(USAGE)
        return 1
    try:
        pid = int(opts["-p"])
    except ValueError:
        yield from print_err(USAGE)
        return 1
    local = yield ("gethostname",)
    source = opts.get("-f") or local
    destination = opts.get("-t") or local
    remote_runner = "migrationd-run" if opts.get("-d") else "rsh"

    # -- phase 1: dump on the source host (waited for) ----------------------
    dump_args = ["dumpproc", "-p", str(pid)]
    status = yield from _run(source, local, dump_args, remote_runner,
                             wait=True)
    if status != 0:
        yield from print_err("migrate: dump on %s failed" % source)
        return 1

    # -- phase 2: restart on the destination host (fire and forget:
    #    on success the spawned process *is* the migrated program) -----------
    restart_args = ["restart", "-p", str(pid), "-h", source]
    status = yield from _run(destination, local, restart_args,
                             remote_runner, wait=False)
    if status != 0:
        yield from print_err("migrate: restart on %s failed"
                             % destination)
        return 1
    return 0


def _run(host, local, command_argv, remote_runner, wait):
    """Run a command locally or through rsh/migrationd."""
    if host == local:
        child = yield ("spawn", "/bin/%s" % command_argv[0],
                       command_argv)
    else:
        runner_argv = [remote_runner, host, " ".join(command_argv)]
        child = yield ("spawn", "/bin/%s" % remote_runner, runner_argv)
    if iserr(child):
        return 1
    if not wait:
        return 0
    while True:
        result = yield ("wait",)
        if iserr(result):
            return 1 if result == -ECHILD else 1
        reaped, status = result
        if reaped == child:
            return (status >> 8) & 0xFF if not status & 0x7F else 1
