"""``ps`` — the users' way to find the pid to migrate (section 4.2)."""

from repro.errors import iserr
from repro.programs.base import parse_options, println, print_err


def ps_main(argv, env):
    opts, __ = parse_options(argv, {"-a": False})
    rows = yield ("getproctab",)
    if iserr(rows):
        yield from print_err("ps: cannot read process table")
        return 1
    uid = yield ("getuid",)
    yield from println("  PID STAT    TIME COMMAND")
    for row in sorted(rows, key=lambda r: r["pid"]):
        if not opts.get("-a") and row["uid"] != uid and uid != 0:
            continue
        seconds = (row["utime_us"] + row["stime_us"]) / 1e6
        yield from println("%5d %-4s %7.2f %s"
                           % (row["pid"], row["state"], seconds,
                              row["command"]))
    return 0
