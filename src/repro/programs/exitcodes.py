"""Exit statuses shared by the migration commands.

The hardened pipeline distinguishes *why* a command failed so its
caller (``migrate``, the chaos tests, a human at the console) can
decide between retrying and giving up:

* ``EX_OK`` — success.
* ``EX_FAIL`` — permanent failure: bad usage, permission denied,
  target process missing.  Retrying cannot help.
* ``EX_BADDUMP`` — the dump files are missing or corrupt.  The
  command has removed them (unless told to keep them); a fresh dump
  is needed.
* ``EX_TRANSIENT`` — a timing or transport failure (poll timeout,
  read timeout).  The dump files, if any, are intact; retry is the
  right response.
* ``EX_RESTPROC`` — ``rest_proc`` itself rejected the image after
  the files checked out.
* ``EX_JOBLOST`` — ``ckptd``'s tracked job died between checkpoint
  rounds; the last saved round is intact and announced on stderr.
* ``EX_FENCED`` — a recovery daemon claimed this job with a higher
  epoch; the local copy killed itself rather than run twice.
* ``EX_REJECTED`` — the remote daemon refused the request outright
  (``migrationd`` only relays its allowlisted helpers).  Retrying
  the same request cannot help.
"""

EX_OK = 0
EX_FAIL = 1
EX_BADDUMP = 2
EX_TRANSIENT = 3
EX_RESTPROC = 4
EX_JOBLOST = 5
EX_FENCED = 6
EX_REJECTED = 7
