"""``statd`` — per-host cluster telemetry (DESIGN.md section 13).

The observability layer of section 9 records flat counters and
per-run spans inside one process; statd grows it into *cluster*
telemetry: every sampling interval the daemon snapshots this host's
kernel gauges (runnable queue depth, live processes, bound sockets,
heartbeat suspicions — the ``statgauges`` pseudo-call) and the
per-host deltas of the migration metrics (dumps, restarts,
migrations, recoveries via ``migstat``) into fixed-size ring-buffer
time series (:mod:`repro.obs.timeseries`), then ships the whole set
as one ``STATREPORT`` to the ``statd-recv`` spooler on the file
server.  ``migtop(1)`` and ``migstat -s`` read the spool; the
critical-path analyzer (``critpath``) complements it with per-phase
migration latency attribution.

Like loadd, delivery is best-effort and cheap to lose: a report to a
heartbeat-suspected spooler is skipped, a failed send is dropped and
counted, and the spooler ages out peers that stop reporting — a
crashed host simply disappears from ``migtop`` after
``stat_stale_s``.  Fault sites ``statd.send`` / ``statd.spool``
inject loss, delay, corruption, crashes and partitions on either
side of the exchange.

The subsystem is doubly opt-in: nothing spawns statd except
``MigrationSite.start_statd``, and even a spawned statd exits
immediately (silently, EX_OK) unless ``stat_interval_s`` is set
positive — so default-mode runs are byte-identical with or without
this module, and every knob read goes through zero-cost ``sysctl0``.

Usage: ``statd [-i interval] [-n rounds]``
"""

from repro.errors import iserr, UnixError
from repro.net.migledger import mkdir_p
from repro.net.statd import (STATD_PORT, SPOOL_DIR, REPORT_NAME,
                             StatReport)
from repro.obs.timeseries import SeriesSet
from repro.programs.base import (parse_options, print_err, read_file,
                                 write_all, write_file)
from repro.programs.exitcodes import EX_FAIL, EX_OK

USAGE = "usage: statd [-i interval] [-n rounds]"

#: the kernel gauges sampled each round, in series order
GAUGES = ("runq", "procs", "socks", "hb_suspects")

#: the migstat columns sampled as per-round deltas, in series order
DELTAS = ("dumps", "restarts", "migrations", "recoveries")


def statd_main(argv, env):
    options, positional = parse_options(argv, {"-i": True,
                                               "-n": True})
    if positional is None:
        yield from print_err(USAGE)
        return EX_FAIL
    try:
        interval = float(options["-i"]) if "-i" in options \
            else (yield ("sysctl0", "stat_interval_s"))
        rounds = int(options["-n"]) if "-n" in options \
            else (yield ("sysctl0", "stat_rounds"))
    except ValueError:
        yield from print_err(USAGE)
        return EX_FAIL
    if interval <= 0:
        return EX_OK  # telemetry is off: leave no trace at all
    capacity = yield ("sysctl0", "stat_series_len")
    spool_dir = yield ("sysctl0", "stat_spool_dir")
    server = None
    if spool_dir.startswith("/n/"):
        parts = spool_dir.split("/", 3)
        if len(parts) >= 3 and parts[2]:
            server = parts[2]

    yield ("hb_start",)
    local = yield ("gethostname",)
    series = SeriesSet(capacity)
    previous = {}
    for seq in range(max(1, rounds)):
        yield ("sleep", interval)
        now_s = yield ("time",)
        points = yield from _sample(series, now_s, local, previous)
        yield ("perf_note", "st_series_points", points)
        yield ("perf_note", "st_samples")
        yield ("trace_mark", "statd", "sample",
               "%s:%d" % (local, seq))
        report = StatReport.from_series(local, now_s, seq, series)
        yield from _ship(report, server, local, spool_dir)
    return EX_OK


def _sample(series, now_s, local, previous):
    """One sampling round: gauges plus migstat deltas; point count."""
    points = 0
    gauges = yield ("statgauges",)
    for key in GAUGES:
        series.record(key, now_s, gauges[key])
        points += 1
    rows = yield ("migstat",)
    if not iserr(rows):
        own = next((row for row in rows if row["host"] == local),
                   None)
        if own is not None:
            for key in DELTAS:
                delta = own[key] - previous.get(key, 0)
                previous[key] = own[key]
                series.record(key, now_s, max(0, delta))
                points += 1
    return points


def _ship(report, server, local, spool_dir):
    """Deliver one report to the spooler (or spool locally)."""
    if server is None or server == local:
        # the spooler's host is this host: skip the wire and spool
        # straight into the local directory, tmp + rename like the
        # receiver does
        local_dir = spool_dir
        if spool_dir.startswith("/n/"):
            local_dir = "/" + spool_dir.split("/", 3)[3]
        yield from _spool(local_dir, report.host, report.pack())
        yield ("perf_note", "st_reports_sent")
        return
    suspected = yield ("hb_status", server)
    if suspected == 1:
        yield ("perf_note", "st_suspect_skips")
        return
    fate = yield ("fault_point", "statd.send", server)
    if iserr(fate):
        yield ("perf_note", "st_reports_dropped")
        return
    blob = yield ("fault_data", "statd.send", report.pack(), server)
    sock = yield ("socket",)
    result = yield ("connect", sock, server, STATD_PORT)
    if iserr(result):
        yield ("close", sock)
        yield ("perf_note", "st_reports_dropped")
        return
    result = yield from write_all(sock, blob)
    yield ("close", sock)
    if iserr(result):
        yield ("perf_note", "st_reports_dropped")
    else:
        yield ("perf_note", "st_reports_sent")


def _spool(spool_dir, host, blob):
    """yield-from: write-tmp-rename one report into the spool."""
    host_dir = "%s/%s" % (spool_dir, host)
    yield from mkdir_p(host_dir)
    tmp = "%s/%s.tmp" % (host_dir, REPORT_NAME)
    result = yield from write_file(tmp, blob, mode=0o644)
    if iserr(result):
        return result
    return (yield ("rename", tmp,
                   "%s/%s" % (host_dir, REPORT_NAME)))


# -- the spooler ------------------------------------------------------------


def statd_recv_main(argv, env):
    """Own the well-known port; spool one report per connection and
    age stale peers out of the spool."""
    sock = yield ("socket",)
    result = yield ("bind", sock, STATD_PORT)
    if iserr(result):
        return EX_OK  # a spooler is already running: nothing to do
    yield ("listen", sock)
    yield from mkdir_p(SPOOL_DIR)
    stale_s = yield ("sysctl0", "stat_stale_s")
    timeout = yield ("sysctl", "net_read_timeout_s")
    while True:
        conn = yield ("accept", sock)
        if iserr(conn):
            yield ("sleep", 1)  # transient: don't spin hot
            continue
        blob = yield from _read_report(conn, timeout)
        yield ("close", conn)
        if blob is None:
            yield ("perf_note", "st_reports_dropped")
            continue
        fate = yield ("fault_point", "statd.spool", "")
        if iserr(fate):
            yield ("perf_note", "st_reports_dropped")
            continue
        blob = yield ("fault_data", "statd.spool", blob, "")
        try:
            report = StatReport.unpack(blob)
        except UnixError:
            report = None  # torn or doctored: drop, never crash
        if report is None:
            yield ("perf_note", "st_reports_dropped")
            continue
        result = yield from _spool(SPOOL_DIR, report.host, blob)
        if iserr(result):
            yield ("perf_note", "st_reports_dropped")
            continue
        yield ("perf_note", "st_reports_recv")
        yield from _age_out(stale_s)


def _age_out(stale_s):
    """Unlink spooled reports whose senders have gone quiet."""
    now_s = yield ("time",)
    names = yield ("readdir", SPOOL_DIR)
    if iserr(names):
        return
    for name in sorted(names):
        path = "%s/%s/%s" % (SPOOL_DIR, name, REPORT_NAME)
        data = yield from read_file(path)
        if iserr(data):
            continue
        try:
            report = StatReport.unpack(data)
        except UnixError:
            report = None
        if report is None or report.host != name:
            yield ("unlink", path)  # corrupt or misfiled: toss it
            yield ("perf_note", "st_reports_dropped")
            continue
        if max(0, now_s - report.time_s) > stale_s:
            yield ("unlink", path)
            yield ("perf_note", "st_stale_drops")


def _read_report(conn, timeout):
    """Read one connection to EOF (bounded); None on timeout/error."""
    from repro.errors import ETIMEDOUT
    parts = []
    total = 0
    while total <= 16384:  # reports are bounded; don't buffer more
        data = yield ("read_timeout", conn, 2048, timeout)
        if data == -ETIMEDOUT:
            yield ("perf_note", "timeouts")
            return None
        if iserr(data):
            return None
        if data == b"":
            return b"".join(parts) if parts else None
        parts.append(data)
        total += len(data)
    return None
