"""``sh`` — a small Bourne-flavoured shell.

Supports what the era's scripts leaned on:

* simple commands, resolved under ``/bin`` (or by explicit path);
* pipelines: ``cat /etc/motd | wc``;
* redirections: ``>``, ``>>``, ``<``;
* sequencing with ``;`` and background jobs with ``&``;
* builtins: ``cd``, ``exit``, ``wait``;
* ``sh -c "line"`` one-shot mode (what rshd uses to run remote
  commands) and an interactive prompt otherwise.

No quoting/globbing/variables — this is the 1987 machine room, not a
login environment.
"""

import re

from repro.errors import iserr, errno_name, ECHILD
from repro.kernel.constants import (O_APPEND, O_CREAT, O_RDONLY,
                                    O_TRUNC, O_WRONLY)
from repro.programs.base import LineReader, print_err, write_all

_SPECIALS = re.compile(r"(\|{1}|;|&|>>|>|<)")


def tokenize(line):
    """Split a command line, isolating the shell metacharacters."""
    padded = _SPECIALS.sub(r" \1 ", line)
    return padded.split()


class _Command:
    """One simple command with its redirections."""

    def __init__(self):
        self.argv = []
        self.stdin_path = None
        self.stdout_path = None
        self.stdout_append = False


def parse_pipeline(tokens):
    """Tokens (no ``;``/``&``) -> list of _Command, or error string."""
    commands = [_Command()]
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token == "|":
            if not commands[-1].argv:
                return "syntax error near |"
            commands.append(_Command())
        elif token in (">", ">>", "<"):
            if index + 1 >= len(tokens):
                return "syntax error near %s" % token
            target = tokens[index + 1]
            index += 1
            if token == "<":
                commands[-1].stdin_path = target
            else:
                commands[-1].stdout_path = target
                commands[-1].stdout_append = token == ">>"
        else:
            commands[-1].argv.append(token)
        index += 1
    if not commands[-1].argv:
        return "syntax error: empty command"
    return commands


def _resolve(name):
    return name if "/" in name else "/bin/%s" % name


def sh_main(argv, env):
    if len(argv) >= 3 and argv[1] == "-c":
        status = yield from _run_line(" ".join(argv[2:]), [])
        return status

    # interactive: prompt, read, run, repeat
    reader = LineReader(0)
    background = []
    while True:
        yield from write_all(1, "$ ")
        line = yield from reader.readline()
        if line is None:
            return 0
        if not line.strip():
            continue
        status = yield from _run_line(line, background)
        if status is None:  # the exit builtin
            return 0


def _run_line(line, background_jobs):
    """Execute one command line; returns the last status (None=exit)."""
    status = 0
    for chunk in line.split(";"):
        tokens = tokenize(chunk)
        if not tokens:
            continue
        background = False
        if tokens[-1] == "&":
            background = True
            tokens = tokens[:-1]
            if not tokens:
                yield from print_err("sh: syntax error near &")
                status = 2
                continue

        # builtins (standalone only)
        if tokens[0] == "exit":
            return None
        if tokens[0] == "cd":
            target = tokens[1] if len(tokens) > 1 else "/"
            result = yield ("chdir", target)
            if iserr(result):
                yield from print_err("sh: cd: %s: %s"
                                     % (target, errno_name(-result)))
                status = 1
            else:
                status = 0
            continue
        if tokens[0] == "wait":
            while True:
                result = yield ("wait",)
                if iserr(result):
                    break
            background_jobs.clear()
            status = 0
            continue

        commands = parse_pipeline(tokens)
        if isinstance(commands, str):
            yield from print_err("sh: " + commands)
            status = 2
            continue
        status = yield from _run_pipeline(commands, background,
                                          background_jobs)
    return status


def _run_pipeline(commands, background, background_jobs):
    """Spawn every stage, wired through pipes; wait unless ``&``."""
    pids = []
    prev_read = None
    failed = False
    for index, command in enumerate(commands):
        stdin_fd = prev_read
        stdout_fd = None
        next_read = None
        to_close = []

        if command.stdin_path is not None:
            stdin_fd = yield ("open", command.stdin_path, O_RDONLY, 0)
            if iserr(stdin_fd):
                yield from print_err("sh: %s: %s"
                                     % (command.stdin_path,
                                        errno_name(-stdin_fd)))
                failed = True
                stdin_fd = None
            else:
                to_close.append(stdin_fd)
        if command.stdout_path is not None:
            flags = O_WRONLY | O_CREAT | (
                O_APPEND if command.stdout_append else O_TRUNC)
            stdout_fd = yield ("open", command.stdout_path, flags,
                               0o644)
            if iserr(stdout_fd):
                yield from print_err("sh: %s: %s"
                                     % (command.stdout_path,
                                        errno_name(-stdout_fd)))
                failed = True
                stdout_fd = None
            else:
                to_close.append(stdout_fd)
        elif index < len(commands) - 1:
            next_read, pipe_write = yield ("pipe",)
            stdout_fd = pipe_write
            to_close.append(pipe_write)

        if not failed:
            pid = yield ("spawn", _resolve(command.argv[0]),
                         command.argv, (stdin_fd, stdout_fd, None))
            if iserr(pid):
                yield from print_err("sh: %s: %s"
                                     % (command.argv[0],
                                        errno_name(-pid)))
                failed = True
            else:
                pids.append(pid)

        for fd in to_close:
            yield ("close", fd)
        if prev_read is not None:
            yield ("close", prev_read)
        prev_read = next_read
        if failed:
            break
    if prev_read is not None:
        yield ("close", prev_read)

    if background:
        background_jobs.extend(pids)
        return 0
    status = 1 if failed else 0
    remaining = set(pids)
    while remaining:
        result = yield ("wait",)
        if iserr(result):
            if result == -ECHILD:
                break
            return 1
        reaped, raw = result
        if reaped in remaining:
            remaining.discard(reaped)
            if reaped == pids[-1]:
                status = (raw >> 8) & 0xFF if not raw & 0x7F else 1
    return status
