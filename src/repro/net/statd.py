"""The ``STATREPORT`` wire format and statd's shared constants.

Cluster-wide telemetry (DESIGN.md section 13): every sampling
interval a host's ``statd`` packs its ring-buffered time series
(:mod:`repro.obs.timeseries`) into one report and ships it to the
``statd-recv`` spooler on the file server, which keeps the newest
report per host under ``/usr/spool/statd/<host>/``.  The spool lives
outside ``/tmp`` on purpose, so a server reboot does not erase the
cluster's telemetry history.

Framing is connection-per-report, like loadd: the sender connects to
the receiver's well-known port, writes one packed report, and
closes.  A truncated or doctored report raises
:class:`~repro.errors.UnixError` (``EINVAL``) on unpack — the
receiver drops it and keeps running, it never crashes.

Layout (little endian)::

    magic      u16   STATREPORT_MAGIC (octal 451)
    version    u8    STATREPORT_VERSION
    host       u16-prefixed string (the reporting host)
    time_s     u32   sender's virtual clock, whole seconds
    seq        u16   the sender's sampling round number
    count      u16   number of series (<= MAX_SERIES)
    count x:
      name     u16-prefixed string
      total    u32   samples ever recorded into the series
      len      u16   retained samples following (<= MAX_SAMPLES)
      len x:
        time_s u32   sample timestamp, whole seconds
        value  u32   sample value (gauges and deltas are small ints)

Staleness, not sequence numbers, handles lost or reordered reports:
the spooler ages out any spooled report older than ``stat_stale_s``,
so a crashed or partitioned peer simply disappears from ``migtop``.
"""

from repro.errors import UnixError, EINVAL
from repro.kernel.constants import STATREPORT_MAGIC
from repro.core.formats import _Reader, _Writer
from repro.obs.timeseries import Series, SeriesSet

#: statd's well-known report port (loadd owns 517, migrationd 515)
STATD_PORT = 518

STATREPORT_VERSION = 1

#: caps keeping one report bounded: a host samples a fixed, small set
#: of gauges and counter deltas into fixed-size rings
MAX_SERIES = 16
MAX_SAMPLES = 64

#: where statd-recv spools the newest report from each host; outside
#: /tmp so the telemetry history survives a file-server reboot
SPOOL_DIR = "/usr/spool/statd"

#: the report file inside a per-host spool directory
REPORT_NAME = "report"


def spool_path(spool_dir, host):
    """The spooled report of ``host`` under ``spool_dir``."""
    return "%s/%s/%s" % (spool_dir, host, REPORT_NAME)


class StatReport:
    """One host's telemetry snapshot, as shipped on the wire."""

    def __init__(self, host, time_s, seq, series=()):
        self.host = host
        self.time_s = int(time_s)
        self.seq = int(seq)
        #: ``(name, total, ((time_s, value), ...))`` triples
        self.series = tuple(
            (name, int(total),
             tuple((int(t), int(v)) for t, v in samples))
            for name, total, samples in series)
        if len(self.series) > MAX_SERIES:
            raise UnixError(EINVAL, "too many statreport series")
        for __, __, samples in self.series:
            if len(samples) > MAX_SAMPLES:
                raise UnixError(EINVAL,
                                "too many statreport samples")

    @classmethod
    def from_series(cls, host, time_s, seq, series_set):
        """Snapshot a :class:`~repro.obs.timeseries.SeriesSet`."""
        series = [(s.name, s.count, tuple(s.samples()))
                  for s in series_set.series()]
        return cls(host, time_s, seq, series)

    def to_series(self, capacity=None):
        """Rebuild a SeriesSet (ring capacity >= retained samples)."""
        if capacity is None:
            capacity = 1
            longest = max((len(samples) for __, __, samples
                           in self.series), default=1)
            while capacity < longest:
                capacity <<= 1
        out = SeriesSet(capacity)
        for name, total, samples in self.series:
            out.add(Series.restore(name, capacity, total, samples))
        return out

    def pack(self):
        writer = _Writer()
        writer.u16(STATREPORT_MAGIC)
        writer.raw(bytes((STATREPORT_VERSION,)))
        writer.string(self.host)
        writer.u32(self.time_s)
        writer.u16(self.seq)
        writer.u16(len(self.series))
        for name, total, samples in self.series:
            writer.string(name)
            writer.u32(total)
            writer.u16(len(samples))
            for time_s, value in samples:
                writer.u32(time_s)
                writer.u32(value)
        return writer.getvalue()

    @classmethod
    def unpack(cls, blob):
        reader = _Reader(blob, "statreport")
        if reader.u16() != STATREPORT_MAGIC:
            raise UnixError(EINVAL, "bad statreport magic")
        version = reader.raw(1)[0]
        if version != STATREPORT_VERSION:
            raise UnixError(EINVAL,
                            "statreport version %d" % version)
        host = reader.string()
        time_s = reader.u32()
        seq = reader.u16()
        count = reader.u16()
        if count > MAX_SERIES:
            raise UnixError(EINVAL, "too many statreport series")
        series = []
        for __ in range(count):
            name = reader.string()
            total = reader.u32()
            length = reader.u16()
            if length > MAX_SAMPLES:
                raise UnixError(EINVAL,
                                "too many statreport samples")
            samples = []
            for __ in range(length):
                sample_t = reader.u32()
                sample_v = reader.u32()
                samples.append((sample_t, sample_v))
            series.append((name, total, tuple(samples)))
        return cls(host, time_s, seq, series)

    def __eq__(self, other):
        return (isinstance(other, StatReport)
                and self.host == other.host
                and self.time_s == other.time_s
                and self.seq == other.seq
                and self.series == other.series)

    def __repr__(self):
        return ("StatReport(%s t=%d seq=%d %d series)"
                % (self.host, self.time_s, self.seq,
                   len(self.series)))


def fresh_reports(reports, now_s, stale_s):
    """Filter ``{host: StatReport}`` down to the usably fresh ones.

    A report from the future (a peer's clock slightly ahead of ours
    when it sampled) counts as age zero, like loadd's view builder.
    """
    fresh = {}
    for host, report in reports.items():
        age_s = max(0, int(now_s) - report.time_s)
        if age_s <= stale_s:
            fresh[host] = report
    return fresh
