"""The ``LOADREPORT`` wire format and loadd's shared constants.

Section 8 of the paper: "CPU bound jobs can be moved from busy nodes
of the network to others that are idle".  Knowing which nodes are
busy and which are idle takes a cluster-wide load view, and this
module defines the datagram ``loadd`` broadcasts to build one: a
compact, versioned snapshot of one host's runnable VM jobs and its
best migration candidates.

Framing is connection-per-report: the sender connects to the
receiver's well-known port, writes one packed report, and closes.
Like the dump file formats (:mod:`repro.core.formats`), the blob is
magic-checked and length-prefixed; a truncated or doctored report
raises :class:`~repro.errors.UnixError` (``EINVAL``) on unpack — the
receiving daemon drops it and keeps running, it never crashes.

Layout (little endian)::

    magic      u16   LOADREPORT_MAGIC (octal 447)
    version    u8    LOADREPORT_VERSION
    host       u16-prefixed string (the reporting host)
    time_s     u32   sender's virtual clock, whole seconds
    runnable   u16   runnable (non-zombie) VM jobs on the host
    count      u16   number of candidate entries (<= MAX_CANDIDATES)
    count x:
      pid      i32   candidate process id
      cpu_ms   u32   CPU consumed by that process, milliseconds

Staleness, not sequence numbers, handles reordered or lost reports:
every report carries the sender's virtual-time stamp and the view
builder drops anything older than the ``load_stale_s`` knob — a
crashed or partitioned peer simply ages out of the view (its absence
is also cross-checked against the heartbeat detector by the daemon).
"""

from repro.errors import UnixError, EINVAL
from repro.kernel.constants import LOADREPORT_MAGIC
from repro.core.formats import _Reader, _Writer

#: loadd's well-known report port (migrationd owns 515, rshd 514)
LOADD_PORT = 517

LOADREPORT_VERSION = 1

#: cap on candidates per report: the balancer only ever moves a few
#: jobs per round, so shipping the whole process table is waste
MAX_CANDIDATES = 8

#: where loadd spools the newest report from each peer (and itself)
SPOOL_DIR = "/tmp/loadd"


class LoadReport:
    """One host's load snapshot, as broadcast on the wire."""

    def __init__(self, host, time_s, runnable, candidates=()):
        self.host = host
        self.time_s = int(time_s)
        self.runnable = int(runnable)
        #: ``(pid, cpu_ms)`` pairs, busiest first
        self.candidates = tuple((int(pid), int(cpu_ms))
                                for pid, cpu_ms in candidates)
        if len(self.candidates) > MAX_CANDIDATES:
            raise UnixError(EINVAL, "too many loadreport candidates")

    def pack(self):
        writer = _Writer()
        writer.u16(LOADREPORT_MAGIC)
        writer.raw(bytes((LOADREPORT_VERSION,)))
        writer.string(self.host)
        writer.u32(self.time_s)
        writer.u16(self.runnable)
        writer.u16(len(self.candidates))
        for pid, cpu_ms in self.candidates:
            writer.i32(pid)
            writer.u32(cpu_ms)
        return writer.getvalue()

    @classmethod
    def unpack(cls, blob):
        reader = _Reader(blob, "loadreport")
        if reader.u16() != LOADREPORT_MAGIC:
            raise UnixError(EINVAL, "bad loadreport magic")
        version = reader.raw(1)[0]
        if version != LOADREPORT_VERSION:
            raise UnixError(EINVAL,
                            "loadreport version %d" % version)
        host = reader.string()
        time_s = reader.u32()
        runnable = reader.u16()
        count = reader.u16()
        if count > MAX_CANDIDATES:
            raise UnixError(EINVAL, "too many loadreport candidates")
        candidates = []
        for __ in range(count):
            pid = reader.i32()
            cpu_ms = reader.u32()
            candidates.append((pid, cpu_ms))
        return cls(host, time_s, runnable, candidates)

    def __eq__(self, other):
        return (isinstance(other, LoadReport)
                and self.host == other.host
                and self.time_s == other.time_s
                and self.runnable == other.runnable
                and self.candidates == other.candidates)

    def __repr__(self):
        return ("LoadReport(%s t=%d runnable=%d candidates=%r)"
                % (self.host, self.time_s, self.runnable,
                   self.candidates))


def fresh_hosts(reports, now_s, stale_s):
    """Filter ``{host: LoadReport}`` down to the usably fresh ones.

    A report from the future (a peer's clock running slightly ahead
    of ours at the instant it sampled) counts as age zero — clocks
    across the cluster are only loosely synchronized.
    """
    fresh = {}
    for host, report in reports.items():
        age_s = max(0, int(now_s) - report.time_s)
        if age_s <= stale_s:
            fresh[host] = report
    return fresh
