"""The network substrate: Ethernet model, sockets, rsh, migrationd."""

from repro.net.network import Network, SocketState

__all__ = ["Network", "SocketState"]
