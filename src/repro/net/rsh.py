"""The remote shell: ``rsh`` client, ``rshd`` server, per-connection
helper.

"Rsh requires a lot of time to establish a connection with another
machine" — per connection, rshd's helper performs the expensive
``rsh_setup`` pseudo-call (reverse host lookup, privileged-port dance,
hosts.equiv scan, remote login-shell startup), whose calibrated cost
dominates Figure 4.

Protocol (newline-framed over the stream socket):

* client → server: ``CMD <command line>\\n``
* server: runs the command with its stdio wired to the connection —
  so the remote command has **no controlling terminal**, the reason
  migrate cannot preserve terminal modes remotely;
* server → client: the command's output, verbatim, then the sentinel
  ``\\x00EXIT:<status>\\n`` once the command exits.

The client relays output to its own stdout and exits with the remote
status.  (Stdin is not forwarded; the tools run this way — dumpproc,
restart — never read it.)
"""

from repro.errors import iserr, ECHILD
from repro.programs.base import LineReader, print_err, write_all

RSH_PORT = 514

_SENTINEL = b"\x00EXIT:"

USAGE = "usage: rsh host command [args ...]"


def rsh_main(argv, env):
    if len(argv) < 3:
        yield from print_err(USAGE)
        return 1
    host = argv[1]
    command = " ".join(argv[2:])

    sock = yield ("socket",)
    result = yield ("connect", sock, host, RSH_PORT)
    if iserr(result):
        yield from print_err("rsh: %s: connection refused" % host)
        return 1
    yield from write_all(sock, "CMD %s\n" % command)

    # relay remote output until the EXIT sentinel (or EOF)
    buffer = bytearray()
    status = 1
    while True:
        data = yield ("read", sock, 1024)
        if iserr(data) or data == b"":
            yield from _flush(buffer)
            break
        buffer.extend(data)
        index = buffer.find(_SENTINEL)
        if index >= 0 and b"\n" in buffer[index:]:
            yield from _flush(buffer[:index])
            line_end = buffer.index(b"\n", index)
            digits = bytes(buffer[index + len(_SENTINEL):line_end])
            try:
                status = int(digits)
            except ValueError:
                status = 1
            break
        # keep a potential partial sentinel; flush the rest
        safe = len(buffer) if index == -1 else index
        hold = min(len(_SENTINEL) + 12, safe)
        yield from _flush(buffer[:safe - hold])
        del buffer[:safe - hold]
    yield ("close", sock)
    return status


def _flush(data):
    if data:
        yield from write_all(1, bytes(data))


def rshd_main(argv, env):
    """The daemon: accept, hand each connection to a helper, loop."""
    sock = yield ("socket",)
    result = yield ("bind", sock, RSH_PORT)
    if iserr(result):
        yield from print_err("rshd: cannot bind port %d" % RSH_PORT)
        return 1
    yield ("listen", sock)
    while True:
        conn = yield ("accept", sock)
        if iserr(conn):
            # transient accept failure: don't spin on a hot error
            yield ("sleep", 1)
            continue
        # detached: a crashed helper must not zombify or kill the loop
        child = yield ("spawn", "/bin/rshd-helper", ["rshd-helper"],
                       conn, True)
        yield ("close", conn)
        if iserr(child):
            continue


def rshd_helper_main(argv, env):
    """One connection's worth of rshd work (stdio = the connection).

    The command line runs through ``sh -c``, like the real rshd
    handing it to the remote user's login shell.
    """
    yield ("rsh_setup",)  # the expensive part
    reader = LineReader(0)
    line = yield from reader.readline()
    if not line or not line.startswith("CMD "):
        yield from write_all(1, _SENTINEL + b"1\n")
        return 1
    command = line[4:].strip()
    if not command:
        yield from write_all(1, _SENTINEL + b"1\n")
        return 1
    child = yield ("spawn", "/bin/sh", ["sh", "-c", command], 0)
    if iserr(child):
        yield from write_all(1, b"rsh: cannot run the shell\n")
        yield from write_all(1, _SENTINEL + b"1\n")
        return 1
    while True:
        result = yield ("wait",)
        if iserr(result):
            status = 1 if result == -ECHILD else 1
            break
        reaped, raw = result
        if reaped == child:
            status = (raw >> 8) & 0xFF if not raw & 0x7F else 1
            break
    yield from write_all(1, _SENTINEL + b"%d\n" % status)
    return status
