"""The shared 10 Mbit Ethernet and a minimal stream-socket layer.

Data between machines moves as timed events: a send on machine A
schedules delivery on machine B at ``A.now + message time``; the
cluster's conservative stepping order guarantees B hasn't run past
that point.  The socket layer implements just enough of TCP's shape —
bind / listen / connect / accept / send / recv / close with EOF — for
``rshd`` and the paper's proposed migration daemon to be written as
ordinary native programs on top of it.
"""

import itertools
from collections import deque

from repro.errors import (UnixError, EADDRINUSE, ECONNREFUSED,
                          ECONNRESET, EHOSTDOWN, ENOTCONN, EPIPE,
                          EINVAL, ETIMEDOUT)
from repro.kernel.flow import WouldBlock


class SocketState:
    """One endpoint.  Lives in the kernel file table's socket slot.

    Ids are allocated by the owning :class:`Network` (one counter per
    cluster), so two identical runs in fresh clusters hand out
    identical socket ids regardless of what ran before them.
    """

    def __init__(self, machine, sock_id):
        self.id = sock_id
        self.machine = machine
        self.bound_port = None
        self.listening = False
        self.accept_queue = deque()
        self.peer = None
        self.rx = bytearray()
        self.eof = False
        self.reset = False  #: peer crashed: reads past rx see RST
        self.connected = False
        self.closed = False

    def __repr__(self):
        return ("SocketState(#%d on %s port=%r connected=%s)"
                % (self.id, self.machine.name, self.bound_port,
                   self.connected))


class Network:
    """The cluster's Ethernet segment."""

    def __init__(self, cluster):
        self.cluster = cluster
        #: the cluster tracer, cached for the one-attribute hot-path
        #: guard (``if self.tracer.enabled``)
        self.tracer = cluster.tracer
        #: total bytes moved (bench bookkeeping)
        self.bytes_moved = 0
        self.messages_sent = 0
        #: per-network socket id allocator (reproducible across runs)
        self._sock_ids = itertools.count(1)
        #: deprecated tuple-trace sink, kept behind the ``trace``
        #: property below; prefer ``cluster.tracer`` for new code
        self._legacy_trace = None
        #: severed links: a set of frozenset({a, b}) host-name pairs
        self._cuts = set()
        #: live sockets by owning host name, so a crash can reset the
        #: peers of everything the dead host had open
        self._live = {}

    @property
    def trace(self):
        """Deprecated: the pre-Tracer tuple sink.  Assigning a list
        here still works and still receives the historical
        ``("msg", ...)``/``("sock", ...)`` tuples; the same moments
        are also emitted as ``net.msg``/``net.sock`` tracer events."""
        return self._legacy_trace

    @trace.setter
    def trace(self, sink):
        self._legacy_trace = sink

    @property
    def costs(self):
        return self.cluster.costs

    @property
    def min_latency_us(self):
        """The smallest cross-machine message transit time."""
        return self.costs.message_us(0)

    # -- partitions and crashes --------------------------------------------

    def reachable(self, a, b):
        """True when hosts ``a`` and ``b`` can exchange packets."""
        if a == b:
            return True
        ma = self.cluster.machines.get(a)
        mb = self.cluster.machines.get(b)
        if ma is None or mb is None \
                or not ma.running or not mb.running:
            return False
        return frozenset((a, b)) not in self._cuts

    def partition(self, a, b):
        """Sever the link between ``a`` and ``b`` (both directions)."""
        if a == b:
            raise ValueError("cannot partition %r from itself" % a)
        cut = frozenset((a, b))
        if cut not in self._cuts:
            self._cuts.add(cut)
            self.cluster.perf.net_partitions += 1

    def heal(self, a=None, b=None):
        """Undo one cut (``heal(a, b)``) or every cut (``heal()``)."""
        if a is None and b is None:
            self._cuts.clear()
        else:
            self._cuts.discard(frozenset((a, b)))

    def host_crashed(self, machine, when_us):
        """``machine`` just crashed: reset the peers of its sockets.

        Each surviving peer sees EOF-with-RST one wire latency after
        the crash — buffered data already delivered stays readable,
        then reads return ``ECONNRESET``.
        """
        # sorted by id so the peers' reset events land in the same
        # order on every run of the schedule (sets iterate by identity)
        for sock in sorted(self._live.pop(machine.name, ()),
                           key=lambda s: s.id):
            sock.closed = True
            peer = sock.peer
            if peer is None or peer.closed \
                    or not peer.machine.running:
                continue
            dst, victim = peer.machine, peer

            def arrive(victim=victim, dst=dst):
                victim.eof = True
                victim.reset = True
                dst.kernel.wakeup(victim)

            dst.post_event(when_us, arrive)

    # -- raw timed delivery -----------------------------------------------

    def deliver(self, src_machine, dst_machine, nbytes, action):
        """Schedule ``action`` on ``dst_machine`` after transit time."""
        if not dst_machine.running \
                or not self.reachable(src_machine.name,
                                      dst_machine.name):
            self.cluster.perf.net_drops += 1
            return
        self.bytes_moved += nbytes
        self.messages_sent += 1
        arrival = src_machine.clock.now_us + self.costs.message_us(nbytes)
        if self._legacy_trace is not None:
            self._legacy_trace.append(("msg", src_machine.name,
                                       dst_machine.name, nbytes,
                                       arrival))
        if self.tracer.enabled:
            self.tracer.emit("net.msg", "deliver", src_machine,
                             dst=dst_machine.name, nbytes=nbytes,
                             arrival_us=arrival)
        dst_machine.post_event(arrival, action)

    # -- sockets ------------------------------------------------------------

    def sock_create(self, machine):
        sock = SocketState(machine, next(self._sock_ids))
        self._live.setdefault(machine.name, set()).add(sock)
        if self._legacy_trace is not None:
            self._legacy_trace.append(("sock", sock.id, machine.name))
        if self.tracer.enabled:
            self.tracer.emit("net.sock", "create", machine,
                             sock=sock.id)
        return sock

    def sock_bind(self, machine, sock, port):
        if port in machine.ports:
            raise UnixError(EADDRINUSE, "port %d" % port)
        machine.ports[port] = sock
        sock.bound_port = port

    def sock_listen(self, machine, sock):
        if sock.bound_port is None:
            raise UnixError(EINVAL, "listen before bind")
        sock.listening = True

    def sock_accept(self, machine, sock):
        if not sock.listening:
            raise UnixError(EINVAL, "accept on non-listening socket")
        if sock.accept_queue:
            machine.kernel.fault_check("net.accept",
                                       str(sock.bound_port))
            return sock.accept_queue.popleft()
        raise WouldBlock(sock)

    def sock_connect(self, machine, sock, host, port):
        """Connect; the simulation charges the connect RTT here."""
        if sock.connected:
            raise UnixError(EINVAL, "already connected")
        machine.kernel.fault_check("net.connect",
                                   "%s:%d" % (host, port))
        dst = self.cluster.machines.get(host)
        if dst is None:
            raise UnixError(ECONNREFUSED, "no host %r" % host)
        if not dst.running:
            # a dead host answers nothing; the connect burns one RTT
            # before the caller can conclude anything
            machine.kernel.charge_wait(self.costs.net_rtt_us)
            raise UnixError(EHOSTDOWN, "%s:%d" % (host, port))
        if not self.reachable(machine.name, host):
            # a partition looks like silence: SYNs vanish and the
            # connect times out rather than being refused
            machine.kernel.charge_wait(
                self.costs.connect_timeout_s * 1_000_000.0)
            raise UnixError(ETIMEDOUT, "%s:%d" % (host, port))
        listener = dst.ports.get(port)
        if listener is None or not listener.listening:
            raise UnixError(ECONNREFUSED, "%s:%d" % (host, port))
        machine.kernel.charge(self.costs.net_rtt_us)
        server_side = self.sock_create(dst)
        server_side.peer = sock
        server_side.connected = True
        sock.peer = server_side
        sock.connected = True

        def arrive():
            listener.accept_queue.append(server_side)
            dst.kernel.wakeup(listener)

        self.deliver(machine, dst, 64, arrive)

    def sock_send(self, machine, sock, data):
        if not sock.connected or sock.peer is None:
            raise UnixError(ENOTCONN)
        machine.kernel.fault_check("net.send", str(sock.id))
        peer = sock.peer
        if peer.closed:
            raise UnixError(EPIPE)
        dst = peer.machine
        payload = bytes(machine.kernel.fault_filter("net.send", data,
                                                    str(sock.id)))

        def arrive():
            peer.rx.extend(payload)
            dst.kernel.wakeup(peer)

        self.deliver(machine, dst, len(payload), arrive)
        return len(payload)

    def sock_recv(self, machine, sock, nbytes):
        if sock.rx:
            machine.kernel.fault_check("net.read", str(sock.id))
            take = min(nbytes, len(sock.rx))
            data = bytes(sock.rx[:take])
            del sock.rx[:take]
            return data
        if sock.reset:
            raise UnixError(ECONNRESET, "socket #%d" % sock.id)
        if sock.eof:
            return b""
        if not sock.connected and not sock.listening:
            raise UnixError(ENOTCONN)
        raise WouldBlock(sock)

    def sock_close(self, machine, sock):
        if sock.closed:
            return
        sock.closed = True
        owned = self._live.get(machine.name)
        if owned is not None:
            owned.discard(sock)
        if sock.bound_port is not None:
            machine.ports.pop(sock.bound_port, None)
        peer = sock.peer
        if peer is not None and not peer.closed:
            dst = peer.machine

            def arrive():
                peer.eof = True
                dst.kernel.wakeup(peer)

            self.deliver(machine, dst, 1, arrive)
