"""A leased heartbeat failure detector, one per live kernel.

Every machine that runs a network daemon participates: the monitor
probes each peer on a virtual-time period (``costs.hb_interval_s``)
and declares a peer **suspected dead** after ``costs.hb_timeout_s`` of
silence.  Probes are modelled, not sent — whether a peer would answer
is exactly "is it running and reachable", which the cluster already
knows — so detection costs no simulated network traffic, only the
timer events, and remains deterministic across engines.

The probe lane is *leased*: it ticks only while somebody has asked
``hb_status`` recently (``costs.hb_lease_s``).  Without the lease an
armed periodic timer would keep every cluster from ever going idle,
breaking the run-until-quiescent discipline every test and benchmark
relies on.  The lease gives the intended semantics — interested
parties get continuous detection; an idle cluster goes silent.

Suspicion state lives on the kernel (``kernel.hb_monitor``), so a
reboot forgets everything — like any other kernel memory.
"""

from repro.errors import UnixError


class HeartbeatMonitor:
    """Failure detector state for one machine."""

    def __init__(self, machine):
        self.machine = machine
        self.last_heard = {}  #: peer name -> virtual us last seen alive
        self.suspected = set()  #: peer names currently declared dead
        self.active = False  #: probe lane currently ticking
        self.lease_until = 0.0  #: lane runs while now < lease_until

    # -- queries ----------------------------------------------------------

    def status(self, host):
        """1 if ``host`` is suspected dead, else 0; renews the lease."""
        now = self.machine.clock.now_us
        costs = self.machine.costs
        self.lease_until = now + costs.hb_lease_s * 1_000_000.0
        if not self.active:
            self.active = True
            self._probe_all(now)
            self._schedule(now + costs.hb_interval_s * 1_000_000.0)
        return 1 if host in self.suspected else 0

    # -- the probe lane ---------------------------------------------------

    def _peers(self):
        cluster = self.machine.cluster
        return [m for name, m in sorted(cluster.machines.items())
                if m is not self.machine]

    def _probe_all(self, now):
        cluster = self.machine.cluster
        perf = cluster.perf
        network = cluster.network
        tracer = cluster.tracer
        timeout_us = self.machine.costs.hb_timeout_s * 1_000_000.0
        for peer in self._peers():
            perf.hb_probes += 1
            alive = peer.running and network.reachable(
                self.machine.name, peer.name)
            if alive:
                self.last_heard[peer.name] = now
                if peer.name in self.suspected:
                    self.suspected.discard(peer.name)
                    perf.hb_recoveries += 1
                    if tracer.enabled:
                        tracer.emit("hb", "recover", self.machine,
                                    peer=peer.name)
                continue
            # benefit of the doubt on the very first probe: treat the
            # lane's start as the last time we heard from the peer, so
            # suspicion takes a full timeout of observed silence
            heard = self.last_heard.setdefault(peer.name, now)
            if now - heard >= timeout_us \
                    and peer.name not in self.suspected:
                self.suspected.add(peer.name)
                perf.hb_suspects += 1
                perf.metrics.inc("hb_suspects",
                                 host=self.machine.name,
                                 peer=peer.name)
                if tracer.enabled:
                    tracer.emit("hb", "suspect", self.machine,
                                peer=peer.name)

    def _schedule(self, when_us):
        self.machine.post_event(when_us, self._tick)

    def _tick(self):
        machine = self.machine
        if not machine.running or machine.kernel.hb_monitor is not self:
            return  # the host died or rebooted under us
        now = machine.clock.now_us
        machine.cluster.perf.hb_ticks += 1
        tracer = machine.cluster.tracer
        if tracer.enabled:
            tracer.emit("hb", "tick", machine)
        try:
            machine.kernel.fault_check("hb.tick", machine.name)
        except UnixError:
            pass  # a faulted probe round is skipped, not fatal
        else:
            self._probe_all(now)
        if now < self.lease_until:
            self._schedule(now + machine.costs.hb_interval_s
                           * 1_000_000.0)
        else:
            self.active = False  # lease expired: lane goes dormant
