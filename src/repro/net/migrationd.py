"""The migration daemon: the paper's proposed faster alternative.

Section 6.4: "it is always possible to write a better application
which, by use of a UNIX daemon process and a well known port can
achieve more satisfactory results: instead of using rsh to start
processes remotely, applications will simply send messages to the
daemon, who will start the processes on their behalf."

``migrationd`` speaks the same framed protocol as rshd but performs no
per-connection authentication dance — only a light ``daemon_setup``
cost.  ``migrationd-run`` is the matching client, a drop-in for rsh
(it is what ``migrate -d`` uses).  Ablation A1 measures the
difference.

Hardening (see DESIGN.md section 7): helpers are spawned *detached*
so a crashed helper can neither zombify nor stall the accept loop;
the client retries refused connections with backoff and bounds every
reply read with a timeout, so a daemon that dies before emitting the
``\\x00EXIT:`` sentinel costs the caller a bounded wait, not a hang.
"""

from repro.errors import iserr, ETIMEDOUT
from repro.programs.base import LineReader, print_err, write_all
from repro.programs.exitcodes import EX_FAIL, EX_REJECTED, EX_TRANSIENT

MIGRATIOND_PORT = 515

_SENTINEL = b"\x00EXIT:"

#: commands the helper will spawn.  The daemon performs no
#: authentication, so relaying arbitrary binaries would hand any
#: network peer a shell on this host; only the migration pipeline's
#: own helpers are permitted.  (``kill`` is the killprog module —
#: installed as ``/bin/kill``.)
_ALLOWED = ("dumpproc", "restart", "kill", "ps")


def migrationd_main(argv, env):
    """The daemon proper: accept and dispatch to helpers."""
    yield ("hb_start",)  # this host now participates in failure
    # detection; clients consult the verdict before retrying us
    sock = yield ("socket",)
    result = yield ("bind", sock, MIGRATIOND_PORT)
    if iserr(result):
        yield from print_err("migrationd: cannot bind port %d"
                             % MIGRATIOND_PORT)
        return 1
    yield ("listen", sock)
    while True:
        conn = yield ("accept", sock)
        if iserr(conn):
            # transient accept failure: don't spin on a hot error
            yield ("sleep", 1)
            continue
        # detached: a helper crash must never take the daemon down or
        # leave a zombie nobody waits for
        child = yield ("spawn", "/bin/migrationd-helper",
                       ["migrationd-helper"], conn, True)
        yield ("close", conn)
        if iserr(child):
            continue


def migrationd_helper_main(argv, env):
    """Serve one request (stdio = the connection)."""
    yield ("daemon_setup",)  # cheap: no rexec dance, no shell startup
    reader = LineReader(0)
    line = yield from reader.readline()
    if not line or not line.startswith("CMD "):
        yield from write_all(1, _SENTINEL + b"1\n")
        return 1
    words = line[4:].split()
    if not words or words[0] not in _ALLOWED:
        what = words[0] if words else "(empty)"
        yield from write_all(1, b"migrationd: %s: not permitted\n"
                             % what.encode("latin-1"))
        yield from write_all(1, _SENTINEL + b"%d\n" % EX_REJECTED)
        return EX_REJECTED
    child = yield ("spawn", "/bin/%s" % words[0], words, 0)
    if iserr(child):
        yield from write_all(1, _SENTINEL + b"1\n")
        return 1
    while True:
        result = yield ("wait",)
        if iserr(result):
            status = 1
            break
        reaped, raw = result
        if reaped == child:
            status = (raw >> 8) & 0xFF if not raw & 0x7F else 1
            break
    yield from write_all(1, _SENTINEL + b"%d\n" % status)
    return status


def migrationd_run_main(argv, env):
    """Client: ``migrationd-run host command...`` (rsh drop-in)."""
    if len(argv) < 3:
        yield from print_err("usage: migrationd-run host command ...")
        return EX_FAIL
    host = argv[1]
    command = " ".join(argv[2:])
    attempts = yield ("sysctl", "connect_attempts")
    backoff = yield ("sysctl", "connect_backoff_s")
    timeout = yield ("sysctl", "net_read_timeout_s")

    sock = None
    for attempt in range(max(1, attempts)):
        if attempt:
            yield ("perf_note", "retries")
            yield ("sleep", backoff * attempt)
        sock = yield ("socket",)
        result = yield ("connect", sock, host, MIGRATIOND_PORT)
        if not iserr(result):
            break
        yield ("close", sock)
        sock = None
        dead = yield ("hb_status", host)
        if dead == 1:
            # the failure detector already suspects this host:
            # retrying a corpse wastes the whole backoff budget.
            # EX_TRANSIENT, not EX_FAIL — the host may come back.
            yield from print_err("migrationd-run: %s: host is down"
                                 % host)
            return EX_TRANSIENT
    if sock is None:
        yield from print_err("migrationd-run: %s: connection refused"
                             % host)
        return EX_FAIL

    yield from write_all(sock, "CMD %s\n" % command)
    buffer = bytearray()
    status = EX_FAIL
    scanned = 0  # sentinel search resumes here, not at offset 0
    index = -1   # sentinel position, once seen
    while True:
        data = yield ("read_timeout", sock, 1024, timeout)
        if data == -ETIMEDOUT:
            if buffer:
                yield from write_all(1, bytes(buffer))
            yield from print_err(
                "migrationd-run: %s: timed out waiting for reply"
                % host)
            status = EX_TRANSIENT
            break
        if iserr(data) or data == b"":
            # EOF (or error) before the sentinel: the server died on
            # us — fail promptly rather than looping on empty reads
            if buffer:
                yield from write_all(1, bytes(buffer))
            break
        buffer.extend(data)
        # rescanning the whole buffer per read is O(n^2) over a large
        # relayed output; back up only enough to catch a sentinel
        # split across the read boundary
        if index < 0:
            index = buffer.find(_SENTINEL,
                                max(0, scanned - (len(_SENTINEL) - 1)))
            scanned = len(buffer)
        if index >= 0 and buffer.find(b"\n", index) >= 0:
            if index:
                yield from write_all(1, bytes(buffer[:index]))
            line_end = buffer.index(b"\n", index)
            try:
                status = int(bytes(
                    buffer[index + len(_SENTINEL):line_end]))
            except ValueError:
                status = EX_FAIL
            break
    yield ("close", sock)
    return status
