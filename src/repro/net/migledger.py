"""The migration intent ledger (DESIGN.md section 12).

The hardened ``migrate`` pipeline (section 7) survives *transient*
faults, but a crash of the source, destination or orchestrating host
between SIGDUMP and the restart acknowledgment leaves the victim dead
with nobody responsible for it.  The ledger closes that window: before
the dump is even requested, ``migrate`` writes a durable **intent
record** to a shared directory on the file server and advances it
through a small phase machine as the pipeline progresses::

    INTENT -> DUMPED -> RESTARTING -> DONE
         \\-> ABORTED (dump failed, or rolled back to the source)

Alongside the record, the kernel archives a ledgered dump through the
cluster chunk store (``dump.aout``/``dump.files``/``dump.stack``
manifests plus the ``dump.ok`` commit marker), so not even a source
*reboot* — which wipes ``/usr/tmp`` — can destroy the only copy of a
captured process.

``recoveryd -m`` sweeps the ledger: a record whose orchestrator is
suspected dead (or that has simply gone stale) is epoch-fenced with a
``claim.<E>`` file — the same ``O_CREAT|O_EXCL`` atomic test-and-set
as checkpoint recovery (section 8) — and then completed or aborted,
exactly once.  Orchestrators check the fence at every phase advance
and stand down (``EX_FENCED``) when a sweeper has claimed their
migration.

Record layout (little endian)::

    magic         u16   MIGLEDGER_MAGIC (octal 450)
    version       u8    MIGLEDGER_VERSION
    phase         u8    PH_INTENT .. PH_ABORTED
    epoch         u16   fencing epoch (grows with each claim)
    pid           i32   the victim's pid on the source host
    time_s        u32   virtual time of the last phase write
    source        u16-prefixed string
    destination   u16-prefixed string
    orchestrator  u16-prefixed string (the host running migrate)

Like every dump and wire format, a truncated or doctored record
raises :class:`~repro.errors.UnixError` (``EINVAL``) instead of
misparsing — the sweep skips what it cannot parse.
"""

from repro.errors import iserr, UnixError, EINVAL
from repro.kernel.constants import (MIGLEDGER_MAGIC, O_CREAT, O_EXCL,
                                    O_WRONLY)
from repro.core.formats import (_Reader, _Writer, LEDGER_ARCHIVE_KINDS,
                                ledger_archive_names)
from repro.programs.base import read_file, write_file
from repro.programs.ckmeta import claim_name, highest_claim

MIGLEDGER_VERSION = 1

#: the phase machine
PH_INTENT = 0      #: record written, SIGDUMP not yet sent
PH_DUMPED = 1      #: dump durable (originals + chunk-store archive)
PH_RESTARTING = 2  #: a restart has been (or is being) attempted
PH_DONE = 3        #: restart acknowledged: the migration committed
PH_ABORTED = 4     #: dump failed or the job was rolled back home

PHASE_NAMES = {PH_INTENT: "intent", PH_DUMPED: "dumped",
               PH_RESTARTING: "restarting", PH_DONE: "done",
               PH_ABORTED: "aborted"}

#: the record file inside a per-migration directory
REC_NAME = "rec"
#: the archive commit marker, written by the kernel *last*: a record
#: directory without it holds no usable archive
OK_NAME = "dump.ok"
#: archive manifest basenames, (a.out, files, stack) order
ARCHIVE_NAMES = tuple("dump.%s" % kind for kind in LEDGER_ARCHIVE_KINDS)

#: ``ledger_advance`` return value when a higher claim fences us out
LEDGER_FENCED = 1


def record_dir(ledger_dir, source, pid):
    """The per-migration record directory (keyed like the trace id)."""
    return "%s/%s:%d" % (ledger_dir, source, pid)


class MigRecord:
    """One migration's ledger record, as stored on the file server."""

    def __init__(self, source, pid, destination, orchestrator,
                 phase=PH_INTENT, epoch=0, time_s=0):
        self.source = source
        self.pid = int(pid)
        self.destination = destination
        self.orchestrator = orchestrator
        self.phase = int(phase)
        self.epoch = int(epoch)
        self.time_s = int(time_s)
        if self.phase not in PHASE_NAMES:
            raise UnixError(EINVAL, "bad ledger phase %d" % self.phase)
        if not 0 <= self.epoch < 1 << 16:
            raise UnixError(EINVAL, "bad ledger epoch %d" % self.epoch)

    def mig_id(self):
        """The migration id, matching the trace spans: source:pid."""
        return "%s:%d" % (self.source, self.pid)

    def pack(self):
        writer = _Writer()
        writer.u16(MIGLEDGER_MAGIC)
        writer.raw(bytes((MIGLEDGER_VERSION,)))
        writer.raw(bytes((self.phase,)))
        writer.u16(self.epoch)
        writer.i32(self.pid)
        writer.u32(self.time_s)
        writer.string(self.source)
        writer.string(self.destination)
        writer.string(self.orchestrator)
        return writer.getvalue()

    @classmethod
    def unpack(cls, blob):
        reader = _Reader(blob, "migledger")
        if reader.u16() != MIGLEDGER_MAGIC:
            raise UnixError(EINVAL, "bad migledger magic")
        version = reader.raw(1)[0]
        if version != MIGLEDGER_VERSION:
            raise UnixError(EINVAL, "migledger version %d" % version)
        phase = reader.raw(1)[0]
        if phase not in PHASE_NAMES:
            raise UnixError(EINVAL, "bad ledger phase %d" % phase)
        epoch = reader.u16()
        pid = reader.i32()
        time_s = reader.u32()
        source = reader.string()
        destination = reader.string()
        orchestrator = reader.string()
        return cls(source, pid, destination, orchestrator,
                   phase=phase, epoch=epoch, time_s=time_s)

    def __eq__(self, other):
        return (isinstance(other, MigRecord)
                and self.source == other.source
                and self.pid == other.pid
                and self.destination == other.destination
                and self.orchestrator == other.orchestrator
                and self.phase == other.phase
                and self.epoch == other.epoch
                and self.time_s == other.time_s)

    def __repr__(self):
        return ("MigRecord(%s -> %s by %s phase=%s epoch=%d t=%d)"
                % (self.mig_id(), self.destination, self.orchestrator,
                   PHASE_NAMES.get(self.phase, "?"), self.epoch,
                   self.time_s))


# -- generator helpers (run inside native programs) ------------------------


def mkdir_p(path):
    """yield-from: create ``path`` and its parents; EEXIST is fine."""
    parts = [part for part in path.split("/") if part]
    built = ""
    result = 0
    for part in parts:
        built += "/" + part
        result = yield ("mkdir", built, 0o755)
    from repro.errors import EEXIST
    return 0 if (not iserr(result) or result == -EEXIST) else result


def _write_rec(directory, record, tag=None):
    """yield-from: atomically (re)write the record file; 0 or -errno.

    ``tag`` names the scratch file.  Concurrent writers — an
    orchestrator racing a claiming sweeper, or two sweepers at
    different epochs — must not share one scratch name, or the
    loser's rename ships the winner's half-written bytes; every
    phase advance therefore tags the scratch file with the writer's
    fencing epoch, which is unique among live writers (the
    orchestrator writes under the epoch it was fenced at, each
    sweeper under the strictly higher epoch it claimed).
    """
    name = REC_NAME if tag is None else "%s.%d" % (REC_NAME, tag)
    tmp = "%s/%s.tmp" % (directory, name)
    result = yield from write_file(tmp, record.pack(), mode=0o644)
    if iserr(result):
        return result
    result = yield ("rename", tmp, "%s/%s" % (directory, REC_NAME))
    return result if iserr(result) else 0


def ledger_put(directory, record):
    """yield-from: write the initial INTENT record; 0 or -errno."""
    yield ("fault_point", "ledger.put", record.mig_id())
    result = yield from _write_rec(directory, record)
    if iserr(result):
        return result
    yield ("perf_note", "ml_records")
    yield ("trace_mark", "migrate", "ledger-intent", record.mig_id())
    return 0


def ledger_read(directory):
    """yield-from: the parsed MigRecord, or -errno (EINVAL if torn)."""
    blob = yield from read_file("%s/%s" % (directory, REC_NAME))
    if iserr(blob):
        return blob
    try:
        return MigRecord.unpack(blob)
    except UnixError:
        return -EINVAL


def ledger_advance(directory, record, phase, fence_epoch=None):
    """yield-from: advance the record to ``phase``.

    Returns 0 on success, :data:`LEDGER_FENCED` when a claim above
    ``fence_epoch`` (default: the record's epoch) exists — the caller
    has been superseded by a recovery sweep and must stand down — or
    -errno when the ledger directory is unreachable.  The write also
    refreshes the record's timestamp, restarting its staleness clock.

    The fence is checked on *both* sides of the write: the
    readdir/rename pair is not atomic, so a claim created in between
    is invisible to the first check and this write may overwrite the
    claimant's record.  The post-write re-check turns that into a
    stand-down — the brief wrong record is harmless because a
    claiming sweeper re-reads the record *after* its claim and every
    sweep settles against reality (the destination probe), never the
    record alone.
    """
    yield ("fault_point", "ledger.advance", PHASE_NAMES[phase])
    fence = record.epoch if fence_epoch is None else fence_epoch
    names = yield ("readdir", directory)
    if iserr(names):
        return names
    if highest_claim(names) > fence:
        return LEDGER_FENCED
    record.phase = phase
    record.time_s = yield ("time",)
    result = yield from _write_rec(directory, record, tag=fence)
    if iserr(result):
        return result
    names = yield ("readdir", directory)
    if iserr(names):
        return names  # written but unverifiable: report unreachable
    if highest_claim(names) > fence:
        return LEDGER_FENCED
    yield ("perf_note", "ml_advances")
    yield ("trace_mark", "migrate", "ledger-" + PHASE_NAMES[phase],
           record.mig_id())
    return 0


def ledger_claim(directory, record):
    """yield-from: fence the record with the next epoch's claim file.

    ``O_CREAT|O_EXCL`` on the server makes the create an atomic
    test-and-set: whoever creates ``claim.<E>`` owns the record at
    epoch *E*.  Returns the claimed epoch, or -errno (EEXIST means
    another sweeper won the race).
    """
    yield ("fault_point", "ledger.claim", record.mig_id())
    names = yield ("readdir", directory)
    if iserr(names):
        return names
    epoch = max(record.epoch, highest_claim(names)) + 1
    fd = yield ("open", "%s/%s" % (directory, claim_name(epoch)),
                O_WRONLY | O_CREAT | O_EXCL, 0o644)
    if iserr(fd):
        return fd
    yield ("close", fd)
    yield ("perf_note", "ml_claims")
    return epoch


def ledger_reap(directory):
    """yield-from: remove a settled record's files; 0 or -errno.

    Unlinks the record, the archive manifests, the commit marker and
    every claim file.  (There is no rmdir in this kernel, so the
    empty directory itself remains — the sweep skips directories
    without a ``rec``.)
    """
    names = yield ("readdir", directory)
    if iserr(names):
        return names
    for name in sorted(names):
        if (name == REC_NAME or name == OK_NAME
                or name in ARCHIVE_NAMES or name.startswith("claim.")
                or name.endswith(".tmp")):
            yield ("unlink", "%s/%s" % (directory, name))
    yield ("perf_note", "ml_reaps")
    return 0


def archive_paths(directory):
    """The (a.out, files, stack) manifest paths of one record."""
    return ledger_archive_names(directory)
