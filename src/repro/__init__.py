"""Reproduction of *A Process Migration Implementation for a Unix
System* (Alonso & Kyrimis, Princeton CS-TR-092-87 / USENIX 1988).

The paper adds transparent process migration to Sun UNIX 3.0: a
``SIGDUMP`` signal that kills a process while dumping everything
needed to restart it, a ``rest_proc()`` system call that overlays the
caller with a dumped process, and user commands ``dumpproc`` /
``restart`` / ``migrate`` built on them.

Because raw process state cannot be captured from Python, this
package reproduces the paper on a **simulated substrate** built from
scratch (see DESIGN.md): a 68k-flavoured virtual CPU with an
assembler and ``a.out`` format (:mod:`repro.vm`), an inode filesystem
with symlinks and NFS-style ``/n/<host>`` mounts (:mod:`repro.fs`), a
Unix-like kernel (:mod:`repro.kernel`), multi-machine clusters with a
calibrated virtual-time cost model (:mod:`repro.machine`,
:mod:`repro.costmodel`), an rsh-capable network (:mod:`repro.net`),
the migration mechanism itself (:mod:`repro.core`,
:mod:`repro.programs`), and the section 8 applications
(:mod:`repro.apps`).

Quick start::

    from repro import MigrationSite

    site = MigrationSite()
    job = site.start("brick", "/bin/counter", uid=100)
    site.run_until(lambda: "> " in site.console("brick"))
    site.dumpproc("brick", job.pid, uid=100)
    site.restart("schooner", job.pid, from_host="brick", uid=100)
"""

from repro.costmodel import CostModel
from repro.core.api import MigrationSite, MigrationManager
from repro.machine import Cluster, Machine
from repro.apps import (CheckpointManager, LoadBalancer,
                        LoadBalancerPolicy, NightBatchScheduler)

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "MigrationSite",
    "MigrationManager",
    "Cluster",
    "Machine",
    "CheckpointManager",
    "LoadBalancer",
    "LoadBalancerPolicy",
    "NightBatchScheduler",
    "__version__",
]
