"""Trace exporters: JSONL and Chrome ``trace_event`` format.

JSONL is the determinism format: one compact, key-sorted JSON object
per line, so byte-for-byte comparison across engines is meaningful.

The Chrome format targets ``chrome://tracing`` / Perfetto: each
simulated host becomes a "process" row, span events become async
``b``/``e`` pairs keyed by migration id (so concurrent migrations
nest cleanly on their own tracks), and everything else becomes an
instant event.
"""

import json


def to_jsonl(events):
    """Render events as canonical JSON Lines (byte-stable)."""
    if not events:
        return ""
    return "\n".join(
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in events) + "\n"


def write_jsonl(events, path):
    text = to_jsonl(events)
    with open(path, "w") as handle:
        handle.write(text)
    return len(events)


def to_chrome(events, metrics=None):
    """Render events as a Chrome ``trace_event`` document (a dict;
    ``json.dump`` it into a ``.json`` file for chrome://tracing).

    With ``metrics`` (a :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` dict) the registry's counter series additionally appear
    as ``"ph": "C"`` counter events on a synthetic pid-0 "cluster"
    track, so metric values are visible on the Chrome timeline."""
    hosts = sorted({event["host"] for event in events})
    pids = {host: index + 1 for index, host in enumerate(hosts)}
    out = []
    for host in hosts:
        out.append({"ph": "M", "pid": pids[host], "tid": 0,
                    "name": "process_name",
                    "args": {"name": host}})
    for event in events:
        args = {key: value for key, value in event.items()
                if key not in ("ts", "cat", "name", "host", "span")}
        base = {"pid": pids[event["host"]], "tid": 0,
                "ts": event["ts"], "cat": event["cat"],
                "name": event["name"], "args": args}
        span = event.get("span")
        if span == "B":
            base.update(ph="b", id=event["mig"])
        elif span == "E":
            base.update(ph="e", id=event["mig"])
        else:
            base.update(ph="i", s="p")
        out.append(base)
    counters = (metrics or {}).get("counters") or {}
    if counters:
        out.append({"ph": "M", "pid": 0, "tid": 0,
                    "name": "process_name",
                    "args": {"name": "cluster"}})
        last_ts = max((event["ts"] for event in events), default=0)
        for name in sorted(counters):
            value = counters[name]
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                continue
            out.append({"ph": "C", "pid": 0, "tid": 0,
                        "ts": last_ts, "cat": "metric",
                        "name": name, "args": {"value": value}})
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def validate_chrome(doc):
    """Sanity-check a Chrome trace document: JSON round-trips, every
    event carries the required keys, and async spans nest (each ``e``
    closes a matching earlier ``b``).  Returns the event count;
    raises ``ValueError`` on malformed input."""
    doc = json.loads(json.dumps(doc))  # must survive a round trip
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents missing or not a list")
    open_spans = {}
    for event in events:
        for key in ("ph", "pid", "name"):
            if key not in event:
                raise ValueError("event missing %r: %r" % (key, event))
        ph = event["ph"]
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError("counter event without args: %r"
                                 % (event,))
            for value in args.values():
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    raise ValueError(
                        "counter value must be numeric: %r"
                        % (event,))
        elif ph == "b":
            open_spans.setdefault(
                (event["id"], event["name"], event["pid"]),
                []).append(event["ts"])
        elif ph == "e":
            key = (event["id"], event["name"], event["pid"])
            stack = open_spans.get(key)
            if not stack:
                raise ValueError("span end without begin: %r"
                                 % (key,))
            begin = stack.pop()
            if event["ts"] < begin:
                raise ValueError("span %r ends before it begins"
                                 % (key,))
    dangling = [key for key, stack in open_spans.items() if stack]
    if dangling:
        raise ValueError("unclosed spans: %r" % sorted(dangling))
    return len(events)
