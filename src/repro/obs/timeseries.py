"""Fixed-size ring-buffer time series with power-of-two bucketing.

The telemetry store behind ``statd`` (DESIGN.md section 13): each
gauge or counter-delta a host samples becomes a :class:`Series` — a
ring buffer of ``(time_s, value)`` pairs whose capacity is a power of
two, so the ring index is a cheap mask and the memory cost of a
cluster's whole telemetry history is fixed and known in advance.
Values are bucketed by power of two exactly like the engine's
burst-length histogram and the metrics registry, which keeps samples
of wildly different magnitudes readable on one ``migtop`` sparkline.

Like every observability structure, a series only records numbers
the simulation already computed — it may never influence virtual
time.  Snapshots are deterministically ordered so they can ride
along in engine-comparison fingerprints.
"""

#: the sparkline ramp, one glyph per power-of-two bucket (clamped)
SPARK_RAMP = " .:-=+*#%@"


def bucket_of(value):
    """The power-of-two bucket of ``value`` (0, [1], [2-3], [4-7]...)."""
    return max(0, int(value)).bit_length()


class Series:
    """One named metric's ring-buffered history."""

    def __init__(self, name, capacity=32):
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("series capacity must be a power of two, "
                             "got %r" % (capacity,))
        self.name = name
        self.capacity = capacity
        self._ring = [None] * capacity
        self.count = 0  #: samples ever recorded (not just retained)

    def record(self, time_s, value):
        """Append one sample; values clamp to a non-negative u32."""
        value = max(0, min(int(value), (1 << 32) - 1))
        time_s = max(0, min(int(time_s), (1 << 32) - 1))
        self._ring[self.count & (self.capacity - 1)] = (time_s, value)
        self.count += 1

    @classmethod
    def restore(cls, name, capacity, total, samples):
        """Rebuild a series from a snapshot: the retained samples plus
        the all-time count.  The ring is pre-rolled so ``samples()``
        returns the snapshot in order; when the snapshot cannot be
        rolled faithfully (a crafted report whose retained length
        matches neither ``total`` nor ``capacity``), the all-time
        count clamps to the retained length instead of leaving holes
        in the ring."""
        series = cls(name, capacity)
        start = total - len(samples)
        if start < 0 or (start and len(samples) < capacity):
            start = 0
        series.count = start
        for time_s, value in samples:
            series.record(time_s, value)
        return series

    def samples(self):
        """Retained ``(time_s, value)`` pairs, oldest first."""
        if self.count <= self.capacity:
            return [s for s in self._ring[:self.count]]
        start = self.count & (self.capacity - 1)
        return self._ring[start:] + self._ring[:start]

    def values(self):
        return [value for __, value in self.samples()]

    def last(self):
        """The newest sample's value, or 0 when empty."""
        samples = self.samples()
        return samples[-1][1] if samples else 0

    def buckets(self):
        """Power-of-two histogram of retained values: exponent->count."""
        out = {}
        for value in self.values():
            bucket = bucket_of(value)
            out[bucket] = out.get(bucket, 0) + 1
        return out

    def sparkline(self):
        """One glyph per retained sample, by power-of-two bucket."""
        top = len(SPARK_RAMP) - 1
        return "".join(SPARK_RAMP[min(bucket_of(value), top)]
                       for value in self.values())

    def snapshot(self):
        """A JSON-ready dict (deterministic field order)."""
        return {"name": self.name, "count": self.count,
                "samples": [[t, v] for t, v in self.samples()]}

    def __repr__(self):
        return ("Series(%s, %d/%d, last=%d)"
                % (self.name, min(self.count, self.capacity),
                   self.capacity, self.last()))


class SeriesSet:
    """An insertion-ordered collection of same-capacity series."""

    def __init__(self, capacity=32):
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("series capacity must be a power of two, "
                             "got %r" % (capacity,))
        self.capacity = capacity
        self._series = {}  #: name -> Series, insertion ordered

    def record(self, name, time_s, value):
        """Record into ``name``, creating the series on first use."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series(name, self.capacity)
        series.record(time_s, value)
        return series

    def add(self, series):
        """Install a fully-built :class:`Series` (same capacity)."""
        if series.capacity != self.capacity:
            raise ValueError("capacity mismatch: %d != %d"
                             % (series.capacity, self.capacity))
        self._series[series.name] = series
        return series

    def get(self, name):
        return self._series.get(name)

    def names(self):
        return list(self._series)

    def series(self):
        return list(self._series.values())

    def snapshot(self):
        return [series.snapshot() for series in self._series.values()]

    def __len__(self):
        return len(self._series)

    def __repr__(self):
        return "SeriesSet(%d series, capacity=%d)" % (
            len(self._series), self.capacity)
