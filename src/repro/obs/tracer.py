"""Deterministic, virtual-time event tracing for the whole cluster.

One :class:`Tracer` is owned by the :class:`~repro.machine.cluster.
Cluster` and shared by every kernel, the network, the fault injector
and the heartbeat monitors.  Events are stamped with the *emitting
machine's* virtual clock (microseconds), never wall time, so a trace
is a pure function of the simulation schedule — and because the fast
engine reproduces the scan engine's schedule step for step, the same
run traced under either engine yields byte-identical JSONL.

Design rules:

* tracing off costs one attribute check (``if tracer.enabled``) at
  every emission site, mirroring the old ``Network.trace`` guard;
* events are plain dicts (JSON-ready) appended to one global ordered
  list — ordering comes from the engine's deterministic step order;
* **spans** bracket migration phases.  ``span_begin``/``span_end``
  always maintain phase timing (feeding the ``span_us`` histograms in
  the metrics registry even when event emission is off) and
  additionally emit ``"span": "B"``/``"E"`` events when their
  category is enabled;
* a migration is keyed ``"<source-host>:<pid>"`` — derivable
  independently at every stage of the pipeline, including on the
  destination host from the dump-file path alone
  (:func:`dump_migration_id`).
"""

from repro.obs import export

#: every known event category; ``enable()`` with no args turns on all
CATEGORIES = frozenset({
    "syscall",   # kernel syscall dispatch (VM traps + native requests)
    "signal",    # post_signal delivery
    "sched",     # scheduler giving a process a run slot
    "net.msg",   # a message handed to the network for delivery
    "net.sock",  # socket lifecycle
    "fault",     # fault injector firings + host crash/reboot
    "hb",        # heartbeat detector ticks / suspicion flips
    "dump",      # kernel dump_process spans
    "restart",   # rest_proc spans
    "migrate",   # the migrate user command's end-to-end span + marks
    "recovery",  # recoveryd claiming + restarting a lost job
    "chunk",     # chunk-store puts/gets/dedup hits + lazy fault-ins
    "loadd",     # loadd balance-decision spans + move marks
    "statd",     # statd sampling marks (cluster telemetry)
    "alert",     # SLO threshold breaches raised by the analyzer
})

#: the migration-phase timeline, as (category, name, span, phase).
#: Each marker is one timestamp; consecutive markers delimit one
#: phase, so the phases telescope and their durations sum exactly to
#: the end-to-end latency.  ``span`` is "B"/"E" for span events, None
#: for plain marks.
_TIMELINE_MARKERS = (
    ("migrate", "migrate", "B", "begin"),
    ("dump", "dump", "B", "signal"),       # begin -> SIGDUMP honoured
    ("dump", "dump", "E", "dump"),         # state written to files
    ("migrate", "rewrite", None, "rewrite"),  # dumpproc path rewrite
    ("restart", "rest_proc", "B", "transfer"),  # files read remotely
    ("restart", "rest_proc", "E", "restart"),   # process overlaid
    ("migrate", "migrate", "E", "ack"),    # migrate saw it running
)


def dump_migration_id(aout_path, local_host):
    """Derive the ``host:pid`` migration id from a dump-file path.

    Dump files are named ``a.out<pid>`` (plus ``NNN.<pid>`` segment
    files) and a remote dump is addressed ``/n/<host>/...``; a local
    path means the dump was taken on ``local_host`` itself.
    """
    host = local_host
    if aout_path.startswith("/n/"):
        parts = aout_path.split("/", 3)
        if len(parts) >= 3 and parts[2]:
            host = parts[2]
    tail = aout_path.rsplit("/", 1)[-1]
    if tail.startswith("a.out"):
        tail = tail[len("a.out"):]
    try:
        pid = int(tail)
    except ValueError:
        pid = -1
    return "%s:%d" % (host, pid)


class Tracer:
    """Cluster-wide virtual-time event recorder."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.enabled = False  #: the single hot-path guard
        self.categories = frozenset()
        self.events = []
        self._open = {}  #: (cat, name, mig) -> begin timestamp us

    # -- control ---------------------------------------------------------

    def enable(self, *categories):
        """Turn tracing on for ``categories`` (default: all)."""
        wanted = frozenset(categories) if categories else CATEGORIES
        unknown = wanted - CATEGORIES
        if unknown:
            raise ValueError("unknown trace categories: %s"
                             % ", ".join(sorted(unknown)))
        self.categories = wanted
        self.enabled = True
        return self

    def disable(self):
        self.enabled = False
        self.categories = frozenset()
        return self

    def clear(self):
        """Drop recorded events (keeps enablement and open spans)."""
        self.events = []
        return self

    # -- recording -------------------------------------------------------

    def emit(self, cat, name, machine, **fields):
        """Record one event at ``machine``'s virtual clock.

        Callers guard with ``if tracer.enabled`` so a disabled tracer
        costs one attribute load; the category filter lives here.
        """
        if not self.enabled or cat not in self.categories:
            return
        event = {"ts": machine.clock.now_us, "cat": cat,
                 "name": name, "host": machine.name}
        if fields:
            event.update(fields)
        self.events.append(event)

    def span_begin(self, cat, name, mig, machine, **fields):
        """Open a span for migration ``mig``.  Phase timing is always
        tracked (for the ``span_us`` histograms); the event itself is
        only recorded when the category is enabled."""
        self._open[(cat, name, mig)] = machine.clock.now_us
        if self.enabled and cat in self.categories:
            event = {"ts": machine.clock.now_us, "cat": cat,
                     "name": name, "host": machine.name,
                     "mig": mig, "span": "B"}
            if fields:
                event.update(fields)
            self.events.append(event)

    def span_end(self, cat, name, mig, machine, ok=True, **fields):
        """Close a span; feeds the phase-duration histogram."""
        now = machine.clock.now_us
        begin = self._open.pop((cat, name, mig), None)
        if begin is not None:
            self.cluster.perf.metrics.observe("span_us", now - begin,
                                              phase=name)
        if self.enabled and cat in self.categories:
            event = {"ts": now, "cat": cat, "name": name,
                     "host": machine.name, "mig": mig, "span": "E",
                     "ok": bool(ok)}
            if fields:
                event.update(fields)
            self.events.append(event)

    # -- analysis --------------------------------------------------------

    def migration_timeline(self, mig):
        """Stitch the recorded events for migration ``mig`` into the
        paper's phase breakdown (Figures 2-4).

        Returns ``None`` unless at least a begin and an end marker
        were captured; otherwise a dict with contiguous ``phases``
        whose durations sum to ``end_to_end_us`` by construction.
        """
        marks = {}
        for event in self.events:
            if event.get("mig") != mig:
                continue
            if event.get("span") == "E" and not event.get("ok", True):
                continue  # failed phases don't make a timeline
            marks[(event["cat"], event["name"],
                   event.get("span"))] = event["ts"]
        points = []
        for cat, name, span, phase in _TIMELINE_MARKERS:
            ts = marks.get((cat, name, span))
            if ts is not None:
                # markers are stamped on different hosts' clocks, and
                # a later stage can observe an earlier one through
                # synchronous NFS before its own clock catches up
                # (e.g. migrate seeing the consumed dump), so clamp
                # to keep the stitched timeline monotone
                if points and ts < points[-1][1]:
                    ts = points[-1][1]
                points.append((phase, ts))
        if len(points) < 2:
            return None
        # the interval *ending* at each marker is named for the work
        # that completed there
        phases = []
        for (__, begin), (phase, end) in zip(points, points[1:]):
            phases.append({"phase": phase, "begin_us": begin,
                           "end_us": end,
                           "duration_us": end - begin})
        return {
            "mig": mig,
            "begin_us": points[0][1],
            "end_us": points[-1][1],
            "end_to_end_us": points[-1][1] - points[0][1],
            "phases": phases,
        }

    # -- export ----------------------------------------------------------

    def to_jsonl(self):
        return export.to_jsonl(self.events)

    def to_chrome(self):
        return export.to_chrome(
            self.events, self.cluster.perf.metrics.snapshot())

    def __repr__(self):
        state = ("on:%s" % ",".join(sorted(self.categories))
                 if self.enabled else "off")
        return "Tracer(%s, %d events)" % (state, len(self.events))
