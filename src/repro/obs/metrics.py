"""Labelled counters and virtual-time histograms.

One :class:`MetricsRegistry` lives on the cluster's
:class:`~repro.perf.counters.PerfCounters` and absorbs the statistics
that the flat counters cannot express: anything keyed by host, peer,
migration phase or process.  Like every other observation facility it
may never influence virtual time — it only records numbers the
simulation already computed.

Conventions:

* a metric is addressed by name plus a set of labels
  (``inc("dumps", host="brick")``);
* histograms bucket by power of two, exactly like the engine's
  burst-length histogram, so virtual-time durations of wildly
  different magnitudes stay readable;
* :meth:`MetricsRegistry.snapshot` renders everything into a
  deterministic JSON-ready dict (sorted names, sorted labels) so it
  can ride along in ``BENCH_perf.json`` and in engine-comparison
  fingerprints.
"""


def _label_key(labels):
    """Canonical hashable form of a label set."""
    return tuple(sorted(labels.items()))


def _render(name, label_key):
    """``name{k=v,...}`` — the human/JSON-facing series name."""
    if not label_key:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % pair
                                      for pair in label_key))


def check_number(value, what="metric amount"):
    """Reject bools (which are ints in Python!) and non-numbers."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError("%s must be a number, got %r" % (what, value))
    return value


class MetricsRegistry:
    """Per-cluster labelled counters and virtual-time histograms."""

    def __init__(self):
        self.reset()

    def reset(self):
        self._counters = {}  #: (name, label_key) -> number
        self._hists = {}     #: (name, label_key) -> count/sum/buckets

    # -- recording -------------------------------------------------------

    def inc(self, name, amount=1, **labels):
        """Bump counter ``name`` for the given label set."""
        check_number(amount)
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, name, value, **labels):
        """Record one sample (virtual microseconds, typically) into
        the power-of-two histogram for ``name``."""
        check_number(value, "histogram sample")
        key = (name, _label_key(labels))
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = {"count": 0, "sum": 0.0,
                                       "buckets": {}}
        hist["count"] += 1
        hist["sum"] += value
        bucket = max(0, int(value)).bit_length()
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1

    # -- queries ---------------------------------------------------------

    def total(self, name, **labels):
        """Sum of counter ``name`` over every series whose labels are
        a superset of the given ones (``total("dumps")`` sums hosts;
        ``total("dumps", host="brick")`` picks one)."""
        want = labels.items()
        total = 0
        for (cname, label_key), value in self._counters.items():
            if cname != name:
                continue
            have = dict(label_key)
            if all(have.get(k) == v for k, v in want):
                total += value
        return total

    def sample_count(self, name, **labels):
        """Number of samples observed into histogram ``name``."""
        want = labels.items()
        count = 0
        for (hname, label_key), hist in self._hists.items():
            if hname != name:
                continue
            have = dict(label_key)
            if all(have.get(k) == v for k, v in want):
                count += hist["count"]
        return count

    def names(self):
        """Every metric name ever recorded, sorted."""
        return sorted({name for name, __ in self._counters}
                      | {name for name, __ in self._hists})

    # -- export ----------------------------------------------------------

    def snapshot(self):
        """A JSON-ready, deterministically-ordered dict of everything."""
        counters = {}
        for (name, label_key), value in sorted(self._counters.items()):
            counters[_render(name, label_key)] = value
        histograms = {}
        for (name, label_key), hist in sorted(self._hists.items()):
            histograms[_render(name, label_key)] = {
                "count": hist["count"],
                "sum": round(hist["sum"], 6),
                "buckets": {str(bucket): count for bucket, count
                            in sorted(hist["buckets"].items())},
            }
        return {"counters": counters, "histograms": histograms}

    def __repr__(self):
        return ("MetricsRegistry(%d counters, %d histograms)"
                % (len(self._counters), len(self._hists)))
