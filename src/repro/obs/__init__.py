"""Observability: deterministic tracing, spans, and labelled metrics.

Everything in here records; nothing in here may ever influence
virtual time.  See DESIGN.md section 9 and docs/man/tracefmt.5.md.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.export import (to_jsonl, write_jsonl, to_chrome,
                              validate_chrome)
from repro.obs.tracer import Tracer, CATEGORIES, dump_migration_id
from repro.obs.timeseries import Series, SeriesSet
from repro.obs.critpath import critical_path_report, slo_alerts

__all__ = [
    "MetricsRegistry", "Tracer", "CATEGORIES", "dump_migration_id",
    "to_jsonl", "write_jsonl", "to_chrome", "validate_chrome",
    "Series", "SeriesSet", "critical_path_report", "slo_alerts",
]
