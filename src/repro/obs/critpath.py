"""The migration critical-path analyzer (DESIGN.md section 13).

The paper's evaluation hinges on knowing *where* migration time goes
(signal -> dump -> rewrite -> transfer -> restart -> ack).  The
tracer already stitches each migration's recorded events into the
phase timeline (:meth:`~repro.obs.tracer.Tracer.migration_timeline`,
whose phases telescope exactly to the end-to-end latency); this
module aggregates those timelines across *every* recorded migration
into one deterministic report:

* per-phase p50/p95/max/total durations and each phase's share of
  total migration time, with dominant-phase attribution;
* per-source-host and per-pair ``src->dst`` rollups;
* threshold-based SLO alerts (``migrate_p95_us``, ``hb_suspect``,
  ``ledger_sweep_age``) emitted through the tracer as the ``alert``
  category.

Everything here is a pure function of the recorded trace and the
current cluster state — byte-identical across the scan and fast
engines, because the traces are.
"""

from repro.obs.tracer import _TIMELINE_MARKERS

#: the phase names, in pipeline order (the interval *ending* at each
#: timeline marker after the first)
PHASE_ORDER = tuple(phase for __, __, __, phase
                    in _TIMELINE_MARKERS[1:])


def percentile(values, pct):
    """Nearest-rank percentile of ``values`` (``pct`` in 0..100)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = -(-pct * len(ordered) // 100)  # ceil
    rank = min(max(rank, 1), len(ordered))
    return ordered[rank - 1]


def _stats(values):
    return {
        "count": len(values),
        "p50_us": percentile(values, 50),
        "p95_us": percentile(values, 95),
        "max_us": max(values) if values else 0,
        "total_us": sum(values),
    }


def critical_path_report(cluster):
    """Aggregate every recorded migration timeline into one report."""
    tracer = cluster.tracer
    migs = []
    seen = set()
    destinations = {}
    for event in tracer.events:
        mig = event.get("mig")
        if not mig:
            continue
        if mig not in seen:
            seen.add(mig)
            migs.append(mig)
        # the restart-category events run on the destination host
        if event.get("cat") == "restart":
            destinations.setdefault(mig, event["host"])
    timelines = []
    for mig in migs:
        timeline = tracer.migration_timeline(mig)
        if timeline is not None:
            timelines.append(timeline)

    phase_durations = {}
    end_to_end = []
    hosts = {}
    pairs = {}
    for timeline in timelines:
        end_to_end.append(timeline["end_to_end_us"])
        source = timeline["mig"].rsplit(":", 1)[0]
        pair = "%s->%s" % (source,
                           destinations.get(timeline["mig"], "?"))
        hosts.setdefault(source, []).append(
            timeline["end_to_end_us"])
        pairs.setdefault(pair, []).append(timeline["end_to_end_us"])
        for interval in timeline["phases"]:
            phase_durations.setdefault(
                interval["phase"], []).append(interval["duration_us"])

    total_all = sum(sum(durations)
                    for durations in phase_durations.values())
    phases = []
    dominant = None
    dominant_total = -1
    for phase in PHASE_ORDER:
        durations = phase_durations.get(phase)
        if durations is None:
            continue
        row = _stats(durations)
        row["phase"] = phase
        row["share"] = round(row["total_us"] / total_all, 6) \
            if total_all else 0.0
        phases.append(row)
        if row["total_us"] > dominant_total:
            dominant_total = row["total_us"]
            dominant = phase

    return {
        "migrations": len(timelines),
        "end_to_end": _stats(end_to_end),
        "phases": phases,
        "dominant": dominant,
        "hosts": {host: _stats(values)
                  for host, values in sorted(hosts.items())},
        "pairs": {pair: _stats(values)
                  for pair, values in sorted(pairs.items())},
    }


def _ledger_max_age_s(cluster, now_s):
    """Oldest in-flight ledger record's age, scanned server-side.

    Reads the record files straight out of the file server's local
    filesystem tree (an analyzer convenience, not a syscall path);
    torn or reaped records are skipped, like the sweep does.
    """
    from repro.errors import UnixError
    from repro.net.migledger import (MigRecord, PH_DONE, PH_ABORTED,
                                     REC_NAME)
    ledger_dir = cluster.costs.migration_ledger_dir
    host = None
    local = ledger_dir
    if ledger_dir.startswith("/n/"):
        parts = ledger_dir.split("/", 3)
        if len(parts) >= 4 and parts[2]:
            host, local = parts[2], "/" + parts[3]
    machine = cluster.machines.get(host) if host else None
    if machine is None or not machine.running:
        return None
    try:
        root = machine.fs.resolve_local(local)
    except UnixError:
        return None
    oldest = None
    for name in sorted(getattr(root, "entries", {})):
        entry = root.entries[name]
        if not entry.is_dir():
            continue
        rec = entry.entries.get(REC_NAME)
        if rec is None or not rec.is_reg():
            continue
        try:
            record = MigRecord.unpack(bytes(rec.data))
        except UnixError:
            continue
        if record.phase in (PH_DONE, PH_ABORTED):
            continue
        age_s = max(0, int(now_s) - record.time_s)
        if oldest is None or age_s > oldest:
            oldest = age_s
    return oldest


def slo_alerts(cluster, report, machine, now_s):
    """Evaluate the SLO thresholds; emit ``alert`` events and return
    the raised alerts as ``{name, value, limit}`` rows (fixed order,
    so the report stays deterministic)."""
    costs = cluster.costs
    alerts = []
    e2e = report["end_to_end"]
    if e2e["count"] and e2e["p95_us"] > costs.slo_migrate_p95_us:
        alerts.append({"name": "migrate_p95_us",
                       "value": e2e["p95_us"],
                       "limit": costs.slo_migrate_p95_us})
    suspects = 0
    for name in cluster.hosts():
        peer = cluster.machines[name]
        monitor = peer.kernel.hb_monitor
        if peer.running and monitor is not None:
            suspects += len(monitor.suspected)
    if suspects >= costs.slo_hb_suspects:
        alerts.append({"name": "hb_suspect", "value": suspects,
                       "limit": costs.slo_hb_suspects})
    ledger_age = _ledger_max_age_s(cluster, now_s)
    if ledger_age is not None \
            and ledger_age > costs.slo_ledger_sweep_age_s:
        alerts.append({"name": "ledger_sweep_age",
                       "value": ledger_age,
                       "limit": costs.slo_ledger_sweep_age_s})
    for alert in alerts:
        cluster.perf.st_alerts += 1
        if cluster.tracer.enabled:
            cluster.tracer.emit("alert", alert["name"], machine,
                                value=alert["value"],
                                limit=alert["limit"])
    return alerts
