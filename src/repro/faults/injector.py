"""The injector: evaluates an armed plan at each named site.

Kernels call :meth:`FaultInjector.check` at control-flow sites (may
raise or stall) and :meth:`FaultInjector.filter` where a byte blob can
be corrupted in flight.  With no plan armed both are never reached —
the kernel-side hooks test ``plan.rules`` first — so unfaulted runs
pay nothing and trace identically to builds without the subsystem.
"""

from repro.errors import UnixError
from repro.faults.plan import FaultPlan
from repro.kernel.flow import HostCrashed


def _mangle(data, rng):
    """Deterministically corrupt a blob.

    The first two bytes are flipped so any magic-number check fails
    (every dump-file format leads with one), plus one RNG-chosen byte
    deeper in, so corruption isn't confined to the header.
    """
    if not data:
        return data
    out = bytearray(data)
    out[0] ^= 0xFF
    if len(out) > 1:
        out[1] ^= 0xFF
        out[rng.randrange(len(out))] ^= 0xA5
    return bytes(out)


class FaultInjector:
    """Per-cluster fault state: an armed plan plus hit bookkeeping."""

    def __init__(self, plan=None):
        self.arm(plan)

    def arm(self, plan=None):
        """Install ``plan`` (or disarm), resetting all bookkeeping."""
        self.plan = plan if plan is not None else FaultPlan()
        self.hits = {}     #: site -> times reached (armed runs only)
        self.fired = []    #: (site, kind, detail) log in firing order

    def check(self, kernel, site, detail=""):
        """Control-flow site: apply delay rules, then the first fail
        rule.  Raises :class:`UnixError` when a fail rule fires."""
        host = kernel.machine.name
        cluster = kernel.machine.cluster
        self.hits[site] = self.hits.get(site, 0) + 1
        perf = cluster.perf
        failure = None
        for rule in self.plan.rules:
            if rule.kind == "corrupt" or not rule.matches(site, host):
                continue
            if not rule.note_hit():
                continue
            if rule.kind == "delay":
                perf.faults_injected += 1
                perf.fault_delay_us += rule.delay_us
                self.fired.append((site, "delay", detail))
                self._trace(kernel, "delay", site, detail)
                kernel.charge_wait(rule.delay_us)
            elif rule.kind == "crash":
                victim = rule.target or host
                perf.faults_injected += 1
                self.fired.append((site, "crash", detail))
                self._trace(kernel, "crash", site, detail)
                cluster.crash_host(victim)
                if victim == host:
                    # this very machine died mid-syscall; unwind all
                    # the way out of its step (see kernel.flow)
                    raise HostCrashed(victim)
            elif rule.kind == "partition":
                perf.faults_injected += 1
                self.fired.append((site, "partition", detail))
                self._trace(kernel, "partition", site, detail)
                cluster.partition(rule.target or host, rule.peer)
            elif failure is None:
                failure = rule
        if failure is not None:
            perf.faults_injected += 1
            self.fired.append((site, "fail", detail))
            self._trace(kernel, "fail", site, detail)
            raise UnixError(failure.errno,
                            "fault injected at %s" % site)

    @staticmethod
    def _trace(kernel, kind, site, detail):
        if kernel.tracer.enabled:
            kernel.tracer.emit("fault", kind, kernel.machine,
                               site=site, detail=detail)

    def filter(self, kernel, site, data, detail=""):
        """Data site: pass ``data`` through any corrupt rules."""
        host = kernel.machine.name
        perf = kernel.machine.cluster.perf
        for rule in self.plan.rules:
            if rule.kind != "corrupt" or not rule.matches(site, host):
                continue
            if not rule.note_hit():
                continue
            perf.faults_injected += 1
            perf.fault_corruptions += 1
            self.fired.append((site, "corrupt", detail))
            self._trace(kernel, "corrupt", site, detail)
            data = _mangle(data, rule.rng)
        return data
