"""Deterministic fault injection for the migration pipeline.

The injector is threaded through the kernel and network layers as
named *sites* (``dump.write.aout``, ``net.connect``, ...).  A seeded
:class:`FaultPlan` decides, purely from per-rule hit counters, which
calls fail, stall or hand back corrupted bytes — so a chaos run
replays bit-identically under both cluster engines.
"""

from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.injector import FaultInjector

__all__ = ["FaultPlan", "FaultRule", "FaultInjector"]
