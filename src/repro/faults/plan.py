"""Fault plans: which injection sites misbehave, and how often.

A plan is a list of rules.  Each rule names a site (exactly, or by
``prefix.*``), a failure kind, and counters saying which hits of that
site it applies to.  Rules never consult the clock or global
randomness at decision time: whether hit *N* of a site fires is a
pure function of the plan, so two runs of the same scenario — on
either cluster engine — inject identical faults at identical points.

The textual format (see docs/man/faultplan.5.md)::

    <site> <kind> [n=<count>|n=*] [skip=<k>] [errno=<NAME>]
                  [delay=<seconds>] [host=<name>]
                  [target=<name>] [peer=<name>]

Rules are separated by ``;`` or newlines.  Examples::

    dump.write.files fail n=1 errno=EIO
    net.read delay n=2 delay=0.8
    nfs.read corrupt skip=1
    restproc.overlay crash n=1
    net.connect partition n=1 peer=schooner

The host-level kinds: ``crash`` powers off a machine the moment the
site is hit (``target=`` names the victim; default is the host that
hit the site), ``partition`` cuts the link between ``target=`` (same
default) and the mandatory ``peer=``.
"""

import random

import repro.errors as errors_mod
from repro.errors import EIO

#: the failure kinds a rule may carry
KINDS = ("fail", "delay", "corrupt", "crash", "partition")


class FaultRule:
    """One ``site kind ...`` clause of a plan."""

    def __init__(self, site, kind, count=1, skip=0, errno=EIO,
                 delay_us=500_000, host=None, target=None, peer=None):
        if kind not in KINDS:
            raise ValueError("unknown fault kind %r" % kind)
        if kind == "partition" and peer is None:
            raise ValueError("partition rule needs peer=<host>")
        self.site = site
        self.kind = kind
        self.count = count        #: how many hits fire (None = forever)
        self.skip = skip          #: matching hits to let through first
        self.errno = errno
        self.delay_us = delay_us
        self.host = host          #: restrict to one machine (or None)
        self.target = target      #: crash/partition victim (default:
        #: the host that hit the site)
        self.peer = peer          #: partition: the other end of the cut
        self.seen = 0             #: matching hits observed so far
        self.fired = 0            #: hits this rule actually acted on
        self.rng = None           #: seeded by the owning plan

    def matches(self, site, host):
        if self.host is not None and host != self.host:
            return False
        if self.site.endswith(".*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def note_hit(self):
        """Record one matching hit; True if the rule fires on it."""
        position = self.seen
        self.seen += 1
        if position < self.skip:
            return False
        if self.count is not None and position >= self.skip + self.count:
            return False
        self.fired += 1
        return True

    def __repr__(self):
        return ("FaultRule(%s %s n=%s skip=%d fired=%d)"
                % (self.site, self.kind,
                   "*" if self.count is None else self.count,
                   self.skip, self.fired))


class FaultPlan:
    """An ordered set of rules with a deterministic per-rule RNG."""

    def __init__(self, rules=(), seed=0):
        self.rules = list(rules)
        self.seed = seed
        for index, rule in enumerate(self.rules):
            # string seeds hash via sha512: stable across processes
            rule.rng = random.Random("%s/%d" % (seed, index))

    @classmethod
    def parse(cls, spec, seed=0):
        """Build a plan from the textual rule format above."""
        rules = []
        for clause in spec.replace("\n", ";").split(";"):
            clause = clause.strip()
            if not clause or clause.startswith("#"):
                continue
            rules.append(cls._parse_rule(clause))
        return cls(rules, seed=seed)

    @staticmethod
    def _parse_rule(clause):
        words = clause.split()
        if len(words) < 2:
            raise ValueError("fault rule needs '<site> <kind>': %r"
                             % clause)
        site, kind = words[0], words[1]
        kw = {}
        for word in words[2:]:
            key, sep, value = word.partition("=")
            if not sep:
                raise ValueError("bad fault option %r" % word)
            if key == "n":
                kw["count"] = None if value == "*" else int(value)
            elif key == "skip":
                kw["skip"] = int(value)
            elif key == "errno":
                number = getattr(errors_mod, value, None)
                if not isinstance(number, int):
                    raise ValueError("unknown errno %r" % value)
                kw["errno"] = number
            elif key == "delay":
                kw["delay_us"] = int(float(value) * 1_000_000)
            elif key == "host":
                kw["host"] = value
            elif key == "target":
                kw["target"] = value
            elif key == "peer":
                kw["peer"] = value
            else:
                raise ValueError("unknown fault option %r" % key)
        return FaultRule(site, kind, **kw)

    def fired(self):
        """(site, kind, fired) for every rule that acted — the chaos
        tests compare this tuple across engines."""
        return tuple((r.site, r.kind, r.fired)
                     for r in self.rules if r.fired)

    def __repr__(self):
        return "FaultPlan(%r, seed=%r)" % (self.rules, self.seed)
