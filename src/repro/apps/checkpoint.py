"""Process checkpointing (section 8, first application).

"The ability of our system to create an image of a process at a
random point in its execution and then restart it ... is exactly what
we need to implement process checkpointing. ... we may write an
application to take periodic snapshots of it and save those snapshots
by moving them to a directory managed by the application (perhaps
renaming them appropriately) which would then allow us to restart a
program at its n-th checkpoint.  The application should also make
copies of all files that were open when the process was checkpointed,
so that if the actual files were modified after the checkpoint, the
copies can be used instead."

Because ``SIGDUMP`` terminates the process, one checkpoint is a
dump-then-restart-in-place: the job pauses, its state lands on disk,
and a fresh process continues from exactly that point (with a new
pid, so checkpointed jobs must be pid-agnostic — section 7 applies).
"""

from repro.errors import UnixError
from repro.core.formats import FilesInfo, dump_file_names


class Checkpoint:
    """One saved snapshot."""

    def __init__(self, index, pid, host, directory):
        self.index = index
        self.pid = pid  #: pid at dump time (names the dump files)
        self.host = host
        self.directory = directory
        #: original path -> saved copy path, for open data files
        self.file_copies = {}

    def saved_dump_names(self):
        """Where the three dump files were moved to."""
        return ("%s/ckpt%d.aout" % (self.directory, self.index),
                "%s/ckpt%d.files" % (self.directory, self.index),
                "%s/ckpt%d.stack" % (self.directory, self.index))

    def __repr__(self):
        return ("Checkpoint(#%d of pid %d on %s, %d file copies)"
                % (self.index, self.pid, self.host,
                   len(self.file_copies)))


class CheckpointManager:
    """Periodic snapshots of one process, with restore-to-n-th.

    The manager plays the role of the user-level application the
    paper sketches: it drives ``dumpproc``/``restart`` and moves files
    around; the kernel mechanism is untouched.
    """

    def __init__(self, site, host, uid=100, directory="/ckpt"):
        self.site = site
        self.host = host
        self.uid = uid
        self.directory = directory
        self.checkpoints = []
        machine = site.machine(host)
        root = machine.fs.makedirs(directory)
        root.mode = 0o777

    # -- path plumbing ------------------------------------------------------

    def _machine(self):
        return self.site.machine(self.host)

    def _read(self, path):
        """Read a file through the manager machine's namespace."""
        resolved = self._machine().namespace.resolve(path)
        return bytes(resolved.inode.data)

    def _write(self, path, data, uid=None):
        machine = self._machine()
        resolved = machine.namespace.resolve(path, want_parent=True)
        if resolved.inode is None:
            inode = resolved.parent_fs.create(
                resolved.parent, resolved.name, mode=0o644,
                uid=uid if uid is not None else self.uid)
        else:
            inode = resolved.inode
        inode.data[:] = data
        return inode

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self, pid):
        """Snapshot ``pid``: dump, archive, copy files, resume.

        Returns ``(checkpoint, resumed_handle)`` — the process
        continues under a new pid (``resumed_handle.pid``).
        """
        site = self.site
        site.dumpproc(self.host, pid, uid=self.uid)
        record = Checkpoint(len(self.checkpoints), pid, self.host,
                            self.directory)

        aout, files, stack = dump_file_names(pid)
        saved = record.saved_dump_names()
        machine = self._machine()
        for source, target in zip((aout, files, stack), saved):
            self._write(target, machine.fs.read_file(source))

        # snapshot every open regular file recorded in the dump
        info = FilesInfo.unpack(machine.fs.read_file(files))
        seen = set()
        for slot, entry in enumerate(info.entries):
            if not entry.is_file() or entry.path in seen:
                continue
            seen.add(entry.path)
            if entry.path.startswith("/dev/"):
                continue
            copy_path = "%s/ckpt%d.fd%d" % (self.directory,
                                            record.index, slot)
            try:
                self._write(copy_path, self._read(entry.path))
            except UnixError:
                continue  # vanished or unreadable: nothing to save
            record.file_copies[entry.path] = copy_path

        self.checkpoints.append(record)
        resumed = site.restart(self.host, pid, uid=self.uid)
        return record, resumed

    # -- restoring --------------------------------------------------------------

    def restore(self, checkpoint, host=None, restore_files=True):
        """Bring a checkpoint back to life (default: where it ran).

        With ``restore_files`` the saved copies of the open files are
        written back first, so the program sees a consistent world
        even if the real files changed after the snapshot.
        """
        if isinstance(checkpoint, int):
            checkpoint = self.checkpoints[checkpoint]
        host = host or self.host
        machine = self._machine()

        if restore_files:
            for original, copy_path in checkpoint.file_copies.items():
                self._write(original, self._read(copy_path))

        # stage the dump files back under the names restart expects
        # (the a.out must stay executable, the rest stays private)
        targets = dump_file_names(checkpoint.pid)
        for index, (source, target) in enumerate(
                zip(checkpoint.saved_dump_names(), targets)):
            data = self._read(source)
            inode = self._write(target, data, uid=self.uid)
            inode.mode = 0o700 if index == 0 else 0o600
            inode.uid = self.uid
        return self.site.restart(host, checkpoint.pid,
                                 from_host=self.host, uid=self.uid)
